#!/usr/bin/env python3
"""Drive the MGS protocol directly and watch every transition.

Uses the protocol API below the application runtime — the same interface
the micro-benchmarks (Table 3) use — to walk a page through the
scenarios of Figure 4: replication, upgrade, single-writer release, and
a multi-writer release with diff merging.

Run:  python examples/protocol_trace.py
"""

from repro import MachineConfig
from repro.core.page import FrameState
from repro.runtime import Runtime


def drain(rt, label):
    rt.sim.run(max_events=100_000)
    print(f"  [t={rt.sim.now:>7,}] {label}")


def fault(rt, pid, vpn, write):
    kind = "write" if write else "read"
    start = rt.sim.now
    done = []
    rt.protocol.fault(pid, vpn, write, lambda: done.append(rt.sim.now))
    rt.sim.run(max_events=100_000)
    print(f"  [t={rt.sim.now:>7,}] proc {pid} {kind}-fault served in "
          f"{done[0] - start:,} cycles")


def release(rt, pid):
    start = rt.sim.now
    done = []
    rt.protocol.release(pid, lambda: done.append(rt.sim.now))
    rt.sim.run(max_events=100_000)
    print(f"  [t={rt.sim.now:>7,}] proc {pid} release completed in "
          f"{done[0] - start:,} cycles")


def show(rt, vpn):
    home = rt.protocol.home(vpn)
    frames = []
    for cluster in range(rt.config.num_clusters):
        frame = rt.protocol.frame(cluster, vpn)
        if frame is not None and frame.state is not FrameState.INVALID:
            frames.append(f"SSMP{cluster}:{frame.state.value}")
    print(f"      server={home.state.value} read_dir={sorted(home.read_dir)} "
          f"write_dir={sorted(home.write_dir)} copies=[{' '.join(frames)}]")


def main() -> None:
    # Three SSMPs of two processors; the page lives on SSMP 0.
    config = MachineConfig(total_processors=6, cluster_size=2, inter_ssmp_delay=1000)
    rt = Runtime(config)
    page = rt.array("page", config.words_per_page, home=0)
    vpn = page.base // config.page_size

    print("1. Read replication: SSMP1 and SSMP2 request read copies")
    fault(rt, 2, vpn, write=False)
    fault(rt, 4, vpn, write=False)
    show(rt, vpn)

    print("2. Upgrade: proc 2 writes its read copy (UPGRADE/WNOTIFY)")
    fault(rt, 2, vpn, write=True)
    show(rt, vpn)

    print("3. Second local mapping: proc 3 faults, fills from the SSMP")
    fault(rt, 3, vpn, write=False)
    show(rt, vpn)

    print("4. Single-writer release: SSMP1 releases; its copy is retained")
    rt.protocol.frame(1, vpn).data[0] = 42.0
    release(rt, 2)
    show(rt, vpn)
    print(f"      home word0 = {rt.protocol.home(vpn).data[0]} (42 pushed home)")

    print("5. Two writers: SSMP2 writes too, then releases -> diffs merge")
    fault(rt, 4, vpn, write=True)
    fault(rt, 2, vpn, write=True)
    rt.protocol.frame(1, vpn).data[1] = 1.0
    rt.protocol.frame(2, vpn).data[2] = 2.0
    release(rt, 4)
    show(rt, vpn)
    home = rt.protocol.home(vpn)
    print(f"      home words = {home.data[:3].tolist()} (both diffs merged)")

    stats = rt.protocol.stats.as_dict()
    print("\nprotocol event counts:")
    for key in sorted(stats):
        print(f"  {key:32s} {stats[key]}")


if __name__ == "__main__":
    main()
