#!/usr/bin/env python3
"""Drive the MGS protocol directly and watch every transition.

Uses the protocol API below the application runtime — the same interface
the micro-benchmarks (Table 3) use — to walk a page through the
scenarios of Figure 4: replication, upgrade, single-writer release, and
a multi-writer release with diff merging.

Run:  python examples/protocol_trace.py
      python examples/protocol_trace.py --loss-rate 0.2      # lossy LAN
      python examples/protocol_trace.py --network bus

With a nonzero ``--loss-rate`` the reliable transport in ``repro.net``
kicks in: the trace annotates each step with the drops it survived and
the retransmissions that recovered them.
"""

import argparse

from repro import MachineConfig
from repro.cli import add_network_args, network_from_args
from repro.core.page import FrameState
from repro.runtime import Runtime


_net_last = (0, 0, 0)


def net_delta(rt):
    """Report drop/retransmit activity since the previous step."""
    global _net_last
    stats = rt.machine.stats
    cur = (stats.drops, stats.retransmits, stats.dups_suppressed)
    if cur != _net_last:
        d, r, s = (c - l for c, l in zip(cur, _net_last))
        print(f"      net: +{d} drops, +{r} retransmits, +{s} dups suppressed")
    _net_last = cur


def drain(rt, label):
    rt.sim.run(max_events=100_000)
    print(f"  [t={rt.sim.now:>7,}] {label}")


def fault(rt, pid, vpn, write):
    kind = "write" if write else "read"
    start = rt.sim.now
    done = []
    rt.protocol.fault(pid, vpn, write, lambda: done.append(rt.sim.now))
    rt.sim.run(max_events=100_000)
    print(f"  [t={rt.sim.now:>7,}] proc {pid} {kind}-fault served in "
          f"{done[0] - start:,} cycles")
    net_delta(rt)


def release(rt, pid):
    start = rt.sim.now
    done = []
    rt.protocol.release(pid, lambda: done.append(rt.sim.now))
    rt.sim.run(max_events=100_000)
    print(f"  [t={rt.sim.now:>7,}] proc {pid} release completed in "
          f"{done[0] - start:,} cycles")
    net_delta(rt)


def show(rt, vpn):
    home = rt.protocol.home(vpn)
    frames = []
    for cluster in range(rt.config.num_clusters):
        frame = rt.protocol.frame(cluster, vpn)
        if frame is not None and frame.state is not FrameState.INVALID:
            frames.append(f"SSMP{cluster}:{frame.state.value}")
    print(f"      server={home.state.value} read_dir={sorted(home.read_dir)} "
          f"write_dir={sorted(home.write_dir)} copies=[{' '.join(frames)}]")


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Trace the MGS protocol, optionally over a lossy network"
    )
    add_network_args(parser)
    args = parser.parse_args()
    try:
        network = network_from_args(args)
    except ValueError as exc:
        parser.error(str(exc))

    # Three SSMPs of two processors; the page lives on SSMP 0.
    kwargs = {} if network is None else {"network": network}
    config = MachineConfig(
        total_processors=6, cluster_size=2, inter_ssmp_delay=1000, **kwargs
    )
    rt = Runtime(config)
    page = rt.array("page", config.words_per_page, home=0)
    vpn = page.base // config.page_size

    print("1. Read replication: SSMP1 and SSMP2 request read copies")
    fault(rt, 2, vpn, write=False)
    fault(rt, 4, vpn, write=False)
    show(rt, vpn)

    print("2. Upgrade: proc 2 writes its read copy (UPGRADE/WNOTIFY)")
    fault(rt, 2, vpn, write=True)
    show(rt, vpn)

    print("3. Second local mapping: proc 3 faults, fills from the SSMP")
    fault(rt, 3, vpn, write=False)
    show(rt, vpn)

    print("4. Single-writer release: SSMP1 releases; its copy is retained")
    rt.protocol.frame(1, vpn).data[0] = 42.0
    release(rt, 2)
    show(rt, vpn)
    print(f"      home word0 = {rt.protocol.home(vpn).data[0]} (42 pushed home)")

    print("5. Two writers: SSMP2 writes too, then releases -> diffs merge")
    fault(rt, 4, vpn, write=True)
    fault(rt, 2, vpn, write=True)
    rt.protocol.frame(1, vpn).data[1] = 1.0
    rt.protocol.frame(2, vpn).data[2] = 2.0
    release(rt, 4)
    show(rt, vpn)
    home = rt.protocol.home(vpn)
    print(f"      home words = {home.data[:3].tolist()} (both diffs merged)")

    stats = rt.protocol.stats.as_dict()
    print("\nprotocol event counts:")
    for key in sorted(stats):
        print(f"  {key:32s} {stats[key]}")

    net = rt.machine.network_summary()
    print("\nnetwork (repro.net):")
    print(f"  external={net['external_model']} internal={net['internal_model']} "
          f"reliable={net['reliable_transport']}")
    for key in ("wire_messages", "drops", "dups_injected", "delays_injected",
                "retransmits", "acks_sent", "dups_suppressed", "queue_cycles"):
        print(f"  {key:32s} {net[key]}")


if __name__ == "__main__":
    main()
