#!/usr/bin/env python3
"""The paper's experiment, end to end: sweep cluster size for one app.

Reproduces a Figure 6/9-style study on a 16-processor DSSMP: run Water
at every cluster size, print the execution-time curve, the runtime
breakdown bars, and the three framework metrics (breakup penalty,
multigrain potential, multigrain curvature) of section 2.4.

Run:  python examples/cluster_size_study.py [app]
      where app is one of: jacobi matmul tsp water barnes-hut
"""

import sys

from repro.apps import ALL_APPS, water
from repro.bench import render_breakdown_figure, render_metrics, run_sweep


def main() -> None:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "water"
    module = ALL_APPS[app_name]

    # A 16-processor machine keeps the example fast; pass app params to
    # grow the problem (see repro.bench.figures.bench_params for the
    # benchmark-scale defaults).
    params = None
    if app_name == "water":
        params = water.WaterParams(n_molecules=33, iterations=1)

    sweep = run_sweep(module, params=params, total_processors=16)

    print(render_breakdown_figure(
        sweep, f"Cluster-size study: {app_name} on a 16-processor DSSMP"
    ))
    print()
    print(render_metrics(sweep))
    print()
    print("Interpretation (section 2.4 of the paper):")
    print(" - breakup penalty: cost of splitting the tightly-coupled")
    print("   machine into two SSMPs;")
    print(" - multigrain potential: benefit of clustering uniprocessor")
    print("   DSM nodes into SSMPs;")
    print(" - convex curvature means most of that benefit arrives at")
    print("   small cluster sizes - good news for DSSMPs built from")
    print("   small multiprocessors.")


if __name__ == "__main__":
    main()
