#!/usr/bin/env python3
"""Runtime multigrain-locality analysis (the paper's future work, §7).

Runs Water on a DSSMP and prints the per-data-structure sharing report:
which allocations ping-pong at page grain between SSMPs (high transfer
counts — candidates for a locality transformation) and which are served
by hardware sharing inside clusters.

Run:  python examples/locality_report.py
"""

from repro.apps import water
from repro.metrics.locality import locality_report, render_locality_report
from repro.params import MachineConfig


def main() -> None:
    config = MachineConfig(total_processors=16, cluster_size=4,
                           inter_ssmp_delay=1000)
    rt = water.make_runtime(config)
    water.build(rt, water.WaterParams(n_molecules=33, iterations=1))
    result = rt.run()

    print(f"Water on P=16, C=4: {result.total_time:,} cycles\n")
    print(render_locality_report(locality_report(rt)))
    print(
        "\nReading the report: the molecule array moves between SSMPs at"
        "\npage grain on every lock hand-off (high transfers/page), while"
        "\nthe statistics page concentrates coherence traffic on its home."
        "\nA tiling transformation like the Water kernel's (Figure 12)"
        "\nwould cut the molecule array's transfers to one per phase."
    )


if __name__ == "__main__":
    main()
