#!/usr/bin/env python3
"""Best-effort multigrain locality: the Water-kernel transformation.

Reproduces the paper's section 5.2.3 result in miniature: the same
N-squared force kernel run twice — with the original per-pair-locking
loop, and with the tiled loop transformation that gives each SSMP
exclusive access to two tiles per phase.  The transformation contains
all sharing within SSMPs, collapsing the breakup penalty.

Run:  python examples/locality_transformation.py
"""

from repro.apps import water_kernel
from repro.bench import render_metrics, run_sweep


def main() -> None:
    total = 16
    params_plain = water_kernel.WaterKernelParams(n_molecules=64, optimized=False)
    params_tiled = water_kernel.WaterKernelParams(n_molecules=64, optimized=True)

    plain = run_sweep(water_kernel, params=params_plain, total_processors=total,
                      name="kernel-plain")
    tiled = run_sweep(water_kernel, params=params_tiled, total_processors=total,
                      name="kernel-tiled")

    print("Execution time (cycles) vs cluster size, 16 processors\n")
    print(f"{'C':>4}  {'untransformed':>15}  {'loop-transformed':>17}  {'speedup':>8}")
    for c in sorted(plain.times()):
        tp, tt = plain.times()[c], tiled.times()[c]
        print(f"{c:>4}  {tp:>15,.0f}  {tt:>17,.0f}  {tp / tt:>7.2f}x")

    print("\nUntransformed kernel:")
    print(render_metrics(plain))
    print("\nLoop-transformed kernel:")
    print(render_metrics(tiled))
    print(
        "\nThe transformation trades per-interaction software coherence"
        "\n(critical-section dilation on every molecule update) for"
        "\npage-grain communication at phase boundaries only."
    )


if __name__ == "__main__":
    main()
