#!/usr/bin/env python3
"""Quickstart: write a tiny shared-memory program and run it on a DSSMP.

This example builds an 8-processor machine partitioned into SSMPs of 2
processors, runs a lock-protected shared counter plus a data-parallel
array update, and prints the runtime breakdown the paper uses
(User / Lock / Barrier / MGS software coherence).

Run:  python examples/quickstart.py
"""

from repro import MachineConfig, Runtime


def main() -> None:
    config = MachineConfig(
        total_processors=8,
        cluster_size=2,  # four SSMPs of two processors each
        inter_ssmp_delay=1000,  # cycles per LAN message, as in the paper
    )
    rt = Runtime(config)

    # Shared memory: a counter and an array of 256 words distributed
    # round-robin across processor memories.
    counter = rt.array("counter", 1, home=0)
    counter.init([0.0])
    data = rt.array("data", 256)
    data.init([0.0] * 256)
    lock = rt.create_lock()

    def worker(env):
        # Application code is a generator: every shared-memory access and
        # synchronization op is a `yield from`.
        my_slice = range(env.pid * 32, (env.pid + 1) * 32)
        for i in my_slice:
            yield from env.write(data.addr(i), float(env.pid))
        yield from env.compute(500)  # some local number crunching

        yield from env.lock(lock)
        value = yield from env.read(counter.addr(0))
        yield from env.write(counter.addr(0), value + 1.0)
        yield from env.unlock(lock)  # a release point: the DUQ flushes

        yield from env.barrier()

    rt.spawn_all(worker)
    result = rt.run()

    print(f"machine: P={config.total_processors}, C={config.cluster_size} "
          f"({config.num_clusters} SSMPs)")
    print(f"execution time: {result.total_time:,} cycles")
    print(f"counter value:  {counter.snapshot()[0]:.0f} (expected 8)")
    print(f"lock hit ratio: {result.lock_stats.hit_ratio:.2f}")
    print("runtime breakdown (cycles, averaged over processors):")
    for component, cycles in result.breakdown().items():
        print(f"  {component:8s} {cycles:12,.0f}")
    print("protocol events:", {
        k: v for k, v in sorted(result.protocol_stats.items())
        if k in ("read_requests", "write_requests", "release_rounds",
                 "diffs_sent", "one_writer_releases")
    })
    assert counter.snapshot()[0] == 8.0


if __name__ == "__main__":
    main()
