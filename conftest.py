"""Repo-wide pytest configuration.

Adds the shared ``--jobs`` option: benchmark sweeps — and anything else
that resolves its worker count through
:func:`repro.bench.parallel.resolve_jobs` — fan out to that many worker
processes.  Results are byte-identical at any job count; only the
wall-clock changes.
"""

import os


def pytest_addoption(parser):
    parser.addoption(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for repro sweeps (sets REPRO_JOBS; 0 = all cores)",
    )


def pytest_configure(config):
    jobs = config.getoption("--jobs")
    if jobs is not None:
        os.environ["REPRO_JOBS"] = str(jobs)
