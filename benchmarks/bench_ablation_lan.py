"""Ablation: LAN contention (extension of the paper's network model).

Section 4.2.2 models inter-SSMP communication as a fixed latency and
explicitly notes that contention in the LAN and its interface is not
accounted for.  The ``lan_bandwidth`` knob adds a shared-link model:
inter-SSMP messages serialize at a configurable byte rate.  The sweep
shows how sensitive DSSMP performance is to that simplification —
especially at small cluster sizes, where every page moves over the LAN.
"""

from conftest import save_report

from repro.apps import water
from repro.bench import render_table
from repro.params import MachineConfig

#: bytes/cycle; 0 is the paper's model.  At 20 MHz, 1 byte/cycle is
#: roughly a 160 Mbit/s link - generous for a mid-90s LAN.
BANDWIDTHS = (0.0, 4.0, 1.0, 0.25)


def _run():
    out = {}
    for bw in BANDWIDTHS:
        results = {}
        for c in (1, 4):
            config = MachineConfig(
                total_processors=16,
                cluster_size=c,
                inter_ssmp_delay=1000,
                lan_bandwidth=bw,
            )
            run = water.run(
                config, water.WaterParams(n_molecules=33, iterations=1)
            ).require_valid()
            results[c] = (
                run.total_time,
                run.result.messages_inter_ssmp,
            )
        out[bw] = results
    return out


def test_ablation_lan_contention(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    base = results[0.0]
    rows = []
    for bw, per_c in results.items():
        label = "none (paper)" if bw == 0.0 else f"{bw} B/cycle"
        rows.append(
            [
                label,
                f"{per_c[1][0]:,}",
                f"{per_c[1][0] / base[1][0]:.2f}x",
                f"{per_c[4][0]:,}",
                f"{per_c[4][0] / base[4][0]:.2f}x",
            ]
        )
    save_report(
        "ablation_lan",
        "Ablation: LAN contention model (Water, 16 processors)\n\n"
        + render_table(
            ["link", "time C=1", "vs paper", "time C=4", "vs paper"], rows
        ),
    )
    # A starved link is ruinous at C=1 where every coherence action
    # crosses the LAN.  Moderate contention tracks the paper's model
    # within schedule tolerance: link queueing staggers messages, which
    # can shift Water's release coalescing and lock migration enough to
    # run a few percent *faster* than the uncontended schedule (the
    # time-ordered reservations of repro.net made this visible; the
    # seed's call-order reservations over-queued and masked it).
    for c in (1, 4):
        assert results[0.25][c][0] > results[1.0][c][0]
        assert results[1.0][c][0] >= results[0.0][c][0] * 0.9
    assert results[0.25][1][0] > results[0.0][1][0] * 1.2