"""Figure 12: Water-kernel with and without the loop transformation.

The paper's headline result for best-effort locality enhancement: the
tiled kernel (two tiles per SSMP, tournament phase schedule) drops the
breakup penalty from 334% to 26% while keeping a large multigrain
potential (107%), because within each phase all sharing is contained in
an SSMP and only page-grain communication remains at phase boundaries.
"""

from conftest import save_report

from repro.bench import figure_report, run_figure


def _collect():
    return run_figure("fig12-unopt"), run_figure("fig12-opt")


def test_fig12_water_kernel(benchmark):
    unopt, opt = benchmark.pedantic(_collect, rounds=1, iterations=1)
    report = "\n\n".join(
        [figure_report("fig12-unopt", unopt), figure_report("fig12-opt", opt)]
    )
    save_report("fig12_water_kernel", report)
    # The loop transformation slashes the breakup penalty...
    assert opt.breakup_penalty < unopt.breakup_penalty / 2, (
        f"opt {opt.breakup_penalty:.2f} vs unopt {unopt.breakup_penalty:.2f}"
    )
    # ...while a large multigrain potential remains.
    assert opt.multigrain_potential > 0.4
