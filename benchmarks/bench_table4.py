"""Table 4: applications, sequential running time, 32-way speedup."""

from conftest import save_report

from repro.bench import render_table4, run_table4


def test_table4(benchmark):
    rows = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    save_report(
        "table4",
        "Table 4: Applications and their problem sizes (scaled)\n\n"
        + render_table4(rows),
    )
    by_app = {r.app: r for r in rows}
    # Every app runs and parallelizes; the hierarchical n-body code has
    # the worst speedup, as in the paper (13.8 vs ~23-30 for the rest).
    for row in rows:
        assert row.speedup_32 > 1.0, f"{row.app} failed to speed up"
    coarse = ("jacobi", "matmul", "water", "water-kernel")
    assert all(by_app[a].speedup_32 > 5 for a in coarse)
    assert by_app["barnes-hut"].speedup_32 == min(
        by_app[a].speedup_32 for a in coarse + ("barnes-hut",)
    )
