"""Figure 9: runtime breakdown for Water across cluster sizes."""

from conftest import save_report, save_sweep_csv

from repro.bench import figure_report, run_figure


def test_fig09_water(benchmark):
    sweep = benchmark.pedantic(run_figure, args=("fig9",), rounds=1, iterations=1)
    save_report("fig09_water", figure_report("fig9", sweep))
    save_sweep_csv("fig09_water", sweep)
    # Water exploits multigrain sharing: a much better breakup penalty
    # than TSP and a clear multigrain potential (paper: 322% / 67%; our
    # scaled run shows a smaller but positive potential).
    assert sweep.multigrain_potential > 0.1
    times = sweep.times()
    # Monotonic improvement with cluster size (fine-grain sharing of the
    # molecule array is captured in hardware within each SSMP).
    sizes = sorted(times)
    assert all(times[a] >= times[b] * 0.95 for a, b in zip(sizes, sizes[1:]))
