"""Ablation: coherence grain size (paper section 2.2).

A larger page amortizes protocol overhead over more data but suffers
more false sharing.  TSP's 56-byte path elements make it the false
sharing victim; Jacobi's contiguous rows benefit from bigger pages.
"""

from conftest import save_report

from repro.apps import jacobi, tsp
from repro.bench import render_table
from repro.params import MachineConfig

PAGE_SIZES = (512, 1024, 4096)


def _run():
    out = {}
    for page in PAGE_SIZES:
        config = MachineConfig(
            total_processors=16,
            cluster_size=4,
            inter_ssmp_delay=1000,
            page_size=page,
        )
        j = jacobi.run(config, jacobi.JacobiParams(n=32, iterations=4)).require_valid()
        t = tsp.run(config, tsp.TSPParams(ncities=7)).require_valid()
        out[page] = (j.total_time, t.total_time)
    return out


def test_ablation_page_size(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        [f"{page} B", f"{tj:,}", f"{tt:,}"]
        for page, (tj, tt) in results.items()
    ]
    save_report(
        "ablation_page_size",
        "Ablation: page size sweep (16 processors, C=4)\n\n"
        + render_table(["page size", "jacobi", "tsp"], rows),
    )
    for page in PAGE_SIZES:
        assert results[page][0] > 0 and results[page][1] > 0
