"""Benchmark configuration.

Each benchmark regenerates one table or figure of the paper and appends
its paper-vs-measured report to ``results/`` (and stdout when run with
``-s``).  Simulations are deterministic, so a single round is measured.
"""

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

RESULTS = ROOT / "results"


def save_report(name: str, text: str) -> None:
    """Write a report file and echo it for the bench log."""
    RESULTS.mkdir(exist_ok=True)
    path = RESULTS / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{'=' * 72}\n{text}\n[saved to {path}]")


def save_sweep_csv(name: str, sweep) -> None:
    """Write the sweep's data series for external plotting."""
    from repro.metrics import sweep_to_csv

    RESULTS.mkdir(exist_ok=True)
    (RESULTS / f"{name}.csv").write_text(sweep_to_csv(sweep))
