"""Figure 11: MGS lock hit ratio as a function of cluster size.

The paper's two claims: the hit ratio increases monotonically with
cluster size for every application, and the applications that exploit
multigrain sharing (Water, Barnes-Hut) have better hit rates than TSP,
especially at small cluster sizes.
"""

from conftest import save_report

from repro.bench import render_lock_figure, run_figure


def _collect():
    return {
        "tsp": run_figure("fig8"),
        "water": run_figure("fig9"),
        "barnes-hut": run_figure("fig10"),
    }


def test_fig11_lock_hit_ratio(benchmark):
    sweeps = benchmark.pedantic(_collect, rounds=1, iterations=1)
    save_report(
        "fig11_lock_hit",
        render_lock_figure(
            list(sweeps.values()),
            "Figure 11: Hit rate for MGS lock as a function of cluster size",
        ),
    )
    for name, sweep in sweeps.items():
        ratios = [p.lock_hit_ratio for p in sweep.points]
        # Monotonic increase for the apps with genuine lock locality; the
        # saturated TSP queue lock wobbles a little in the middle range
        # (see EXPERIMENTS.md), so it gets a looser tolerance.
        slack = 0.15 if name == "tsp" else 0.05
        assert all(b >= a - slack for a, b in zip(ratios, ratios[1:])), (
            f"{name}: hit ratio must increase with cluster size: {ratios}"
        )
        assert ratios[-1] == 1.0  # C == P: the token never moves
    # Water and Barnes-Hut beat TSP at small cluster sizes.
    for c_index in (1, 2):  # C = 2 and C = 4
        tsp_ratio = sweeps["tsp"].points[c_index].lock_hit_ratio
        assert sweeps["water"].points[c_index].lock_hit_ratio > tsp_ratio - 0.05
        assert sweeps["barnes-hut"].points[c_index].lock_hit_ratio > tsp_ratio - 0.05
