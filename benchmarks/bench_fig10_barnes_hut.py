"""Figure 10: runtime breakdown for Barnes-Hut across cluster sizes."""

from conftest import save_report, save_sweep_csv

from repro.bench import figure_report, run_figure


def test_fig10_barnes_hut(benchmark):
    sweep = benchmark.pedantic(run_figure, args=("fig10",), rounds=1, iterations=1)
    save_report("fig10_barnes_hut", figure_report("fig10", sweep))
    save_sweep_csv("fig10_barnes_hut", sweep)
    # Highest multigrain potential of the suite (paper: 85%), convex
    # curvature, with lock overhead from the parallel tree build.
    assert sweep.multigrain_potential > 0.5
    point = sweep.point(1)
    assert point.breakdown["lock"] + point.breakdown["mgs"] > point.breakdown["user"]
