"""Figure 8: runtime breakdown for TSP across cluster sizes."""

from conftest import save_report, save_sweep_csv

from repro.bench import figure_report, run_figure


def test_fig08_tsp(benchmark):
    sweep = benchmark.pedantic(run_figure, args=("fig8",), rounds=1, iterations=1)
    save_report("fig08_tsp", figure_report("fig8", sweep))
    save_sweep_csv("fig08_tsp", sweep)
    # The centralized work queue makes TSP pathological on a DSSMP: the
    # paper reports >25x slowdown at C=1 vs the tightly-coupled machine,
    # lock time dominating, and concave curvature.
    times = sweep.times()
    assert times[1] / times[32] > 10, "TSP must be dramatically slower on a DSSMP"
    assert sweep.breakup_penalty > 3.0
    half = sweep.point(16)
    assert half.breakdown["lock"] > half.breakdown["user"], (
        "lock overhead (critical-section dilation) must dominate"
    )
    # Most of the (modest) multigrain potential is dropped across large
    # cluster sizes in the paper (concave curvature); at our scale the
    # curve is flatter — see EXPERIMENTS.md — so only assert it is far
    # from the convex shape of the well-behaved apps: little is gained
    # by the first doubling of cluster size.
    times = sweep.times()
    assert times[2] > 0.5 * times[1]
