"""Ablation: read-only data off the page-cleaning critical path.

Section 4.2.4 proposes (as future work) removing the invalidation of
read-only data from the critical path of page cleaning.  The
``fast_read_clean`` option models it; read-heavy sharing (Jacobi's
boundary pages, Water's position reads) should benefit.

The four simulations are independent, so they are farmed through
``parallel_map`` — run with ``--jobs N`` (or ``REPRO_JOBS``) to spread
them over worker processes; the totals are identical either way.
"""

from conftest import save_report

from repro.apps import jacobi, water
from repro.bench import parallel_map, render_table
from repro.params import MachineConfig, ProtocolOptions


def _point(app_name: str, fast: bool) -> int:
    config = MachineConfig(
        total_processors=16,
        cluster_size=2,
        inter_ssmp_delay=1000,
        options=ProtocolOptions(fast_read_clean=fast),
    )
    if app_name == "jacobi":
        run = jacobi.run(config, jacobi.JacobiParams(n=32, iterations=6))
    else:
        run = water.run(config, water.WaterParams(n_molecules=33, iterations=2))
    return run.require_valid().total_time


def test_ablation_fast_read_clean(benchmark):
    def both():
        return parallel_map(
            _point,
            [
                ("jacobi", False),
                ("water", False),
                ("jacobi", True),
                ("water", True),
            ],
        )

    j_base, w_base, j_fast, w_fast = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    save_report(
        "ablation_clean",
        "Ablation: fast read-page cleaning (16 processors, C=2)\n\n"
        + render_table(
            ["app", "baseline", "fast clean", "speedup"],
            [
                ["jacobi", f"{j_base:,}", f"{j_fast:,}", f"{j_base / j_fast:.3f}x"],
                ["water", f"{w_base:,}", f"{w_fast:,}", f"{w_base / w_fast:.3f}x"],
            ],
        ),
    )
    # Jacobi's remote read-only boundary pages benefit directly; Water's
    # gain is smaller and can be perturbed by interleaving shifts, so it
    # only needs to stay within noise.
    assert j_fast < j_base
    assert w_fast <= w_base * 1.05
