"""Figure 7: runtime breakdown for Matrix Multiply across cluster sizes."""

from conftest import save_report, save_sweep_csv

from repro.bench import figure_report, run_figure


def test_fig07_matmul(benchmark):
    sweep = benchmark.pedantic(run_figure, args=("fig7",), rounds=1, iterations=1)
    save_report("fig07_matmul", figure_report("fig7", sweep))
    save_sweep_csv("fig07_matmul", sweep)
    times = sweep.times()
    # Essentially zero breakup penalty and a flat multigrain region: the
    # read-shared B operand replicates once per SSMP and C rows have a
    # single writer each.
    assert sweep.breakup_penalty < 0.5
    assert times[1] / times[16] < 1.5, "Matmul should be flat across C"
