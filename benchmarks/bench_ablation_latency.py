"""Ablation: inter-SSMP message latency (the paper's LAN model).

Section 4.2.2 models the LAN as a fixed per-message latency (1000 cycles
in the evaluation).  Sweeping it shows how sensitive each sharing
pattern is to the external network: the coarse-grain apps degrade
slowly; the lock-bound ones amplify every cycle of latency through
critical-section dilation.
"""

from conftest import save_report

from repro.apps import jacobi, water
from repro.bench import render_table
from repro.params import MachineConfig

DELAYS = (0, 1000, 4000)


def _run():
    out = {}
    for delay in DELAYS:
        config = MachineConfig(
            total_processors=16, cluster_size=4, inter_ssmp_delay=delay
        )
        j = jacobi.run(config, jacobi.JacobiParams(n=32, iterations=4)).require_valid()
        w = water.run(
            config, water.WaterParams(n_molecules=33, iterations=1)
        ).require_valid()
        out[delay] = (j.total_time, w.total_time)
    return out


def test_ablation_latency(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    base_j, base_w = results[0]
    rows = [
        [
            f"{delay} cycles",
            f"{tj:,}",
            f"{tj / base_j:.2f}x",
            f"{tw:,}",
            f"{tw / base_w:.2f}x",
        ]
        for delay, (tj, tw) in results.items()
    ]
    save_report(
        "ablation_latency",
        "Ablation: inter-SSMP latency sweep (16 processors, C=4)\n\n"
        + render_table(
            ["latency", "jacobi", "vs 0", "water", "vs 0"], rows
        ),
    )
    # Latency hurts monotonically, and hurts the lock-bound app more.
    times_j = [results[d][0] for d in DELAYS]
    times_w = [results[d][1] for d in DELAYS]
    assert times_j == sorted(times_j)
    assert times_w == sorted(times_w)
    assert (times_w[-1] / times_w[0]) > (times_j[-1] / times_j[0]) * 0.9
