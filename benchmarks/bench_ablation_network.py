"""Ablation: the repro.net interconnect subsystem vs the paper's model.

Section 4.2.2 charges a fixed one-way latency per inter-SSMP message
and leaves contention and loss unmodeled.  This sweep reruns the
Figure 6 Jacobi curve over the pluggable external topologies (fixed /
shared bus / switched fabric) and drop rates up to 10%.  Every run
still validates Jacobi's output against the sequential golden
computation — the reliable transport makes a lossy fabric transparent
to the protocol engines, at a measurable retransmission cost.

The (fixed, 0.0) cell doubles as the equivalence guarantee: it must be
bit-for-bit the curve the default network produces.
"""

from conftest import save_report

from repro.apps import jacobi
from repro.bench import render_table, run_sweep
from repro.params import NetworkConfig

TOPOLOGIES = ("fixed", "bus", "fabric")
LOSS_RATES = (0.0, 0.05, 0.10)
PROCESSORS = 8
PARAMS = jacobi.JacobiParams(n=32, iterations=3)


def _sweep(network=None):
    return run_sweep(
        jacobi, params=PARAMS, total_processors=PROCESSORS, network=network
    )


def _run():
    out = {"baseline": _sweep(network=None)}
    for topo in TOPOLOGIES:
        for loss in LOSS_RATES:
            net = NetworkConfig(external=topo, drop_rate=loss)
            out[(topo, loss)] = _sweep(net)
    return out


def test_ablation_network(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    baseline = results["baseline"]

    rows = []
    for topo in TOPOLOGIES:
        for loss in LOSS_RATES:
            sweep = results[(topo, loss)]
            p1 = sweep.point(1)
            rows.append(
                [
                    topo,
                    f"{loss:.0%}",
                    f"{p1.total_time:,}",
                    f"{p1.total_time / baseline.point(1).total_time:.2f}x",
                    f"{p1.network['retransmits']}",
                    f"{p1.network['drops']}",
                    f"{p1.network['queue_cycles']:,}",
                ]
            )
    save_report(
        "ablation_network",
        f"Ablation: interconnect topology x loss rate "
        f"(Jacobi, {PROCESSORS} processors, C=1 column)\n\n"
        + render_table(
            ["topology", "loss", "time C=1", "vs paper model",
             "retransmits", "drops", "queue cycles"],
            rows,
        ),
    )

    # Equivalence guarantee: the default-model cell is bit-for-bit the
    # curve the seed's hard-coded network produced.
    assert results[("fixed", 0.0)].times() == baseline.times()
    for p_new, p_base in zip(results[("fixed", 0.0)].points, baseline.points):
        assert p_new.messages_inter_ssmp == p_base.messages_inter_ssmp

    for topo in TOPOLOGIES:
        clean = results[(topo, 0.0)]
        lossy = results[(topo, 0.10)]
        # Losses can only slow the machine down, and must be recovered.
        assert lossy.point(1).total_time >= clean.point(1).total_time
        assert lossy.point(1).network["retransmits"] > 0
        assert lossy.point(1).network["drops"] > 0
        # A single SSMP has no external traffic to fault.
        assert lossy.point(PROCESSORS).network["drops"] == 0

    # Contended models report queueing where the paper's model reports none.
    assert results[("fixed", 0.0)].point(1).network["queue_cycles"] == 0
    assert results[("bus", 0.0)].point(1).network["queue_cycles"] > 0
