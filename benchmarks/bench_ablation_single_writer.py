"""Ablation: the single-writer optimization (paper section 3.1.1).

The optimization trades diff computation for full-page bandwidth and —
more importantly — leaves the write copy cached after a release,
rewarding sharing within an SSMP across release points.  The directed
workload here isolates exactly that: every processor repeatedly writes
its own page, whose home lives on a *different* SSMP (displaced
placement), with a barrier after each round.  With the optimization the
page is fetched once and every release ships it home while the copy
stays cached; without it every round pays a fresh inter-SSMP write miss
plus a diff.
"""

from conftest import save_report

from repro.params import MachineConfig, ProtocolOptions
from repro.runtime import Runtime
from repro.bench.report import render_table

ROUNDS = 6
P = 16


def _run(single_writer_opt: bool, cluster_size: int):
    config = MachineConfig(
        total_processors=P,
        cluster_size=cluster_size,
        inter_ssmp_delay=1000,
        options=ProtocolOptions(single_writer_opt=single_writer_opt),
    )
    rt = Runtime(config)
    wpp = config.words_per_page
    # One page per processor, homed half a machine away (displaced).
    arr = rt.array(
        "pages", P * wpp, home=lambda pg: (pg + P // 2) % P
    )
    arr.init([0.0] * (P * wpp))

    def worker(env):
        base = env.pid * wpp
        for r in range(ROUNDS):
            for w in range(0, wpp, 8):
                yield from env.write(arr.addr(base + w), float(r))
            yield from env.compute(2000)
            yield from env.barrier()

    rt.spawn_all(worker)
    result = rt.run()
    stats = result.protocol_stats
    return (
        result.total_time,
        stats.get("one_writer_releases", 0),
        stats.get("diffs_sent", 0),
        stats.get("write_requests", 0),
    )


def _collect():
    out = {}
    for c in (2, 8):
        out[c] = (_run(True, c), _run(False, c))
    return out


def test_ablation_single_writer(benchmark):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)
    rows = []
    for c, (with_opt, without_opt) in sorted(results.items()):
        t_on, ow_on, diffs_on, wreq_on = with_opt
        t_off, ow_off, diffs_off, wreq_off = without_opt
        rows.append(
            [
                f"C={c}",
                f"{t_on:,}",
                f"{t_off:,}",
                f"{t_off / t_on:.2f}x",
                str(ow_on),
                f"{diffs_on}/{diffs_off}",
                f"{wreq_on}/{wreq_off}",
            ]
        )
    save_report(
        "ablation_single_writer",
        "Ablation: single-writer optimization\n"
        f"(16 processors, {ROUNDS} write+barrier rounds, displaced page homes)\n\n"
        + render_table(
            ["config", "time (opt on)", "time (opt off)", "speedup",
             "1W releases", "diffs on/off", "WREQs on/off"],
            rows,
        ),
    )
    for c, (with_opt, without_opt) in results.items():
        t_on, ow_on, diffs_on, wreq_on = with_opt
        t_off, ow_off, diffs_off, wreq_off = without_opt
        assert ow_on > 0, "optimization should actually trigger"
        assert ow_off == 0
        # The retained copy avoids refetching the page every round.
        assert wreq_on < wreq_off
        # And the optimization must pay off end to end.
        assert t_on < t_off
