"""Table 3: cost of primitive MGS operations (paper section 5.1)."""

from conftest import save_report

from repro.bench import measure_micro_costs, render_table
from repro.bench.micro import PAPER_TABLE3
from repro.params import CostModel


def _report() -> str:
    costs = CostModel()
    measured = measure_micro_costs()
    rows = [
        ["Cache Miss Local", costs.miss_local, PAPER_TABLE3["cache_miss_local"]],
        ["Cache Miss Remote", costs.miss_remote, PAPER_TABLE3["cache_miss_remote"]],
        ["Cache Miss 2-party", costs.miss_2party, PAPER_TABLE3["cache_miss_2party"]],
        ["Cache Miss 3-party", costs.miss_3party, PAPER_TABLE3["cache_miss_3party"]],
        ["Remote Software", costs.miss_software_dir, PAPER_TABLE3["remote_software"]],
        ["Distributed Array Translation", costs.translate_array,
         PAPER_TABLE3["translate_array"]],
        ["Pointer Translation", costs.translate_pointer,
         PAPER_TABLE3["translate_pointer"]],
        ["TLB Fill", measured.tlb_fill, PAPER_TABLE3["tlb_fill"]],
        ["Inter-SSMP Read Miss", measured.read_miss, PAPER_TABLE3["read_miss"]],
        ["Inter-SSMP Write Miss", measured.write_miss, PAPER_TABLE3["write_miss"]],
        ["Release (1 writer)", measured.release_1writer,
         PAPER_TABLE3["release_1writer"]],
        ["Release (2 writers)", measured.release_2writers,
         PAPER_TABLE3["release_2writers"]],
    ]
    table = render_table(
        ["operation", "measured (cycles)", "paper (cycles)"],
        [[r[0], str(r[1]), str(r[2])] for r in rows],
    )
    return "Table 3: Shared Memory Costs on MGS\n\n" + table


def test_table3(benchmark):
    measured = benchmark.pedantic(measure_micro_costs, rounds=1, iterations=1)
    save_report("table3", _report())
    for key, value in measured.as_dict().items():
        paper = PAPER_TABLE3[key]
        assert abs(value - paper) / paper < 0.02, f"{key}: {value} vs {paper}"
