"""Figure 6: runtime breakdown for Jacobi across cluster sizes."""

from conftest import save_report, save_sweep_csv

from repro.bench import figure_report, run_figure


def test_fig06_jacobi(benchmark):
    sweep = benchmark.pedantic(run_figure, args=("fig6",), rounds=1, iterations=1)
    save_report("fig06_jacobi", figure_report("fig6", sweep))
    save_sweep_csv("fig06_jacobi", sweep)
    times = sweep.times()
    # Coarse-grain phases: performance is largely independent of cluster
    # size in the multigrain region (paper: flat curve, 16% breakup).
    assert times[2] / times[16] < 1.6, "Jacobi should be nearly flat across C"
    assert sweep.breakup_penalty < 1.0
    # No locks in Jacobi.
    assert all(p.lock_acquires == 0 for p in sweep.points)
