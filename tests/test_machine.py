"""Unit tests for the machine model: latencies, occupancy, stolen time."""

from repro.machine import Machine
from repro.machine.machine import INTRA_WIRE_LATENCY
from repro.params import CostModel, MachineConfig
from repro.sim import Simulator


def make_machine(delay=1000):
    sim = Simulator()
    config = MachineConfig(total_processors=8, cluster_size=2, inter_ssmp_delay=delay)
    return sim, Machine(sim, config, CostModel())


def test_intra_cluster_wire_latency():
    sim, m = make_machine()
    arrivals = []
    m.send(0, 1, lambda: arrivals.append(sim.now))
    sim.run()
    assert arrivals == [INTRA_WIRE_LATENCY]


def test_inter_cluster_wire_latency():
    sim, m = make_machine(delay=1234)
    arrivals = []
    m.send(0, 2, lambda: arrivals.append(sim.now))
    sim.run()
    assert arrivals == [1234]


def test_send_at_future_time():
    sim, m = make_machine(delay=100)
    arrivals = []
    m.send(0, 2, lambda: arrivals.append(sim.now), at=500)
    sim.run()
    assert arrivals == [600]


def test_message_stats_split_by_network():
    sim, m = make_machine()
    m.send(0, 1, lambda: None, label="A")  # intra
    m.send(0, 2, lambda: None, label="B")  # inter
    m.send(2, 3, lambda: None, label="B")  # intra
    sim.run()
    assert m.stats.intra_ssmp == 2
    assert m.stats.inter_ssmp == 1
    assert m.stats.by_label["A"] == 1
    assert m.stats.by_label["B"] == 2


def test_occupy_serializes_handlers():
    sim, m = make_machine(delay=0)
    completions = []

    def handler(tag, cycles):
        completions.append((tag, m.occupy(2, cycles)))

    m.send(0, 2, handler, "first", 100)
    m.send(1, 2, handler, "second", 50)
    sim.run()
    # Both arrive at t=0; the second must start after the first finishes.
    assert completions == [("first", 100), ("second", 150)]


def test_occupy_idle_gap_resets_start():
    sim, m = make_machine(delay=0)
    completions = []
    m.send(0, 2, lambda: completions.append(m.occupy(2, 10)))
    sim.run()
    sim.schedule(1000, lambda: completions.append(m.occupy(2, 10)))
    sim.run()
    # The second handler runs at t=1000, long after the first finished at
    # t=10, so occupancy starts fresh: completion 1010, not 1020.
    assert completions == [10, 1010]


def test_stolen_cycles_accumulate_and_drain():
    sim, m = make_machine(delay=0)
    m.send(0, 2, lambda: m.occupy(2, 75))
    sim.run()
    assert m.take_stolen(2) == 75
    assert m.take_stolen(2) == 0
    assert m.processors[2].handler_cycles_total == 75
    assert m.processors[2].messages_handled == 1
