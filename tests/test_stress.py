"""Randomized stress tests: lock-protected counters must never lose an
update, whatever the cluster geometry or sharing pattern.

These patterns re-create the bug class found during development: the
single-writer optimization interacting with upgrades and with the home
cluster's aliased writes (see DESIGN.md section 3)."""

import pytest

from repro.params import MachineConfig, ProtocolOptions
from repro.runtime import Runtime


def run_counter_stress(
    cluster_size,
    total=8,
    npages=3,
    iters=4,
    delay=1000,
    single_writer_opt=True,
    read_mix=True,
):
    """Each worker increments a counter word on every page under a lock,
    optionally mixing in unlocked reads (the Water pattern)."""
    config = MachineConfig(
        total_processors=total,
        cluster_size=cluster_size,
        inter_ssmp_delay=delay,
        options=ProtocolOptions(single_writer_opt=single_writer_opt),
    )
    rt = Runtime(config)
    wpp = config.words_per_page
    arr = rt.array("acc", npages * wpp, home=lambda pg: (pg * 3) % total)
    arr.init([0.0] * (npages * wpp))
    locks = [
        rt.create_lock(home_cluster=k % config.num_clusters) for k in range(npages)
    ]

    def worker(env):
        for it in range(iters):
            if read_mix:
                for pg in range(npages):
                    yield from env.read(arr.addr(pg * wpp + 5 + env.pid % 7))
            yield from env.compute((env.pid * 53 + it * 17) % 400 + 10)
            for pg in range(npages):
                order = (pg + env.pid) % npages  # vary lock ordering
                yield from env.lock(locks[order])
                a = arr.addr(order * wpp)
                v = yield from env.read(a)
                yield from env.write(a, v + 1.0)
                yield from env.unlock(locks[order])
        yield from env.barrier()

    rt.spawn_all(worker)
    rt.run(max_events=50_000_000)
    rt.protocol.check_invariants()
    snap = arr.snapshot()
    expected = total * iters
    return [snap[pg * wpp] for pg in range(npages)], expected


@pytest.mark.parametrize("cluster_size", [1, 2, 4, 8])
def test_no_lost_updates(cluster_size):
    values, expected = run_counter_stress(cluster_size)
    assert values == [expected] * len(values)


@pytest.mark.parametrize("cluster_size", [1, 2, 4])
def test_no_lost_updates_without_single_writer_opt(cluster_size):
    values, expected = run_counter_stress(cluster_size, single_writer_opt=False)
    assert values == [expected] * len(values)


@pytest.mark.parametrize("delay", [0, 100, 5000])
def test_no_lost_updates_across_latencies(delay):
    values, expected = run_counter_stress(2, delay=delay)
    assert values == [expected] * len(values)


def test_counter_on_home_cluster_page():
    """The aliased home-cluster frame writes straight into the home copy;
    combined with single-writer retention in another cluster this used to
    lose updates (the Water bug)."""
    values, expected = run_counter_stress(4, total=8, npages=2, iters=8)
    assert values == [expected] * len(values)


def test_upgrade_heavy_pattern():
    """Read first, then upgrade-write under a lock: exercises the
    UPGRADE/WNOTIFY race against single-writer release rounds."""
    config = MachineConfig(total_processors=8, cluster_size=2, inter_ssmp_delay=800)
    rt = Runtime(config)
    arr = rt.array("acc", 16, home=0)
    arr.init([0.0] * 16)
    lock = rt.create_lock()

    def worker(env):
        for it in range(6):
            # Unlocked read establishes a read mapping first.
            yield from env.read(arr.addr(3))
            yield from env.lock(lock)
            v = yield from env.read(arr.addr(0))
            yield from env.write(arr.addr(0), v + 1.0)
            yield from env.unlock(lock)
        yield from env.barrier()

    rt.spawn_all(worker)
    rt.run(max_events=50_000_000)
    assert arr.snapshot()[0] == 48.0
