"""Unit tests for MachineConfig and CostModel."""

import pytest

from repro.params import CostModel, MachineConfig, ProtocolOptions


def test_default_geometry():
    config = MachineConfig()
    assert config.total_processors == 32
    assert config.num_clusters == 1
    assert config.hardware_only
    assert config.words_per_page == 128
    assert config.lines_per_page == 64
    assert config.words_per_line == 2


def test_cluster_partitioning():
    config = MachineConfig(total_processors=32, cluster_size=4)
    assert config.num_clusters == 8
    assert config.cluster_of(0) == 0
    assert config.cluster_of(3) == 0
    assert config.cluster_of(4) == 1
    assert config.cluster_of(31) == 7
    assert list(config.processors_of(2)) == [8, 9, 10, 11]


@pytest.mark.parametrize("bad", [0, 3, 5, 33, 64])
def test_invalid_cluster_size_rejected(bad):
    with pytest.raises(ValueError):
        MachineConfig(total_processors=32, cluster_size=bad)


def test_page_must_be_multiple_of_line():
    with pytest.raises(ValueError):
        MachineConfig(page_size=1000, line_size=16)


def test_with_cluster_size_preserves_other_fields():
    config = MachineConfig(
        total_processors=16, cluster_size=16, inter_ssmp_delay=777
    )
    smaller = config.with_cluster_size(2)
    assert smaller.cluster_size == 2
    assert smaller.inter_ssmp_delay == 777
    assert smaller.total_processors == 16
    assert not smaller.hardware_only


def test_tlb_fill_identity():
    """fault_overhead + map_fill is the paper's 1037-cycle TLB fill."""
    costs = CostModel()
    assert costs.fault_overhead + costs.map_fill == 1037


def test_cost_helpers():
    costs = CostModel()
    assert costs.dma_page(64) == costs.dma_fixed + 64 * costs.dma_per_line
    assert costs.clean_page(64) == 64 * costs.clean_per_line
    assert costs.make_twin(128) == costs.twin_fixed + 128 * costs.twin_per_word
    assert costs.make_diff(128) == costs.diff_fixed + 128 * costs.diff_per_word


def test_protocol_options_frozen_defaults():
    opts = ProtocolOptions()
    assert opts.single_writer_opt
    assert not opts.fast_read_clean
    config = MachineConfig(options=ProtocolOptions(single_writer_opt=False))
    assert not config.options.single_writer_opt
