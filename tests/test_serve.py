"""The repro.serve daemon: validation, queueing, rate limits, HTTP e2e.

The headline contracts (ISSUE 6 acceptance criteria):

* a sweep submitted twice over HTTP simulates **once** — warm
  resubmission is served entirely from the shared run cache (per-job
  counters prove zero simulation) and the results are bit-identical;
* identical submissions arriving while the first is still in flight
  coalesce onto one job (single-flight), across clients;
* invalid configurations are 400s with the unknown fields named;
  exhausted token buckets are 429s with a Retry-After hint;
* a graceful shutdown drains the running job and persists the queue,
  and the next daemon start resumes it.
"""

import json
import threading
import time

import pytest

from repro.bench.cache import RunCache, fingerprint_run
from repro.metrics.export import SCHEMA_VERSION
from repro.params import CostModel, MachineConfig
from repro.serve.client import ServeClient, ServeError
from repro.serve.daemon import ServeDaemon
from repro.serve.jobs import JobQueue, execute_job
from repro.serve.ratelimit import ClientTable, TokenBucket
from repro.serve.validate import RequestError, validate_request

JACOBI = {
    "workload": "jacobi",
    "params": {"n": 16, "iterations": 2},
    "total_processors": 4,
    "sizes": [1, 2],
}


# ---------------------------------------------------------------------------
# request validation
# ---------------------------------------------------------------------------


def test_minimal_request_gets_paper_defaults():
    req = validate_request({"workload": "jacobi"})
    assert req.total_processors == 32
    assert req.sizes == (1, 2, 4, 8, 16, 32)
    assert req.inter_ssmp_delay == 1000
    assert req.params.n == 64  # the app's own default


def test_request_key_ignores_field_order_and_explicit_defaults():
    implicit = validate_request({"workload": "jacobi"})
    explicit = validate_request(
        {
            "total_processors": 32,
            "workload": "jacobi",
            "inter_ssmp_delay": 1000,
            "sizes": [1, 2, 4, 8, 16, 32],
            "params": {"n": 64},
        }
    )
    assert implicit.key == explicit.key
    changed = validate_request({"workload": "jacobi", "sizes": [1, 2]})
    assert changed.key != implicit.key


@pytest.mark.parametrize(
    "body, fragment",
    [
        ({"workload": "nope"}, "workload must be one of"),
        ({"workload": "jacobi", "bogus": 1}, "unknown request field"),
        ({"workload": "jacobi", "params": {"m": 3}}, "unknown JacobiParams"),
        ({"workload": "jacobi", "params": {"m": 3}}, "compute_per_point"),
        ({"workload": "jacobi", "sizes": []}, "non-empty"),
        ({"workload": "jacobi", "sizes": [3]}, "cluster size 3"),
        ({"workload": "jacobi", "total_processors": "many"}, "integer"),
        ({"workload": "jacobi", "overrides": {"cluster_size": 4}},
         "may not set"),
        ({"workload": "jacobi", "overrides": {"warp_drive": 1}},
         "may not set"),
        ({"workload": "jacobi", "overrides": {"protocol": "swdsm"}},
         "may not set"),
        ({"workload": "jacobi", "protocol": "token_ring"},
         "protocol must be one of"),
        ({"workload": "jacobi", "costs": {"nope": 1}}, "unknown CostModel"),
        ({"workload": "jacobi", "network": {"nope": 1}},
         "unknown NetworkConfig"),
        ([], "JSON object"),
    ],
)
def test_invalid_requests_are_named_rejections(body, fragment):
    with pytest.raises(RequestError, match=fragment):
        validate_request(body)


def test_overrides_participate_in_config_and_key():
    plain = validate_request(dict(JACOBI))
    paged = validate_request({**JACOBI, "overrides": {"page_size": 2048}})
    assert plain.key != paged.key
    assert paged.point_config(2).page_size == 2048


def test_protocol_field_participates_in_config_and_key():
    """The engine name is part of the job identity: an unknown engine is
    a 400 listing the registry, a known one selects the point engine."""
    from repro.core.engine import engine_names

    plain = validate_request(dict(JACOBI))
    assert plain.protocol == "mgs"
    swdsm = validate_request({**JACOBI, "protocol": "swdsm"})
    assert swdsm.key != plain.key
    assert swdsm.point_config(2).protocol == "swdsm"
    with pytest.raises(RequestError) as exc:
        validate_request({**JACOBI, "protocol": "token_ring"})
    for name in engine_names():
        assert name in str(exc.value)


# ---------------------------------------------------------------------------
# rate limiting
# ---------------------------------------------------------------------------


def test_token_bucket_exhausts_and_refills():
    bucket = TokenBucket(rate=1.0, burst=2.0, now=0.0)
    assert bucket.take(0.0) == 0.0
    assert bucket.take(0.0) == 0.0
    retry = bucket.take(0.0)
    assert retry == pytest.approx(1.0)
    # one second later a token has landed
    assert bucket.take(1.0) == 0.0


def test_client_table_is_per_client():
    table = ClientTable(rate=0.001, burst=1.0)
    assert table.admit("alice") == 0.0
    assert table.admit("alice") > 0.0  # throttled
    assert table.admit("bob") == 0.0  # unaffected
    table.note("alice")
    snap = table.snapshot()
    assert snap["alice"] == {"requests": 1, "throttled": 1}


# ---------------------------------------------------------------------------
# the job queue: single-flight + longest-job-first + persistence
# ---------------------------------------------------------------------------


def test_single_flight_coalesces_in_flight_submissions(tmp_path):
    queue = JobQueue(tmp_path / "c")
    req = validate_request(dict(JACOBI))
    job, coalesced = queue.submit(req, "alice")
    assert not coalesced
    again, coalesced2 = queue.submit(validate_request(dict(JACOBI)), "bob")
    assert coalesced2 and again is job
    assert job.clients == ["alice", "bob"]
    assert queue.submitted == 1 and queue.deduplicated == 1

    other = validate_request({**JACOBI, "sizes": [1]})
    job2, coalesced3 = queue.submit(other, "alice")
    assert not coalesced3 and job2 is not job

    # once finished, the key is released: resubmission is a fresh job
    # (it will be served from the run cache, not coalesced)
    queue.take_next(0)
    queue.take_next(0)
    queue.finish(job, None, error=None)
    fresh, coalesced4 = queue.submit(validate_request(dict(JACOBI)), "carol")
    assert not coalesced4 and fresh is not job


def test_dispatch_is_longest_job_first(tmp_path):
    root = tmp_path / "c"
    seed = RunCache(root, source="fixed")
    for workload, wall in (("jacobi", 0.1), ("matmul", 5.0)):
        key, preimage = fingerprint_run(
            MachineConfig(total_processors=4, cluster_size=2),
            CostModel(), 1500, workload, None, source="fixed",
        )
        seed.put(key, preimage, {"payload": 1}, wall)

    queue = JobQueue(root)
    quick, _ = queue.submit(validate_request(dict(JACOBI)), "a")
    slow, _ = queue.submit(
        validate_request({**JACOBI, "workload": "matmul", "params": {}}), "a"
    )
    assert queue.take_next(0) is slow  # 5.0s estimate beats 0.1s
    assert queue.take_next(0) is quick


def test_queue_persist_and_restore_round_trip(tmp_path):
    queue = JobQueue(tmp_path / "c")
    queue.submit(validate_request(dict(JACOBI)), "alice")
    queue.submit(validate_request({**JACOBI, "sizes": [1]}), "alice")
    assert queue.persist() == 2

    resumed = JobQueue(tmp_path / "c")
    assert resumed.restore() == 2
    assert resumed.submitted == 2
    keys = {resumed.take_next(0).key, resumed.take_next(0).key}
    assert keys == {
        validate_request(dict(JACOBI)).key,
        validate_request({**JACOBI, "sizes": [1]}).key,
    }
    assert not resumed.state_path.exists()  # consumed
    assert resumed.restore() == 0


def test_execute_job_ticks_progress_and_counts_misses(tmp_path):
    queue = JobQueue(tmp_path / "c")
    job, _ = queue.submit(validate_request(dict(JACOBI)), "alice")
    queue.take_next(0)
    sweep = execute_job(job)
    assert job.points_done == job.points_total == 2
    assert [p.cluster_size for p in sweep.points] == [1, 2]
    assert job.cache.stats.misses == 2 and job.cache.stats.hits == 0


# ---------------------------------------------------------------------------
# HTTP end-to-end
# ---------------------------------------------------------------------------


@pytest.fixture
def daemon(tmp_path):
    """A live daemon on an ephemeral port with a permissive bucket."""
    d = ServeDaemon(port=0, cache_dir=tmp_path / "cache", rate=1000,
                    burst=1000)
    d.start_background()
    yield d
    d.close()


def _client(d, who="tester"):
    return ServeClient(d.url, client_id=who, timeout=30)


def test_e2e_submit_progress_result(daemon):
    client = _client(daemon)
    job = client.submit(**_kwargs(JACOBI))
    assert job["state"] in ("queued", "running")
    assert job["schema_version"] == SCHEMA_VERSION
    result = client.wait(job["id"], timeout=120, poll=0.05)
    assert result["schema_version"] == SCHEMA_VERSION
    assert [p["cluster_size"] for p in result["sweep"]["points"]] == [1, 2]
    assert all(p["total_time"] > 0 for p in result["sweep"]["points"])

    status = client.status(job["id"])
    assert status["state"] == "done"
    assert status["progress"]["points_done"] == 2
    assert status["progress"]["points_total"] == 2
    assert status["progress"]["estimate_seconds_remaining"] == 0.0


def _kwargs(body):
    kwargs = dict(body)
    kwargs["workload"] = kwargs.pop("workload")
    return kwargs


def test_warm_http_resubmission_is_zero_simulation_and_identical(daemon):
    cold_client = _client(daemon, "cold")
    cold_job = cold_client.submit(**_kwargs(JACOBI))
    cold = cold_client.wait(cold_job["id"], timeout=120, poll=0.05)
    assert cold["cache"]["misses"] == 2 and cold["cache"]["hits"] == 0

    warm_client = _client(daemon, "warm")
    warm_job = warm_client.submit(**_kwargs(JACOBI))
    assert warm_job["id"] != cold_job["id"]  # finished -> fresh job
    warm = warm_client.wait(warm_job["id"], timeout=60, poll=0.05)
    # entirely from cache: zero simulation, bit-identical payload
    assert warm["cache"]["hits"] == 2 and warm["cache"]["misses"] == 0
    assert json.dumps(warm["sweep"], sort_keys=True) == json.dumps(
        cold["sweep"], sort_keys=True
    )

    # ... and byte-identical to what the sweep engine hands the CLI
    from repro.apps import jacobi
    from repro.bench.sweep import run_sweep
    from repro.metrics.export import sweep_to_dict

    direct_cache = RunCache(daemon.queue.cache_root)
    direct = run_sweep(
        jacobi,
        params=jacobi.JacobiParams(n=16, iterations=2),
        total_processors=4,
        sizes=[1, 2],
        cache=direct_cache,
    )
    assert direct_cache.stats.misses == 0  # the daemon's store serves it
    assert json.dumps(sweep_to_dict(direct), sort_keys=True) == json.dumps(
        cold["sweep"], sort_keys=True
    )


def test_concurrent_identical_submissions_coalesce(tmp_path):
    d = ServeDaemon(port=0, cache_dir=tmp_path / "cache", rate=1000,
                    burst=1000)
    d.start_background(dispatch=False)  # stage before execution begins
    try:
        first = _client(d, "alice").submit(**_kwargs(JACOBI))
        second = _client(d, "bob").submit(**_kwargs(JACOBI))
        assert first["coalesced"] is False
        assert second["coalesced"] is True
        assert second["id"] == first["id"]
        assert second["clients"] == ["alice", "bob"]

        d.start_dispatcher()
        result = _client(d, "alice").wait(first["id"], timeout=120, poll=0.05)
        stats = _client(d, "carol").stats()
        # exactly one simulation: one job, both points simulated once
        assert stats["queue"]["submitted"] == 1
        assert stats["queue"]["deduplicated"] == 1
        assert stats["cache"]["misses"] == 2
        assert stats["cache"]["stores"] == 2
        assert len(result["sweep"]["points"]) == 2
    finally:
        d.close()


def test_rate_limited_submission_is_429(tmp_path):
    d = ServeDaemon(port=0, cache_dir=tmp_path / "cache", rate=0.001,
                    burst=2)
    d.start_background(dispatch=False)
    try:
        alice = _client(d, "alice")
        alice.submit(**_kwargs(JACOBI))
        alice.submit(**{**_kwargs(JACOBI), "sizes": [1]})
        with pytest.raises(ServeError) as exc:
            alice.submit(**{**_kwargs(JACOBI), "sizes": [2]})
        assert exc.value.status == 429
        assert "rate limit" in str(exc.value)
        # throttling is per client: bob is unaffected, and reads are free
        _client(d, "bob").submit(**{**_kwargs(JACOBI), "sizes": [2]})
        stats = alice.stats()
        assert stats["clients"]["alice"]["throttled"] == 1
        assert stats["clients"]["bob"]["throttled"] == 0
    finally:
        d.close()


def test_http_error_paths(daemon):
    client = _client(daemon)
    with pytest.raises(ServeError) as exc:
        client.submit("jacobi", params={"m": 1})
    assert exc.value.status == 400
    with pytest.raises(ServeError) as exc:
        client.status("j9999-deadbeef")
    assert exc.value.status == 404
    with pytest.raises(ServeError) as exc:
        client.request("GET", "/v2/anything")
    assert exc.value.status == 404


def test_result_before_completion_is_409(tmp_path):
    d = ServeDaemon(port=0, cache_dir=tmp_path / "cache", rate=1000,
                    burst=1000)
    d.start_background(dispatch=False)
    try:
        client = _client(d)
        job = client.submit(**_kwargs(JACOBI))
        with pytest.raises(ServeError) as exc:
            client.result(job["id"])
        assert exc.value.status == 409
    finally:
        d.close()


def test_failed_job_reports_error(daemon):
    client = _client(daemon)
    # Dataclasses don't type-check: n="big" passes validation but blows
    # up at execution — which must fail the job, not the daemon.
    job = client.submit("jacobi", params={"n": "big", "iterations": 1},
                        total_processors=4, sizes=[1])
    deadline = time.monotonic() + 60
    while client.status(job["id"])["state"] not in ("done", "failed"):
        assert time.monotonic() < deadline
        time.sleep(0.05)
    status = client.status(job["id"])
    assert status["state"] == "failed"
    assert status["error"]
    with pytest.raises(ServeError) as exc:
        client.result(job["id"])
    assert exc.value.status == 500
    # the daemon survives and serves the next job
    ok = client.submit(**_kwargs(JACOBI))
    assert client.wait(ok["id"], timeout=120, poll=0.05)["sweep"]["points"]


def test_graceful_shutdown_persists_queue_for_next_start(tmp_path):
    cache_dir = tmp_path / "cache"
    d1 = ServeDaemon(port=0, cache_dir=cache_dir, rate=1000, burst=1000)
    d1.start_background(dispatch=False)
    client = _client(d1)
    client.submit(**_kwargs(JACOBI))
    client.submit(**{**_kwargs(JACOBI), "sizes": [1]})
    client.shutdown()
    deadline = time.monotonic() + 10
    while (
        not (cache_dir / "serve_queue.json").exists()
        and time.monotonic() < deadline
    ):
        time.sleep(0.02)
    assert (cache_dir / "serve_queue.json").exists()

    d2 = ServeDaemon(port=0, cache_dir=cache_dir, rate=1000, burst=1000)
    try:
        assert d2.queue.submitted == 2  # restored on boot
        assert not (cache_dir / "serve_queue.json").exists()
    finally:
        d2.close()


def test_draining_daemon_rejects_new_submissions(tmp_path):
    d = ServeDaemon(port=0, cache_dir=tmp_path / "cache", rate=1000,
                    burst=1000)
    d.start_background(dispatch=False)
    client = _client(d)
    d.draining = True  # simulate mid-drain without racing close()
    try:
        with pytest.raises(ServeError) as exc:
            client.submit(**_kwargs(JACOBI))
        assert exc.value.status == 503
    finally:
        d.draining = False
        d.close()


def test_cli_serve_subcommand_forwards(monkeypatch):
    import repro.cli
    import repro.serve

    seen = {}

    def fake_main(argv):
        seen["argv"] = argv
        return 0

    monkeypatch.setattr(repro.serve, "main", fake_main)
    assert repro.cli.main(["serve", "--port", "0"]) == 0
    assert seen["argv"] == ["--port", "0"]
