"""Tests for the command-line interface (fast paths only)."""

import pytest

from repro.cli import main


def test_table3_runs_and_prints(capsys):
    assert main(["table3"]) == 0
    out = capsys.readouterr().out
    assert "Table 3" in out
    assert "6982" in out  # inter-SSMP read miss matches the paper


def test_unknown_experiment_fails(capsys):
    assert main(["nonesuch"]) == 2


def test_sweep_requires_known_app():
    with pytest.raises(SystemExit):
        main(["sweep", "not-an-app"])


def test_sweep_runs_small_machine(capsys):
    assert main(["sweep", "matmul", "--processors", "4"]) == 0
    out = capsys.readouterr().out
    assert "breakup penalty" in out
    assert "C= 4" in out


def test_analyze_hands_off_to_explorer(capsys):
    assert main(["analyze", "explore", "--engine", "swdsm"]) == 0
    out = capsys.readouterr().out
    assert "swdsm: clean" in out
