"""Smoke tests: every example script runs to completion."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv=None):
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "counter value:  8" in out
    assert "mgs" in out


def test_protocol_trace(capsys):
    run_example("protocol_trace.py")
    out = capsys.readouterr().out
    assert "Single-writer release" in out
    assert "42 pushed home" in out
    assert "one_writer_releases" in out


def test_locality_report(capsys):
    run_example("locality_report.py")
    out = capsys.readouterr().out
    assert "molecules" in out
    assert "transfers/page" in out


@pytest.mark.slow
def test_cluster_size_study(capsys):
    run_example("cluster_size_study.py", ["water"])
    out = capsys.readouterr().out
    assert "breakup penalty" in out


@pytest.mark.slow
def test_locality_transformation(capsys):
    run_example("locality_transformation.py")
    out = capsys.readouterr().out
    assert "loop-transformed" in out
