"""Tests for the repro.net topology/contention models."""

import pytest

from repro.machine import Machine
from repro.net import FixedLatency, Mesh2D, SharedBus, SwitchedFabric, Wire
from repro.params import CostModel, MachineConfig, NetworkConfig
from repro.sim import Simulator


def make_machine(network=None, total=8, cluster=2, delay=1000, **cfg):
    sim = Simulator()
    kwargs = dict(
        total_processors=total, cluster_size=cluster, inter_ssmp_delay=delay
    )
    if network is not None:
        kwargs["network"] = network
    kwargs.update(cfg)
    return sim, Machine(sim, MachineConfig(**kwargs), CostModel())


# ----------------------------------------------------------------------
# model units
# ----------------------------------------------------------------------


def test_fixed_latency_is_stateless():
    model = FixedLatency(1000)
    assert model.transit(0, 1, 4096, 50).arrival == 1050
    assert model.transit(0, 1, 4096, 50).arrival == 1050
    assert model.transit(0, 1, 4096, 50).queue_cycles == 0


def test_wire_ignores_size_and_nodes():
    model = Wire(5)
    assert model.transit(0, 1, 9999, 10).arrival == 15
    assert model.latency(3, 7) == 5


def test_mesh2d_hop_counts():
    # 16 processors -> 4x4 mesh; row-major layout.
    model = Mesh2D(cluster_size=16, wire_latency=5, hop_latency=2)
    assert model.hops(0, 0) == 0
    assert model.hops(0, 1) == 1
    assert model.hops(0, 5) == 2  # one right, one down
    assert model.hops(0, 15) == 6  # corner to corner
    assert model.transit(0, 15, 64, 0).arrival == 5 + 6 * 2


def test_mesh2d_internal_model_in_machine():
    net = NetworkConfig(internal="mesh", mesh_hop_latency=3)
    sim, m = make_machine(net, total=16, cluster=16)
    arrivals = {}
    m.send(0, 1, lambda: arrivals.setdefault("near", sim.now))
    m.send(0, 15, lambda: arrivals.setdefault("far", sim.now))
    sim.run()
    assert arrivals["near"] == 5 + 1 * 3
    assert arrivals["far"] == 5 + 6 * 3
    assert m.stats.intra_ssmp == 2


def test_shared_bus_serializes():
    sim, m = make_machine(NetworkConfig(external="bus", bus_bandwidth=1.0))
    arrivals = []
    m.send(0, 2, lambda: arrivals.append(sim.now), size=1088)
    m.send(0, 2, lambda: arrivals.append(sim.now), size=1088)
    sim.run()
    assert arrivals == [1088 + 1000, 2 * 1088 + 1000]
    assert m.stats.lan_queue_cycles == 1088
    assert m.stats.queue_cycles_by_link["bus"] == 1088


def test_bus_reservation_is_time_ordered():
    """Regression: the seed reserved the LAN at *call* time, so a message
    sent with an earlier thread-local timestamp after a later one queued
    behind the later reservation.  The two-stage model reserves in
    simulator (time, seq) order."""
    sim, m = make_machine(NetworkConfig(external="bus", bus_bandwidth=1.0))
    arrivals = {}
    # Called first, but enters the wire at t=5000.
    m.send(0, 2, lambda: arrivals.setdefault("late", sim.now), at=5000, size=100)
    # Called second with an earlier wire-entry time: must not queue
    # behind the t=5000 reservation.
    m.send(0, 2, lambda: arrivals.setdefault("early", sim.now), at=0, size=100)
    sim.run()
    assert arrivals["early"] == 100 + 1000
    assert arrivals["late"] == 5000 + 100 + 1000
    assert m.stats.lan_queue_cycles == 0


def test_switched_fabric_disjoint_pairs_do_not_contend():
    net = NetworkConfig(external="fabric", link_bandwidth=1.0)
    sim, m = make_machine(net)
    arrivals = {}
    m.send(0, 2, lambda: arrivals.setdefault("a", sim.now), size=500)  # 0->1
    m.send(4, 6, lambda: arrivals.setdefault("b", sim.now), size=500)  # 2->3
    sim.run()
    # Separate links: both pay only their own transfer + delay.
    assert arrivals == {"a": 1500, "b": 1500}
    assert m.stats.lan_queue_cycles == 0


def test_switched_fabric_same_link_is_fifo():
    net = NetworkConfig(external="fabric", link_bandwidth=1.0)
    sim, m = make_machine(net)
    arrivals = []
    m.send(0, 2, lambda: arrivals.append(sim.now), size=500)
    m.send(1, 3, lambda: arrivals.append(sim.now), size=500)  # same 0->1 link
    sim.run()
    assert arrivals == [1500, 2000]
    assert m.stats.queue_cycles_by_link["0->1"] == 500


def test_fabric_beats_bus_under_cross_traffic():
    """The point of the fabric: disjoint cluster pairs in parallel."""

    def total_queue(net):
        sim, m = make_machine(net)
        for src, dst in ((0, 2), (4, 6), (2, 4), (6, 0)):
            m.send(src, dst, lambda: None, size=1000)
        sim.run()
        return m.stats.lan_queue_cycles

    bus = total_queue(NetworkConfig(external="bus", bus_bandwidth=1.0))
    fabric = total_queue(NetworkConfig(external="fabric", link_bandwidth=1.0))
    assert fabric == 0
    assert bus > 0


# ----------------------------------------------------------------------
# configuration plumbing
# ----------------------------------------------------------------------


def test_lan_bandwidth_back_compat_promotes_to_bus():
    config = MachineConfig(lan_bandwidth=2.0)
    net = config.resolved_network
    assert net.external == "bus"
    assert net.bus_bandwidth == 2.0
    # An explicit model wins over the legacy knob.
    config = MachineConfig(
        lan_bandwidth=2.0, network=NetworkConfig(external="fabric")
    )
    assert config.resolved_network.external == "fabric"


def test_default_config_builds_paper_models():
    sim, m = make_machine()
    assert m.external.name == "fixed"
    assert m.internal.name == "wire"
    assert m.faults is None
    assert m.transport is None


def test_intra_wire_latency_configurable():
    sim, m = make_machine(intra_wire_latency=9)
    arrivals = []
    m.send(0, 1, lambda: arrivals.append(sim.now))
    sim.run()
    assert arrivals == [9]


def test_control_msg_bytes_configurable():
    sim, m = make_machine(control_msg_bytes=128)
    m.send(0, 2, lambda: None)  # default size
    sim.run()
    assert m.stats.inter_ssmp_bytes == 128


def test_network_config_validation():
    with pytest.raises(ValueError):
        NetworkConfig(external="token-ring")
    with pytest.raises(ValueError):
        NetworkConfig(internal="hypercube")
    with pytest.raises(ValueError):
        NetworkConfig(drop_rate=1.0)
    with pytest.raises(ValueError):
        NetworkConfig(bus_bandwidth=0.0)


def test_network_summary_shape():
    sim, m = make_machine()
    m.send(0, 2, lambda: None)
    sim.run()
    summary = m.network_summary()
    assert summary["external_model"] == "fixed"
    assert summary["internal_model"] == "wire"
    assert summary["reliable_transport"] is False
    assert summary["inter_ssmp"] == 1
    assert summary["wire_messages"] == 1
    assert summary["drops"] == 0


def test_switched_fabric_link_names():
    fabric = SwitchedFabric(1000, 4.0)
    assert fabric.link_name(0, 3) == "0->3"
    bus = SharedBus(1000, 1.0)
    assert bus.link_name(0, 3) == "bus"
