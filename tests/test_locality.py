"""Tests for the multigrain-locality reporting extension."""

from repro.metrics.locality import locality_report, render_locality_report
from repro.params import MachineConfig
from repro.runtime import Runtime


def run_two_segment_workload():
    config = MachineConfig(total_processors=4, cluster_size=2,
                           inter_ssmp_delay=500)
    rt = Runtime(config)
    wpp = config.words_per_page
    hot = rt.array("hot", wpp, home=0)  # ping-pongs between clusters
    cold = rt.array("cold", wpp, home=0)  # touched once, read-only
    hot.init([0.0] * wpp)
    cold.init([0.0] * wpp)
    lock = rt.create_lock()

    def worker(env):
        yield from env.read(cold.addr(env.pid))
        for _ in range(4):
            yield from env.lock(lock)
            v = yield from env.read(hot.addr(0))
            yield from env.write(hot.addr(0), v + 1.0)
            yield from env.unlock(lock)
        yield from env.barrier()

    rt.spawn_all(worker)
    rt.run()
    return rt


def test_report_separates_hot_and_cold_segments():
    rt = run_two_segment_workload()
    report = {s.name: s for s in locality_report(rt)}
    assert report["hot"].page_transfers > report["cold"].page_transfers
    assert report["hot"].invalidations > 0
    assert report["cold"].invalidations == 0
    assert report["hot"].faults > report["cold"].faults


def test_render_includes_all_segments():
    rt = run_two_segment_workload()
    text = render_locality_report(locality_report(rt))
    assert "hot" in text and "cold" in text
    assert "transfers/page" in text


def test_transfers_per_page_metric():
    rt = run_two_segment_workload()
    hot = next(s for s in locality_report(rt) if s.name == "hot")
    assert hot.transfers_per_page == hot.page_transfers / hot.pages
    assert hot.pages == 1
