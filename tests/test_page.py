"""Unit and property tests for page frames, twins, diffs, and merges."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.page import (
    FrameState,
    HomePage,
    PageFrame,
    apply_diff,
    dirty_lines,
    make_diff,
)


def test_make_diff_finds_changed_words():
    twin = np.zeros(16)
    data = twin.copy()
    data[3] = 7.0
    data[10] = -1.5
    indices, values = make_diff(data, twin)
    assert list(indices) == [3, 10]
    assert list(values) == [7.0, -1.5]


def test_make_diff_empty_when_clean():
    twin = np.arange(16, dtype=np.float64)
    indices, values = make_diff(twin.copy(), twin)
    assert len(indices) == 0
    assert len(values) == 0


def test_apply_diff_merges_into_home():
    home = np.zeros(16)
    apply_diff(home, np.array([1, 5]), np.array([2.0, 9.0]))
    assert home[1] == 2.0
    assert home[5] == 9.0
    assert home.sum() == 11.0


def test_dirty_lines_counts_distinct_lines():
    # Two words per line.
    assert dirty_lines(np.array([0, 1]), 2) == 1
    assert dirty_lines(np.array([0, 2]), 2) == 2
    assert dirty_lines(np.array([], dtype=int), 2) == 0
    assert dirty_lines(np.array([0, 1, 2, 3, 15]), 2) == 3


# ---------------------------------------------------------------------------
# diff machinery edge cases (ISSUE 4 satellite)
# ---------------------------------------------------------------------------


def test_empty_diff_round_trip():
    """A clean page diffs to nothing, applies as a no-op, dirties 0 lines."""
    twin = np.arange(32, dtype=np.float64)
    indices, values = make_diff(twin.copy(), twin)
    assert indices.size == 0 and values.size == 0
    home = twin.copy()
    apply_diff(home, indices, values)
    assert np.array_equal(home, twin)
    assert dirty_lines(indices, 2) == 0


def test_full_page_diff():
    """Every word changed: diff covers the page, DMA covers every line."""
    words, words_per_line = 128, 2
    twin = np.zeros(words)
    data = np.arange(1.0, words + 1.0)  # differs from 0 everywhere
    indices, values = make_diff(data, twin)
    assert np.array_equal(indices, np.arange(words))
    assert np.array_equal(values, data)
    home = np.full(words, -7.0)
    apply_diff(home, indices, values)
    assert np.array_equal(home, data)
    assert dirty_lines(indices, words_per_line) == words // words_per_line


def test_single_word_diff():
    twin = np.zeros(16)
    data = twin.copy()
    data[9] = 3.5
    indices, values = make_diff(data, twin)
    assert list(indices) == [9]
    assert list(values) == [3.5]
    assert dirty_lines(indices, 2) == 1  # one word -> one line
    home = np.zeros(16)
    apply_diff(home, indices, values)
    assert home[9] == 3.5 and home.sum() == 3.5


def test_diff_words_straddle_noncontiguous_lines():
    """Dirty words scattered across non-adjacent cache lines.

    With the Alewife geometry (16 B lines, 8 B words -> 2 words/line),
    words 1, 6, 7, and 30 fall on lines 0, 3, 3, and 15: four dirty
    words but only three lines of DMA.
    """
    words_per_line = 2
    twin = np.zeros(32)
    data = twin.copy()
    for w in (1, 6, 7, 30):
        data[w] = float(w)
    indices, values = make_diff(data, twin)
    assert list(indices) == [1, 6, 7, 30]
    assert dirty_lines(indices, words_per_line) == 3
    home = np.zeros(32)
    apply_diff(home, indices, values)
    assert np.array_equal(home, data)


def test_write_back_to_original_value_is_not_dirty():
    """A word written and then restored to its twin value drops out of
    the diff — diffs record state, not write history."""
    twin = np.arange(8, dtype=np.float64)
    data = twin.copy()
    data[3] = 99.0
    data[3] = twin[3]  # restored
    data[5] = -1.0
    indices, values = make_diff(data, twin)
    assert list(indices) == [5]
    assert list(values) == [-1.0]


@settings(max_examples=200, deadline=None)
@given(
    writes_a=st.dictionaries(st.integers(0, 127), st.floats(allow_nan=False, width=32)),
    writes_b=st.dictionaries(st.integers(0, 127), st.floats(allow_nan=False, width=32)),
)
def test_diff_merge_roundtrip_two_writers(writes_a, writes_b):
    """The Munin multiple-writer property: merging two writers' diffs
    yields every written value; non-conflicting words keep the original
    data; conflicting words end with one of the written values."""
    original = np.arange(128, dtype=np.float64) * 3.0
    home = original.copy()
    copy_a, twin_a = home.copy(), home.copy()
    copy_b, twin_b = home.copy(), home.copy()
    for idx, v in writes_a.items():
        copy_a[idx] = v
    for idx, v in writes_b.items():
        copy_b[idx] = v
    apply_diff(home, *make_diff(copy_a, twin_a))
    apply_diff(home, *make_diff(copy_b, twin_b))
    for i in range(128):
        in_a = i in writes_a and writes_a[i] != original[i]
        in_b = i in writes_b and writes_b[i] != original[i]
        if in_b:
            assert home[i] == copy_b[i]  # later merge wins conflicts
        elif in_a:
            assert home[i] == copy_a[i]
        else:
            assert home[i] == original[i]


@settings(max_examples=100, deadline=None)
@given(indices=st.lists(st.integers(0, 127), unique=True))
def test_diff_is_exact_inverse(indices):
    """diff(data, twin) applied onto a copy of twin reproduces data."""
    twin = np.zeros(128)
    data = twin.copy()
    for i in indices:
        data[i] = float(i + 1)
    reconstructed = twin.copy()
    apply_diff(reconstructed, *make_diff(data, twin))
    assert np.array_equal(reconstructed, data)


def test_frame_mapped_property():
    frame = PageFrame(vpn=1, cluster=0, owner_pid=0)
    assert not frame.mapped
    frame.state = FrameState.BUSY
    assert not frame.mapped
    frame.state = FrameState.READ
    assert frame.mapped
    frame.state = FrameState.WRITE
    assert frame.mapped


def test_home_page_copies_union():
    home = HomePage(vpn=1, home_pid=0, data=np.zeros(4))
    home.read_dir = {1, 2}
    home.write_dir = {2, 3}
    assert home.copies == {1, 2, 3}
