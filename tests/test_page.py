"""Unit and property tests for page frames, twins, diffs, and merges."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.page import (
    FrameState,
    HomePage,
    PageFrame,
    apply_diff,
    dirty_lines,
    make_diff,
)


def test_make_diff_finds_changed_words():
    twin = np.zeros(16)
    data = twin.copy()
    data[3] = 7.0
    data[10] = -1.5
    indices, values = make_diff(data, twin)
    assert list(indices) == [3, 10]
    assert list(values) == [7.0, -1.5]


def test_make_diff_empty_when_clean():
    twin = np.arange(16, dtype=np.float64)
    indices, values = make_diff(twin.copy(), twin)
    assert len(indices) == 0
    assert len(values) == 0


def test_apply_diff_merges_into_home():
    home = np.zeros(16)
    apply_diff(home, np.array([1, 5]), np.array([2.0, 9.0]))
    assert home[1] == 2.0
    assert home[5] == 9.0
    assert home.sum() == 11.0


def test_dirty_lines_counts_distinct_lines():
    # Two words per line.
    assert dirty_lines(np.array([0, 1]), 2) == 1
    assert dirty_lines(np.array([0, 2]), 2) == 2
    assert dirty_lines(np.array([], dtype=int), 2) == 0
    assert dirty_lines(np.array([0, 1, 2, 3, 15]), 2) == 3


@settings(max_examples=200, deadline=None)
@given(
    writes_a=st.dictionaries(st.integers(0, 127), st.floats(allow_nan=False, width=32)),
    writes_b=st.dictionaries(st.integers(0, 127), st.floats(allow_nan=False, width=32)),
)
def test_diff_merge_roundtrip_two_writers(writes_a, writes_b):
    """The Munin multiple-writer property: merging two writers' diffs
    yields every written value; non-conflicting words keep the original
    data; conflicting words end with one of the written values."""
    original = np.arange(128, dtype=np.float64) * 3.0
    home = original.copy()
    copy_a, twin_a = home.copy(), home.copy()
    copy_b, twin_b = home.copy(), home.copy()
    for idx, v in writes_a.items():
        copy_a[idx] = v
    for idx, v in writes_b.items():
        copy_b[idx] = v
    apply_diff(home, *make_diff(copy_a, twin_a))
    apply_diff(home, *make_diff(copy_b, twin_b))
    for i in range(128):
        in_a = i in writes_a and writes_a[i] != original[i]
        in_b = i in writes_b and writes_b[i] != original[i]
        if in_b:
            assert home[i] == copy_b[i]  # later merge wins conflicts
        elif in_a:
            assert home[i] == copy_a[i]
        else:
            assert home[i] == original[i]


@settings(max_examples=100, deadline=None)
@given(indices=st.lists(st.integers(0, 127), unique=True))
def test_diff_is_exact_inverse(indices):
    """diff(data, twin) applied onto a copy of twin reproduces data."""
    twin = np.zeros(128)
    data = twin.copy()
    for i in indices:
        data[i] = float(i + 1)
    reconstructed = twin.copy()
    apply_diff(reconstructed, *make_diff(data, twin))
    assert np.array_equal(reconstructed, data)


def test_frame_mapped_property():
    frame = PageFrame(vpn=1, cluster=0, owner_pid=0)
    assert not frame.mapped
    frame.state = FrameState.BUSY
    assert not frame.mapped
    frame.state = FrameState.READ
    assert frame.mapped
    frame.state = FrameState.WRITE
    assert frame.mapped


def test_home_page_copies_union():
    home = HomePage(vpn=1, home_pid=0, data=np.zeros(4))
    home.read_dir = {1, 2}
    home.write_dir = {2, 3}
    assert home.copies == {1, 2, 3}
