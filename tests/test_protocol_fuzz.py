"""Protocol-level fuzzing: random fault/release storms must always
quiesce with consistent state.

Unlike the application-level property tests (which check data), this
fuzzer drives the protocol API directly with arbitrary timings and then
checks structural invariants at quiescence — the protocol equivalent of
a model checker's safety sweep over random schedules.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.page import FrameState, ServerState
from repro.params import MachineConfig, ProtocolOptions
from repro.runtime import Runtime

# Every storm runs under the invariant sanitizer: each delivered message
# is checked against the Table 1/2 arcs while the fuzzer shakes the tree.
pytestmark = pytest.mark.usefixtures("protocol_sanitizer")


@st.composite
def storms(draw):
    nclusters = draw(st.sampled_from([2, 3, 4]))
    cluster_size = draw(st.sampled_from([1, 2]))
    total = nclusters * cluster_size
    delay = draw(st.sampled_from([0, 700, 2500]))
    sw_opt = draw(st.booleans())
    npages = draw(st.integers(1, 3))
    ops = draw(
        st.lists(
            st.tuples(
                st.integers(0, total - 1),  # pid
                st.integers(0, npages - 1),  # page
                st.sampled_from(["read", "write", "release"]),
                st.integers(0, 30_000),  # start time
            ),
            min_size=1,
            max_size=30,
        )
    )
    return total, cluster_size, delay, sw_opt, npages, ops


@settings(max_examples=120, deadline=None)
@given(storm=storms())
def test_random_storms_quiesce_consistently(storm):
    total, cluster_size, delay, sw_opt, npages, ops = storm
    config = MachineConfig(
        total_processors=total,
        cluster_size=cluster_size,
        inter_ssmp_delay=delay,
        options=ProtocolOptions(single_writer_opt=sw_opt),
    )
    rt = Runtime(config)
    arr = rt.array("fuzz", npages * config.words_per_page, home=0)
    arr.init([0.0] * (npages * config.words_per_page))
    base_vpn = arr.base // config.page_size

    completed = []
    expected = 0
    busy: set[int] = set()  # pids with an operation outstanding

    for pid, page, op, start in ops:
        if pid in busy:
            continue  # one outstanding blocking op per processor
        busy.add(pid)
        expected += 1
        if op == "release":
            rt.sim.schedule_at(
                start, rt.protocol.release, pid,
                lambda pid=pid: (completed.append(pid), busy.discard(pid)),
            )
        else:
            rt.sim.schedule_at(
                start, rt.protocol.fault, pid, base_vpn + page, op == "write",
                lambda pid=pid: (completed.append(pid), busy.discard(pid)),
            )

    rt.sim.run(max_events=2_000_000)

    # Liveness: every operation completed.
    assert len(completed) == expected, (
        f"{expected - len(completed)} operations never completed"
    )
    # Quiescence: no round left hanging, no lock left held.
    for vpn, home in rt.protocol.homes.items():
        assert home.state is not ServerState.REL_IN_PROG
        assert home.count == 0 and not home.rl and not home.rd and not home.wr
        for cluster in home.write_dir:
            frame = rt.protocol.frame(cluster, vpn)
            assert frame is not None
            assert frame.state in (FrameState.WRITE, FrameState.BUSY)
    for frames in rt.protocol.frames:
        for frame in frames.values():
            assert not frame.lock_held, "mapping lock leaked"
            assert not frame.waiters and not frame.queued_invals
            assert frame.inval_kind is None
    rt.protocol.check_invariants()
    if rt.sanitizer is not None:
        rt.sanitizer.check_quiescent()
