"""Property-based tests for the hardware coherence directory."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import CacheSystem
from repro.params import CostModel, MachineConfig

COSTS = CostModel()


@st.composite
def access_traces(draw):
    nprocs = draw(st.sampled_from([2, 4, 8]))
    ops = draw(
        st.lists(
            st.tuples(
                st.integers(0, nprocs - 1),  # pid
                st.integers(0, 5),  # line
                st.booleans(),  # is_write
                st.integers(0, nprocs - 1),  # home pid
            ),
            min_size=1,
            max_size=60,
        )
    )
    return nprocs, ops


@settings(max_examples=200, deadline=None)
@given(trace=access_traces())
def test_directory_invariants(trace):
    """After every access: a dirty line has no sharers; costs are always
    one of the Table 3 classes; a repeated access by the same processor
    is always a hit."""
    nprocs, ops = trace
    config = MachineConfig(total_processors=nprocs, cluster_size=nprocs)
    cache = CacheSystem(config, COSTS)
    valid_costs = {
        COSTS.cache_hit,
        COSTS.miss_local,
        COSTS.miss_remote,
        COSTS.miss_2party,
        COSTS.miss_3party,
        COSTS.miss_software_dir,
    }
    for pid, line, is_write, home in ops:
        cost = cache.access(0, pid, line, is_write, home)
        assert cost in valid_costs
        state = cache._lines[0].get(line)
        owner, sharers = state[0], state[1]
        if owner != -1:
            assert not sharers, "dirty line must have no sharers"
        # Immediate re-access hits.
        assert cache.access(0, pid, line, is_write, home) == COSTS.cache_hit


@settings(max_examples=100, deadline=None)
@given(
    readers=st.lists(st.integers(0, 7), min_size=1, max_size=12),
    home=st.integers(0, 7),
)
def test_read_sharing_accumulates_sharers(readers, home):
    config = MachineConfig(total_processors=8, cluster_size=8)
    cache = CacheSystem(config, COSTS)
    for pid in readers:
        cache.access(0, pid, 0, False, home)
    state = cache._lines[0][0]
    assert state[0] == -1
    assert state[1] == set(readers)


@settings(max_examples=100, deadline=None)
@given(ops=st.lists(st.tuples(st.integers(0, 3), st.booleans()), max_size=30))
def test_flush_resets_everything(ops):
    config = MachineConfig(total_processors=4, cluster_size=4)
    cache = CacheSystem(config, COSTS)
    for pid, is_write in ops:
        cache.access(0, pid, 7, is_write, 0)
    cache.flush_page(0, 0, 64)
    assert cache.lines_cached(0) == 0
