"""Tests for sweep/result serialization."""

import csv
import io
import json

from repro.apps import matmul
from repro.bench import run_sweep
from repro.metrics.export import (
    SCHEMA_VERSION,
    run_result_to_dict,
    sweep_to_csv,
    sweep_to_dict,
    sweep_to_json,
)
from repro.params import MachineConfig


def small_sweep():
    return run_sweep(
        matmul,
        params=matmul.MatmulParams(n=8, compute_per_mac=10),
        total_processors=4,
    )


def test_sweep_to_dict_round_trips_through_json():
    sweep = small_sweep()
    data = json.loads(sweep_to_json(sweep))
    assert data["app"] == "matmul"
    assert len(data["points"]) == 3
    assert data["points"][0]["cluster_size"] == 1
    assert all(p["total_time"] > 0 for p in data["points"])
    assert "breakup_penalty" in data
    assert data["schema_version"] == SCHEMA_VERSION


def test_partial_sweep_exports_null_derived_metrics():
    # A partial sweep (repro.serve accepts arbitrary sizes) lacks the
    # C=1/C=P/2/C=P points the curve metrics need; they export as null
    # rather than failing the payload.
    sweep = run_sweep(
        matmul,
        params=matmul.MatmulParams(n=8, compute_per_mac=10),
        total_processors=4,
        sizes=[2],
    )
    data = sweep_to_dict(sweep)
    assert data["breakup_penalty"] is None
    assert data["multigrain_potential"] is None
    assert len(data["points"]) == 1


def test_sweep_to_csv_is_parseable():
    sweep = small_sweep()
    rows = list(csv.reader(io.StringIO(sweep_to_csv(sweep))))
    assert rows[0][:3] == ["app", "cluster_size", "total_time"]
    assert len(rows) == 4  # header + 3 cluster sizes
    assert rows[1][0] == "matmul"
    # breakdown columns roughly account for the total time
    total = int(rows[1][2])
    parts = sum(int(x) for x in rows[1][3:7])
    assert abs(parts - total) / total < 0.05


def test_run_result_to_dict():
    config = MachineConfig(total_processors=4, cluster_size=2)
    run = matmul.run(config, matmul.MatmulParams(n=8, compute_per_mac=10))
    data = run_result_to_dict(run.result)
    assert data["schema_version"] == SCHEMA_VERSION
    assert data["cluster_size"] == 2
    assert data["total_time"] == run.total_time
    assert set(data["breakdown"]) == {"user", "lock", "barrier", "mgs"}
    json.dumps(data)  # must be JSON-serializable
