"""Unit tests for the intra-SSMP hardware coherence model."""

import pytest

from repro.hw import AccessClass, CacheSystem
from repro.params import CostModel, MachineConfig


@pytest.fixture
def cache():
    config = MachineConfig(total_processors=8, cluster_size=4)
    return CacheSystem(config, CostModel())


COSTS = CostModel()


def test_cold_read_local_vs_remote(cache):
    # Line homed at proc 0's memory; proc 0 reads: local miss.
    assert cache.access(0, 0, 100, False, 0) == COSTS.miss_local
    # Proc 1 reads a different cold line homed at proc 0: remote miss.
    assert cache.access(0, 1, 101, False, 0) == COSTS.miss_remote


def test_read_hit_after_miss(cache):
    cache.access(0, 1, 100, False, 0)
    assert cache.access(0, 1, 100, False, 0) == COSTS.cache_hit


def test_write_hit_requires_ownership(cache):
    cache.access(0, 1, 100, False, 0)  # shared
    cost = cache.access(0, 1, 100, True, 0)  # upgrade
    assert cost > COSTS.cache_hit
    assert cache.access(0, 1, 100, True, 0) == COSTS.cache_hit


def test_dirty_read_two_party(cache):
    # Proc 0 (also home) writes; proc 0 vs requester 1: two parties.
    cache.access(0, 0, 100, True, 0)
    assert cache.access(0, 1, 100, False, 0) == COSTS.miss_2party


def test_dirty_read_three_party(cache):
    # Home is proc 2; proc 0 dirties; proc 1 reads: three parties.
    cache.access(0, 0, 100, True, 2)
    assert cache.access(0, 1, 100, False, 2) == COSTS.miss_3party


def test_write_invalidating_shared_copy(cache):
    cache.access(0, 1, 100, False, 0)  # proc 1 shares
    # Proc 0 (home) writes: invalidate proc 1 -> two parties.
    assert cache.access(0, 0, 100, True, 0) == COSTS.miss_2party


def test_write_invalidating_many_sharers_three_party(cache):
    cache.access(0, 1, 100, False, 0)
    cache.access(0, 2, 100, False, 0)
    assert cache.access(0, 3, 100, True, 0) == COSTS.miss_3party


def test_software_directory_beyond_pointer_limit(cache):
    config = MachineConfig(total_processors=32, cluster_size=8, hw_dir_pointers=5)
    cache = CacheSystem(config, COSTS)
    for pid in range(6):
        cache.access(0, pid, 100, False, 0)
    # Six sharers exceed the 5 hardware pointers: LimitLESS software path.
    assert cache.access(0, 6, 100, False, 0) == COSTS.miss_software_dir


def test_clusters_are_independent(cache):
    cache.access(0, 0, 100, True, 0)
    # Same line index in another cluster's replica: cold there.
    assert cache.access(1, 4, 100, False, 4) == COSTS.miss_local


def test_flush_page_drops_state(cache):
    for line in range(64, 72):
        cache.access(0, 1, line, False, 0)
    assert cache.lines_cached(0) == 8
    present = cache.flush_page(0, 64, 8)
    assert present == 8
    assert cache.lines_cached(0) == 0
    # After a flush the next access misses again.
    assert cache.access(0, 1, 64, False, 0) == COSTS.miss_remote


def test_stats_accumulate(cache):
    cache.access(0, 0, 1, False, 0)
    cache.access(0, 0, 1, False, 0)
    assert cache.stats[AccessClass.LOCAL] == 1
    assert cache.stats[AccessClass.HIT] == 1


def test_dirty_write_by_other_processor(cache):
    cache.access(0, 0, 100, True, 0)  # proc 0 owns dirty
    cost = cache.access(0, 1, 100, True, 0)  # proc 1 steals ownership
    assert cost == COSTS.miss_2party
    # Proc 0 lost the line.
    assert cache.access(0, 0, 100, False, 0) == COSTS.miss_2party
