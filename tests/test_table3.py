"""Table 3 calibration: primitive operation costs match the paper."""

import pytest

from repro.bench.micro import PAPER_TABLE3, measure_micro_costs
from repro.params import CostModel


@pytest.fixture(scope="module")
def measured():
    return measure_micro_costs().as_dict()


@pytest.mark.parametrize(
    "key",
    ["tlb_fill", "read_miss", "write_miss", "release_1writer", "release_2writers"],
)
def test_software_costs_match_paper(measured, key):
    assert measured[key] == pytest.approx(PAPER_TABLE3[key], rel=0.01)


def test_hardware_group_matches_paper():
    costs = CostModel()
    assert costs.miss_local == PAPER_TABLE3["cache_miss_local"]
    assert costs.miss_remote == PAPER_TABLE3["cache_miss_remote"]
    assert costs.miss_2party == PAPER_TABLE3["cache_miss_2party"]
    assert costs.miss_3party == PAPER_TABLE3["cache_miss_3party"]
    assert costs.miss_software_dir == PAPER_TABLE3["remote_software"]


def test_translation_group_matches_paper():
    costs = CostModel()
    assert costs.translate_array == PAPER_TABLE3["translate_array"]
    assert costs.translate_pointer == PAPER_TABLE3["translate_pointer"]


def test_ordering_relationships():
    """Qualitative relationships the paper emphasizes hold."""
    m = measure_micro_costs().as_dict()
    # Write misses cost more than read misses (twinning + bookkeeping).
    assert m["write_miss"] > m["read_miss"]
    # A second writer makes a release much more expensive (diffs).
    assert m["release_2writers"] > 1.5 * m["release_1writer"]
    # A local fill is more than 6x cheaper than crossing SSMPs.
    assert m["read_miss"] > 6 * m["tlb_fill"]


def test_delay_increases_protocol_costs():
    """With a 1000-cycle LAN delay, every inter-SSMP round trip grows by
    at least two delays (request + response)."""
    base = measure_micro_costs(inter_ssmp_delay=0).as_dict()
    lan = measure_micro_costs(inter_ssmp_delay=1000).as_dict()
    assert lan["tlb_fill"] == base["tlb_fill"]  # purely local
    assert lan["read_miss"] >= base["read_miss"] + 2000
    assert lan["write_miss"] >= base["write_miss"] + 2000
    assert lan["release_1writer"] >= base["release_1writer"] + 2000
