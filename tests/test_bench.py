"""Tests for the benchmark harness: sweeps, rendering, Table 4 helpers."""

import pytest

from repro.apps import matmul
from repro.bench import (
    FIGURES,
    bench_params,
    default_config,
    render_breakdown_figure,
    render_lock_figure,
    render_metrics,
    render_table,
    run_sweep,
)
from repro.bench.table4 import PAPER_TABLE4
from repro.metrics import ClusterSweep, SweepPoint


def tiny_sweep():
    return run_sweep(
        matmul,
        params=matmul.MatmulParams(n=8, compute_per_mac=10),
        total_processors=4,
    )


def test_run_sweep_covers_all_cluster_sizes():
    sweep = tiny_sweep()
    assert [p.cluster_size for p in sweep.points] == [1, 2, 4]
    assert all(p.total_time > 0 for p in sweep.points)
    assert sweep.app == "matmul"


def test_run_sweep_validates_output():
    # require_valid is on by default: a sweep that completes proves the
    # app matched its golden run at every cluster size.
    sweep = tiny_sweep()
    assert sweep.points


def test_render_table_alignment():
    out = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert all(len(line) == len(lines[0]) for line in lines)


def test_render_breakdown_figure_mentions_each_cluster_size():
    sweep = tiny_sweep()
    text = render_breakdown_figure(sweep, "title")
    for c in (1, 2, 4):
        assert f"C={c:>2}" in text
    assert "legend" in text


def test_render_metrics_includes_paper_columns():
    sweep = tiny_sweep()
    text = render_metrics(sweep, paper_breakup=0.16, paper_potential=1.07,
                          paper_curvature="convex")
    assert "16%" in text
    assert "107%" in text
    assert "convex" in text


def test_render_lock_figure():
    points = [
        SweepPoint(cluster_size=c, total_time=1, breakdown={}, lock_hit_ratio=c / 4)
        for c in (1, 2, 4)
    ]
    sweep = ClusterSweep(app="x", total_processors=4, points=points)
    text = render_lock_figure([sweep], "fig")
    assert "0.25" in text and "1.00" in text


def test_default_config_matches_paper_platform():
    config = default_config(4)
    assert config.total_processors == 32
    assert config.cluster_size == 4
    assert config.inter_ssmp_delay == 1000
    assert config.page_size == 1024


def test_bench_params_cover_every_figure():
    for spec in FIGURES.values():
        params = bench_params(spec.app)
        assert params is not None
    with pytest.raises(KeyError):
        bench_params("nonesuch")


def test_paper_table4_has_all_apps():
    from repro.apps import ALL_APPS, SYNTHETIC_APPS

    assert set(PAPER_TABLE4) == set(ALL_APPS) - SYNTHETIC_APPS
