"""End-to-end smoke tests: tiny programs across machine shapes."""

import pytest

from repro import MachineConfig, Runtime


def incrementer(counter_addr, lock, iters):
    def worker(env):
        for _ in range(iters):
            yield from env.lock(lock)
            v = yield from env.read(counter_addr)
            yield from env.write(counter_addr, v + 1)
            yield from env.unlock(lock)
        yield from env.barrier()

    return worker


@pytest.mark.parametrize("cluster_size", [1, 2, 4, 8])
def test_locked_counter_all_cluster_sizes(cluster_size):
    config = MachineConfig(total_processors=8, cluster_size=cluster_size)
    rt = Runtime(config)
    arr = rt.array("counter", 1)
    arr.init([0.0])
    lock = rt.create_lock()
    iters = 5
    rt.spawn_all(incrementer(arr.addr(0), lock, iters))
    result = rt.run(max_events=2_000_000)
    assert arr.snapshot()[0] == 8 * iters
    assert result.total_time > 0
    rt.protocol.check_invariants()


def test_disjoint_writers_merge():
    """Each processor writes its own slice of one page: the multiple
    writer protocol must merge every diff at the final barrier."""
    config = MachineConfig(total_processors=4, cluster_size=1)
    rt = Runtime(config)
    arr = rt.array("page", 64)
    arr.init([0.0] * 64)

    def worker(env):
        base = env.pid * 16
        for i in range(16):
            yield from env.write(arr.addr(base + i), float(env.pid * 100 + i))
        yield from env.barrier()

    rt.spawn_all(worker)
    rt.run(max_events=2_000_000)
    snap = arr.snapshot()
    for pid in range(4):
        for i in range(16):
            assert snap[pid * 16 + i] == pid * 100 + i


def test_breakdown_sums_to_total():
    config = MachineConfig(total_processors=4, cluster_size=2)
    rt = Runtime(config)
    arr = rt.array("data", 32)
    arr.init([1.0] * 32)

    def worker(env):
        acc = 0.0
        for i in range(32):
            acc += yield from env.read(arr.addr(i))
        yield from env.compute(100)
        yield from env.barrier()

    rt.spawn_all(worker)
    result = rt.run(max_events=2_000_000)
    bd = result.breakdown()
    assert bd["user"] > 0
    total = sum(bd.values())
    assert total == pytest.approx(result.total_time, rel=0.01)
