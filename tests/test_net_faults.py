"""Tests for the deterministic fault-injection layer."""

from repro.machine import Machine
from repro.net import FaultInjector
from repro.params import CostModel, MachineConfig, NetworkConfig
from repro.sim import Simulator


def test_decisions_are_deterministic():
    net = NetworkConfig(drop_rate=0.2, dup_rate=0.1, delay_rate=0.1)
    a, b = FaultInjector(net), FaultInjector(net)
    for n in range(500):
        da = a.decide("lan", n * 10)
        db = b.decide("lan", n * 10)
        assert da.entries == db.entries
        assert (da.dropped, da.duplicated, da.delayed) == (
            db.dropped, db.duplicated, db.delayed
        )


def test_seed_changes_decisions():
    base = NetworkConfig(drop_rate=0.3)
    other = NetworkConfig(drop_rate=0.3, fault_seed=99)
    a, b = FaultInjector(base), FaultInjector(other)
    pattern_a = [a.decide("lan", 0).dropped for _ in range(200)]
    pattern_b = [b.decide("lan", 0).dropped for _ in range(200)]
    assert pattern_a != pattern_b


def test_links_draw_independent_streams():
    net = NetworkConfig(drop_rate=0.5)
    inj = FaultInjector(net)
    a = [inj.decide("0->1", 0).dropped for _ in range(200)]
    inj2 = FaultInjector(net)
    b = [inj2.decide("1->0", 0).dropped for _ in range(200)]
    assert a != b


def test_rates_are_approximately_honored():
    net = NetworkConfig(drop_rate=0.25, dup_rate=0.1, delay_rate=0.1)
    inj = FaultInjector(net)
    n = 4000
    for _ in range(n):
        inj.decide("lan", 0)
    totals = inj.totals()
    assert totals["transmissions"] == n
    assert 0.20 < totals["drops"] / n < 0.30
    # dup/delay only apply to non-dropped messages
    survivors = n - totals["drops"]
    assert 0.06 < totals["dups_injected"] / survivors < 0.14
    assert 0.06 < totals["delays_injected"] / survivors < 0.14


def test_decision_shapes():
    # Force each branch with extreme rates.
    drop = FaultInjector(NetworkConfig(drop_rate=0.999999))
    d = drop.decide("lan", 100)
    assert d.dropped and d.entries == []

    dup = FaultInjector(NetworkConfig(dup_rate=0.999999))
    d = dup.decide("lan", 100)
    assert d.duplicated and d.entries == [100, 100]

    delay = FaultInjector(NetworkConfig(delay_rate=0.999999, delay_cycles=777))
    d = delay.decide("lan", 100)
    assert d.delayed and d.entries == [877]


def test_machine_counts_faults_without_transport():
    """reliable=False exposes the raw lossy network: drops vanish."""
    net = NetworkConfig(drop_rate=0.999999, reliable=False)
    sim = Simulator()
    config = MachineConfig(
        total_processors=4, cluster_size=2, inter_ssmp_delay=100, network=net
    )
    m = Machine(sim, config, CostModel())
    delivered = []
    m.send(0, 2, lambda: delivered.append(sim.now))
    sim.run()
    assert delivered == []
    assert m.stats.drops == 1
    assert m.stats.wire_messages == 0
    assert m.stats.inter_ssmp == 1  # the logical send is still counted


def test_runs_are_reproducible_under_faults():
    from repro.apps import jacobi

    net = NetworkConfig(drop_rate=0.1, dup_rate=0.05, delay_rate=0.05)
    config = MachineConfig(
        total_processors=4, cluster_size=1, inter_ssmp_delay=500, network=net
    )
    params = jacobi.JacobiParams(n=16, iterations=2)
    a = jacobi.run(config, params)
    b = jacobi.run(config, params)
    assert a.valid and b.valid
    assert a.total_time == b.total_time
    assert a.result.network_stats == b.result.network_stats
    assert a.result.network_stats["drops"] > 0
