"""Tests for the protocol tracer."""

from repro import MachineConfig, Runtime
from repro.trace import ProtocolTracer


def run_traced(pages=None):
    config = MachineConfig(total_processors=4, cluster_size=2,
                           inter_ssmp_delay=500)
    rt = Runtime(config)
    arr = rt.array("a", 2 * config.words_per_page, home=0)
    arr.init([0.0] * (2 * config.words_per_page))
    vpn0 = arr.base // config.page_size
    tracer = ProtocolTracer(rt, pages=pages)

    def worker(env):
        v = yield from env.read(arr.addr(0))
        yield from env.write(arr.addr(env.pid), v + 1.0)
        yield from env.read(arr.addr(config.words_per_page))  # second page
        yield from env.barrier()

    rt.spawn_all(worker)
    rt.run()
    return tracer, vpn0


def test_traces_faults_grants_and_releases():
    tracer, vpn0 = run_traced()
    kinds = {e.kind for e in tracer.events}
    assert {"FAULT", "REQ", "GRANT", "REL", "INVAL", "RESP"} <= kinds
    assert len(tracer) > 10


def test_page_filter_restricts_events():
    tracer, vpn0 = run_traced(pages=[123456789])
    assert len(tracer) == 0
    tracer, vpn0 = run_traced(pages=None)
    page_events = tracer.filter(vpn=vpn0)
    assert page_events
    assert all(e.vpn == vpn0 for e in page_events)


def test_filter_by_kind_and_render():
    tracer, vpn0 = run_traced()
    faults = tracer.filter(kind="FAULT")
    assert all(e.kind == "FAULT" for e in faults)
    text = tracer.render(limit=5)
    assert "FAULT" in text or "REQ" in text
    assert "more events" in text


def test_snapshot_shows_directory_state():
    tracer, vpn0 = run_traced()
    rel_events = [e for e in tracer.filter(kind="REL") if e.vpn == vpn0]
    assert rel_events
    assert "server=" in rel_events[0].snapshot


def test_events_are_time_ordered():
    tracer, _ = run_traced()
    times = [e.time for e in tracer.events]
    assert times == sorted(times)


def test_events_carry_transaction_ids():
    tracer, vpn0 = run_traced()
    faults = tracer.filter(kind="FAULT")
    assert faults and all(e.txn >= 0 for e in faults)
    grants = tracer.filter(kind="GRANT")
    assert grants and all(e.txn >= 0 for e in grants)


def test_render_transactions_groups_by_txn():
    tracer, vpn0 = run_traced()
    assert tracer.transactions, "no completed transactions recorded"
    text = tracer.render_transactions()
    assert "txn 0:" in text
    assert "fault" in text
    assert "release" in text
    assert "latency=" in text
    limited = tracer.render_transactions(limit=1)
    assert "more transactions" in limited


def test_tracer_is_a_pure_tap():
    """Attaching a tracer must not change simulated timing."""
    from repro.params import MachineConfig
    from repro.runtime import Runtime

    def run(traced):
        config = MachineConfig(total_processors=4, cluster_size=2,
                               inter_ssmp_delay=500)
        rt = Runtime(config)
        arr = rt.array("a", config.words_per_page, home=0)
        arr.init([0.0] * config.words_per_page)
        tracer = ProtocolTracer(rt) if traced else None

        def worker(env):
            v = yield from env.read(arr.addr(0))
            yield from env.write(arr.addr(env.pid), v + 1.0)
            yield from env.barrier()

        rt.spawn_all(worker)
        result = rt.run()
        return result.total_time, tracer

    untraced_time, _ = run(False)
    traced_time, tracer = run(True)
    assert traced_time == untraced_time
    assert len(tracer) > 0
