"""Unit tests for the Delayed Update Queue."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.duq import DUQ


def test_fifo_order():
    duq = DUQ(0)
    for vpn in (5, 3, 9):
        duq.add(vpn)
    assert duq.pop_head() == 5
    assert duq.pop_head() == 3
    assert duq.pop_head() == 9
    assert not duq


def test_add_is_idempotent():
    duq = DUQ(0)
    duq.add(7)
    duq.add(7)
    assert len(duq) == 1
    assert duq.enqueues == 1


def test_early_removal():
    duq = DUQ(0)
    duq.add(1)
    duq.add(2)
    assert duq.remove_if_present(1)
    assert not duq.remove_if_present(1)
    assert duq.early_removals == 1
    assert duq.pop_head() == 2


def test_contains_and_bool():
    duq = DUQ(0)
    assert not duq
    duq.add(4)
    assert 4 in duq
    assert 5 not in duq
    assert duq


@given(st.lists(st.integers(0, 50)))
def test_pop_order_matches_first_insertion(vpns):
    duq = DUQ(0)
    for v in vpns:
        duq.add(v)
    expected = list(dict.fromkeys(vpns))
    popped = []
    while duq:
        popped.append(duq.pop_head())
    assert popped == expected
