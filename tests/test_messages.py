"""Table 2 completeness: every protocol message type exists, has exactly
one registered handler, and flows on the wire under a mixed workload."""

from repro.core.messages import TABLE2_CLASSES, MsgType, ProtocolMessage
from repro.params import MachineConfig
from repro.runtime import Runtime


def test_table2_message_set_is_complete():
    expected = {
        "UPGRADE", "PINV_ACK",  # Local Client -> Remote Client
        "PINV", "UP_ACK",  # Remote Client -> Local Client
        "RREQ", "WREQ", "REL",  # Local Client -> Server
        "RDAT", "WDAT", "RACK",  # Server -> Local Client
        "ACK", "DIFF", "1WDATA", "WNOTIFY",  # Remote Client -> Server
        "INV", "1WINV",  # Server -> Remote Client
    }
    assert {m.value for m in MsgType} == expected


def test_every_type_is_a_frozen_message_class():
    for mtype, cls in TABLE2_CLASSES.items():
        assert issubclass(cls, ProtocolMessage)
        assert cls.label == mtype.value
        msg = cls.__doc__ or ""
        assert msg.strip(), f"{cls.__name__} must document its Table 2 arc"


def test_each_type_has_exactly_one_handler():
    rt = Runtime(MachineConfig(total_processors=4, cluster_size=2))
    bus = rt.protocol.bus
    rt.protocol.bus.check_complete()
    # `register` raises on duplicates, so presence in the dispatch table
    # proves uniqueness; cover all of Table 2 plus nothing dangling.
    assert {m.value for m in MsgType} <= bus.handled_labels()


def test_mixed_workload_exercises_all_sixteen_types():
    """A lock/barrier multi-writer run sends every Table 2 message.

    Three clusters share two pages.  The mix is chosen so that every arc
    fires: remote read and blind-write faults (RREQ/RDAT, WREQ/WDAT),
    read-to-write upgrades (UPGRADE/UP_ACK/WNOTIFY), release rounds with
    dirty and clean replicas (REL/INV/DIFF/ACK/RACK), TLB shootdowns of
    second processors (PINV/PINV_ACK), and a single-writer round
    (1WINV/1WDATA).
    """
    config = MachineConfig(total_processors=6, cluster_size=2,
                           inter_ssmp_delay=500)
    rt = Runtime(config)
    wpp = config.words_per_page
    arr = rt.array("shared", 2 * wpp, home=0)
    arr.init([0.0] * (2 * wpp))
    lk = rt.create_lock()

    def worker(env):
        for it in range(3):
            yield from env.lock(lk)
            v = yield from env.read(arr.addr(0))
            if env.pid == 0:
                # resident read copy upgraded in place
                yield from env.write(arr.addr(0), v + 1.0)
            if env.pid == 2 and it == 0:
                # second writer (multi-writer round with foreign diff)
                yield from env.write(arr.addr(1), v + 2.0)
            if env.pid == 4 and it == 0:
                # blind write to an unreplicated page: WREQ/WDAT
                yield from env.write(arr.addr(wpp), 7.0)
            yield from env.unlock(lk)
            yield from env.barrier()

    rt.spawn_all(worker)
    result = rt.run()

    flows = result.message_flows
    for mtype in MsgType:
        assert flows.get(mtype.value, {"count": 0})["count"] > 0, (
            f"{mtype.value} never delivered"
        )
    # and the bus saw exactly what the machine's label counters saw
    for label, flow in flows.items():
        assert rt.machine.stats.by_label[label] == flow["count"]
