"""Table 2 completeness: every protocol message type exists and is used."""

from repro.core.messages import MsgType


def test_table2_message_set_is_complete():
    expected = {
        "UPGRADE", "PINV_ACK",  # Local Client -> Remote Client
        "PINV", "UP_ACK",  # Remote Client -> Local Client
        "RREQ", "WREQ", "REL",  # Local Client -> Server
        "RDAT", "WDAT", "RACK",  # Server -> Local Client
        "ACK", "DIFF", "1WDATA", "WNOTIFY",  # Remote Client -> Server
        "INV", "1WINV",  # Server -> Remote Client
    }
    assert {m.value for m in MsgType} == expected


def test_message_types_flow_on_the_wire():
    """Run a scenario that exercises every message class and check the
    machine's label counters saw them."""
    from repro.params import MachineConfig
    from repro.runtime import Runtime

    config = MachineConfig(total_processors=6, cluster_size=2, inter_ssmp_delay=0)
    rt = Runtime(config)
    arr = rt.array("p", config.words_per_page, home=0)
    vpn = arr.base // config.page_size

    def drive(pid, write):
        rt.protocol.fault(pid, vpn, write, lambda: None)
        rt.sim.run(max_events=100_000)

    drive(2, False)  # RREQ/RDAT
    drive(3, False)  # local fill (no message)
    drive(2, True)  # UPGRADE/UP_ACK/WNOTIFY
    drive(4, True)  # WREQ/WDAT
    rt.protocol.frame(1, vpn).data[0] = 1.0
    rt.protocol.frame(2, vpn).data[1] = 2.0
    rt.protocol.release(2, lambda: None)  # REL/INV/PINV/PINV_ACK/DIFF/RACK
    rt.sim.run(max_events=100_000)
    drive(2, True)  # fresh WREQ after invalidation
    rt.protocol.release(2, lambda: None)  # single writer: 1WINV/1WDATA
    rt.sim.run(max_events=100_000)

    labels = rt.machine.stats.by_label
    for msg in ("RREQ", "RDAT", "WREQ", "WDAT", "UPGRADE", "UP_ACK", "WNOTIFY",
                "REL", "RACK", "INV", "PINV", "PINV_ACK", "DIFF",
                "1WINV", "1WDATA"):
        assert labels[msg] > 0, f"{msg} never sent"
