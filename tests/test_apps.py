"""Application-level integration tests.

Every app is run at several cluster sizes on a smaller machine and must
reproduce its sequential golden output exactly (or to float tolerance) —
this makes each test an end-to-end check of the whole protocol stack.
"""

import pytest

from repro.apps import barnes_hut, jacobi, matmul, tsp, water, water_kernel
from repro.params import MachineConfig

P = 8
CLUSTER_SIZES = [1, 2, 4, 8]


def config_for(c):
    return MachineConfig(total_processors=P, cluster_size=c)


@pytest.mark.parametrize("c", CLUSTER_SIZES)
def test_jacobi_valid(c):
    run = jacobi.run(config_for(c), jacobi.JacobiParams(n=24, iterations=3))
    assert run.valid, f"max_error={run.max_error}"
    assert run.total_time > 0


@pytest.mark.parametrize("c", CLUSTER_SIZES)
def test_matmul_valid(c):
    run = matmul.run(config_for(c), matmul.MatmulParams(n=12))
    assert run.valid, f"max_error={run.max_error}"


@pytest.mark.parametrize("c", CLUSTER_SIZES)
def test_tsp_finds_optimum(c):
    run = tsp.run(config_for(c), tsp.TSPParams(ncities=7))
    assert run.valid, (
        f"found {run.aux['optimal_cost'] + run.max_error}, "
        f"optimal {run.aux['optimal_cost']}"
    )


@pytest.mark.parametrize("c", CLUSTER_SIZES)
def test_water_valid(c):
    run = water.run(config_for(c), water.WaterParams(n_molecules=19, iterations=2))
    assert run.valid, f"max_error={run.max_error}"


@pytest.mark.parametrize("c", CLUSTER_SIZES)
def test_barnes_hut_valid(c):
    run = barnes_hut.run(
        config_for(c), barnes_hut.BarnesHutParams(n_bodies=24, iterations=2)
    )
    assert run.valid, f"max_error={run.max_error}"
    assert run.aux["root_mass"] == 24.0


@pytest.mark.parametrize("c", CLUSTER_SIZES)
@pytest.mark.parametrize("optimized", [False, True])
def test_water_kernel_valid(c, optimized):
    run = water_kernel.run(
        config_for(c),
        water_kernel.WaterKernelParams(n_molecules=32, optimized=optimized),
    )
    assert run.valid, f"max_error={run.max_error}"


def test_water_load_imbalance_is_visible():
    """19 molecules over 8 workers: the first three get 3 molecules, the
    rest 2 — barrier time absorbs the imbalance (section 5.2.1)."""
    run = water.run(config_for(8), water.WaterParams(n_molecules=19, iterations=1))
    bd = run.result.breakdown()
    assert bd["barrier"] > 0


def test_tournament_schedule_covers_all_pairs():
    rounds = water_kernel.tournament_rounds(8)
    assert len(rounds) == 7
    seen = set()
    for rnd in rounds:
        used = set()
        assert len(rnd) == 4
        for a, b in rnd:
            assert a not in used and b not in used
            used.update((a, b))
            seen.add((min(a, b), max(a, b)))
    assert len(seen) == 8 * 7 // 2


def test_kernel_variants_compute_identical_pair_set():
    import numpy as np

    params_u = water_kernel.WaterKernelParams(n_molecules=32, optimized=False)
    ref = water_kernel.golden(params_u)
    run_u = water_kernel.run(config_for(2), params_u)
    run_o = water_kernel.run(
        config_for(2), water_kernel.WaterKernelParams(n_molecules=32, optimized=True)
    )
    assert run_u.valid and run_o.valid
    assert np.all(np.isfinite(ref))


def test_half_shell_covers_all_pairs_even_n():
    n = 16
    seen = set()
    for i in range(n):
        for j in water_kernel._half_shell(i, n):
            key = (min(i, j), max(i, j))
            assert key not in seen, f"pair {key} duplicated"
            seen.add(key)
    assert len(seen) == n * (n - 1) // 2


def test_tsp_golden_matches_bruteforce():
    import itertools

    params = tsp.TSPParams(ncities=7)
    dist = params.distances()
    best = min(
        sum(dist[a][b] for a, b in zip((0,) + p, p + (0,)))
        for p in itertools.permutations(range(1, 7))
    )
    assert tsp.golden(params) == best
