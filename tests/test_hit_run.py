"""Edge cases for the batched cache probes: hit_run / hit_lines /
access_run, including under the non-MGS protocol engines.

``CacheSystem.hit_run`` powers the runtime's batched fast paths, so a
wrong run length would not just misprice a block — it would misclassify
accesses and diverge the machine.  These tests pin the boundaries that
the app workloads rarely exercise: zero-length runs, runs cut at the
first insufficient line, runs straddling a page boundary (where the
second page's lines may be absent or differently privileged), and runs
interrupted by ``sc_pages``'s deferred revocation, which flushes a
page's lines between two probes of the same address range.
"""

import pytest

from repro.hw import CacheSystem
from repro.params import WORD_BYTES, CostModel, MachineConfig
from repro.runtime import Runtime

COSTS = CostModel()


@pytest.fixture
def cache():
    config = MachineConfig(total_processors=8, cluster_size=4)
    return CacheSystem(config, COSTS)


# ---------------------------------------------------------------------------
# hit_run / hit_lines unit edges
# ---------------------------------------------------------------------------


def test_hit_run_zero_length(cache):
    cache.access(0, 1, 100, False, 0)
    assert cache.hit_run(0, 1, 100, 0, False) == 0
    assert cache.hit_run(0, 1, 100, 0, True) == 0
    # ... and a cold start is a zero-length run at any max.
    assert cache.hit_run(0, 1, 500, 8, False) == 0


def test_hit_run_stops_at_first_cold_line(cache):
    for line in (100, 101, 102):
        cache.access(0, 1, line, False, 0)
    assert cache.hit_run(0, 1, 100, 8, False) == 3
    assert cache.hit_run(0, 1, 101, 8, False) == 2


def test_hit_run_stops_at_insufficient_privilege(cache):
    # Lines 100-101 shared by proc 1; line 102 owned dirty by proc 2.
    cache.access(0, 1, 100, False, 0)
    cache.access(0, 1, 101, False, 0)
    cache.access(0, 2, 102, True, 0)
    assert cache.hit_run(0, 1, 100, 8, False) == 2
    # For writes, shared copies are not enough — ownership is required.
    assert cache.hit_run(0, 1, 100, 8, True) == 0
    cache.access(0, 1, 103, True, 0)
    assert cache.hit_run(0, 1, 103, 8, True) == 1


def test_hit_run_is_read_only(cache):
    cache.access(0, 1, 100, False, 0)
    counts_before = list(cache._counts)
    cache.hit_run(0, 1, 100, 4, False)
    cache.hit_run(0, 1, 100, 4, True)
    assert list(cache._counts) == counts_before


def test_hit_lines_scatter(cache):
    for line in (10, 20, 30):
        cache.access(0, 1, line, False, 0)
    assert cache.hit_lines(0, 1, (10, 20, 30), False)
    assert not cache.hit_lines(0, 1, (10, 20, 31), False)
    assert not cache.hit_lines(0, 1, (10, 20, 30), True)
    assert cache.hit_lines(0, 1, (), False)


def test_hit_run_across_flush_page(cache):
    """A flush (how every engine implements page invalidation, and how
    sc_pages drains a deferred revocation) must cut the run exactly at
    the flushed page's first line."""
    config = MachineConfig(total_processors=8, cluster_size=4)
    lines_per_page = config.page_size // config.line_size
    for line in range(0, 2 * lines_per_page):
        cache.access(0, 1, line, False, 0)
    assert cache.hit_run(0, 1, 0, 2 * lines_per_page, False) == (
        2 * lines_per_page
    )
    cache.flush_page(0, lines_per_page, lines_per_page)
    assert cache.hit_run(0, 1, 0, 2 * lines_per_page, False) == lines_per_page


# ---------------------------------------------------------------------------
# access_run == a loop of scalar access calls
# ---------------------------------------------------------------------------


def _twin_caches():
    config = MachineConfig(total_processors=8, cluster_size=4)
    return CacheSystem(config, COSTS), CacheSystem(config, COSTS)


def test_access_run_matches_scalar_loop():
    batched, scalar = _twin_caches()
    # Mixed prior state: line 201 shared elsewhere, 202 dirty elsewhere.
    for c in (batched, scalar):
        c.access(0, 2, 201, False, 0)
        c.access(0, 3, 202, True, 0)
    extras = [7, 11, 13, 17]
    k, total = batched.access_run(0, 1, 200, False, 0, extras, budget=10**9)
    assert k == len(extras)
    expect = sum(
        scalar.access(0, 1, 200 + i, False, 0) + extras[i] for i in range(k)
    )
    assert total == expect
    assert list(batched._counts) == list(scalar._counts)
    assert batched._lines[0] == scalar._lines[0]


def test_access_run_stops_at_guaranteed_hit():
    batched, _ = _twin_caches()
    batched.access(0, 1, 202, False, 0)  # line 2 of the run is a hit
    k, _ = batched.access_run(0, 1, 200, False, 0, [0, 0, 0, 0], budget=10**9)
    assert k == 2  # the hit-run takes over from there


def test_access_run_respects_budget():
    batched, _ = _twin_caches()
    # Budget covers exactly one hardware miss plus its extra: the
    # admission bound is per line — worst *hardware* miss unless the
    # sharer set already outgrew the hardware pointers — not the
    # global worst case.
    budget = batched.worst_hw_miss + 5
    k, total = batched.access_run(0, 1, 300, False, 0, [5, 5, 5], budget)
    assert k == 1
    assert total <= budget
    k0, _ = batched.access_run(0, 1, 400, False, 0, [5], budget=0)
    assert k0 == 0


def test_access_run_prices_software_lines_tightly():
    batched, _ = _twin_caches()
    # Grow line 500's sharer set past the hardware pointers: the next
    # miss is software-serviced, and admission must price it as such.
    for pid in range(2, 2 + batched.config.hw_dir_pointers + 1):
        batched.access(0, pid, 500, False, 0)
    budget = batched.worst_hw_miss + 5
    k, _ = batched.access_run(0, 1, 500, False, 0, [5], budget)
    assert k == 0  # a software-class line does not fit a hardware budget
    k, total = batched.access_run(0, 1, 500, False, 0, [5], budget=10**9)
    assert (k, total) == (1, COSTS.miss_software_dir + 5)


# ---------------------------------------------------------------------------
# the batched paths under the non-MGS engines
# ---------------------------------------------------------------------------


def _state(rt, result):
    return {
        "total_time": result.total_time,
        "threads": [
            (t.time, t.user, t.lock, t.barrier, t.mgs, t.finish_time)
            for t in result.threads
        ],
        "cache": dict(result.cache_stats),
        "protocol": dict(result.protocol_stats),
        "messages": (result.messages_inter_ssmp, result.messages_intra_ssmp),
        "events": rt.sim.events_processed,
    }


def _run_straddle(protocol: str, fastpath: bool):
    """Block reads/writes crossing a page boundary, plus an invalidation
    between passes so the second pass's run is cut mid-block."""
    config = MachineConfig(
        total_processors=4, cluster_size=2, protocol=protocol
    )
    rt = Runtime(config, fastpath=fastpath)
    words_per_page = config.page_size // WORD_BYTES
    nwords = 2 * words_per_page
    arr = rt.array("data", nwords)
    arr.init([float(i) for i in range(nwords)])
    captured = []

    def worker(env):
        # Straddling read: second half of page 0 + first half of page 1.
        base = arr.addr(words_per_page // 2)
        vals = yield from env.read_block(base, words_per_page)
        captured.append((env.pid, 0, sum(vals)))
        yield from env.barrier()
        if env.pid == 0:
            # Invalidate everyone's copies of page 1 (sc_pages defers
            # the revocations until the writer's request drains them).
            yield from env.write(arr.addr(words_per_page), -1.0)
        yield from env.barrier()
        vals = yield from env.read_block(base, words_per_page)
        captured.append((env.pid, 1, sum(vals)))
        yield from env.barrier()

    rt.spawn_all(worker)
    result = rt.run()
    return _state(rt, result), sorted(captured)


@pytest.mark.parametrize("protocol", ["swdsm", "gcs", "sc_pages"])
def test_page_straddling_runs_non_mgs(protocol):
    fast_state, fast_vals = _run_straddle(protocol, fastpath=True)
    slow_state, slow_vals = _run_straddle(protocol, fastpath=False)
    assert fast_state == slow_state, f"{protocol}: fastpath diverged"
    assert fast_vals == slow_vals
    # The writer's store is observable in everyone's second pass.
    words_per_page = 1024 // WORD_BYTES
    first = {v for pid, p, v in fast_vals if p == 0}
    second = {v for pid, p, v in fast_vals if p == 1}
    assert len(first) == 1
    assert second == {next(iter(first)) - words_per_page - 1.0}
