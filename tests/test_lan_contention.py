"""Tests for the LAN contention extension (paper section 4.2.2 notes the
fixed-latency model ignores contention; ``lan_bandwidth`` closes that)."""

import pytest

from repro.machine import Machine
from repro.params import CostModel, MachineConfig
from repro.sim import Simulator
from repro.apps import jacobi


def make_machine(bandwidth, delay=1000):
    sim = Simulator()
    config = MachineConfig(
        total_processors=4, cluster_size=2,
        inter_ssmp_delay=delay, lan_bandwidth=bandwidth,
    )
    return sim, Machine(sim, config, CostModel())


def test_zero_bandwidth_keeps_fixed_latency_model():
    sim, m = make_machine(bandwidth=0.0)
    arrivals = []
    m.send(0, 2, lambda: arrivals.append(sim.now), size=1088)
    m.send(0, 2, lambda: arrivals.append(sim.now), size=1088)
    sim.run()
    assert arrivals == [1000, 1000]
    assert m.stats.lan_queue_cycles == 0


def test_messages_serialize_on_the_link():
    # 1 byte/cycle: a 1088-byte page transfer occupies the link 1088 cycles.
    sim, m = make_machine(bandwidth=1.0)
    arrivals = []
    m.send(0, 2, lambda: arrivals.append(sim.now), size=1088)
    m.send(0, 2, lambda: arrivals.append(sim.now), size=1088)
    sim.run()
    assert arrivals[0] == 1088 + 1000
    assert arrivals[1] == 2 * 1088 + 1000  # queued behind the first
    assert m.stats.lan_queue_cycles == 1088
    assert m.stats.inter_ssmp_bytes == 2 * 1088


def test_intra_cluster_messages_do_not_touch_the_lan():
    sim, m = make_machine(bandwidth=1.0)
    arrivals = []
    m.send(0, 1, lambda: arrivals.append(sim.now), size=4096)
    sim.run()
    assert arrivals == [5]  # intra wire latency only
    assert m.stats.inter_ssmp_bytes == 0


def test_higher_bandwidth_shortens_transfers():
    times = {}
    for bw in (1.0, 16.0):
        sim, m = make_machine(bandwidth=bw)
        arrivals = []
        m.send(0, 2, lambda: arrivals.append(sim.now), size=1088)
        sim.run()
        times[bw] = arrivals[0]
    assert times[16.0] < times[1.0]


@pytest.mark.parametrize("bandwidth", [0.5, 4.0])
def test_application_correct_under_contention(bandwidth):
    config = MachineConfig(
        total_processors=8, cluster_size=2,
        inter_ssmp_delay=500, lan_bandwidth=bandwidth,
    )
    run = jacobi.run(config, jacobi.JacobiParams(n=24, iterations=2))
    assert run.valid
    assert run.result.total_time > 0


def test_contention_slows_communication_bound_runs():
    def time_at(bw):
        config = MachineConfig(
            total_processors=8, cluster_size=1,
            inter_ssmp_delay=500, lan_bandwidth=bw,
        )
        return jacobi.run(
            config, jacobi.JacobiParams(n=24, iterations=2, compute_per_point=20)
        ).total_time

    assert time_at(0.25) > time_at(0.0)  # a slow shared link hurts
