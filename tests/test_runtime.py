"""Tests for the runtime: Env semantics, driver, accounting, errors."""

import pytest

from repro import MachineConfig, Runtime
from repro.svm import AccessKind


def test_spawn_more_threads_than_processors_rejected():
    rt = Runtime(MachineConfig(total_processors=2, cluster_size=1))

    def worker(env):
        yield from env.compute(1)

    rt.spawn(worker)
    rt.spawn(worker)
    with pytest.raises(RuntimeError):
        rt.spawn(worker)


def test_run_without_threads_rejected():
    rt = Runtime(MachineConfig(total_processors=2, cluster_size=1))
    with pytest.raises(RuntimeError):
        rt.run()


def test_deadlock_detected_as_unfinished_threads():
    rt = Runtime(MachineConfig(total_processors=2, cluster_size=2))
    lock = rt.create_lock()

    def worker(env):
        yield from env.lock(lock)  # nobody ever unlocks: second blocks
        yield from env.barrier()  # first waits forever at the barrier? no:
        # thread 0 holds the lock and reaches the barrier; thread 1 waits
        # on the lock forever -> barrier never completes.

    rt.spawn_all(worker)
    with pytest.raises(RuntimeError, match="never finished"):
        rt.run(max_events=100_000)


def test_translation_costs_differ_by_kind():
    config = MachineConfig(total_processors=1, cluster_size=1)

    def run_with(ptr):
        rt = Runtime(config)
        arr = rt.array("a", 8, kind=AccessKind.POINTER if ptr else AccessKind.ARRAY)
        arr.init([0.0] * 8)

        def worker(env):
            for _ in range(100):
                yield from env.read(arr.addr(0), ptr=ptr)

        rt.spawn(worker)
        return rt.run().total_time

    # 100 reads x (24 - 18) extra cycles for pointer translation.
    assert run_with(True) - run_with(False) == 600


def test_compute_advances_user_time_exactly():
    rt = Runtime(MachineConfig(total_processors=1, cluster_size=1))

    def worker(env):
        yield from env.compute(12345)

    t = rt.spawn(worker)
    rt.run()
    assert t.user == 12345
    assert t.finish_time == 12345


def test_hardware_only_mode_has_no_protocol_traffic():
    rt = Runtime(MachineConfig(total_processors=4, cluster_size=4))
    arr = rt.array("a", 64)
    arr.init([1.0] * 64)

    def worker(env):
        total = 0.0
        for i in range(64):
            total += yield from env.read(arr.addr(i))
        yield from env.write(arr.addr(env.pid), total)
        yield from env.barrier()

    rt.spawn_all(worker)
    result = rt.run()
    assert result.protocol_stats.get("read_requests", 0) == 0
    assert result.protocol_stats.get("release_rounds", 0) == 0
    assert result.messages_inter_ssmp == 0


def test_env_now_tracks_local_clock():
    rt = Runtime(MachineConfig(total_processors=1, cluster_size=1))
    seen = []

    def worker(env):
        seen.append(env.now)
        yield from env.compute(500)
        seen.append(env.now)

    rt.spawn(worker)
    rt.run()
    assert seen == [0, 500]


def test_breakdown_buckets_cover_total_time():
    config = MachineConfig(total_processors=4, cluster_size=2, inter_ssmp_delay=500)
    rt = Runtime(config)
    arr = rt.array("a", 128, home=0)
    arr.init([0.0] * 128)
    lock = rt.create_lock()

    def worker(env):
        for i in range(16):
            yield from env.lock(lock)
            v = yield from env.read(arr.addr(i))
            yield from env.write(arr.addr(i), v + 1)
            yield from env.unlock(lock)
        yield from env.barrier()

    rt.spawn_all(worker)
    result = rt.run()
    bd = result.breakdown()
    assert sum(bd.values()) == pytest.approx(result.total_time, rel=0.01)
    assert bd["mgs"] > 0 and bd["lock"] > 0


def test_shared_array_bounds_and_roundtrip():
    rt = Runtime(MachineConfig(total_processors=2, cluster_size=1))
    arr = rt.array("a", 10)
    with pytest.raises(IndexError):
        arr.addr(10)
    with pytest.raises(IndexError):
        arr.addr(-1)
    with pytest.raises(ValueError):
        arr.init([1.0] * 9)
    arr.init(range(10))
    assert list(arr.snapshot()) == list(map(float, range(10)))
    assert len(arr) == 10


def test_quantum_pauses_do_not_change_results():
    """The quantum is a performance knob: identical results regardless."""
    def build_and_run(quantum):
        rt = Runtime(
            MachineConfig(total_processors=4, cluster_size=2), quantum=quantum
        )
        arr = rt.array("a", 64, home=0)
        arr.init([0.0] * 64)

        def worker(env):
            for i in range(16):
                yield from env.write(arr.addr(env.pid * 16 + i), float(env.pid))
            yield from env.barrier()

        rt.spawn_all(worker)
        rt.run()
        return list(arr.snapshot())

    assert build_and_run(100) == build_and_run(100000)
