"""The invariant sanitizer: attachment, tap composition, zero cost.

The sanitizer is a pure observer — these tests pin that enabling it (or
stacking it with the protocol tracer) leaves simulations bit-for-bit
identical, that every ``Runtime(analysis=...)`` spelling attaches the
right checkers, and that detach really detaches.
"""

import pytest

from repro.analysis import (
    AnalysisConfig,
    InvariantSanitizer,
    InvariantViolation,
    RaceDetector,
)
from repro.apps import jacobi
from repro.params import MachineConfig
from repro.runtime import Runtime

PARAMS = jacobi.JacobiParams(n=16, iterations=2)


def make_config(**kw):
    kw.setdefault("total_processors", 4)
    kw.setdefault("cluster_size", 2)
    return MachineConfig(**kw)


def run_jacobi(analysis=None):
    rt = Runtime(make_config(), analysis=analysis)
    jacobi.build(rt, PARAMS)
    return rt, rt.run()


class TestAttachment:
    def test_default_off(self):
        rt = Runtime(make_config())
        assert rt.sanitizer is None
        assert rt.race_detector is None

    def test_invariants_spec(self):
        rt = Runtime(make_config(), analysis="invariants")
        assert isinstance(rt.sanitizer, InvariantSanitizer)
        assert rt.race_detector is None

    def test_races_spec(self):
        rt = Runtime(make_config(), analysis="races")
        assert rt.sanitizer is None
        assert isinstance(rt.race_detector, RaceDetector)

    @pytest.mark.parametrize("spec", [True, "all"])
    def test_all_spec(self, spec):
        rt = Runtime(make_config(), analysis=spec)
        assert isinstance(rt.sanitizer, InvariantSanitizer)
        assert isinstance(rt.race_detector, RaceDetector)

    def test_config_spec(self):
        spec = AnalysisConfig(invariants=False, races=True,
                              race_granularity="page")
        rt = Runtime(make_config(), analysis=spec)
        assert rt.sanitizer is None
        assert rt.race_detector.granularity == "page"

    def test_bad_spec_rejected(self):
        with pytest.raises(ValueError, match="analysis must be"):
            Runtime(make_config(), analysis="everything")

    def test_explicit_constructor_publishes(self):
        rt = Runtime(make_config())
        sanitizer = InvariantSanitizer(rt)
        assert rt.sanitizer is sanitizer


class TestObservation:
    def test_clean_run_checks_every_message(self):
        rt, result = run_jacobi(analysis="invariants")
        delivered = sum(f.count for f in rt.protocol.bus.flows.values())
        assert rt.sanitizer.checked == delivered > 0
        # Runtime.run already swept quiescence; doing it again is fine.
        rt.sanitizer.check_quiescent()

    def test_detach_stops_observing(self):
        rt = Runtime(make_config(), analysis="invariants")
        sanitizer = rt.sanitizer
        sanitizer.detach()
        assert rt.sanitizer is None
        jacobi.build(rt, PARAMS)
        rt.run()
        assert sanitizer.checked == 0

    def test_violation_carries_rule_and_trace(self):
        exc = InvariantViolation(
            "dir-exclusion", "cluster 1 in both", vpn=7, txn=3,
            trace=("@10 RDAT vpn=7",),
        )
        text = str(exc)
        assert "[dir-exclusion]" in text
        assert "(vpn 7)" in text
        assert "@10 RDAT vpn=7" in text

    def test_corrupted_state_fails_quiescence(self):
        rt, _result = run_jacobi(analysis="invariants")
        vpn = next(iter(sorted(rt.protocol.homes)))
        home = rt.protocol.homes[vpn]
        home.read_dir.add(0)
        home.write_dir.add(0)
        with pytest.raises(InvariantViolation) as exc:
            rt.sanitizer.check_quiescent()
        assert exc.value.rule == "dir-exclusion"


class TestZeroCost:
    def test_sanitizer_is_cycle_identical(self):
        _, bare = run_jacobi(analysis=None)
        _, sanitized = run_jacobi(analysis="invariants")
        assert sanitized.total_time == bare.total_time
        assert sanitized.protocol_stats == bare.protocol_stats
        assert sanitized.message_flows == bare.message_flows

    def test_full_analysis_is_cycle_identical(self):
        _, bare = run_jacobi(analysis=None)
        rt, analyzed = run_jacobi(analysis="all")
        assert analyzed.total_time == bare.total_time
        assert analyzed.protocol_stats == bare.protocol_stats
        rt.race_detector.certify()  # and jacobi is race-free


class TestTapComposition:
    def test_tracer_and_sanitizer_coexist(self):
        """Multiple bus taps stack: trace + sanitize the same run."""
        from repro.trace import ProtocolTracer

        rt = Runtime(make_config(), analysis="invariants")
        tracer = ProtocolTracer(rt)  # all pages
        jacobi.build(rt, PARAMS)
        result = rt.run()
        assert rt.sanitizer.checked > 0
        # The tracer also logs txn begin/end events, so it sees at least
        # as much as the sanitizer does.
        assert len(tracer) >= rt.sanitizer.checked
        assert tracer.render_transactions(limit=3)

        _, bare = run_jacobi(analysis=None)
        assert result.total_time == bare.total_time

    def test_taps_detach_independently(self):
        from repro.trace import ProtocolTracer

        rt = Runtime(make_config(), analysis="invariants")
        tracer = ProtocolTracer(rt)
        rt.sanitizer.detach()
        jacobi.build(rt, PARAMS)
        rt.run()
        assert len(tracer) > 0
