"""The release-consistency race detector.

Directed programs exercise the happens-before rules (locks, barriers,
exemptions); then the five paper applications are certified data-race-
free at word granularity, and a deliberately racy workload is flagged.
"""

import pytest

from repro.analysis import Race, RaceDetector, RaceError
from repro.apps import barnes_hut, jacobi, matmul, tsp, water
from repro.params import MachineConfig
from repro.runtime import Runtime


def make_rt(total=4, cluster=2, **kw):
    config = MachineConfig(total_processors=total, cluster_size=cluster)
    return Runtime(config, analysis="races", **kw)


def shared_word(rt):
    arr = rt.array("shared", rt.config.words_per_page, home=0)
    arr.init([0.0] * rt.config.words_per_page)
    return arr


class TestDirectedPrograms:
    def test_locked_counter_is_race_free(self):
        rt = make_rt()
        arr = shared_word(rt)
        lk = rt.create_lock()

        def worker(env):
            for _ in range(3):
                yield from env.lock(lk)
                v = yield from env.read(arr.addr(0))
                yield from env.write(arr.addr(0), v + 1.0)
                yield from env.unlock(lk)
            yield from env.barrier()

        rt.spawn_all(worker)
        rt.run()
        rt.race_detector.certify()
        assert arr.snapshot()[0] == 3.0 * rt.config.total_processors

    def test_unlocked_writes_are_flagged(self):
        rt = make_rt()
        arr = shared_word(rt)

        def worker(env):
            yield from env.write(arr.addr(0), float(env.pid))
            yield from env.barrier()

        rt.spawn_all(worker)
        rt.run()
        races = rt.race_detector.races
        assert races, "unlocked write-write conflict was not flagged"
        assert all(r.kind == "write" for r in races)
        with pytest.raises(RaceError, match="data race"):
            rt.race_detector.certify()

    def test_unlocked_read_of_write_is_flagged(self):
        rt = make_rt()
        arr = shared_word(rt)

        def worker(env):
            if env.pid == 0:
                yield from env.write(arr.addr(0), 1.0)
            else:
                yield from env.compute(5000)
                yield from env.read(arr.addr(0))
            yield from env.barrier()

        rt.spawn_all(worker)
        rt.run()
        assert any(
            r.prev_kind == "write" and r.kind in ("read", "write")
            for r in rt.race_detector.races
        )

    def test_barrier_orders_phases(self):
        rt = make_rt()
        arr = shared_word(rt)

        def worker(env):
            if env.pid == 0:
                yield from env.write(arr.addr(0), 7.0)
            yield from env.barrier()
            yield from env.read(arr.addr(0))  # ordered: after the barrier
            yield from env.barrier()
            if env.pid == 1:
                yield from env.write(arr.addr(0), 8.0)  # ordered too
            yield from env.barrier()

        rt.spawn_all(worker)
        rt.run()
        rt.race_detector.certify()

    def test_exemption_suppresses_declared_races(self):
        rt = make_rt()
        arr = shared_word(rt)
        rt.annotate_benign_race(arr.addr(0), words=1, reason="test")

        def worker(env):
            yield from env.write(arr.addr(0), float(env.pid))
            yield from env.write(arr.addr(1), float(env.pid))  # not exempt
            yield from env.barrier()

        rt.spawn_all(worker)
        rt.run()
        assert all(r.addr != arr.addr(0) for r in rt.race_detector.races)
        assert any(r.addr == arr.addr(1) for r in rt.race_detector.races)

    def test_word_granularity_allows_false_sharing(self):
        """Different words of one page, different procs: no race."""
        rt = make_rt()
        arr = shared_word(rt)

        def worker(env):
            yield from env.write(arr.addr(env.pid), 1.0)
            yield from env.barrier()

        rt.spawn_all(worker)
        rt.run()
        rt.race_detector.certify()

    def test_page_granularity_flags_false_sharing(self):
        from repro.analysis import AnalysisConfig

        config = MachineConfig(total_processors=4, cluster_size=2)
        rt = Runtime(config, analysis=AnalysisConfig(
            invariants=False, races=True, race_granularity="page"
        ))
        arr = shared_word(rt)

        def worker(env):
            yield from env.write(arr.addr(env.pid), 1.0)
            yield from env.barrier()

        rt.spawn_all(worker)
        rt.run()
        assert rt.race_detector.races

    def test_block_accesses_are_tracked(self):
        rt = make_rt()
        arr = shared_word(rt)

        def worker(env):
            yield from env.write_block(arr.addr(0), [1.0, 2.0])
            values = yield from env.read_block(arr.addr(0), 2)
            assert len(values) == 2
            yield from env.barrier()

        rt.spawn_all(worker)
        rt.run()
        assert rt.race_detector.races  # overlapping unlocked blocks

    def test_race_describe(self):
        race = Race(addr=0x100, vpn=0, prev_pid=1, prev_kind="write",
                    pid=2, kind="read")
        assert "write by proc 1" in race.describe()
        assert "races read by proc 2" in race.describe()

    def test_bad_granularity_rejected(self):
        rt = Runtime(MachineConfig(total_processors=2, cluster_size=1))
        with pytest.raises(ValueError, match="granularity"):
            RaceDetector(rt, granularity="line")


#: the five paper applications with the small shapes test_apps.py uses
PAPER_APPS = [
    ("jacobi", jacobi, jacobi.JacobiParams(n=24, iterations=3)),
    ("matmul", matmul, matmul.MatmulParams(n=12)),
    ("tsp", tsp, tsp.TSPParams(ncities=7)),
    ("water", water, water.WaterParams(n_molecules=19, iterations=2)),
    (
        "barnes-hut",
        barnes_hut,
        barnes_hut.BarnesHutParams(n_bodies=24, iterations=2),
    ),
]


@pytest.mark.parametrize(
    "name,module,params", PAPER_APPS, ids=[n for n, _, _ in PAPER_APPS]
)
def test_paper_apps_certified_race_free(name, module, params):
    """Every paper application is data-race-free at word granularity
    (modulo its documented benign-race annotations)."""
    detectors = []

    def hook(rt):
        detectors.append(RaceDetector(rt))

    Runtime.construction_hooks.append(hook)
    try:
        app = module.run(
            MachineConfig(total_processors=4, cluster_size=2), params
        )
    finally:
        Runtime.construction_hooks.remove(hook)
    assert app.valid
    (detector,) = detectors
    detector.certify()
