"""Additional protocol behaviours: multi-page releases, page-size
variations, and DUQ draining order."""

import pytest

from repro.core.page import FrameState
from repro.params import MachineConfig
from repro.runtime import Runtime


def make_rt(page_size=1024, delay=500):
    config = MachineConfig(
        total_processors=4, cluster_size=2,
        inter_ssmp_delay=delay, page_size=page_size,
    )
    rt = Runtime(config)
    arr = rt.array("data", 4 * config.words_per_page, home=0)
    arr.init([0.0] * (4 * config.words_per_page))
    return rt, arr


def test_release_drains_duq_serially_in_fifo_order():
    rt, arr = make_rt()
    order = []
    # Proc 2 (cluster 1) dirties three pages in a known order.
    for page in (2, 0, 1):
        done = []
        rt.protocol.fault(2, arr.base // rt.config.page_size + page, True,
                          lambda: done.append(1))
        rt.sim.run(max_events=100_000)
        assert done

    base_vpn = arr.base // rt.config.page_size

    def tap(msg, sent_at, now):
        if msg.label == "REL":
            order.append(msg.vpn - base_vpn)

    rt.protocol.bus.add_tap(tap)
    done = []
    rt.protocol.release(2, lambda: done.append(1))
    rt.sim.run(max_events=200_000)
    assert done
    assert order == [2, 0, 1]  # FIFO: the order the pages were dirtied


@pytest.mark.parametrize("page_size", [512, 2048, 4096])
def test_protocol_correct_across_page_sizes(page_size):
    rt, arr = make_rt(page_size=page_size)
    lock = rt.create_lock()

    def worker(env):
        for i in range(8):
            yield from env.lock(lock)
            a = arr.addr(i * rt.config.words_per_page // 8)
            v = yield from env.read(a)
            yield from env.write(a, v + 1.0)
            yield from env.unlock(lock)
        yield from env.barrier()

    rt.spawn_all(worker)
    rt.run(max_events=20_000_000)
    snap = arr.snapshot()
    for i in range(8):
        assert snap[i * rt.config.words_per_page // 8] == 4.0
    rt.protocol.check_invariants()


def test_larger_pages_move_more_data_per_fault():
    def transfers_bytes(page_size):
        rt, arr = make_rt(page_size=page_size)
        done = []
        rt.protocol.fault(2, arr.base // page_size, False, lambda: done.append(1))
        rt.sim.run(max_events=100_000)
        return rt.machine.stats.inter_ssmp_bytes

    assert transfers_bytes(4096) > transfers_bytes(512)


def test_fault_latency_grows_with_page_size():
    def latency(page_size):
        rt, arr = make_rt(page_size=page_size)
        done = []
        rt.protocol.fault(2, arr.base // page_size, False,
                          lambda: done.append(rt.sim.now))
        rt.sim.run(max_events=100_000)
        return done[0]

    # Bigger pages: more cleaning + more DMA.
    assert latency(4096) > latency(1024) > latency(512)


def test_refetch_after_invalidation_uses_fresh_placement():
    """Pages are re-placed first-touch on refetch within an SSMP."""
    rt, arr = make_rt()
    vpn = arr.base // rt.config.page_size

    def drive(pid, write):
        done = []
        rt.protocol.fault(pid, vpn, write, lambda: done.append(1))
        rt.sim.run(max_events=100_000)
        assert done

    drive(2, False)
    assert rt.protocol.frame(1, vpn).owner_pid == 2
    # Invalidate via a remote write + release.
    drive(0, True)
    done = []
    rt.protocol.release(0, lambda: done.append(1))
    rt.sim.run(max_events=100_000)
    assert rt.protocol.frame(1, vpn).state is FrameState.INVALID
    # Proc 3 touches first this time: it becomes the owner.
    drive(3, False)
    assert rt.protocol.frame(1, vpn).owner_pid == 3
