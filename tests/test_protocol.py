"""Directed tests of the MGS protocol engines (Table 1 semantics)."""

from repro.core.page import FrameState, ServerState
from repro.params import MachineConfig, ProtocolOptions
from repro.runtime import Runtime


def make_rt(nclusters=3, cluster_size=2, delay=0, **options):
    config = MachineConfig(
        total_processors=nclusters * cluster_size,
        cluster_size=cluster_size,
        inter_ssmp_delay=delay,
        options=ProtocolOptions(**options) if options else ProtocolOptions(),
    )
    rt = Runtime(config)
    arr = rt.array("page", config.words_per_page, home=0)
    vpn = arr.base // config.page_size
    return rt, arr, vpn


def fault(rt, pid, vpn, write=False):
    done = []
    rt.protocol.fault(pid, vpn, write, lambda: done.append(rt.sim.now))
    rt.sim.run(max_events=100_000)
    assert done, f"fault by {pid} never completed"
    return done[0]


def release(rt, pid):
    done = []
    rt.protocol.release(pid, lambda: done.append(rt.sim.now))
    rt.sim.run(max_events=100_000)
    assert done, f"release by {pid} never completed"


class TestReplication:
    def test_read_sharing_two_clusters(self):
        rt, arr, vpn = make_rt()
        fault(rt, 2, vpn)  # cluster 1
        fault(rt, 4, vpn)  # cluster 2
        home = rt.protocol.home(vpn)
        assert home.read_dir == {1, 2}
        assert home.write_dir == set()
        assert home.state is ServerState.READ
        assert rt.protocol.frame(1, vpn).state is FrameState.READ
        assert rt.protocol.frame(2, vpn).state is FrameState.READ
        rt.protocol.check_invariants()

    def test_second_local_faulter_fills_from_frame(self):
        rt, arr, vpn = make_rt()
        fault(rt, 2, vpn)
        before = rt.protocol.stats["read_requests"]
        fault(rt, 3, vpn)  # same cluster: no new request to the server
        assert rt.protocol.stats["read_requests"] == before
        frame = rt.protocol.frame(1, vpn)
        assert frame.tlb_dir == {2, 3}

    def test_write_fault_creates_twin_and_duq_entry(self):
        rt, arr, vpn = make_rt()
        fault(rt, 2, vpn, write=True)
        frame = rt.protocol.frame(1, vpn)
        assert frame.state is FrameState.WRITE
        assert frame.twin is not None
        assert vpn in rt.protocol.duqs[2]
        home = rt.protocol.home(vpn)
        assert home.write_dir == {1}
        assert home.state is ServerState.WRITE

    def test_home_cluster_frame_aliases_home_copy(self):
        rt, arr, vpn = make_rt()
        fault(rt, 0, vpn, write=True)  # home cluster fault
        frame = rt.protocol.frame(0, vpn)
        assert frame.aliases_home
        assert frame.data is rt.protocol.home(vpn).data
        assert frame.twin is None  # home writes need no diffing

    def test_first_touch_placement_within_cluster(self):
        rt, arr, vpn = make_rt()
        fault(rt, 3, vpn)  # proc 3 touches first in cluster 1
        assert rt.protocol.frame(1, vpn).owner_pid == 3


class TestSingleWriterOptimization:
    def test_release_keeps_copy_and_write_dir(self):
        rt, arr, vpn = make_rt()
        fault(rt, 2, vpn, write=True)
        frame = rt.protocol.frame(1, vpn)
        frame.data[5] = 99.0
        release(rt, 2)
        # The copy stays cached with write privilege; TLBs are shot down.
        assert frame.state is FrameState.WRITE
        assert frame.data is not None
        assert frame.tlb_dir == set()
        assert rt.protocol.tlbs[2].lookup(vpn) is None
        home = rt.protocol.home(vpn)
        assert home.write_dir == {1}
        assert home.data[5] == 99.0
        assert rt.protocol.stats["one_writer_releases"] == 1

    def test_refault_after_1w_release_is_local(self):
        rt, arr, vpn = make_rt()
        fault(rt, 2, vpn, write=True)
        release(rt, 2)
        before = rt.protocol.stats["write_requests"]
        fault(rt, 2, vpn, write=True)  # completes inline
        assert rt.protocol.stats["write_requests"] == before  # no WREQ sent
        assert rt.protocol.stats["tlb_fill_local"] >= 1

    def test_twin_refreshed_for_later_diffs(self):
        rt, arr, vpn = make_rt()
        fault(rt, 2, vpn, write=True)
        frame = rt.protocol.frame(1, vpn)
        frame.data[0] = 1.0
        release(rt, 2)
        assert frame.twin[0] == 1.0  # twin tracks the released contents

    def test_disabled_option_invalidates_writer(self):
        rt, arr, vpn = make_rt(single_writer_opt=False)
        fault(rt, 2, vpn, write=True)
        frame = rt.protocol.frame(1, vpn)
        frame.data[3] = 7.0
        release(rt, 2)
        assert frame.state is FrameState.INVALID
        assert frame.data is None
        assert rt.protocol.home(vpn).write_dir == set()
        assert rt.protocol.home(vpn).data[3] == 7.0
        assert rt.protocol.stats["one_writer_releases"] == 0

    def test_two_writers_fall_back_to_diffs(self):
        rt, arr, vpn = make_rt()
        fault(rt, 2, vpn, write=True)
        fault(rt, 4, vpn, write=True)
        rt.protocol.frame(1, vpn).data[1] = 11.0
        rt.protocol.frame(2, vpn).data[2] = 22.0
        release(rt, 2)
        home = rt.protocol.home(vpn)
        assert home.data[1] == 11.0 and home.data[2] == 22.0
        assert rt.protocol.frame(1, vpn).state is FrameState.INVALID
        assert rt.protocol.frame(2, vpn).state is FrameState.INVALID
        assert home.write_dir == set()
        assert rt.protocol.stats["diffs_sent"] == 2


class TestUpgrade:
    def test_read_then_write_upgrades_in_place(self):
        rt, arr, vpn = make_rt()
        fault(rt, 2, vpn)  # read copy in cluster 1
        before_wreq = rt.protocol.stats["write_requests"]
        fault(rt, 2, vpn, write=True)
        assert rt.protocol.stats["upgrades"] == 1
        assert rt.protocol.stats["write_requests"] == before_wreq
        frame = rt.protocol.frame(1, vpn)
        assert frame.state is FrameState.WRITE
        assert frame.twin is not None
        home = rt.protocol.home(vpn)
        assert home.write_dir == {1}
        assert home.read_dir == set()
        assert vpn in rt.protocol.duqs[2]

    def test_upgrade_by_non_owner_processor(self):
        rt, arr, vpn = make_rt()
        fault(rt, 2, vpn)  # proc 2 owns the frame
        fault(rt, 3, vpn, write=True)  # proc 3 upgrades via proc 2
        frame = rt.protocol.frame(1, vpn)
        assert frame.state is FrameState.WRITE
        assert frame.tlb_dir == {2, 3}
        assert vpn in rt.protocol.duqs[3]
        assert vpn not in rt.protocol.duqs[2]  # proc 2 only read


class TestEagerInvalidation:
    def test_release_invalidates_remote_readers(self):
        rt, arr, vpn = make_rt()
        fault(rt, 2, vpn)  # reader, cluster 1
        fault(rt, 4, vpn, write=True)  # writer, cluster 2
        rt.protocol.frame(2, vpn).data[0] = 5.0
        release(rt, 4)
        reader = rt.protocol.frame(1, vpn)
        assert reader.state is FrameState.INVALID
        assert rt.protocol.tlbs[2].lookup(vpn) is None
        assert rt.protocol.home(vpn).data[0] == 5.0

    def test_pinv_shoots_down_every_mapping(self):
        rt, arr, vpn = make_rt()
        fault(rt, 2, vpn)
        fault(rt, 3, vpn)
        fault(rt, 4, vpn, write=True)
        release(rt, 4)
        assert rt.protocol.tlbs[2].lookup(vpn) is None
        assert rt.protocol.tlbs[3].lookup(vpn) is None
        assert rt.protocol.stats["pinvs"] >= 3  # 2 readers + writer itself

    def test_duq_entry_removed_by_remote_invalidation(self):
        rt, arr, vpn = make_rt()
        fault(rt, 2, vpn, write=True)  # cluster 1 dirty
        fault(rt, 4, vpn, write=True)  # cluster 2 dirty
        rt.protocol.frame(1, vpn).data[0] = 1.0
        release(rt, 4)  # invalidates cluster 1 too; collects its diff
        assert vpn not in rt.protocol.duqs[2]
        assert rt.protocol.duqs[2].early_removals == 1
        assert rt.protocol.home(vpn).data[0] == 1.0
        # Processor 2's own release now has nothing to do.
        release(rt, 2)
        assert rt.protocol.stats["release_rounds"] == 1

    def test_empty_duq_release_is_noop(self):
        rt, arr, vpn = make_rt()
        done = []
        rt.protocol.release(2, lambda: done.append(rt.sim.now))
        rt.sim.run()
        assert done == [0]
        assert rt.protocol.stats["release_rounds"] == 0


class TestConcurrency:
    def test_concurrent_releases_coalesce(self):
        rt, arr, vpn = make_rt()
        fault(rt, 2, vpn, write=True)
        fault(rt, 4, vpn, write=True)
        rt.protocol.frame(1, vpn).data[1] = 1.0
        rt.protocol.frame(2, vpn).data[2] = 2.0
        done = []
        rt.protocol.release(2, lambda: done.append("a"))
        rt.protocol.release(4, lambda: done.append("b"))
        rt.sim.run(max_events=100_000)
        assert sorted(done) == ["a", "b"]
        # The second release either coalesces into the in-flight round
        # (arc 22) or — if its cluster's copy still held post-snapshot
        # writes when it arrived — is deferred to a fresh round.  Either
        # way no data is lost and at most two rounds run.
        assert 1 <= rt.protocol.stats["release_rounds"] <= 2
        assert (
            rt.protocol.stats["releases_coalesced"]
            + rt.protocol.stats["releases_deferred"]
            == 1
        )
        home = rt.protocol.home(vpn)
        assert home.data[1] == 1.0 and home.data[2] == 2.0

    def test_request_during_release_queued_and_served_after_merge(self):
        rt, arr, vpn = make_rt()
        fault(rt, 2, vpn, write=True)
        frame = rt.protocol.frame(1, vpn)
        frame.data[7] = 42.0
        rel_done, fault_done = [], []
        rt.protocol.release(2, lambda: rel_done.append(rt.sim.now))
        # A reader in cluster 2 requests while the release is in flight.
        rt.sim.schedule(50, rt.protocol.fault, 4, vpn, False,
                        lambda: fault_done.append(rt.sim.now))
        rt.sim.run(max_events=100_000)
        assert rel_done and fault_done
        assert fault_done[0] >= rel_done[0] - 1  # served at/after completion
        # The reader observed post-merge data.
        assert rt.protocol.frame(2, vpn).data[7] == 42.0
        assert rt.protocol.stats["requests_queued_on_release"] == 1

    def test_fault_waiters_drained_after_data_arrives(self):
        rt, arr, vpn = make_rt(delay=2000)
        done = []
        rt.protocol.fault(2, vpn, False, lambda: done.append(2))
        rt.protocol.fault(3, vpn, True, lambda: done.append(3))
        rt.sim.run(max_events=100_000)
        assert sorted(done) == [2, 3]
        frame = rt.protocol.frame(1, vpn)
        # Proc 3's write need triggered an upgrade after the read grant.
        assert frame.state is FrameState.WRITE
        assert frame.tlb_dir == {2, 3}
        rt.protocol.check_invariants()

    def test_invalidation_waits_for_mapping_lock(self):
        """An INV that races an in-flight fetch queues on the mapping
        lock and runs after the grant installs, never deadlocking."""
        rt, arr, vpn = make_rt(delay=3000)
        # Cluster 1 gets a write copy and dirties it.
        fault(rt, 2, vpn, write=True)
        rt.protocol.frame(1, vpn).data[0] = 9.0
        # Cluster 2 starts a fetch; while its RDAT is in flight, cluster 1
        # releases, invalidating cluster 2 (which is in read_dir by then).
        events = []
        rt.protocol.fault(4, vpn, False, lambda: events.append("fault"))
        rt.sim.schedule(3500, rt.protocol.release, 2, lambda: events.append("rel"))
        rt.sim.run(max_events=200_000)
        assert "fault" in events and "rel" in events
        rt.protocol.check_invariants()


class TestHomeClusterParticipation:
    def test_home_reader_invalidated_on_remote_release(self):
        rt, arr, vpn = make_rt()
        fault(rt, 0, vpn)  # home cluster reads
        fault(rt, 2, vpn, write=True)
        rt.protocol.frame(1, vpn).data[3] = 3.0
        release(rt, 2)
        home_frame = rt.protocol.frame(0, vpn)
        assert home_frame.state is FrameState.INVALID
        assert rt.protocol.tlbs[0].lookup(vpn) is None
        assert rt.protocol.home(vpn).data[3] == 3.0

    def test_home_writer_release_needs_no_data_transfer(self):
        rt, arr, vpn = make_rt()
        fault(rt, 0, vpn, write=True)
        rt.protocol.home(vpn).data[1] = 4.0  # written through the alias
        before = rt.protocol.stats["pages_transferred"]
        release(rt, 0)
        assert rt.protocol.stats["pages_transferred"] == before
        assert rt.protocol.home(vpn).data[1] == 4.0
