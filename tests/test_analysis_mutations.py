"""Seeded protocol corruptions: the checkers must catch every one.

Each MGS test applies one mutation from :mod:`repro.analysis.mutations`
— a deliberately introduced protocol bug — then drives the protocol
directly (the way ``test_protocol_races.py`` does) and asserts an
:class:`InvariantViolation` fires, either at message delivery or in the
quiescence sweep.  The cross-engine tests hand the same job to the
bounded model checker (:func:`repro.analysis.explore.explore`), which
must catch *every* registered mutation — including the data-staleness
ones only its release-consistency read oracle can see.  A final test
pins that the registry and this file stay in sync: a new mutation
without a detection entry fails here.
"""

import pytest

from repro.analysis import (
    MUTATIONS,
    InvariantViolation,
    MutationSpec,
    apply_mutation,
)
from repro.analysis.explore import MUTATION_SETUPS, explore
from repro.params import MachineConfig
from repro.runtime import Runtime

# How each mutation is caught: "drive" entries have a direct-drive test
# below; "explore" entries are caught by the bounded model checker in
# test_explorer_catches_every_mutation (all mutations are, but for the
# non-MGS engines and the data-staleness bugs it is the *only* catcher).
DETECTED_BY = {
    "skip_pinv_ack": "drive",
    "forget_directory_refill": "drive",
    "drop_twin": "drive",
    "leak_duq": "drive",
    "double_rack": "drive",
    "dir_exclusion": "drive",
    "swdsm_stale_diff": "explore",
    "swdsm_lost_iack": "explore",
    "sc_shared_writer": "explore",
    "sc_lost_wb": "explore",
    "gcs_dropped_write_notice": "explore",
    "gcs_stale_version": "explore",
}


def make_rt(nclusters=2, cluster_size=1, protocol="mgs"):
    config = MachineConfig(
        total_processors=nclusters * cluster_size,
        cluster_size=cluster_size,
        inter_ssmp_delay=1000,
        protocol=protocol,
    )
    rt = Runtime(config, analysis="invariants")
    arr = rt.array("page", config.words_per_page, home=0)
    vpn = arr.base // config.page_size
    return rt, vpn


def fault(rt, pid, vpn, write=False):
    rt.protocol.fault(pid, vpn, write, lambda: None)
    rt.sim.run(max_events=300_000)


def release(rt, pid):
    rt.protocol.release(pid, lambda: None)
    rt.sim.run(max_events=300_000)


def test_skip_pinv_ack_detected():
    """A swallowed PINV_ACK leaves the release round hanging forever."""
    rt, vpn = make_rt(nclusters=2, cluster_size=2)
    fault(rt, 2, vpn)  # cluster 1: two read mappings -> PINVs on inval
    fault(rt, 3, vpn)
    fault(rt, 0, vpn, write=True)
    apply_mutation(rt, "skip_pinv_ack")
    with pytest.raises(InvariantViolation) as exc:
        release(rt, 0)  # the round never completes...
        rt.sanitizer.check_quiescent()  # ...so quiescence finds the leak
    assert exc.value.rule.startswith("quiesce")


def test_forget_directory_refill_detected():
    """A write copy missing from write_dir is a forgotten refill."""
    rt, vpn = make_rt()
    apply_mutation(rt, "forget_directory_refill")
    with pytest.raises(InvariantViolation) as exc:
        fault(rt, 1, vpn, write=True)
        rt.sanitizer.check_quiescent()
    assert exc.value.rule == "quiesce-refill"


def test_drop_twin_detected():
    """A write copy with no twin could never produce a diff."""
    rt, vpn = make_rt()
    apply_mutation(rt, "drop_twin")
    with pytest.raises(InvariantViolation) as exc:
        fault(rt, 1, vpn, write=True)
        rt.sanitizer.check_quiescent()
    assert exc.value.rule == "quiesce-twin"


def test_leak_duq_detected():
    """A DUQ entry surviving its TLB shootdown is a leak."""
    rt, vpn = make_rt(nclusters=2, cluster_size=2)
    fault(rt, 0, vpn, write=True)  # both cluster-0 procs write-map it
    fault(rt, 1, vpn, write=True)
    fault(rt, 2, vpn, write=True)  # concurrent writer in cluster 1
    apply_mutation(rt, "leak_duq")
    with pytest.raises(InvariantViolation) as exc:
        release(rt, 2)  # the round shoots down cluster 0's mappings
        rt.sanitizer.check_quiescent()
    assert exc.value.rule in ("quiesce-duq", "quiesce-stolen")


def test_double_rack_detected():
    """The duplicate RACK answers no outstanding REL."""
    rt, vpn = make_rt()
    apply_mutation(rt, "double_rack")
    with pytest.raises(InvariantViolation) as exc:
        fault(rt, 1, vpn, write=True)
        release(rt, 1)
        rt.sanitizer.check_quiescent()
    assert exc.value.rule == "rack-unmatched"


def test_dir_exclusion_detected():
    """A cluster in both directories breaks read/write exclusion."""
    rt, vpn = make_rt()
    apply_mutation(rt, "dir_exclusion")
    with pytest.raises(InvariantViolation) as exc:
        fault(rt, 1, vpn)
        rt.sanitizer.check_quiescent()
    assert exc.value.rule == "dir-exclusion"


# ---------------------------------------------------------------------------
# cross-engine: the bounded model checker catches everything
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(MUTATIONS))
def test_explorer_catches_every_mutation(name):
    """The bounded checker finds a violating interleaving for each bug."""
    setup = MUTATION_SETUPS[name]
    report = explore(setup.cfg, programs=setup.programs, mutation=name)
    assert report.caught, report.summary()
    assert not report.truncated
    assert report.schedule, "a counterexample needs a schedule to replay"


def test_mutation_targets_wrong_engine_refused():
    rt, _vpn = make_rt(protocol="mgs")
    with pytest.raises(ValueError, match="targets engine 'swdsm'"):
        apply_mutation(rt, "swdsm_lost_iack")


def test_every_registered_mutation_has_a_test():
    assert set(MUTATIONS) == set(DETECTED_BY)
    assert set(MUTATIONS) == set(MUTATION_SETUPS)


def test_mutation_registry_is_well_formed():
    for name, spec in MUTATIONS.items():
        assert isinstance(spec, MutationSpec), name
        assert spec.description, name
        assert spec.engine in ("mgs", "swdsm", "sc_pages", "gcs"), name
    applied = apply_mutation(make_rt()[0], "drop_twin")
    assert applied == MUTATIONS["drop_twin"].description


def test_unmutated_baseline_is_clean():
    """The same drives pass the sanitizer when nothing is corrupted."""
    rt, vpn = make_rt(nclusters=2, cluster_size=2)
    fault(rt, 2, vpn)
    fault(rt, 3, vpn)
    fault(rt, 0, vpn, write=True)
    release(rt, 0)
    fault(rt, 1, vpn, write=True)
    release(rt, 1)
    rt.sanitizer.check_quiescent()
