"""Unit tests for the DSSMP performance framework (section 2.4)."""

import pytest

from repro.metrics import (
    ClusterSweep,
    SweepPoint,
    breakup_penalty,
    cluster_sizes,
    curvature,
    multigrain_potential,
)


def make_sweep(times: dict[int, float], total=32) -> ClusterSweep:
    points = [
        SweepPoint(
            cluster_size=c,
            total_time=int(t),
            breakdown={"user": t, "lock": 0, "barrier": 0, "mgs": 0},
            lock_hit_ratio=1.0,
        )
        for c, t in sorted(times.items())
    ]
    return ClusterSweep(app="test", total_processors=total, points=points)


def test_cluster_sizes_powers_of_two():
    assert cluster_sizes(32) == [1, 2, 4, 8, 16, 32]
    assert cluster_sizes(1) == [1]
    with pytest.raises(ValueError):
        cluster_sizes(24)


def test_breakup_penalty_definition():
    times = {32: 100.0, 16: 116.0}
    assert breakup_penalty(times, 32) == pytest.approx(0.16)


def test_multigrain_potential_definition():
    # T(1)/T(P/2) - 1: the paper quotes values above 100%.
    times = {1: 207.0, 16: 100.0}
    assert multigrain_potential(times, 32) == pytest.approx(1.07)


def test_concave_curve_classified():
    """Curve A of Figure 2: times stay high until large cluster sizes."""
    times = {1: 100.0, 2: 99.0, 4: 97.0, 8: 90.0, 16: 50.0, 32: 40.0}
    assert curvature(times, 32) == "concave"


def test_convex_curve_classified():
    """Curve B of Figure 2: most of the potential at small clusters."""
    times = {1: 100.0, 2: 60.0, 4: 53.0, 8: 51.0, 16: 50.0, 32: 40.0}
    assert curvature(times, 32) == "convex"


def test_linear_curve_classified():
    times = {1: 100.0, 2: 87.5, 4: 75.0, 8: 62.5, 16: 50.0, 32: 40.0}
    assert curvature(times, 32) == "linear"


def test_sweep_properties():
    sweep = make_sweep({1: 300.0, 2: 260.0, 4: 230.0, 8: 210.0, 16: 200.0, 32: 100.0})
    assert sweep.breakup_penalty == pytest.approx(1.0)
    assert sweep.multigrain_potential == pytest.approx(0.5)
    assert sweep.point(4).total_time == 230
    with pytest.raises(KeyError):
        sweep.point(3)
    norm = sweep.normalized_times()
    assert norm[32] == 1.0
    assert norm[1] == pytest.approx(3.0)


def test_flat_curve_has_zero_metrics():
    sweep = make_sweep({c: 100.0 for c in [1, 2, 4, 8, 16, 32]})
    assert sweep.breakup_penalty == 0.0
    assert sweep.multigrain_potential == 0.0
    assert sweep.curvature == "linear"
