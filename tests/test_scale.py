"""The REPRO_SCALE knob grows workloads toward the paper's sizes."""

import warnings

import pytest

from repro.bench import bench_params, scale_factor


def test_default_scale_is_one(monkeypatch):
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    assert scale_factor() == 1


def test_invalid_scale_falls_back(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "banana")
    assert scale_factor() == 1
    monkeypatch.setenv("REPRO_SCALE", "-3")
    assert scale_factor() == 1


def test_malformed_scale_warns_instead_of_silently_ignoring(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "banana")
    with pytest.warns(RuntimeWarning, match="REPRO_SCALE='banana'"):
        assert scale_factor() == 1


def test_valid_scale_does_not_warn(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "2")
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert scale_factor() == 2
    # -3 parses fine (clamped), so it must not warn either.
    monkeypatch.setenv("REPRO_SCALE", "-3")
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert scale_factor() == 1


def test_scale_grows_every_workload(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "2")
    assert bench_params("jacobi").n == 128
    assert bench_params("matmul").n == 64
    assert bench_params("water").n_molecules == 134
    assert bench_params("barnes-hut").n_bodies == 192
    assert bench_params("water-kernel").n_molecules == 512  # the paper's size
    assert bench_params("tsp").ncities == 10  # the paper's size


def test_explicit_scale_argument_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "4")
    assert bench_params("jacobi", scale=1).n == 64
