"""Cross-engine conformance: every registered engine runs the paper apps.

The registry contract (:mod:`repro.core.engine`) makes an engine a
drop-in replacement behind ``MachineConfig.protocol``.  This suite holds
every registered engine to it: each engine must run all five paper
applications to completion with numerically correct results, under the
race detector and the invariant sanitizer loaded with the engine's own
``arc_rules()`` (``Runtime.run`` sweeps the quiescence rules at the end
of every run).  A new engine gets this entire matrix for free the moment
it registers.
"""

import dataclasses

import pytest

from repro.apps import barnes_hut, jacobi, matmul, tsp, water
from repro.core.engine import UnknownEngineError, engine_class, engine_names
from repro.params import MachineConfig

#: every paper app at conformance size: big enough to fault, share, and
#: synchronize across clusters; small enough that the full engine x app
#: matrix stays in tier-1 budget
APPS = {
    "jacobi": (jacobi, jacobi.JacobiParams(n=24, iterations=3)),
    "matmul": (matmul, matmul.MatmulParams(n=12)),
    "tsp": (tsp, tsp.TSPParams(ncities=7)),
    "water": (water, water.WaterParams(n_molecules=19, iterations=2)),
    "barnes-hut": (
        barnes_hut,
        barnes_hut.BarnesHutParams(n_bodies=24, iterations=2),
    ),
}


@pytest.fixture
def analyzed_runtimes():
    """Attach sanitizer + race detector to every Runtime built in a test,
    and hand the test the runtimes for post-run certification."""
    from repro.analysis import setup_analysis
    from repro.runtime import Runtime

    captured = []

    def hook(rt):
        setup_analysis(rt, "all")
        captured.append(rt)

    Runtime.construction_hooks.append(hook)
    try:
        yield captured
    finally:
        Runtime.construction_hooks.remove(hook)


@pytest.mark.parametrize("engine", engine_names())
@pytest.mark.parametrize("app", sorted(APPS))
def test_engine_runs_app(engine, app, analyzed_runtimes):
    """One (engine, app) cell of the conformance matrix."""
    module, params = APPS[app]
    config = MachineConfig(
        total_processors=4, cluster_size=2, protocol=engine
    )
    run = module.run(config, params).require_valid()
    assert run.result.total_time > 0
    rt = analyzed_runtimes[-1]
    assert rt.protocol.name == engine
    # Runtime.run already swept the engine's quiescence arc rules via the
    # attached sanitizer; certify the happens-before race check and the
    # engine's own structural invariants on top.
    rt.race_detector.certify()
    rt.protocol.check_invariants()


def test_registry_is_complete():
    assert engine_names() == ["gcs", "mgs", "sc_pages", "swdsm"]
    for name in engine_names():
        assert engine_class(name).name == name


def test_unknown_engine_fails_at_config_time():
    """A bad engine name dies at MachineConfig construction, naming the
    registry's known engines — long before any simulation starts."""
    with pytest.raises(UnknownEngineError) as exc:
        MachineConfig(total_processors=4, cluster_size=2, protocol="nope")
    for name in engine_names():
        assert name in str(exc.value)


def test_engines_differ_only_in_protocol_field():
    """The comparison harness varies exactly one config field."""
    base = MachineConfig(total_processors=4, cluster_size=2)
    # pick any engine that is not the session default (REPRO_PROTOCOL
    # may have changed it, e.g. in the CI protocol-matrix job)
    other_name = next(n for n in engine_names() if n != base.protocol)
    other = dataclasses.replace(base, protocol=other_name)
    diff = {
        f.name
        for f in dataclasses.fields(MachineConfig)
        if getattr(base, f.name) != getattr(other, f.name)
    }
    assert diff == {"protocol"}
