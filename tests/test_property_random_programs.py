"""Property-based end-to-end test: randomized shared-memory programs.

Hypothesis generates little programs — a mix of lock-protected
read-modify-writes, unlocked reads, compute bursts, and barriers — and
runs them on randomized machine shapes.  Whatever the interleaving, the
protocol must preserve every lock-protected update and the final barrier
must make the home copies authoritative.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.params import MachineConfig, ProtocolOptions
from repro.runtime import Runtime

# Random programs run under the invariant sanitizer (see repro.analysis);
# Runtime.run() calls its quiescence sweep after the final barrier.
pytestmark = pytest.mark.usefixtures("protocol_sanitizer")


@st.composite
def machine_shapes(draw):
    log_p = draw(st.integers(1, 3))
    total = 2 ** log_p
    cluster = 2 ** draw(st.integers(0, log_p))
    delay = draw(st.sampled_from([0, 300, 1500]))
    sw_opt = draw(st.booleans())
    return MachineConfig(
        total_processors=total,
        cluster_size=cluster,
        inter_ssmp_delay=delay,
        options=ProtocolOptions(single_writer_opt=sw_opt),
    )


@st.composite
def programs(draw):
    """Per-worker op scripts over a small set of counters."""
    n_counters = draw(st.integers(1, 4))
    script = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["incr", "read", "compute", "barrier"]),
                st.integers(0, n_counters - 1),
                st.integers(1, 900),
            ),
            min_size=1,
            max_size=12,
        )
    )
    return n_counters, script


@settings(max_examples=25, deadline=None)
@given(shape=machine_shapes(), program=programs())
def test_random_programs_never_lose_updates(shape, program):
    n_counters, script = program
    rt = Runtime(shape)
    wpp = shape.words_per_page
    # Counters on separate pages with varied homes.
    arr = rt.array(
        "counters", n_counters * wpp,
        home=lambda pg: (pg * 5) % shape.total_processors,
    )
    arr.init([0.0] * (n_counters * wpp))
    locks = [
        rt.create_lock(home_cluster=k % shape.num_clusters)
        for k in range(n_counters)
    ]
    increments = [0] * n_counters
    for op, counter, _arg in script:
        if op == "incr":
            increments[counter] += shape.total_processors

    def worker(env):
        for op, counter, arg in script:
            if op == "incr":
                yield from env.lock(locks[counter])
                v = yield from env.read(arr.addr(counter * wpp))
                yield from env.write(arr.addr(counter * wpp), v + 1.0)
                yield from env.unlock(locks[counter])
            elif op == "read":
                yield from env.read(arr.addr(counter * wpp + 1 + env.pid % 9))
            elif op == "compute":
                yield from env.compute(arg + env.pid * 13)
            else:
                yield from env.barrier()
        yield from env.barrier()

    rt.spawn_all(worker)
    rt.run(max_events=20_000_000)
    rt.protocol.check_invariants()
    snapshot = arr.snapshot()
    for counter in range(n_counters):
        assert snapshot[counter * wpp] == increments[counter], (
            f"counter {counter}: got {snapshot[counter * wpp]}, "
            f"expected {increments[counter]} (shape={shape})"
        )
