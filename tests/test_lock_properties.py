"""Property-based tests for the MGS token lock."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import Machine
from repro.params import CostModel, MachineConfig
from repro.sim import Simulator
from repro.sync import MGSLock


@st.composite
def lock_workloads(draw):
    log_p = draw(st.integers(1, 3))
    total = 2 ** log_p
    cluster = 2 ** draw(st.integers(0, log_p))
    delay = draw(st.sampled_from([0, 200, 2000]))
    # (pid, start_offset, hold_cycles) acquire requests
    requests = draw(
        st.lists(
            st.tuples(
                st.integers(0, total - 1),
                st.integers(0, 5000),
                st.integers(1, 800),
            ),
            min_size=1,
            max_size=24,
        )
    )
    return total, cluster, delay, requests


@settings(max_examples=120, deadline=None)
@given(workload=lock_workloads())
def test_mutual_exclusion_and_liveness(workload):
    """Whatever the machine shape and request pattern: at most one holder
    at a time, every requester is eventually granted, and the hit count
    never exceeds the acquire count."""
    total, cluster, delay, requests = workload
    sim = Simulator()
    config = MachineConfig(
        total_processors=total, cluster_size=cluster, inter_ssmp_delay=delay
    )
    machine = Machine(sim, config, CostModel())
    lock = MGSLock(machine, config, CostModel(), lock_id=0)
    state = {"holders": 0, "max": 0, "grants": 0}

    def make_request(pid, hold):
        def acquired():
            state["holders"] += 1
            state["max"] = max(state["max"], state["holders"])
            state["grants"] += 1

            def releasing():
                state["holders"] -= 1

            sim.schedule(hold, lock.release, pid, releasing)

        return acquired

    # A processor cannot have two outstanding acquires; dedupe by pid
    # keeping first occurrence per wave.
    seen = set()
    issued = 0
    for pid, start, hold in requests:
        if pid in seen:
            continue
        seen.add(pid)
        issued += 1
        sim.schedule_at(start, lock.acquire, pid, make_request(pid, hold))
    sim.run(max_events=200_000)

    assert state["max"] <= 1, "mutual exclusion violated"
    assert state["grants"] == issued, "a requester was never granted"
    assert lock.stats.hits <= lock.stats.acquires
    assert lock.holder is None
