"""The fast-path access engine is invisible except for wall-clock.

``Env`` binds ``read``/``write``/``read_block``/``write_block``/
``read_many``/``write_many`` to either the fast or the slow
implementations depending on ``Runtime.fastpath``.  These tests pin the
contract:

* the batched block/many APIs charge exactly the same cycles as the
  equivalent loop of single-word accesses (same thread clocks, same
  cache and protocol stats, same simulator event count);
* fast and slow paths are bit-for-bit identical, including across
  faults and quantum pauses that land mid-block;
* the quantum boundary is strict (> quantum pauses, == quantum does
  not) in both modes;
* ``REPRO_NO_FASTPATH`` disables the fast paths.
"""

import pytest

from repro.params import WORD_BYTES, MachineConfig
from repro.runtime import Runtime, fastpath_enabled_default


def _config(total=4, cluster=2):
    return MachineConfig(total_processors=total, cluster_size=cluster)


def _state(rt, result):
    """Every externally visible cycle-level fact about a finished run."""
    return {
        "total_time": result.total_time,
        "threads": [
            (t.time, t.user, t.lock, t.barrier, t.mgs, t.finish_time)
            for t in result.threads
        ],
        "cache": dict(result.cache_stats),
        "protocol": dict(result.protocol_stats),
        "messages": (result.messages_inter_ssmp, result.messages_intra_ssmp),
        "events": rt.sim.events_processed,
    }


def _run(worker_factory, *, fastpath, quantum=1500, total=4, cluster=2):
    """Run one workload; returns (state, values captured by the workers)."""
    rt = Runtime(_config(total, cluster), quantum=quantum, fastpath=fastpath)
    nwords = 64 * total
    arr = rt.array("data", nwords)
    arr.init([float(i) * 0.5 for i in range(nwords)])
    captured = []
    rt.spawn_all(worker_factory(arr, nwords, captured))
    result = rt.run()
    return _state(rt, result), captured


def _assert_equivalent(worker_a, worker_b, quantum=1500, total=4, cluster=2):
    """workers a and b must produce identical machines in all four modes."""
    states = {}
    values = {}
    for name, factory in (("a", worker_a), ("b", worker_b)):
        for fast in (True, False):
            states[name, fast], values[name, fast] = _run(
                factory, fastpath=fast, quantum=quantum, total=total, cluster=cluster
            )
    baseline = states["a", True]
    base_values = values["a", True]
    for key, state in states.items():
        assert state == baseline, f"{key} diverged from (a, fastpath)"
        assert values[key] == base_values, f"{key} read different data"


# ---------------------------------------------------------------------------
# block/many APIs == loops of single-word accesses
# ---------------------------------------------------------------------------


def _reader_block(arr, nwords, captured):
    # Every processor streams someone else's stripe, so blocks cross
    # pages owned by remote clusters and fault mid-block.
    def worker(env):
        per = nwords // env.nprocs
        victim = (env.pid + 1) % env.nprocs
        base = arr.addr(victim * per)
        for _ in range(3):
            vals = yield from env.read_block(base, per)
            captured.append(vals)
        yield from env.barrier()

    return worker


def _reader_loop(arr, nwords, captured):
    def worker(env):
        per = nwords // env.nprocs
        victim = (env.pid + 1) % env.nprocs
        base = arr.addr(victim * per)
        for _ in range(3):
            vals = []
            for w in range(per):
                v = yield from env.read(base + w * WORD_BYTES)
                vals.append(v)
            captured.append(vals)
        yield from env.barrier()

    return worker


def test_read_block_equals_read_loop():
    _assert_equivalent(_reader_block, _reader_loop)


def test_read_block_equals_read_loop_with_tiny_quantum():
    # quantum 97 forces pauses inside nearly every block, exercising the
    # mid-run re-resolve path and the pause-then-append ordering.
    _assert_equivalent(_reader_block, _reader_loop, quantum=97)


def _many_strided(arr, nwords, captured):
    def worker(env):
        per = nwords // env.nprocs
        addrs = tuple(
            arr.addr((env.pid * per + 7 * k) % nwords) for k in range(per)
        )
        vals = yield from env.read_many(addrs)
        captured.append(vals)
        yield from env.barrier()

    return worker


def _many_as_loop(arr, nwords, captured):
    def worker(env):
        per = nwords // env.nprocs
        addrs = tuple(
            arr.addr((env.pid * per + 7 * k) % nwords) for k in range(per)
        )
        vals = []
        for a in addrs:
            v = yield from env.read(a)
            vals.append(v)
        captured.append(vals)
        yield from env.barrier()

    return worker


def test_read_many_equals_read_loop():
    _assert_equivalent(_many_strided, _many_as_loop)
    _assert_equivalent(_many_strided, _many_as_loop, quantum=97)


def _writer_block(arr, nwords, captured):
    def worker(env):
        per = nwords // env.nprocs
        base = arr.addr(env.pid * per)
        values = [float(env.pid * 1000 + w) for w in range(per)]
        yield from env.write_block(base, values)
        yield from env.barrier()
        # read back a neighbour's stripe so the stores are observable
        victim = (env.pid + 1) % env.nprocs
        got = yield from env.read_block(arr.addr(victim * per), per)
        captured.append((env.pid, got))
        yield from env.barrier()

    return worker


def _writer_loop(arr, nwords, captured):
    def worker(env):
        per = nwords // env.nprocs
        base = arr.addr(env.pid * per)
        for w in range(per):
            yield from env.write(base + w * WORD_BYTES, float(env.pid * 1000 + w))
        yield from env.barrier()
        victim = (env.pid + 1) % env.nprocs
        got = []
        for w in range(per):
            v = yield from env.read(arr.addr(victim * per) + w * WORD_BYTES)
            got.append(v)
        captured.append((env.pid, got))
        yield from env.barrier()

    return worker


def test_write_block_equals_write_loop():
    _assert_equivalent(_writer_block, _writer_loop)
    _assert_equivalent(_writer_block, _writer_loop, quantum=97)


def _scatter_plan(env, nwords):
    """Disjoint per-pid write targets: a permutation of the worker's own
    stripe, then (after a barrier) a scatter into the stripe of a worker
    in the *other* cluster — so the vectorized path sees both the all-hit
    case and cross-cluster ownership faults.  Strides 5 and 3 are coprime
    to the stripe length, so no worker ever writes a word twice and no
    two workers ever write the same word in the same phase."""
    per = nwords // env.nprocs
    base = env.pid * per
    own = tuple(base + (5 * k) % per for k in range(per))
    victim = ((env.pid + 2) % env.nprocs) * per
    cross = tuple(victim + (3 * k) % per for k in range(per // 2))
    return own, cross


def _readback(arr, nwords, env, captured):
    per = nwords // env.nprocs
    got = yield from env.read_block(arr.addr(env.pid * per), per)
    captured.append((env.pid, got))


def _writer_many(arr, nwords, captured):
    def worker(env):
        own, cross = _scatter_plan(env, nwords)
        yield from env.write_many(
            tuple(arr.addr(w) for w in own),
            [float(env.pid * 1000 + i) for i in range(len(own))],
        )
        yield from env.barrier()
        yield from env.write_many(
            tuple(arr.addr(w) for w in cross),
            [float(env.pid * 77 + i) for i in range(len(cross))],
        )
        yield from env.barrier()
        yield from _readback(arr, nwords, env, captured)
        yield from env.barrier()

    return worker


def _writer_many_loop(arr, nwords, captured):
    def worker(env):
        own, cross = _scatter_plan(env, nwords)
        for i, w in enumerate(own):
            yield from env.write(arr.addr(w), float(env.pid * 1000 + i))
        yield from env.barrier()
        for i, w in enumerate(cross):
            yield from env.write(arr.addr(w), float(env.pid * 77 + i))
        yield from env.barrier()
        yield from _readback(arr, nwords, env, captured)
        yield from env.barrier()

    return worker


def test_write_many_equals_write_loop():
    _assert_equivalent(_writer_many, _writer_many_loop)


def test_write_many_equals_write_loop_with_tiny_quantum():
    # quantum 97 pauses inside nearly every scatter: the budget bail in
    # the vector path and the store-before-pause ordering both fire.
    _assert_equivalent(_writer_many, _writer_many_loop, quantum=97)


def _dup_plan(env, nwords):
    """Own-stripe scatter where the tail re-targets earlier words: the
    vector path must bail (numpy fancy assignment has no last-wins
    guarantee) and the per-word order defines the final data."""
    per = nwords // env.nprocs
    base = env.pid * per
    addrs = tuple(base + (5 * k) % per for k in range(per)) + tuple(
        base + k for k in range(6)
    )
    return addrs


def _writer_many_dup(arr, nwords, captured):
    def worker(env):
        addrs = _dup_plan(env, nwords)
        yield from env.write_many(
            tuple(arr.addr(w) for w in addrs),
            [float(env.pid * 31 + i) for i in range(len(addrs))],
        )
        yield from env.barrier()
        yield from _readback(arr, nwords, env, captured)
        yield from env.barrier()

    return worker


def _writer_many_dup_loop(arr, nwords, captured):
    def worker(env):
        addrs = _dup_plan(env, nwords)
        for i, w in enumerate(addrs):
            yield from env.write(arr.addr(w), float(env.pid * 31 + i))
        yield from env.barrier()
        yield from _readback(arr, nwords, env, captured)
        yield from env.barrier()

    return worker


def test_write_many_duplicate_addresses_are_last_wins():
    _assert_equivalent(_writer_many_dup, _writer_many_dup_loop)
    _assert_equivalent(_writer_many_dup, _writer_many_dup_loop, quantum=97)


def test_written_values_are_the_values_read_back():
    _, captured = _run(_writer_block, fastpath=True)
    per = (64 * 4) // 4
    assert sorted(pid for pid, _ in captured) == [0, 1, 2, 3]
    for pid, got in captured:
        victim = (pid + 1) % 4
        assert got == [float(victim * 1000 + w) for w in range(per)]


# ---------------------------------------------------------------------------
# quantum boundary
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("fastpath", [True, False])
def test_compute_exactly_one_quantum_does_not_pause(fastpath):
    q = 1500

    def events_for(cycles):
        rt = Runtime(_config(total=1, cluster=1), quantum=q, fastpath=fastpath)

        def worker(env):
            yield from env.compute(cycles)

        rt.spawn(worker)
        rt.run()
        return rt.sim.events_processed

    at_quantum = events_for(q)
    # the boundary is strict: == quantum runs on, > quantum pauses once,
    # and the pause is exactly one extra resume event
    assert events_for(q - 1) == at_quantum
    assert events_for(q + 1) == at_quantum + 1


@pytest.mark.parametrize("fastpath", [True, False])
def test_pause_resets_the_quantum_budget(fastpath):
    q = 100

    def events_for(chunks):
        rt = Runtime(_config(total=1, cluster=1), quantum=q, fastpath=fastpath)

        def worker(env):
            for _ in range(chunks):
                yield from env.compute(q + 1)

        rt.spawn(worker)
        rt.run()
        return rt.sim.events_processed

    # each over-quantum chunk pauses exactly once
    assert events_for(4) == events_for(1) + 3


# ---------------------------------------------------------------------------
# the REPRO_NO_FASTPATH escape hatch
# ---------------------------------------------------------------------------


def test_fastpath_on_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
    assert fastpath_enabled_default() is True
    assert Runtime(_config()).fastpath is True


@pytest.mark.parametrize("value", ["1", "true", "YES", " 1 "])
def test_repro_no_fastpath_disables(monkeypatch, value):
    monkeypatch.setenv("REPRO_NO_FASTPATH", value)
    assert fastpath_enabled_default() is False
    assert Runtime(_config()).fastpath is False


def test_repro_no_fastpath_unrecognised_values_keep_it_on(monkeypatch):
    monkeypatch.setenv("REPRO_NO_FASTPATH", "0")
    assert fastpath_enabled_default() is True


def _fresh_env(rt):
    from repro.runtime.env import Env
    from repro.runtime.thread import ThreadContext

    return Env(rt, ThreadContext(pid=0, gen=None))


def test_explicit_fastpath_argument_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
    rt = Runtime(_config(), fastpath=True)
    assert rt.fastpath is True
    assert _fresh_env(rt).fastpath is True


def test_env_binds_slow_methods_when_disabled():
    env = _fresh_env(Runtime(_config(), fastpath=False))
    assert env.read.__func__ is env._read_slow.__func__
    assert env.read_block.__func__ is env._read_block_slow.__func__
    env2 = _fresh_env(Runtime(_config(), fastpath=True))
    assert env2.read.__func__ is env2._read_fast.__func__


# ---------------------------------------------------------------------------
# adaptive bypass: miss-heavy loops fall back to the plain paths
# ---------------------------------------------------------------------------


from repro.core.engine import Protocol  # noqa: E402

#: the default sampling window (engines may override per-class)
_FP_SAMPLE_BURSTS = Protocol.fp_sample_bursts


def _miss_heavy(arr, nwords, captured):
    """Jacobi's shape: over-quantum compute between single fresh reads,
    so every burst ends before the burst caches can serve a repeat."""

    def worker(env):
        for k in range(_FP_SAMPLE_BURSTS + 8):
            yield from env.compute(1501)
            v = yield from env.read(arr.addr((env.pid * 64 + k) % nwords))
            captured.append(v)

    return worker


def _hit_heavy(arr, nwords, captured):
    """Repeats within every burst: the caches pay for themselves."""

    def worker(env):
        base = arr.addr(env.pid * 64)
        for _ in range(_FP_SAMPLE_BURSTS + 8):
            for _ in range(4):
                v = yield from env.read(base)
            captured.append(v)
            yield from env.compute(1501)

    return worker


def _run_and_collect_envs(factory, *, fastpath=True, analysis=None):
    rt = Runtime(_config(), quantum=1500, fastpath=fastpath, analysis=analysis)
    nwords = 64 * 4
    arr = rt.array("data", nwords)
    arr.init([float(i) for i in range(nwords)])
    captured = []
    rt.spawn_all(factory(arr, nwords, captured))
    result = rt.run()
    return rt, _state(rt, result)


def test_miss_heavy_workers_bypass_to_slow_paths():
    rt, _ = _run_and_collect_envs(_miss_heavy)
    assert rt.envs and all(e.fastpath_bypassed for e in rt.envs)
    # the demotion rebinds all five memory operations
    env = rt.envs[0]
    assert env.read.__func__ is env._read_slow.__func__
    assert env.write_block.__func__ is env._write_block_slow.__func__


def test_hit_heavy_workers_keep_the_fast_paths():
    rt, _ = _run_and_collect_envs(_hit_heavy)
    for env in rt.envs:
        assert env._fp_adaptive is False  # sampling did conclude...
        assert not env.fastpath_bypassed  # ...and kept the fast engine


def test_bypass_decision_is_cycle_invisible():
    _, fast = _run_and_collect_envs(_miss_heavy, fastpath=True)
    _, slow = _run_and_collect_envs(_miss_heavy, fastpath=False)
    assert fast == slow


def test_slow_mode_never_reports_bypass():
    rt, _ = _run_and_collect_envs(_miss_heavy, fastpath=False)
    assert not any(e.fastpath_bypassed for e in rt.envs)


def test_race_detector_disables_the_adaptive_sampler():
    # Rebinding over the detector's recording wrappers would silently
    # drop race coverage, so instrumented runs never demote.
    rt, _ = _run_and_collect_envs(_miss_heavy, analysis="races")
    assert rt.race_detector is not None
    for env in rt.envs:
        assert env._fp_adaptive is False
        assert not env.fastpath_bypassed


def test_jacobi_keeps_fast_paths_in_practice():
    # Jacobi's old per-point loop (one fresh read, then over-quantum
    # compute) left no per-burst reuse and its workers demoted — the
    # regression the bypass mechanism exists for, now pinned by the
    # synthetic _miss_heavy workload above.  The batched row kernel
    # reads whole rows per burst, so its workers must NOT demote: the
    # bypass sampler has to recognize the reuse the batching created.
    from repro.apps import jacobi
    from repro.runtime import Runtime as RT

    runtimes = []
    hook = runtimes.append
    RT.construction_hooks.append(hook)
    try:
        jacobi.run(_config(), jacobi.JacobiParams(n=16, iterations=3))
    finally:
        RT.construction_hooks.remove(hook)
    envs = [e for rt in runtimes for e in rt.envs]
    assert envs and not any(e.fastpath_bypassed for e in envs)
