"""Golden cycle-count equivalence for the Figure 6 Jacobi curve.

The typed message bus must be a pure refactor of the hand-wired callback
sends: one simulator event per message, identical labels, identical wire
sizes.  These totals were captured from the pre-bus protocol engines on
the default cost model (8 processors, 32x32 Jacobi, 3 iterations,
1000-cycle inter-SSMP delay) for all three external interconnect models.
Any drift — an extra event, a changed size, a reordered send — shifts
them and fails this test.

The same goldens also pin the fast-path access engine: the default run
uses the fast paths, so the totals above must hold with them on, and
``test_fastpath_and_slow_path_full_state_identical`` compares every
observable — clocks, stats, message flows, final memory — between the
fast and slow engines.
"""

import pytest

from repro.apps import jacobi
from repro.apps.jacobi import JacobiParams
from repro.params import MachineConfig, NetworkConfig

#: network -> cluster size -> (total_time, inter_ssmp, intra_ssmp msgs)
#: (re-captured when the Jacobi kernel moved to the batched row APIs:
#: whole-row read_block/write_block and one aggregated compute per row —
#: message counts were unchanged, simulated totals shifted slightly)
GOLDEN = {
    "fixed": {
        1: (621723, 182, 286),
        2: (593898, 78, 286),
        4: (591843, 26, 286),
        8: (512474, 0, 0),
    },
    "bus": {
        1: (627161, 182, 286),
        2: (603497, 78, 286),
        4: (596738, 26, 286),
        8: (512474, 0, 0),
    },
    "fabric": {
        1: (623643, 182, 286),
        2: (594938, 78, 286),
        4: (592867, 26, 286),
        8: (512474, 0, 0),
    },
}


@pytest.mark.parametrize("network", sorted(GOLDEN))
def test_jacobi_figure6_curve_is_bit_for_bit(network):
    for cluster_size, expected in GOLDEN[network].items():
        config = MachineConfig(
            total_processors=8,
            cluster_size=cluster_size,
            network=NetworkConfig(external=network),
        )
        run = jacobi.run(config, JacobiParams(n=32, iterations=3))
        run.require_valid()
        measured = (
            run.result.total_time,
            run.result.messages_inter_ssmp,
            run.result.messages_intra_ssmp,
        )
        assert measured == expected, (
            f"{network} C={cluster_size}: {measured} != golden {expected}"
        )


def _full_state(fastpath: bool):
    config = MachineConfig(total_processors=8, cluster_size=2)
    rt = jacobi.make_runtime(config, fastpath=fastpath)
    final = jacobi.build(rt, JacobiParams(n=32, iterations=3))
    result = rt.run()
    return {
        "total_time": result.total_time,
        "threads": [
            (t.time, t.user, t.lock, t.barrier, t.mgs, t.finish_time)
            for t in result.threads
        ],
        "cache": dict(result.cache_stats),
        "protocol": dict(result.protocol_stats),
        "messages": (result.messages_inter_ssmp, result.messages_intra_ssmp),
        "flows": result.message_flows,
        "events": rt.sim.events_processed,
        "grid": final.snapshot().tolist(),
    }


def test_fastpath_and_slow_path_full_state_identical():
    fast = _full_state(True)
    slow = _full_state(False)
    for key in fast:
        assert fast[key] == slow[key], f"fastpath changed {key}"
