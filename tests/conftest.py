"""Test configuration: make ``repro`` importable straight from src/.

The package is normally installed with ``pip install -e .`` (or
``python setup.py develop`` in offline environments without the ``wheel``
package); this fallback lets the suite run from a clean checkout too.
"""

import os
import sys
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from hypothesis import settings  # noqa: E402 - needs src/ on the path

# CI runs every hypothesis suite derandomized: the same inputs every
# run, so a red build is a real regression, never a lucky draw — and
# print_blob repeats the @reproduce_failure recipe on any failure so
# the exact case replays locally.  Opt in locally with
# ``--hypothesis-profile=ci`` or by exporting CI=1.
settings.register_profile("ci", derandomize=True, print_blob=True)
if os.environ.get("CI"):
    settings.load_profile("ci")


@pytest.fixture(scope="module")
def protocol_sanitizer():
    """Attach the invariant sanitizer to every Runtime built in a module.

    Opt in with ``pytestmark = pytest.mark.usefixtures("protocol_sanitizer")``
    (the fuzz/property/race suites do).  Module-scoped so hypothesis does
    not see a function-scoped fixture; the hook is removed afterwards so
    other modules run unobserved.
    """
    from repro.analysis import InvariantSanitizer
    from repro.runtime import Runtime

    sanitizers = []

    def hook(rt):
        sanitizers.append(InvariantSanitizer(rt))

    Runtime.construction_hooks.append(hook)
    try:
        yield sanitizers
    finally:
        Runtime.construction_hooks.remove(hook)
