"""Test configuration: make ``repro`` importable straight from src/.

The package is normally installed with ``pip install -e .`` (or
``python setup.py develop`` in offline environments without the ``wheel``
package); this fallback lets the suite run from a clean checkout too.
"""

import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))
