"""The bounded model checker and the stateful walk harness.

Three layers, mirroring docs/ANALYSIS.md:

* **Exhaustive runs are clean** — on every engine the checker visits the
  full 2-thread × 1-page interleaving space of the default program and
  finds no violation (and no truncation: the space really is exhausted).
* **Mutations are caught, deterministically** — seeded corruptions are
  found with a minimal schedule, the same schedule every run (BFS over a
  deterministic simulator), and the rendered counterexample matches the
  golden traces pinned under ``results/``.
* **The explorer beats the fuzz suite** — for each mutation the
  counterexample costs fewer simulator events than the shortest failing
  storm ``tests/test_protocol_fuzz.py``'s discipline can find.

The full cross-engine matrix (every engine exhausted, every mutation
benchmarked against the fuzz baseline, mutation walks) runs when
``REPRO_EXPLORE_FULL=1`` — CI's ``explore`` job sets it; the default run
keeps a representative slice so the suite stays fast.
"""

import os
from pathlib import Path

import pytest

from repro.analysis.explore import (
    MUTATION_SETUPS,
    ExploreConfig,
    counterexample_trace,
    default_programs,
    explore,
    fuzz_shortest_failure,
    mutation_benchmark,
    run_walk,
)
from repro.core.engine import engine_names

FULL = bool(os.environ.get("REPRO_EXPLORE_FULL"))
full_only = pytest.mark.skipif(
    not FULL, reason="full explore matrix (set REPRO_EXPLORE_FULL=1)"
)

RESULTS = Path(__file__).resolve().parent.parent / "results"

#: traces pinned under results/ — regenerated and compared exactly
GOLDEN = ("double_rack", "sc_shared_writer")


# ---------------------------------------------------------------------------
# exhaustive clean runs
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine", sorted(engine_names()))
def test_exhaustive_state_space_is_clean(engine):
    """2 threads x 1 page fully exhausted, zero violations, any engine."""
    cfg = ExploreConfig(engine=engine)
    report = explore(cfg)
    assert not report.caught, report.summary()
    assert not report.truncated, "state cap hit: not actually exhaustive"
    assert report.states > 100, "suspiciously small space"


# ---------------------------------------------------------------------------
# determinism: same mutation -> same minimal counterexample
# ---------------------------------------------------------------------------


def test_counterexample_shrinking_is_deterministic():
    setup = MUTATION_SETUPS["dir_exclusion"]
    first = explore(setup.cfg, setup.programs, mutation="dir_exclusion")
    second = explore(setup.cfg, setup.programs, mutation="dir_exclusion")
    assert first.caught and second.caught
    assert first.schedule == second.schedule
    assert first.events == second.events
    assert (
        counterexample_trace(setup.cfg, first, setup.programs)
        == counterexample_trace(setup.cfg, second, setup.programs)
    )


def test_walk_shrinking_is_deterministic():
    """Derandomized hypothesis shrinks to the same trace every run."""
    runs = [
        run_walk("mgs", mutation="dir_exclusion", max_examples=40)
        for _ in range(2)
    ]
    assert all(failed for failed, _trace in runs)
    assert runs[0][1] == runs[1][1]


@pytest.mark.parametrize("name", GOLDEN)
def test_golden_counterexample_traces(name):
    """The pinned minimized traces under results/ regenerate exactly."""
    setup = MUTATION_SETUPS[name]
    report = explore(setup.cfg, setup.programs, mutation=name)
    assert report.caught, report.summary()
    rendered = counterexample_trace(setup.cfg, report, setup.programs)
    golden = (RESULTS / f"explore_trace_{name}.txt").read_text()
    assert rendered.strip() == golden.strip()


# ---------------------------------------------------------------------------
# the explorer vs. the fuzz suite
# ---------------------------------------------------------------------------


def test_explorer_beats_fuzz_on_representative_mutation():
    """Strictly fewer simulator events than the shortest failing storm."""
    setup = MUTATION_SETUPS["drop_twin"]
    report = explore(setup.cfg, setup.programs, mutation="drop_twin")
    assert report.caught
    fuzz_events = fuzz_shortest_failure("mgs", "drop_twin", max_examples=25)
    assert fuzz_events is not None, "fuzz baseline should catch drop_twin"
    assert report.events < fuzz_events


@full_only
def test_mutation_benchmark_full_matrix():
    """Every mutation: caught, and strictly shorter than the fuzz find."""
    rows = mutation_benchmark()
    assert [r.mutation for r in rows] == sorted(MUTATION_SETUPS)
    bad = [r.summary() for r in rows if not r.strictly_shorter]
    assert not bad, "\n".join(bad)


# ---------------------------------------------------------------------------
# the stateful walk harness
# ---------------------------------------------------------------------------


def test_unmutated_walk_is_clean():
    failed, trace = run_walk("mgs", max_examples=10)
    assert not failed, trace


def test_faulty_net_walk_is_clean():
    """Transport drop/dup/delay faults never corrupt protocol state."""
    failed, trace = run_walk("gcs", faulty_net=True, max_examples=8)
    assert not failed, trace


@full_only
@pytest.mark.parametrize("engine", sorted(engine_names()))
def test_unmutated_walk_is_clean_all_engines(engine):
    failed, trace = run_walk(engine, max_examples=20)
    assert not failed, trace


# ---------------------------------------------------------------------------
# program / config plumbing
# ---------------------------------------------------------------------------


def test_default_programs_cover_the_op_vocabulary():
    cfg = ExploreConfig(engine="mgs", threads=3)
    programs = default_programs(cfg)
    assert len(programs) == 3
    ops = {op[0] for program in programs for op in program}
    assert ops == {"read", "write", "lock", "unlock", "barrier"}


def test_explore_rejects_unknown_mutation_engine():
    with pytest.raises(ValueError):
        explore(ExploreConfig(engine="mgs"), mutation="swdsm_lost_iack")
