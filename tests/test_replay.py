"""Phase replay correctness: replay-on must be bit-for-bit replay-off.

The acceptance bar for the closed-form replay engine
(:mod:`repro.runtime.replay`) is golden full-state equivalence for every
registered protocol engine across the paper's application suite: clocks,
per-thread cycle buckets, cache and protocol statistics, message flows,
event counts, and the computed output must be identical whether repeated
phases are re-executed or applied as recorded deltas.  These tests pin
that, plus the surrounding contract: the ``REPRO_NO_REPLAY`` escape
hatch, the spawn/spawn_phases mutual exclusion, and that replay actually
*fires* on the workload built to show it off (scanphase).
"""

import numpy as np
import pytest

from repro.apps import barnes_hut, jacobi, matmul, scanphase, tsp, water
from repro.core.engine import engine_names
from repro.params import MachineConfig
from repro.runtime import Runtime
from repro.runtime.replay import replay_enabled_default

ENGINES = engine_names()

#: tiny-but-representative paper apps: every sharing pattern in Table 4
PAPER_APPS = {
    "jacobi": (jacobi, jacobi.JacobiParams(n=16, iterations=4)),
    "matmul": (matmul, matmul.MatmulParams(n=8)),
    # Iterative (epoch-granularity) variant: passes replay without
    # barriers between them (Runtime.spawn_epochs).
    "matmul-iter": (matmul, matmul.MatmulParams(n=8, iterations=4)),
    "tsp": (tsp, tsp.TSPParams(ncities=6)),
    "water": (water, water.WaterParams(n_molecules=9, iterations=1)),
    "barnes-hut": (
        barnes_hut,
        barnes_hut.BarnesHutParams(n_bodies=12, iterations=1),
    ),
}

SCAN_PARAMS = scanphase.ScanPhaseParams(
    words=256, phases=6, window=16, chunk=8
)


def _full_state(module, params, protocol: str, replay: bool) -> dict:
    config = MachineConfig(
        total_processors=4, cluster_size=2, protocol=protocol
    )
    rt = module.make_runtime(config, replay=replay)
    final = module.build(rt, params)
    result = rt.run()
    state = {
        "total_time": result.total_time,
        "threads": [
            (t.time, t.user, t.lock, t.barrier, t.mgs, t.finish_time)
            for t in result.threads
        ],
        "cache": dict(result.cache_stats),
        "protocol": dict(result.protocol_stats),
        "locks": (
            result.lock_stats.acquires,
            result.lock_stats.hits,
            result.lock_stats.token_transfers,
        ),
        "messages": (result.messages_inter_ssmp, result.messages_intra_ssmp),
        "flows": result.message_flows,
        "events": rt.sim.events_processed,
    }
    snapshot = getattr(final, "snapshot", None)
    if snapshot is not None:
        state["output"] = np.asarray(snapshot()).tolist()
    return state, rt


@pytest.mark.parametrize("engine", ENGINES)
def test_replay_equivalence_paper_apps(engine):
    """Replay-on == replay-off, full state, engine x app (acceptance)."""
    for app, (module, params) in PAPER_APPS.items():
        on, _ = _full_state(module, params, engine, replay=True)
        off, _ = _full_state(module, params, engine, replay=False)
        for key in on:
            assert on[key] == off[key], f"{engine}/{app}: replay changed {key}"


@pytest.mark.parametrize("engine", ENGINES)
def test_replay_equivalence_and_fires_scanphase(engine):
    """The showcase workload must actually replay — under every engine —
    and still match the fully-executed run on every observable."""
    on, rt = _full_state(scanphase, SCAN_PARAMS, engine, replay=True)
    off, _ = _full_state(scanphase, SCAN_PARAMS, engine, replay=False)
    recorder = rt.phase_recorder
    assert recorder is not None and recorder.replayed > 0, (
        f"{engine}: no phase replayed on the replay showcase"
    )
    for key in on:
        assert on[key] == off[key], f"{engine}: replay changed {key}"


def test_matmul_epoch_replay_fires():
    """A non-phased (no inter-pass barrier) app collapses under epoch
    replay: pass 0 installs, pass 1 records, later passes replay."""
    config = MachineConfig(total_processors=4, cluster_size=2)
    run = matmul.run(
        config, matmul.MatmulParams(n=8, iterations=5), replay=True
    ).require_valid()
    assert run.result.replay_cache["replayed"] > 0
    assert run.result.replay_cache["recorded"] >= 1


def test_scanphase_validates_under_replay():
    config = MachineConfig(total_processors=4, cluster_size=2)
    run = scanphase.run(config, SCAN_PARAMS).require_valid()
    # Counters live in result.replay_cache (never in aux, which the run
    # cache serializes and must stay identical cold vs. replay-warm).
    assert run.result.replay_cache["replayed"] > 0
    assert run.result.replay_cache["recorded"] >= 1


def test_no_replay_env_escape_hatch(monkeypatch):
    monkeypatch.setenv("REPRO_NO_REPLAY", "1")
    assert not replay_enabled_default()
    config = MachineConfig(total_processors=4, cluster_size=2)
    rt = scanphase.make_runtime(config)
    assert rt.replay is False
    scanphase.build(rt, SCAN_PARAMS)
    rt.run()
    assert rt.phase_recorder is None


def test_replay_flag_overrides_environment(monkeypatch):
    monkeypatch.setenv("REPRO_NO_REPLAY", "1")
    config = MachineConfig(total_processors=4, cluster_size=2)
    assert scanphase.make_runtime(config, replay=True).replay is True
    monkeypatch.delenv("REPRO_NO_REPLAY")
    assert scanphase.make_runtime(config, replay=False).replay is False


def test_spawn_and_spawn_phases_are_mutually_exclusive():
    config = MachineConfig(total_processors=2, cluster_size=1)

    def factory(env, phase):
        def gen():
            yield from env.barrier()

        return gen()

    def worker(env):
        yield from env.compute(1)

    rt = Runtime(config)
    rt.spawn(worker)
    with pytest.raises(RuntimeError, match="cannot be mixed"):
        rt.spawn_phases(factory, 2)

    rt = Runtime(config)
    rt.spawn_phases(factory, 2)
    with pytest.raises(RuntimeError, match="cannot be mixed"):
        rt.spawn(worker)
