"""Acceptance: every application survives a 10%-loss external network.

The MGS protocol engines run unmodified; the reliable transport absorbs
the losses.  Each app validates its final data against the sequential
golden computation, so these are end-to-end exactly-once checks of the
whole net stack under fire.
"""

import pytest

from repro.apps import barnes_hut, jacobi, matmul, tsp, water, water_kernel
from repro.params import MachineConfig, NetworkConfig

LOSSY = NetworkConfig(drop_rate=0.10, dup_rate=0.02, delay_rate=0.02)


def config_for(c=1):
    return MachineConfig(
        total_processors=4, cluster_size=c, inter_ssmp_delay=500, network=LOSSY
    )


def check(run):
    assert run.valid, f"max_error={run.max_error}"
    stats = run.result.network_stats
    assert stats["drops"] > 0, "the fault layer never fired"
    assert stats["retransmits"] > 0, "the transport never recovered a loss"


def test_jacobi_survives_loss():
    check(jacobi.run(config_for(), jacobi.JacobiParams(n=16, iterations=2)))


def test_matmul_survives_loss():
    check(matmul.run(config_for(), matmul.MatmulParams(n=20)))


def test_tsp_survives_loss():
    run = tsp.run(config_for(), tsp.TSPParams(ncities=6))
    check(run)


def test_water_survives_loss():
    check(water.run(config_for(), water.WaterParams(n_molecules=11, iterations=1)))


def test_barnes_hut_survives_loss():
    check(
        barnes_hut.run(
            config_for(), barnes_hut.BarnesHutParams(n_bodies=16, iterations=1)
        )
    )


def test_water_kernel_survives_loss():
    check(
        water_kernel.run(
            config_for(),
            water_kernel.WaterKernelParams(n_molecules=16, optimized=False),
        )
    )


@pytest.mark.parametrize("c", [1, 4])
def test_cluster_sizes_survive_loss(c):
    run = jacobi.run(config_for(c), jacobi.JacobiParams(n=16, iterations=2))
    assert run.valid
    if c == 4:
        # single SSMP: no external traffic, so no faults to recover
        assert run.result.network_stats["drops"] == 0
