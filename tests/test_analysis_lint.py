"""The determinism lint: each rule, its scoping, and the live tree.

Rule tests write little files under a fabricated ``repro/`` package
root (the linter scopes rules by path: ``core``/``runtime``/... are
protocol-order-sensitive, ``bench`` may read the wall clock) and assert
on the findings.  The final test pins that ``src/repro`` itself is
clean — the same check CI's ``analysis`` job enforces.
"""

from pathlib import Path

from repro.analysis.lint import (
    check_arc_coverage,
    check_handler_coverage,
    lint_paths,
    lint_source,
    main,
)

REPO = Path(__file__).resolve().parent.parent


def findings_for(tmp_path, rel, source):
    path = tmp_path / "repro" / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return lint_source(path, source)


def rules(findings):
    return [f.rule for f in findings]


class TestUnseededRandom:
    def test_import_random_flagged_everywhere(self, tmp_path):
        for rel in ("apps/x.py", "core/x.py", "bench/x.py"):
            assert rules(findings_for(tmp_path, rel, "import random\n")) == [
                "unseeded-random"
            ], rel

    def test_from_random_flagged(self, tmp_path):
        found = findings_for(tmp_path, "apps/x.py", "from random import shuffle\n")
        assert rules(found) == ["unseeded-random"]

    def test_numpy_rng_is_fine(self, tmp_path):
        source = "import numpy as np\nrng = np.random.default_rng(7)\n"
        assert findings_for(tmp_path, "apps/x.py", source) == []


class TestWallClock:
    def test_time_time_flagged(self, tmp_path):
        source = "import time\nt = time.time()\n"
        assert rules(findings_for(tmp_path, "core/x.py", source)) == [
            "wall-clock"
        ]

    def test_perf_counter_from_import_flagged(self, tmp_path):
        source = "from time import perf_counter\nt = perf_counter()\n"
        assert rules(findings_for(tmp_path, "runtime/x.py", source)) == [
            "wall-clock"
        ]

    def test_datetime_now_flagged(self, tmp_path):
        source = "import datetime\nd = datetime.now()\n"
        assert rules(findings_for(tmp_path, "apps/x.py", source)) == [
            "wall-clock"
        ]

    def test_bench_may_measure_wall_clock(self, tmp_path):
        source = "import time\nt = time.perf_counter()\n"
        assert findings_for(tmp_path, "bench/x.py", source) == []

    def test_sim_time_attribute_is_fine(self, tmp_path):
        source = "now = sim.now\nt = thread.time\n"
        assert findings_for(tmp_path, "core/x.py", source) == []


class TestIdOrder:
    def test_id_flagged_in_order_sensitive_code(self, tmp_path):
        source = "keys = {id(frame): 1}\n"
        assert rules(findings_for(tmp_path, "core/x.py", source)) == ["id-order"]

    def test_id_allowed_elsewhere(self, tmp_path):
        source = "keys = {id(frame): 1}\n"
        assert findings_for(tmp_path, "apps/x.py", source) == []


class TestSetIteration:
    def test_for_over_set_attr_flagged(self, tmp_path):
        source = "for c in home.write_dir:\n    go(c)\n"
        assert rules(findings_for(tmp_path, "core/x.py", source)) == [
            "set-iteration"
        ]

    def test_iter_call_flagged(self, tmp_path):
        source = "s = {1, 2}\nx = next(iter(s))\n"
        assert rules(findings_for(tmp_path, "sync/x.py", source)) == [
            "set-iteration"
        ]

    def test_inferred_set_chain_flagged(self, tmp_path):
        source = "others = sharers - {pid}\nfor o in others:\n    go(o)\n"
        assert rules(findings_for(tmp_path, "hw/x.py", source)) == [
            "set-iteration"
        ]

    def test_comprehension_over_set_flagged(self, tmp_path):
        source = "s = set()\nout = [x for x in s]\n"
        assert rules(findings_for(tmp_path, "svm/x.py", source)) == [
            "set-iteration"
        ]

    def test_sorted_and_min_are_fine(self, tmp_path):
        source = (
            "s = {1, 2}\n"
            "for x in sorted(s):\n    go(x)\n"
            "lo = min(s)\n"
            "n = len(s)\n"
            "ok = 3 in s\n"
        )
        assert findings_for(tmp_path, "core/x.py", source) == []

    def test_sets_allowed_outside_protocol_code(self, tmp_path):
        source = "s = {1, 2}\nfor x in s:\n    go(x)\n"
        assert findings_for(tmp_path, "apps/x.py", source) == []

    def test_list_iteration_is_fine(self, tmp_path):
        source = "xs = [1, 2]\nfor x in xs:\n    go(x)\n"
        assert findings_for(tmp_path, "core/x.py", source) == []


class TestHandlerCoverage:
    def write_core(self, tmp_path, engine_source):
        core = tmp_path / "repro" / "core"
        core.mkdir(parents=True, exist_ok=True)
        (core / "messages.py").write_text(
            "class MsgType:\n    RREQ = 'RREQ'\n    RDAT = 'RDAT'\n"
        )
        (core / "engine.py").write_text(engine_source)
        return core

    def test_missing_handler_flagged(self, tmp_path):
        core = self.write_core(
            tmp_path,
            "@handles(MsgType.RREQ)\ndef on_rreq(self, msg):\n    pass\n",
        )
        found = check_handler_coverage(core)
        assert rules(found) == ["handler-coverage"]
        assert "MsgType.RDAT has no @handles" in found[0].message

    def test_duplicate_handler_flagged(self, tmp_path):
        core = self.write_core(
            tmp_path,
            "@handles(MsgType.RREQ)\ndef a(self, msg):\n    pass\n"
            "@handles(MsgType.RREQ)\ndef b(self, msg):\n    pass\n"
            "@handles(MsgType.RDAT)\ndef c(self, msg):\n    pass\n",
        )
        found = check_handler_coverage(core)
        assert rules(found) == ["handler-coverage"]
        assert "2 @handles registrations" in found[0].message

    def test_exact_coverage_is_clean(self, tmp_path):
        core = self.write_core(
            tmp_path,
            "@handles(MsgType.RREQ)\ndef a(self, msg):\n    pass\n"
            "@handles(MsgType.RDAT)\ndef b(self, msg):\n    pass\n",
        )
        assert check_handler_coverage(core) == []


class TestArcCoverage:
    HANDLERS = (
        "@handles('X_REQ')\ndef on_req(self, msg):\n    pass\n"
        "@handles('X_DAT')\ndef on_dat(self, msg):\n    pass\n"
    )

    def write_engine(self, tmp_path, arcs_source=None):
        protocols = tmp_path / "repro" / "protocols"
        package = protocols / "toy"
        package.mkdir(parents=True, exist_ok=True)
        (package / "protocol.py").write_text(self.HANDLERS)
        if arcs_source is not None:
            (package / "arcs.py").write_text(arcs_source)
        core = tmp_path / "repro" / "core"
        core.mkdir(parents=True, exist_ok=True)
        messages = core / "messages.py"
        messages.write_text("class MsgType:\n    pass\n")
        return protocols, messages

    def test_missing_check_flagged(self, tmp_path):
        protocols, messages = self.write_engine(
            tmp_path,
            "class ToyArcRules:\n    _CHECKS = {'X_REQ': None}\n",
        )
        found = check_arc_coverage(protocols, messages)
        assert rules(found) == ["arc-coverage"]
        assert "'X_DAT' with no arc check" in found[0].message

    def test_missing_table_flagged(self, tmp_path):
        protocols, messages = self.write_engine(tmp_path, arcs_source=None)
        found = check_arc_coverage(protocols, messages)
        assert rules(found) == ["arc-coverage"]
        assert "ships no ArcRules _CHECKS table" in found[0].message

    def test_full_coverage_is_clean(self, tmp_path):
        protocols, messages = self.write_engine(
            tmp_path,
            "class ToyArcRules:\n"
            "    _CHECKS = {'X_REQ': None, 'X_DAT': None}\n",
        )
        assert check_arc_coverage(protocols, messages) == []

    def test_extra_checks_are_fine(self, tmp_path):
        # A check for a label the engine no longer registers is dead
        # code, not a blind spot; handler-coverage owns declarations.
        protocols, messages = self.write_engine(
            tmp_path,
            "class ToyArcRules:\n"
            "    _CHECKS = {'X_REQ': None, 'X_DAT': None, 'X_OLD': None}\n",
        )
        assert check_arc_coverage(protocols, messages) == []


class TestDriver:
    def test_syntax_error_reported_not_raised(self, tmp_path):
        found = findings_for(tmp_path, "core/x.py", "def broken(:\n")
        assert rules(found) == ["syntax"]

    def test_finding_render_format(self, tmp_path):
        (finding,) = findings_for(tmp_path, "core/x.py", "import random\n")
        rendered = finding.render()
        assert rendered.endswith(
            "x.py:1: unseeded-random: stdlib random is banned "
            "(process-global, unseeded state); use "
            "numpy.random.default_rng(seed)"
        )

    def test_main_missing_path(self, capsys):
        assert main(["does/not/exist"]) == 2

    def test_main_reports_findings(self, tmp_path, capsys):
        target = tmp_path / "repro" / "core" / "x.py"
        target.parent.mkdir(parents=True)
        target.write_text("import random\n")
        assert main([str(target)]) == 1
        out = capsys.readouterr().out
        assert "unseeded-random" in out
        assert "1 finding(s)" in out


def test_src_repro_is_clean():
    """The live tree passes its own lint (CI's ``analysis`` job)."""
    findings = lint_paths([REPO / "src" / "repro"])
    assert findings == [], "\n".join(f.render() for f in findings)
