"""Unit tests for the software virtual memory layer."""

import pytest

from repro.params import MachineConfig
from repro.svm import TLB, AccessKind, AddressSpace, MapMode


@pytest.fixture
def aspace():
    return AddressSpace(MachineConfig(total_processors=8, cluster_size=2))


def test_alloc_is_page_aligned(aspace):
    seg = aspace.alloc("a", 100)
    assert seg.base % 1024 == 0
    assert seg.size == 1024  # rounded up to a page
    seg2 = aspace.alloc("b", 1025)
    assert seg2.size == 2048
    assert seg2.base == seg.end


def test_default_home_interleaves_round_robin(aspace):
    seg = aspace.alloc("big", 16 * 1024)  # 16 pages
    first_vpn = seg.base // 1024
    homes = [aspace.home_proc(first_vpn + i) for i in range(16)]
    # Round-robin by vpn over 8 processors: two full cycles.
    assert homes == [(first_vpn + i) % 8 for i in range(16)]


def test_explicit_home_pinning(aspace):
    seg = aspace.alloc("pinned", 4 * 1024, home=3)
    first_vpn = seg.base // 1024
    assert all(aspace.home_proc(first_vpn + i) == 3 for i in range(4))


def test_callable_home_map(aspace):
    seg = aspace.alloc("blocked", 8 * 1024, home=lambda pg: pg % 4)
    first_vpn = seg.base // 1024
    assert [aspace.home_proc(first_vpn + i) for i in range(8)] == [
        0, 1, 2, 3, 0, 1, 2, 3,
    ]


def test_home_cluster_derived_from_processor(aspace):
    seg = aspace.alloc("x", 1024, home=5)
    vpn = seg.base // 1024
    assert aspace.home_cluster(vpn) == 2  # proc 5 lives in cluster 2 (C=2)


def test_invalid_home_rejected(aspace):
    with pytest.raises(ValueError):
        aspace.alloc("bad", 1024, home=99)


def test_unallocated_page_raises(aspace):
    with pytest.raises(KeyError):
        aspace.home_proc(12345678)


def test_address_helpers(aspace):
    seg = aspace.alloc("arr", 2048, kind=AccessKind.POINTER)
    addr = seg.address_of_word(130)  # second page, word 2
    assert aspace.vpn_of(addr) == seg.base // 1024 + 1
    assert aspace.word_of(addr) == 2
    assert aspace.is_shared(addr)
    assert not aspace.is_shared(0x10)
    with pytest.raises(IndexError):
        seg.address_of_word(256)


def test_zero_size_alloc_rejected(aspace):
    with pytest.raises(ValueError):
        aspace.alloc("nil", 0)


class TestTLB:
    def test_fill_lookup_invalidate(self):
        tlb = TLB(0)
        assert tlb.lookup(7) is None
        tlb.fill(7, MapMode.READ)
        assert tlb.lookup(7) is MapMode.READ
        assert not tlb.has_write(7)
        tlb.fill(7, MapMode.WRITE)
        assert tlb.has_write(7)
        assert tlb.invalidate(7)
        assert tlb.lookup(7) is None
        assert not tlb.invalidate(7)

    def test_fill_never_downgrades(self):
        tlb = TLB(0)
        tlb.fill(3, MapMode.WRITE)
        tlb.fill(3, MapMode.READ)
        assert tlb.has_write(3)

    def test_counters(self):
        tlb = TLB(0)
        tlb.fill(1, MapMode.READ)
        tlb.fill(2, MapMode.READ)
        tlb.invalidate(1)
        assert tlb.fills == 2
        assert tlb.invalidations == 1
        assert len(tlb) == 1
        assert 2 in tlb
