"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(30, order.append, "c")
    sim.schedule(10, order.append, "a")
    sim.schedule(20, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 30


def test_simultaneous_events_fifo_by_schedule_order():
    sim = Simulator()
    order = []
    for name in "abcde":
        sim.schedule(5, order.append, name)
    sim.run()
    assert order == list("abcde")


def test_schedule_from_within_event():
    sim = Simulator()
    seen = []

    def first():
        seen.append(sim.now)
        sim.schedule(7, second)

    def second():
        seen.append(sim.now)

    sim.schedule(3, first)
    sim.run()
    assert seen == [3, 10]


def test_cannot_schedule_into_past():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(5, lambda: None)
    with pytest.raises(ValueError):
        sim.schedule(-1, lambda: None)


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(10, fired.append, 1)
    sim.schedule(100, fired.append, 2)
    sim.run(until=50)
    assert fired == [1]
    assert sim.now == 50
    assert sim.pending == 1
    sim.run()
    assert fired == [1, 2]


def test_max_events_guard():
    sim = Simulator()

    def loop():
        sim.schedule(1, loop)

    sim.schedule(0, loop)
    with pytest.raises(RuntimeError):
        sim.run(max_events=100)


def test_max_events_allows_exactly_that_many():
    # Regression: the guard used to trip only after executing event
    # max_events + 1; a run of exactly max_events events must succeed.
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(i, fired.append, i)
    sim.run(max_events=5)
    assert fired == [0, 1, 2, 3, 4]


def test_max_events_stops_before_executing_the_excess_event():
    sim = Simulator()
    fired = []
    for i in range(6):
        sim.schedule(i, fired.append, i)
    with pytest.raises(RuntimeError):
        sim.run(max_events=5)
    # The sixth event was never executed and is still queued.
    assert fired == [0, 1, 2, 3, 4]
    assert sim.pending == 1
    sim.run()
    assert fired == [0, 1, 2, 3, 4, 5]


def test_same_time_events_scheduled_mid_batch_keep_fifo_order():
    # Events scheduled for the *current* time from inside an event join
    # the in-flight batch; order must stay (time, seq) — i.e. schedule
    # order — exactly as if every event had gone through the heap.
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.schedule(0, order.append, "chained")

    sim.schedule(5, first)
    sim.schedule(5, order.append, "second")
    sim.run()
    assert order == ["first", "second", "chained"]
    assert sim.now == 5


def test_pending_counts_current_batch_after_guard_trips():
    sim = Simulator()

    def loop():
        sim.schedule(0, loop)

    sim.schedule(0, loop)
    with pytest.raises(RuntimeError):
        sim.run(max_events=10)
    # The chained same-time event survives the abort and stays runnable.
    assert sim.pending == 1
    assert sim.step() is True


def test_step_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(4, fired.append, "x")
    assert sim.step() is True
    assert fired == ["x"]
    assert sim.step() is False


def test_events_processed_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(i, lambda: None)
    sim.run()
    assert sim.events_processed == 5
