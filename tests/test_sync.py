"""Unit tests for the MGS lock and tree barrier."""

from repro.machine import Machine
from repro.params import CostModel, MachineConfig
from repro.sim import Simulator
from repro.sync import MGSLock, TreeBarrier


def make_lock(nclusters=4, cluster_size=2, delay=1000, home_cluster=0):
    sim = Simulator()
    config = MachineConfig(
        total_processors=nclusters * cluster_size,
        cluster_size=cluster_size,
        inter_ssmp_delay=delay,
    )
    machine = Machine(sim, config, CostModel())
    lock = MGSLock(machine, config, CostModel(), lock_id=0, home_cluster=home_cluster)
    return sim, machine, lock


class TestMGSLock:
    def test_local_acquire_is_hit(self):
        sim, _m, lock = make_lock()
        got = []
        lock.acquire(0, lambda: got.append(sim.now))
        sim.run()
        assert got and lock.stats.hits == 1
        assert lock.stats.token_transfers == 0

    def test_remote_acquire_moves_token(self):
        sim, _m, lock = make_lock()
        got = []
        lock.acquire(4, lambda: got.append(sim.now))  # cluster 2
        sim.run()
        assert got
        assert lock.stats.hits == 0
        assert lock.stats.token_transfers == 1
        assert lock.token_cluster == 2
        # Token moved through 3+ inter-SSMP hops: latency >= 3 delays.
        assert got[0] >= 3000

    def test_repeated_same_cluster_acquires_hit_after_transfer(self):
        sim, _m, lock = make_lock()
        order = []

        def chain(pid, times):
            def acquired():
                order.append((pid, sim.now))
                if times > 1:
                    lock.release(pid, lambda: chain(pid, times - 1))
                else:
                    lock.release(pid, lambda: None)

            lock.acquire(pid, acquired)

        chain(4, 5)
        sim.run()
        assert len(order) == 5
        assert lock.stats.acquires == 5
        assert lock.stats.hits == 4  # all but the first (token transfer)

    def test_mutual_exclusion_under_contention(self):
        sim, _m, lock = make_lock()
        held = {"n": 0, "max": 0}
        done = []

        def worker(pid):
            def acquired():
                held["n"] += 1
                held["max"] = max(held["max"], held["n"])
                def releasing():
                    held["n"] -= 1
                    done.append(pid)
                sim.schedule(500, lock.release, pid, releasing)

            lock.acquire(pid, acquired)

        for pid in range(8):
            worker(pid)
        sim.run(max_events=100_000)
        assert sorted(done) == list(range(8))
        assert held["max"] == 1

    def test_local_waiters_served_before_handoff(self):
        sim, _m, lock = make_lock()
        order = []

        def make_cb(pid):
            def acquired():
                order.append(pid)
                sim.schedule(100, lock.release, pid, lambda: None)
            return acquired

        # Proc 0 holds; proc 1 (same cluster) and proc 4 (remote) wait.
        lock.acquire(0, make_cb(0))
        sim.schedule(10, lock.acquire, 1, make_cb(1))
        sim.schedule(10, lock.acquire, 4, make_cb(4))
        sim.run(max_events=100_000)
        assert order == [0, 1, 4]

    def test_hit_ratio_property(self):
        sim, _m, lock = make_lock()
        lock.stats.acquires = 10
        lock.stats.hits = 7
        assert lock.stats.hit_ratio == 0.7

    def test_single_cluster_never_transfers(self):
        sim, _m, lock = make_lock(nclusters=1, cluster_size=8, delay=0)
        done = []
        for pid in range(8):
            lock.acquire(pid, lambda pid=pid: sim.schedule(
                10, lock.release, pid, lambda: done.append(pid)))
        sim.run(max_events=100_000)
        assert len(done) == 8
        assert lock.stats.token_transfers == 0
        assert lock.stats.hit_ratio == 1.0


class TestTreeBarrier:
    def _run_barrier(self, nclusters, cluster_size, delay=1000):
        sim = Simulator()
        config = MachineConfig(
            total_processors=nclusters * cluster_size,
            cluster_size=cluster_size,
            inter_ssmp_delay=delay,
        )
        machine = Machine(sim, config, CostModel())
        barrier = TreeBarrier(machine, config, CostModel())
        released = []
        for pid in range(config.total_processors):
            sim.schedule(pid * 13, barrier.arrive, pid,
                         lambda pid=pid: released.append((pid, sim.now)))
        sim.run(max_events=100_000)
        return config, barrier, released

    def test_all_released_hierarchical(self):
        config, barrier, released = self._run_barrier(4, 2)
        assert len(released) == 8
        assert barrier.episodes == 1
        # Nobody is released before the last arrival (t = 7*13 = 91).
        assert min(t for _p, t in released) >= 91

    def test_all_released_flat(self):
        config, barrier, released = self._run_barrier(1, 8)
        assert len(released) == 8
        assert barrier.episodes == 1

    def test_barrier_reusable(self):
        sim = Simulator()
        config = MachineConfig(total_processors=4, cluster_size=2,
                               inter_ssmp_delay=100)
        machine = Machine(sim, config, CostModel())
        barrier = TreeBarrier(machine, config, CostModel())
        rounds = {pid: 0 for pid in range(4)}

        def arrive(pid):
            def released():
                rounds[pid] += 1
                if rounds[pid] < 3:
                    sim.schedule(5, barrier.arrive, pid, released)
            barrier.arrive(pid, released)

        for pid in range(4):
            sim.schedule(pid, arrive, pid)
        sim.run(max_events=100_000)
        assert all(v == 3 for v in rounds.values())
        assert barrier.episodes == 3

    def test_hierarchical_message_count(self):
        """Two inter-SSMP messages per non-root SSMP per episode (combine
        + release) is the paper's minimum; the root combines locally."""
        sim = Simulator()
        config = MachineConfig(total_processors=8, cluster_size=2,
                               inter_ssmp_delay=100)
        machine = Machine(sim, config, CostModel())
        barrier = TreeBarrier(machine, config, CostModel())
        done = []
        for pid in range(8):
            barrier.arrive(pid, lambda: done.append(1))
        sim.run(max_events=100_000)
        assert len(done) == 8
        # 3 non-root clusters send combines; root sends 3 remote releases.
        assert machine.stats.inter_ssmp == 6
