"""Directed race tests for the protocol paths added beyond Table 1.

These reproduce, deterministically, the three race families discovered
while validating the applications (DESIGN.md notes 6-8): spurious
single-writer rounds, post-snapshot release deferral, and dirty
home-cluster aliases.
"""

import numpy as np
import pytest

from repro.core.page import FrameState
from repro.params import MachineConfig
from repro.runtime import Runtime

# The directed races run under the invariant sanitizer: every message in
# these deliberately nasty interleavings is checked against the arcs.
pytestmark = pytest.mark.usefixtures("protocol_sanitizer")


def make_rt(nclusters=3, cluster_size=2, delay=1000):
    config = MachineConfig(
        total_processors=nclusters * cluster_size,
        cluster_size=cluster_size,
        inter_ssmp_delay=delay,
    )
    rt = Runtime(config)
    arr = rt.array("page", config.words_per_page, home=0)
    vpn = arr.base // config.page_size
    return rt, arr, vpn


def fault(rt, pid, vpn, write=False):
    done = []
    rt.protocol.fault(pid, vpn, write, lambda: done.append(rt.sim.now))
    rt.sim.run(max_events=200_000)
    assert done
    return done[0]


def release(rt, pid):
    done = []
    rt.protocol.release(pid, lambda: done.append(rt.sim.now))
    rt.sim.run(max_events=200_000)
    assert done
    return done[0]


class TestSingleWriterRaces:
    def test_upgrade_racing_release_never_loses_data(self):
        """Cluster 2 upgrades (WNOTIFY in flight) while cluster 1 — the
        only registered writer — releases.  Whatever path the server
        takes, both clusters' writes must reach home."""
        rt, arr, vpn = make_rt(delay=2000)
        fault(rt, 2, vpn, write=True)  # cluster 1: registered writer
        fault(rt, 4, vpn, write=False)  # cluster 2: reader
        rt.protocol.frame(1, vpn).data[1] = 11.0

        events = []
        # Cluster 2's upgrade and cluster 1's release start concurrently.
        rt.protocol.fault(4, vpn, True, lambda: events.append("upgraded"))
        rt.sim.schedule(100, rt.protocol.release, 2, lambda: events.append("rel"))
        rt.sim.run(max_events=300_000)
        assert "upgraded" in events and "rel" in events
        # The release round may have invalidated cluster 2's upgraded
        # copy (its diff was collected); a thread would simply re-fault,
        # so do the same before writing.
        frame2 = rt.protocol.frame(2, vpn)
        if frame2.state is not FrameState.WRITE:
            fault(rt, 4, vpn, write=True)
            frame2 = rt.protocol.frame(2, vpn)
        assert frame2.state is FrameState.WRITE
        frame2.data[2] = 22.0
        done = []
        rt.protocol.release(4, lambda: done.append(1))
        rt.sim.run(max_events=300_000)
        assert done
        home = rt.protocol.home(vpn)
        assert home.data[1] == 11.0
        assert home.data[2] == 22.0
        rt.protocol.check_invariants()

    def test_recall_round_statistics(self):
        """Force the foreign-diff path: reader upgrades after the release
        round has started (INV queued on the mapping lock)."""
        rt, arr, vpn = make_rt(delay=3000)
        fault(rt, 2, vpn, write=True)  # single writer, cluster 1
        fault(rt, 4, vpn, write=False)  # reader, cluster 2
        rt.protocol.frame(1, vpn).data[0] = 1.0

        events = []
        rt.protocol.release(2, lambda: events.append("rel"))
        # While the REL is in flight, cluster 2 starts an upgrade whose
        # INV will queue behind the mapping lock.
        rt.sim.schedule(150, rt.protocol.fault, 4, vpn, True,
                        lambda: events.append("up"))
        rt.sim.run(max_events=400_000)
        assert "rel" in events and "up" in events
        rt.protocol.check_invariants()
        # Whether or not the recall fired, data integrity holds:
        assert rt.protocol.home(vpn).data[0] == 1.0

    def test_retained_copy_equals_home_after_round(self):
        """After any single-writer round, the retained copy must match
        the home copy word for word (else later reads are stale)."""
        rt, arr, vpn = make_rt()
        fault(rt, 2, vpn, write=True)
        frame = rt.protocol.frame(1, vpn)
        frame.data[:] = np.arange(rt.config.words_per_page, dtype=float)
        done = []
        rt.protocol.release(2, lambda: done.append(1))
        rt.sim.run(max_events=200_000)
        assert done
        if frame.state is FrameState.WRITE:  # retained
            assert np.array_equal(frame.data, rt.protocol.home(vpn).data)
            assert np.array_equal(frame.twin, frame.data)


class TestRetentionGating:
    def test_retained_copy_unavailable_until_round_completes(self):
        """During a single-writer release round the retained copy may be
        stale with respect to merges still in flight; local fills must
        queue on the mapping lock until the Server signals completion.

        This is the regression test for the stale-read race found in the
        Water kernel: a PINV stole a second releaser's DUQ entry, its
        unlock short-circuited, and the next lock holder read the
        retained copy before the round's recall."""
        from repro.core.page import ServerState

        rt, arr, vpn = make_rt(delay=4000)
        fault(rt, 2, vpn, write=True)  # cluster 1 single writer (procs 2,3)
        rt.protocol.frame(1, vpn).data[0] = 1.0
        observed = {}
        rt.protocol.release(2, lambda: observed.setdefault("rel", rt.sim.now))
        # Launch the fill while the 1WINV is being processed (the REL
        # travels 4000 cycles, the 1WINV another 4000): the mapping lock
        # must make it wait out the round.
        def fill_done():
            observed["fill"] = rt.sim.now
            observed["server_state"] = rt.protocol.home(vpn).state

        rt.sim.schedule(9_000, rt.protocol.fault, 3, vpn, True, fill_done)
        rt.sim.run(max_events=400_000)
        assert "rel" in observed and "fill" in observed
        assert observed["server_state"] is not ServerState.REL_IN_PROG, (
            "a local fill completed while the release round was still "
            "merging: the retained copy could be stale"
        )
        rt.protocol.check_invariants()


class TestDeferredReleases:
    def test_release_covering_post_snapshot_writes_is_not_coalesced(self):
        """Two processors of the retained single-writer cluster release
        back to back; the second's writes land after the first round's
        snapshot and must trigger a fresh round."""
        rt, arr, vpn = make_rt(delay=1500)
        fault(rt, 2, vpn, write=True)
        rt.protocol.frame(1, vpn).data[0] = 1.0
        done = []
        rt.protocol.release(2, lambda: done.append("first"))
        rt.sim.run(max_events=300_000)

        # Proc 3 (same cluster) refaults onto the retained copy, writes,
        # and releases while we re-start a round from proc 2.
        fault(rt, 3, vpn, write=True)
        rt.protocol.frame(1, vpn).data[5] = 5.0
        fault(rt, 2, vpn, write=True)
        rt.protocol.frame(1, vpn).data[6] = 6.0
        rt.protocol.release(2, lambda: done.append("second"))
        rt.protocol.release(3, lambda: done.append("third"))
        rt.sim.run(max_events=400_000)
        assert set(done) == {"first", "second", "third"}
        home = rt.protocol.home(vpn)
        assert home.data[5] == 5.0 and home.data[6] == 6.0
        stats = rt.protocol.stats.as_dict()
        # At least two genuine rounds ran; any deferral is recorded.
        assert stats["release_rounds"] >= 2


class TestStolenReleaseJoins:
    def test_stolen_release_waits_for_stealing_round(self):
        """Arc 12 steals a DUQ entry; the victim's release must join the
        stealing round instead of completing while it is mid-merge."""
        from repro.core.page import ServerState

        rt, arr, vpn = make_rt(delay=3000)
        fault(rt, 2, vpn, write=True)  # cluster 1
        fault(rt, 4, vpn, write=True)  # cluster 2
        rt.protocol.frame(1, vpn).data[1] = 1.0
        rt.protocol.frame(2, vpn).data[2] = 2.0
        observed = {}
        rt.protocol.release(4, lambda: observed.setdefault("b", rt.sim.now))
        # Cluster 1's release starts while cluster 2's round is in
        # flight; its DUQ entry will be stolen by the round's PINV.
        def a_done():
            observed["a"] = rt.sim.now
            observed["state"] = rt.protocol.home(vpn).state

        rt.sim.schedule(7_000, rt.protocol.release, 2, a_done)
        rt.sim.run(max_events=400_000)
        assert "a" in observed and "b" in observed
        assert observed["state"] is not ServerState.REL_IN_PROG, (
            "a release completed while the round carrying its writes "
            "was still in progress"
        )
        home = rt.protocol.home(vpn)
        assert home.data[1] == 1.0 and home.data[2] == 2.0

    def test_join_after_round_completion_is_cheap(self):
        """A stolen page released after its round finished costs one
        immediately acknowledged REL (the Server's join fast path)."""
        rt, arr, vpn = make_rt()
        fault(rt, 2, vpn, write=True)
        fault(rt, 4, vpn, write=True)
        rt.protocol.frame(1, vpn).data[0] = 1.0
        release(rt, 4)  # round completes; cluster 1's entry was stolen
        assert vpn in rt.protocol.stolen[2] or vpn in rt.protocol.stolen[3]
        rounds_before = rt.protocol.stats["release_rounds"]
        release(rt, 2)
        assert rt.protocol.stats["joins_acked"] >= 1
        assert rt.protocol.stats["release_rounds"] == rounds_before
        assert not rt.protocol.stolen[2]


class TestAliasDirtyMarker:
    def test_home_cluster_writes_recall_retained_copy(self):
        """The Water bug, reduced: home cluster writes through its alias
        while a remote cluster retains a single-writer copy.  After the
        home's release the remote copy must not serve stale data."""
        rt, arr, vpn = make_rt()
        # Remote cluster 1 becomes the single writer and releases.
        fault(rt, 2, vpn, write=True)
        rt.protocol.frame(1, vpn).data[0] = 10.0
        done = []
        rt.protocol.release(2, lambda: done.append(1))
        rt.sim.run(max_events=200_000)
        frame1 = rt.protocol.frame(1, vpn)
        assert frame1.state is FrameState.WRITE  # retained

        # Home cluster writes the same word through the alias + releases.
        fault(rt, 0, vpn, write=True)
        rt.protocol.home(vpn).data[0] = 99.0  # via the alias
        rt.protocol.release(0, lambda: done.append(2))
        rt.sim.run(max_events=200_000)
        assert len(done) == 2

        # Cluster 1 re-reads: must see 99, not its stale retained 10.
        fault(rt, 2, vpn, write=False)
        value = rt.protocol.frame(1, vpn).data[0]
        assert value == 99.0
        rt.protocol.check_invariants()
