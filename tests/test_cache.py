"""The content-addressed run cache: keys, round-trips, hits, verification.

The contract under test (ISSUE 4 acceptance criteria):

* a warm sweep rerun performs **zero simulation** — every point is
  served from cache and the hit counter equals the point count;
* ``cache_verify`` re-executes cached points and reproduces them
  bit-for-bit, failing loudly on any divergence;
* any change to the ``src/repro/`` sources (the source fingerprint)
  invalidates every key.
"""

import dataclasses
import json

import pytest

from repro.apps import jacobi
from repro.bench import sweep as sweep_mod
from repro.bench.cache import (
    CacheVerifyError,
    RunCache,
    app_run_from_dict,
    app_run_to_dict,
    canonical_json,
    fingerprint_run,
    resolve_cache,
    source_fingerprint,
)
from repro.bench.sweep import run_sweep
from repro.params import CostModel, MachineConfig

PARAMS = jacobi.JacobiParams(n=16, iterations=2)


def _sweep(cache, sizes=None, **kw):
    return run_sweep(
        jacobi,
        params=PARAMS,
        total_processors=4,
        sizes=sizes,
        cache=cache,
        **kw,
    )


def _entry_files(root):
    return sorted(root.glob("*/*.json"))


# ---------------------------------------------------------------------------
# fingerprints
# ---------------------------------------------------------------------------


def test_key_sensitive_to_every_input():
    config = MachineConfig(total_processors=4, cluster_size=2)
    base, _ = fingerprint_run(config, None, 1500, "app", PARAMS, source="s")
    variants = [
        fingerprint_run(config.with_cluster_size(4), None, 1500, "app", PARAMS,
                        source="s"),
        fingerprint_run(config, CostModel(cache_hit=3), 1500, "app", PARAMS,
                        source="s"),
        fingerprint_run(config, None, 2000, "app", PARAMS, source="s"),
        fingerprint_run(config, None, 1500, "other", PARAMS, source="s"),
        fingerprint_run(config, None, 1500, "app",
                        jacobi.JacobiParams(n=17, iterations=2), source="s"),
        fingerprint_run(config, None, 1500, "app", PARAMS, source="s2"),
    ]
    keys = {base} | {k for k, _ in variants}
    assert len(keys) == len(variants) + 1, "some input did not change the key"


def test_key_distinct_per_protocol():
    """Two configs differing only in the engine never share a cache key."""
    from repro.core.engine import engine_names

    config = MachineConfig(total_processors=4, cluster_size=2)
    engines = engine_names()
    keys = {
        fingerprint_run(
            dataclasses.replace(config, protocol=name),
            None, 1500, "app", PARAMS, source="s",
        )[0]
        for name in engines
    }
    assert len(keys) == len(engines)


def test_key_stable_for_equal_inputs():
    config = MachineConfig(total_processors=4, cluster_size=2)
    k1, _ = fingerprint_run(config, None, 1500, "app", PARAMS, source="s")
    k2, _ = fingerprint_run(
        MachineConfig(total_processors=4, cluster_size=2),
        CostModel(),
        1500,
        "app",
        jacobi.JacobiParams(n=16, iterations=2),
        source="s",
    )
    assert k1 == k2


def test_source_fingerprint_tracks_file_contents(tmp_path):
    (tmp_path / "a.py").write_text("x = 1\n")
    fp1 = source_fingerprint(tmp_path)
    assert fp1 == source_fingerprint(tmp_path)
    (tmp_path / "a.py").write_text("x = 2\n")
    assert source_fingerprint(tmp_path) != fp1
    (tmp_path / "b.py").write_text("")
    fp3 = source_fingerprint(tmp_path)
    (tmp_path / "b.py").rename(tmp_path / "c.py")
    assert source_fingerprint(tmp_path) != fp3  # renames count too


def test_default_source_fingerprint_is_memoized_and_stable():
    assert source_fingerprint() == source_fingerprint()
    assert len(source_fingerprint()) == 64


# ---------------------------------------------------------------------------
# RunResult / AppRun round-trip
# ---------------------------------------------------------------------------


def test_app_run_round_trips_bit_for_bit():
    config = MachineConfig(total_processors=4, cluster_size=2)
    run = jacobi.run(config, PARAMS)
    payload = app_run_to_dict(run)
    # through real JSON, like the cache file does
    restored = app_run_from_dict(json.loads(json.dumps(payload)))
    assert restored.name == run.name
    assert restored.valid == run.valid
    assert restored.max_error == run.max_error
    assert restored.result.config == run.result.config
    assert restored.result.total_time == run.result.total_time
    assert restored.result.breakdown() == run.result.breakdown()
    assert restored.result.lock_stats.hit_ratio == run.result.lock_stats.hit_ratio
    assert restored.result.message_flows == run.result.message_flows
    assert restored.result.network_stats == run.result.network_stats
    assert restored.result.transactions == run.result.transactions
    # and the canonical serialized forms are identical (the verify contract)
    assert canonical_json(app_run_to_dict(restored)) == canonical_json(payload)


# ---------------------------------------------------------------------------
# sweeps through the cache
# ---------------------------------------------------------------------------


def test_warm_sweep_is_all_hits_and_never_simulates(tmp_path, monkeypatch):
    cold = RunCache(tmp_path / "c")
    sweep_cold = _sweep(cold)
    npoints = len(sweep_cold.points)
    assert cold.stats.misses == npoints
    assert cold.stats.stores == npoints
    assert _entry_files(tmp_path / "c")

    def boom(*args, **kwargs):  # the acceptance criterion: zero simulation
        raise AssertionError("warm pass simulated a point")

    monkeypatch.setattr(sweep_mod, "_sweep_point_payload", boom)
    monkeypatch.setattr(sweep_mod, "_sweep_point", boom)
    warm = RunCache(tmp_path / "c")
    sweep_warm = _sweep(warm)
    assert warm.stats.hits == npoints
    assert warm.stats.misses == 0
    assert dataclasses.asdict(sweep_warm) == dataclasses.asdict(sweep_cold)


def test_cached_sweep_matches_uncached(tmp_path):
    plain = _sweep(False)
    cached = _sweep(RunCache(tmp_path / "c"))
    rewarmed = _sweep(RunCache(tmp_path / "c"))
    assert dataclasses.asdict(cached) == dataclasses.asdict(plain)
    assert dataclasses.asdict(rewarmed) == dataclasses.asdict(plain)


def test_incremental_sweep_simulates_only_the_new_point(tmp_path):
    cold = RunCache(tmp_path / "c")
    _sweep(cold, sizes=[1, 2])
    inc = RunCache(tmp_path / "c")
    sweep = _sweep(inc, sizes=[1, 2, 4])
    assert inc.stats.hits == 2
    assert inc.stats.misses == 1
    assert [p.cluster_size for p in sweep.points] == [1, 2, 4]


def test_source_change_invalidates_everything(tmp_path):
    cold = RunCache(tmp_path / "c")
    _sweep(cold)
    perturbed = RunCache(tmp_path / "c", source="a-different-source-tree")
    _sweep(perturbed)
    assert perturbed.stats.hits == 0
    assert perturbed.stats.misses == len(_sweep(False).points)


def test_corrupt_entry_is_a_miss_and_heals(tmp_path):
    cold = RunCache(tmp_path / "c")
    sweep_cold = _sweep(cold)
    victim = _entry_files(tmp_path / "c")[0]
    victim.write_text("{not json")
    warm = RunCache(tmp_path / "c")
    sweep_warm = _sweep(warm)
    assert warm.stats.misses == 1
    assert warm.stats.hits == len(sweep_cold.points) - 1
    assert warm.stats.stores == 1  # re-written
    assert dataclasses.asdict(sweep_warm) == dataclasses.asdict(sweep_cold)
    healed = RunCache(tmp_path / "c")
    _sweep(healed)
    assert healed.stats.misses == 0


# ---------------------------------------------------------------------------
# verification
# ---------------------------------------------------------------------------


def test_cache_verify_passes_on_intact_cache(tmp_path):
    _sweep(RunCache(tmp_path / "c"))
    verify = RunCache(tmp_path / "c", verify_fraction=1.0)
    sweep = _sweep(verify, cache_verify=True)
    assert verify.stats.verified == len(sweep.points)


def test_cache_verify_fails_loudly_on_divergence(tmp_path):
    _sweep(RunCache(tmp_path / "c"))
    victim = _entry_files(tmp_path / "c")[0]
    entry = json.loads(victim.read_text())
    entry["run"]["result"]["total_time"] += 1
    victim.write_text(json.dumps(entry))
    verify = RunCache(tmp_path / "c", verify_fraction=1.0)
    with pytest.raises(CacheVerifyError, match="diverged"):
        _sweep(verify, cache_verify=True)


def test_verify_sample_is_deterministic_and_nonempty():
    cache = RunCache("unused", verify_fraction=0.25)
    assert cache.verify_sample(0) == []
    assert cache.verify_sample(1) == [0]
    assert cache.verify_sample(8) == [0, 4]
    full = RunCache("unused", verify_fraction=1.0)
    assert full.verify_sample(3) == [0, 1, 2]


# ---------------------------------------------------------------------------
# activation, estimates, reporting
# ---------------------------------------------------------------------------


def test_resolve_cache_env_activation(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert resolve_cache(None) is None
    assert resolve_cache(False) is None

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
    cache = resolve_cache(None)
    assert cache is not None
    assert cache.root == tmp_path / "envcache"

    monkeypatch.setenv("REPRO_CACHE", "0")  # explicit off wins over the dir
    assert resolve_cache(None) is None

    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.setenv("REPRO_CACHE", "1")
    assert resolve_cache(None) is not None

    passthrough = RunCache(tmp_path / "x")
    assert resolve_cache(passthrough) is passthrough


def test_estimates_feed_cost_aware_scheduling(tmp_path):
    cold = RunCache(tmp_path / "c")
    _sweep(cold)
    fresh = RunCache(tmp_path / "c")
    exact = fresh.estimate_seconds("repro.apps.jacobi", 2)
    assert exact is not None and exact >= 0.0
    # unknown cluster size falls back to the workload mean
    assert fresh.estimate_seconds("repro.apps.jacobi", 64) is not None
    # unknown workload has no estimate (scheduler runs it first)
    assert fresh.estimate_seconds("repro.apps.nonesuch", 2) is None


def test_estimates_are_indexed_per_engine(tmp_path):
    """The wall-time LJF index keeps working with several engines in one
    store: exact per-engine estimates first, any-engine fallback after."""
    root = tmp_path / "c"
    _sweep(RunCache(root))
    _sweep(RunCache(root), protocol="swdsm")
    fresh = RunCache(root)
    assert fresh.estimate_seconds("repro.apps.jacobi", 2, "mgs") is not None
    assert fresh.estimate_seconds("repro.apps.jacobi", 2, "swdsm") is not None
    # an engine with no recorded points falls back to any-engine timings
    # (better than scheduling blind), an unknown workload stays unknown
    assert fresh.estimate_seconds("repro.apps.jacobi", 2, "gcs") is not None
    assert fresh.estimate_seconds("repro.apps.nonesuch", 2, "gcs") is None


def test_summary_counters_are_exported(tmp_path):
    from repro.metrics.export import run_cache_to_dict

    cache = RunCache(tmp_path / "c")
    _sweep(cache)
    d = run_cache_to_dict(cache)
    assert d["misses"] == cache.stats.misses > 0
    assert d["bytes_written"] > 0
    assert d["dir"] == str(tmp_path / "c")


def test_cli_cache_flags(tmp_path, capsys):
    from repro.cli import main

    cache_dir = str(tmp_path / "cli")
    assert main(["sweep", "jacobi", "--processors", "4", "--cache-dir",
                 cache_dir]) == 0
    out = capsys.readouterr().out
    assert "run cache" in out and "3 misses" in out
    assert main(["sweep", "jacobi", "--processors", "4", "--cache-dir",
                 cache_dir, "--cache-verify"]) == 0
    out = capsys.readouterr().out
    assert "3 hits" in out and "verified" in out


# ---------------------------------------------------------------------------
# concurrent use of one store (the repro.serve daemon's deployment shape)
# ---------------------------------------------------------------------------


def _hammer_store(root, worker, n_keys):
    """Store n_keys entries (some shared across workers) into one root."""
    cache = RunCache(root, source="fixed")
    for i in range(n_keys):
        # Even keys collide across workers (same preimage -> same key,
        # same bytes); odd keys are worker-private.
        tag = i if i % 2 == 0 else (worker, i)
        key, preimage = fingerprint_run(
            MachineConfig(total_processors=4, cluster_size=2),
            CostModel(),
            1500,
            f"wl-{tag}",
            None,
            source="fixed",
        )
        cache.put(key, preimage, {"payload": [worker, i]}, 0.01 * (i + 1))
    return cache.stats.stores


def test_two_processes_share_one_cache_dir(tmp_path):
    # The serve daemon plus a CLI run (or two daemons) writing the same
    # REPRO_CACHE_DIR concurrently: no torn entries, and the wall-time
    # index keeps every writer's records (read-merge-write under flock).
    import multiprocessing as mp

    root = tmp_path / "shared"
    n_keys = 24
    ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods()
                         else None)
    with ctx.Pool(2) as pool:
        stores = pool.starmap(
            _hammer_store, [(root, 0, n_keys), (root, 1, n_keys)]
        )
    assert stores == [n_keys, n_keys]

    # every entry file is intact, schema-valid JSON
    files = _entry_files(root)
    seen = set()
    for path in files:
        entry = json.loads(path.read_text())
        assert entry["key"] == path.stem
        seen.add(entry["fingerprint"]["workload"])
    # 12 shared workloads + 12 private ones per worker
    assert len(files) == n_keys // 2 + 2 * (n_keys // 2)

    # the index retained one record per distinct key from BOTH workers
    index = json.loads((root / "index.json").read_text())
    assert len(index["entries"]) == len(files)
    # and no temporary files leaked
    assert not list(root.rglob("*.tmp.*"))

    # a fresh instance schedules from the merged index
    reader = RunCache(root, source="fixed")
    assert reader.estimate_seconds("wl-0", 2) == pytest.approx(0.01)


def test_threads_sharing_one_runcache_do_not_tear(tmp_path):
    import threading

    root = tmp_path / "threaded"
    cache = RunCache(root, source="fixed")
    key, preimage = fingerprint_run(
        MachineConfig(total_processors=4, cluster_size=2),
        CostModel(), 1500, "wl-contended", None, source="fixed",
    )
    barrier = threading.Barrier(4)

    def writer():
        barrier.wait()
        for _ in range(10):
            cache.put(key, preimage, {"payload": "identical"}, 0.5)

    threads = [threading.Thread(target=writer) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    entry = json.loads((root / key[:2] / f"{key}.json").read_text())
    assert entry["run"] == {"payload": "identical"}
    assert cache.stats.stores == 40
    assert not list(root.rglob("*.tmp.*"))
