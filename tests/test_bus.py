"""Unit tests for the typed protocol message bus."""

import pytest

from repro.core.bus import MessageBus, handles
from repro.core.messages import (
    DIFF_ENTRY_BYTES,
    TABLE2_CLASSES,
    Ack,
    Diff,
    MsgType,
    OneWdata,
    Rdat,
    Rreq,
    message_class,
)
from repro.metrics.transactions import latency_summary, percentile
from repro.params import MachineConfig
from repro.runtime import Runtime


def make_rt():
    config = MachineConfig(total_processors=4, cluster_size=2,
                           inter_ssmp_delay=500)
    return Runtime(config), config


# ----------------------------------------------------------------------
# registration
# ----------------------------------------------------------------------

def test_every_table2_type_has_exactly_one_handler():
    rt, _ = make_rt()
    bus = rt.protocol.bus
    labels = bus.handled_labels()
    for mtype in MsgType:
        assert mtype.value in labels, f"no handler for {mtype.value}"
    bus.check_complete()  # must not raise


def test_duplicate_registration_raises():
    rt, _ = make_rt()

    class Rogue:
        @handles(MsgType.RREQ)
        def on_request(self, msg):
            pass

    with pytest.raises(ValueError, match="duplicate handler"):
        rt.protocol.bus.register(Rogue())


def test_missing_handler_is_a_lookup_error():
    rt, config = make_rt()
    bus = MessageBus(rt.machine, config)  # nothing registered
    with pytest.raises(LookupError):
        bus.check_complete()
    msg = Rreq(vpn=1, src_pid=0, src_cluster=0, dst_pid=2, dst_cluster=1, txn=0)
    with pytest.raises(LookupError):
        bus.send(msg)


def test_registry_covers_table2():
    assert set(TABLE2_CLASSES) == set(MsgType)
    for mtype, cls in TABLE2_CLASSES.items():
        assert cls.mtype is mtype
        assert cls.label == mtype.value
        assert message_class(mtype) is cls


# ----------------------------------------------------------------------
# wire sizes
# ----------------------------------------------------------------------

def test_wire_bytes_by_message_class():
    _, config = make_rt()
    common = dict(vpn=1, src_pid=0, src_cluster=0, dst_pid=2, dst_cluster=1,
                  txn=0)
    control = config.control_msg_bytes
    assert Rreq(**common).wire_bytes(config) == control
    assert Ack(**common).wire_bytes(config) == control
    assert Rdat(**common, data=None).wire_bytes(config) == (
        control + config.page_size
    )
    assert OneWdata(**common, indices=(), values=()).wire_bytes(config) == (
        control + config.page_size
    )
    diff = Diff(**common, indices=[3, 5, 9], values=[1.0, 2.0, 3.0])
    assert diff.wire_bytes(config) == control + 3 * DIFF_ENTRY_BYTES


# ----------------------------------------------------------------------
# observability
# ----------------------------------------------------------------------

def run_two_cluster_workload(rt):
    wpp = rt.config.words_per_page
    arr = rt.array("a", 2 * wpp, home=0)
    arr.init([0.0] * (2 * wpp))
    lk = rt.create_lock()

    def worker(env):
        for _ in range(2):
            yield from env.lock(lk)
            v = yield from env.read(arr.addr(env.pid))
            yield from env.write(arr.addr(env.pid), v + 1.0)
            # blind write to the second page: a WREQ fault
            yield from env.write(arr.addr(wpp + env.pid), v)
            yield from env.unlock(lk)
            yield from env.barrier()

    rt.spawn_all(worker)
    return rt.run()


def test_flow_summary_counts_and_bytes():
    rt, config = make_rt()
    result = run_two_cluster_workload(rt)
    flows = result.message_flows
    assert flows, "no message flows recorded"
    none = {"count": 0}
    req = flows.get("RREQ", none)["count"] + flows.get("WREQ", none)["count"]
    grants = flows.get("RDAT", none)["count"] + flows.get("WDAT", none)["count"]
    assert req > 0
    assert req == grants, "every request gets exactly one grant"
    assert flows["WDAT"]["bytes"] == flows["WDAT"]["count"] * (
        config.control_msg_bytes + config.page_size
    )
    for flow in flows.values():
        assert flow["latency_cycles"] >= flow["count"], (
            "wire latency must be positive per delivery"
        )


def test_transaction_latencies_exported():
    rt, _ = make_rt()
    result = run_two_cluster_workload(rt)
    txns = result.transactions
    assert set(txns) == {"fault", "release"}
    for kind in ("fault", "release"):
        s = txns[kind]
        assert s["count"] > 0
        # empty-DUQ releases legitimately complete in 0 cycles
        assert 0 <= s["p50"] <= s["p95"] <= s["max"]
        assert s["max"] > 0
    assert not rt.protocol.bus.open_txns, "all transactions must complete"


def test_taps_observe_deliveries():
    rt, _ = make_rt()
    seen = []
    rt.protocol.bus.add_tap(lambda msg, sent, now: seen.append((msg.label, now)))
    run_two_cluster_workload(rt)
    assert seen
    delivered = sum(f.count for f in rt.protocol.bus.flows.values())
    assert len(seen) == delivered
    times = [t for _, t in seen]
    assert times == sorted(times)


def test_messages_carry_their_transaction_id():
    rt, _ = make_rt()
    by_txn = {}
    rt.protocol.bus.add_tap(
        lambda msg, sent, now: by_txn.setdefault(msg.txn, []).append(msg.label)
    )
    run_two_cluster_workload(rt)
    assert all(txn >= 0 for txn in by_txn), "untracked protocol message"
    # A remote fault's request/grant chain shares one transaction id.
    chains = [ls for ls in by_txn.values() if "WREQ" in ls]
    assert chains
    assert any("WDAT" in ls for ls in chains)


# ----------------------------------------------------------------------
# percentiles
# ----------------------------------------------------------------------

def test_nearest_rank_percentile():
    samples = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
    assert percentile(samples, 50) == 50
    assert percentile(samples, 95) == 100
    assert percentile(samples, 100) == 100
    assert percentile([7], 50) == 7
    with pytest.raises(ValueError):
        percentile([], 50)


def test_latency_summary_shape():
    assert latency_summary([]) == {
        "count": 0, "mean": 0.0, "p50": 0, "p95": 0, "max": 0,
    }
    s = latency_summary([100, 200, 300])
    assert s["count"] == 3
    assert s["mean"] == 200.0
    assert s["p50"] == 200
    assert s["max"] == 300
