"""Arc-by-arc conformance with Table 1 of the paper.

Each test drives exactly one transition arc of the MGS protocol state
diagram (Figure 4) and asserts the table's preconditions, side effects,
and outgoing messages.  Together with ``tests/test_protocol.py`` (flow
scenarios) and ``tests/test_protocol_races.py`` (race resolutions), this
pins the implementation to the paper's specification.
"""

import pytest

from repro.core.page import FrameState, ServerState
from repro.params import MachineConfig
from repro.runtime import Runtime
from repro.svm import MapMode


@pytest.fixture
def rig():
    """Three 2-processor SSMPs; one page homed on processor 0."""
    config = MachineConfig(total_processors=6, cluster_size=2, inter_ssmp_delay=0)
    rt = Runtime(config)
    arr = rt.array("page", config.words_per_page, home=0)
    vpn = arr.base // config.page_size
    return rt, vpn


def drive_fault(rt, pid, vpn, write):
    done = []
    rt.protocol.fault(pid, vpn, write, lambda: done.append(rt.sim.now))
    rt.sim.run(max_events=100_000)
    assert done
    return done[0]


def drive_release(rt, pid):
    done = []
    rt.protocol.release(pid, lambda: done.append(rt.sim.now))
    rt.sim.run(max_events=100_000)
    assert done


def msg_count(rt, label):
    return rt.machine.stats.by_label[label]


class TestLocalClientArcs:
    def test_arc1_read_fault_on_resident_page(self, rig):
        """RTLBFault, pagestate != INV: mapping -> TLB, tlb_dir += {src}."""
        rt, vpn = rig
        drive_fault(rt, 2, vpn, False)  # establishes the frame
        rreqs = msg_count(rt, "RREQ")
        drive_fault(rt, 3, vpn, False)  # arc 1: local fill
        assert msg_count(rt, "RREQ") == rreqs  # no new request
        assert rt.protocol.tlbs[3].lookup(vpn) is MapMode.READ
        assert 3 in rt.protocol.frame(1, vpn).tlb_dir

    def test_arc2_write_fault_on_read_page_sends_upgrade(self, rig):
        """WTLBFault, pagestate == READ: UPGRADE => l_home."""
        rt, vpn = rig
        drive_fault(rt, 2, vpn, False)
        drive_fault(rt, 2, vpn, True)  # arc 2 -> arc 13 -> arc 7
        assert msg_count(rt, "UPGRADE") == 1
        assert msg_count(rt, "UP_ACK") == 1
        assert msg_count(rt, "WNOTIFY") == 1
        assert rt.protocol.tlbs[2].has_write(vpn)

    def test_arc3_write_fault_on_write_page_fills_locally(self, rig):
        """WTLBFault, pagestate == WRITE: TLB fill + DUQ append, no msgs."""
        rt, vpn = rig
        drive_fault(rt, 2, vpn, True)
        wreqs, upgrades = msg_count(rt, "WREQ"), msg_count(rt, "UPGRADE")
        drive_fault(rt, 3, vpn, True)  # arc 3
        assert msg_count(rt, "WREQ") == wreqs
        assert msg_count(rt, "UPGRADE") == upgrades
        assert vpn in rt.protocol.duqs[3]

    def test_arc5_fault_on_invalid_page_sends_request(self, rig):
        """R/WTLBFault, pagestate == INV: RREQ/WREQ => g_home, BUSY."""
        rt, vpn = rig
        drive_fault(rt, 2, vpn, False)
        assert msg_count(rt, "RREQ") == 1
        drive_fault(rt, 4, vpn, True)
        assert msg_count(rt, "WREQ") == 1

    def test_arc6_rdat_maps_page_read(self, rig):
        """RDAT: map page, tlb_dir = {src}, pagestate = READ."""
        rt, vpn = rig
        drive_fault(rt, 2, vpn, False)
        frame = rt.protocol.frame(1, vpn)
        assert frame.state is FrameState.READ
        assert frame.tlb_dir == {2}
        assert frame.twin is None  # read grants are not twinned

    def test_arc7_wdat_maps_page_write_with_twin_and_duq(self, rig):
        """WDAT: map page, pagestate = WRITE, DUQ += {addr}."""
        rt, vpn = rig
        drive_fault(rt, 2, vpn, True)
        frame = rt.protocol.frame(1, vpn)
        assert frame.state is FrameState.WRITE
        assert frame.twin is not None
        assert vpn in rt.protocol.duqs[2]

    def test_arcs8_to_10_release_walks_duq_serially(self, rig):
        """Release: one REL per DUQ page, continuing on each RACK."""
        rt, vpn = rig
        config = rt.config
        arr2 = rt.array("page2", config.words_per_page, home=1)
        vpn2 = arr2.base // config.page_size
        drive_fault(rt, 2, vpn, True)
        drive_fault(rt, 2, vpn2, True)
        assert len(rt.protocol.duqs[2]) == 2
        drive_release(rt, 2)
        assert msg_count(rt, "REL") == 2
        assert msg_count(rt, "RACK") == 2
        assert not rt.protocol.duqs[2]


class TestRemoteClientArcs:
    def test_arcs11_12_pinv_invalidates_tlb_and_duq(self, rig):
        """PINV: invalidate TLB (and DUQ entry), reply PINV_ACK."""
        rt, vpn = rig
        drive_fault(rt, 2, vpn, True)
        drive_fault(rt, 3, vpn, True)
        drive_fault(rt, 4, vpn, True)  # second writer cluster
        rt.protocol.frame(2, vpn).data[0] = 1.0
        drive_release(rt, 4)  # round invalidates cluster 1's mappings
        assert rt.protocol.tlbs[2].lookup(vpn) is None
        assert rt.protocol.tlbs[3].lookup(vpn) is None
        assert vpn not in rt.protocol.duqs[2]
        assert vpn not in rt.protocol.duqs[3]
        assert msg_count(rt, "PINV") == msg_count(rt, "PINV_ACK")

    def test_arc13_upgrade_twins_and_notifies(self, rig):
        """UPGRADE: make twin, pagestate = WRITE; UP_ACK + WNOTIFY out."""
        rt, vpn = rig
        drive_fault(rt, 2, vpn, False)
        frame = rt.protocol.frame(1, vpn)
        assert frame.twin is None
        drive_fault(rt, 3, vpn, True)  # upgrade by the non-owner
        assert frame.state is FrameState.WRITE
        assert frame.twin is not None
        home = rt.protocol.home(vpn)
        assert home.write_dir == {1} and 1 not in home.read_dir  # arc 18

    def test_arc14_read_invalidation_cleans_and_acks(self, rig):
        """INV, pagestate == READ: clean + free page, PINV fan-out, ACK."""
        rt, vpn = rig
        drive_fault(rt, 2, vpn, False)  # reader
        drive_fault(rt, 4, vpn, True)  # writer elsewhere
        rt.protocol.frame(2, vpn).data[0] = 9.0
        acks = msg_count(rt, "ACK")
        drive_release(rt, 4)
        assert msg_count(rt, "ACK") > acks
        assert rt.protocol.frame(1, vpn).state is FrameState.INVALID
        assert rt.protocol.frame(1, vpn).data is None

    def test_arc14_write_invalidation_diffs(self, rig):
        """INV, pagestate == WRITE: make diff, free page, DIFF home."""
        rt, vpn = rig
        drive_fault(rt, 2, vpn, True)
        drive_fault(rt, 4, vpn, True)
        rt.protocol.frame(1, vpn).data[3] = 7.0
        rt.protocol.frame(2, vpn).data[4] = 8.0
        drive_release(rt, 2)
        assert msg_count(rt, "DIFF") >= 1
        assert rt.protocol.home(vpn).data[3] == 7.0
        assert rt.protocol.home(vpn).data[4] == 8.0

    def test_arc14_single_writer_invalidation_sends_full_page(self, rig):
        """1WINV: clean page, 1WDATA home, page stays cached."""
        rt, vpn = rig
        drive_fault(rt, 2, vpn, True)
        rt.protocol.frame(1, vpn).data[5] = 5.0
        drive_release(rt, 2)
        assert msg_count(rt, "1WINV") == 1
        assert msg_count(rt, "1WDATA") == 1
        frame = rt.protocol.frame(1, vpn)
        assert frame.state is FrameState.WRITE  # retained
        assert frame.tlb_dir == set()  # but unmapped
        assert rt.protocol.home(vpn).data[5] == 5.0


class TestServerArcs:
    def test_arc17_rreq_adds_reader_and_sends_rdat(self, rig):
        rt, vpn = rig
        drive_fault(rt, 2, vpn, False)
        home = rt.protocol.home(vpn)
        assert home.read_dir == {1}
        assert home.state is ServerState.READ
        assert msg_count(rt, "RDAT") == 1

    def test_arc18_wreq_adds_writer_and_sends_wdat(self, rig):
        rt, vpn = rig
        drive_fault(rt, 2, vpn, True)
        home = rt.protocol.home(vpn)
        assert home.write_dir == {1}
        assert home.state is ServerState.WRITE
        assert msg_count(rt, "WDAT") == 1

    def test_arc20_release_with_multiple_writers_invalidates_all(self, rig):
        """REL, |write_dir| != 1: INV => read_dir ∪ write_dir."""
        rt, vpn = rig
        drive_fault(rt, 0, vpn, False)  # home-cluster reader
        drive_fault(rt, 2, vpn, True)
        drive_fault(rt, 4, vpn, True)
        invs = msg_count(rt, "INV")
        drive_release(rt, 2)
        # All three replica holders were targeted.
        assert msg_count(rt, "INV") >= invs + 3
        assert msg_count(rt, "1WINV") == 0

    def test_arc20_single_writer_split_targets(self, rig):
        """REL, |write_dir| == 1: INV => read_dir, 1WINV => write_dir."""
        rt, vpn = rig
        drive_fault(rt, 4, vpn, False)  # reader cluster 2
        drive_fault(rt, 2, vpn, True)  # sole writer cluster 1
        drive_release(rt, 2)
        assert msg_count(rt, "1WINV") == 1
        assert msg_count(rt, "INV") >= 1  # the reader
        assert rt.protocol.frame(2, vpn).state is FrameState.INVALID

    def test_arc22_requests_queued_during_release(self, rig):
        """RREQ during REL_IN_PROG: rd += {src}, served at completion."""
        rt, vpn = rig
        rt2_delay = MachineConfig(
            total_processors=6, cluster_size=2, inter_ssmp_delay=2000
        )
        rt2 = Runtime(rt2_delay)
        arr = rt2.array("p", rt2_delay.words_per_page, home=0)
        vpn2 = arr.base // rt2_delay.page_size
        drive_fault(rt2, 2, vpn2, True)
        rt2.protocol.frame(1, vpn2).data[0] = 3.0
        done = []
        rt2.protocol.release(2, lambda: done.append("rel"))
        rt2.sim.schedule(2500, rt2.protocol.fault, 4, vpn2, False,
                         lambda: done.append("read"))
        rt2.sim.run(max_events=200_000)
        assert done == ["rel", "read"] or done == ["read", "rel"]
        assert rt2.protocol.stats["requests_queued_on_release"] >= 1
        # The queued reader received post-merge data.
        assert rt2.protocol.frame(2, vpn2).data[0] == 3.0

    def test_arc23_completion_acknowledges_all_releasers(self, rig):
        """ACK/DIFF/1WDATA with count == 0: RACK => rl."""
        rt, vpn = rig
        drive_fault(rt, 2, vpn, True)
        drive_fault(rt, 4, vpn, True)
        done = []
        rt.protocol.release(2, lambda: done.append("a"))
        rt.protocol.release(4, lambda: done.append("b"))
        rt.sim.run(max_events=200_000)
        assert sorted(done) == ["a", "b"]
        home = rt.protocol.home(vpn)
        assert home.state is not ServerState.REL_IN_PROG
        assert not home.rl and home.count == 0
