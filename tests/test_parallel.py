"""The parallel sweep runner changes wall-clock, never results."""

import dataclasses
import os

import pytest

from repro.apps import jacobi
from repro.bench import parallel_map, resolve_jobs, run_figures, run_sweep
from repro.bench import parallel as par


# Worker functions must be module-level: the persistent pool's workers
# resolve submitted functions by qualified name.
def _negate(x):
    return -x


def _read_env(key):
    return os.environ.get(key)


def _maybe_boom(x):
    if x < 0:
        raise ValueError(f"boom {x}")
    return x * 10


def _replay_store_root():
    """Worker-side view of the env-resolved replay store (None when off)."""
    from repro.bench.cache import resolve_replay_store

    store = resolve_replay_store(None)
    return None if store is None else str(store.root)


def _scanphase_replay_point():
    """One persistent-replay-eligible scanphase point; replay counters."""
    from repro.apps import scanphase
    from repro.params import MachineConfig

    run = scanphase.run(
        MachineConfig(total_processors=4, cluster_size=2),
        scanphase.ScanPhaseParams(words=256, phases=6, window=16),
    )
    assert run.valid
    return run.result.replay_cache


# ---------------------------------------------------------------------------
# resolve_jobs
# ---------------------------------------------------------------------------


def test_default_is_serial(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs() == 1
    assert resolve_jobs(None) == 1


def test_explicit_argument_wins_over_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "7")
    assert resolve_jobs(3) == 3


def test_env_var_supplies_the_default(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert resolve_jobs() == 3


def test_zero_means_all_cores(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(0) == (os.cpu_count() or 1)


def test_malformed_env_warns_and_runs_serial(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "many")
    with pytest.warns(RuntimeWarning, match="REPRO_JOBS"):
        assert resolve_jobs() == 1


# ---------------------------------------------------------------------------
# parallel_map
# ---------------------------------------------------------------------------


def test_parallel_map_serial_path_preserves_order():
    assert parallel_map(abs, [(-1,), (2,), (-3,)], jobs=1) == [1, 2, 3]


def test_parallel_map_workers_preserve_order():
    # `abs` is a picklable builtin, so this exercises real subprocesses.
    assert parallel_map(abs, [(-1,), (2,), (-3,), (-4,)], jobs=2) == [1, 2, 3, 4]


def test_parallel_map_single_item_stays_in_process():
    calls = []

    def local(x):  # unpicklable closure: proves no pool was spawned
        calls.append(x)
        return x * 10

    assert parallel_map(local, [(4,)], jobs=8) == [40]
    assert calls == [4]


def test_parallel_map_single_cpu_stays_in_process(monkeypatch):
    # Forking on a 1-core box is strictly slower (the committed perf
    # baseline shows 0.178s parallel vs 0.150s serial); parallel_map
    # must fall back to the plain loop.
    monkeypatch.setattr(os, "cpu_count", lambda: 1)
    calls = []

    def local(x):  # unpicklable closure: proves no pool was spawned
        calls.append(x)
        return -x

    assert parallel_map(local, [(1,), (2,), (3,)], jobs=4) == [-1, -2, -3]
    assert calls == [1, 2, 3]


def test_parallel_map_priorities_preserve_input_order(monkeypatch):
    # Priorities reorder *submission* (longest-job-first), never results.
    monkeypatch.setattr(os, "cpu_count", lambda: 2)
    assert parallel_map(
        abs, [(-1,), (2,), (-3,), (-4,)], jobs=2, priorities=[0.1, 5.0, None, 1.0]
    ) == [1, 2, 3, 4]


def test_parallel_map_priorities_length_mismatch_raises():
    with pytest.raises(ValueError, match="priorities"):
        parallel_map(abs, [(-1,), (2,)], jobs=2, priorities=[1.0])


def test_submission_order_is_longest_first_unknowns_lead():
    from repro.bench.parallel import _submission_order

    assert _submission_order(4, [0.1, 5.0, None, 1.0]) == [2, 1, 3, 0]
    assert _submission_order(3, None) == [0, 1, 2]
    # ties keep input order (stable, deterministic)
    assert _submission_order(3, [1.0, 1.0, 2.0]) == [2, 0, 1]


# ---------------------------------------------------------------------------
# the persistent pool
# ---------------------------------------------------------------------------


@pytest.fixture
def fresh_pool(monkeypatch):
    """Pretend to be multi-core and start from (and leave behind) no pool."""
    monkeypatch.setattr(os, "cpu_count", lambda: 2)
    par.shutdown_pool()
    yield
    par.shutdown_pool()


def test_pool_persists_across_calls(fresh_pool):
    assert parallel_map(_negate, [(1,), (2,)], jobs=2) == [-1, -2]
    first = par._POOL
    assert first is not None
    assert parallel_map(_negate, [(3,), (4,)], jobs=2) == [-3, -4]
    assert par._POOL is first  # reused, not re-forked


def test_pool_grows_but_never_shrinks(fresh_pool):
    parallel_map(_negate, [(1,), (2,)], jobs=2)
    assert par._POOL_WORKERS == 2
    parallel_map(_negate, [(1,), (2,), (3,)], jobs=3)
    grown = par._POOL
    assert par._POOL_WORKERS == 3
    # A smaller request is windowed onto the big pool, not a shrink.
    parallel_map(_negate, [(1,), (2,)], jobs=2)
    assert par._POOL is grown
    assert par._POOL_WORKERS == 3


def test_env_snapshot_reaches_long_lived_workers(fresh_pool, monkeypatch):
    key = "REPRO_TEST_POOL_FLAG"
    monkeypatch.setenv(key, "on")
    assert parallel_map(_read_env, [(key,), (key,)], jobs=2) == ["on", "on"]
    # Removal must propagate too: the workers forked while it was set.
    monkeypatch.delenv(key)
    assert parallel_map(_read_env, [(key,), (key,)], jobs=2) == [None, None]


def test_pool_warmed_with_replay_off_honors_replay_on_jobs(
    fresh_pool, monkeypatch, tmp_path
):
    """A worker's replay-store state must track the per-job env snapshot.

    Regression: module-level store state derived from ``REPRO_*`` at
    first use, if not keyed by the env values, would let a pool warmed
    under ``REPRO_NO_REPLAY=1`` keep serving "replay off" to a later
    replay-on job (and vice versa, a stale store directory).
    """
    store_dir = tmp_path / "rc"
    monkeypatch.setenv("REPRO_NO_REPLAY", "1")
    monkeypatch.delenv("REPRO_REPLAY_CACHE", raising=False)
    monkeypatch.delenv("REPRO_REPLAY_CACHE_DIR", raising=False)
    # Warm the pool (and each worker's env-derived module state) with
    # replay globally off: no store resolves.
    assert parallel_map(_replay_store_root, [(), ()], jobs=2) == [None, None]

    # Flip the environment: replay on, persistent store at store_dir.
    monkeypatch.delenv("REPRO_NO_REPLAY")
    monkeypatch.setenv("REPRO_REPLAY_CACHE_DIR", str(store_dir))
    assert parallel_map(_replay_store_root, [(), ()], jobs=2) == [
        str(store_dir),
        str(store_dir),
    ]

    # And a real replay-on job must record into the store through the
    # warmed (previously replay-off) workers.
    counters = parallel_map(_scanphase_replay_point, [()], jobs=2)[0]
    assert counters["replayed"] > 0
    assert counters["stores"] >= 1
    assert any(store_dir.rglob("*.json"))

    # Flip back off: the same workers must stop resolving a store.
    monkeypatch.setenv("REPRO_NO_REPLAY", "1")
    assert parallel_map(_replay_store_root, [(), ()], jobs=2) == [None, None]


def test_errors_raise_lowest_input_index(fresh_pool):
    with pytest.raises(ValueError, match="boom -2"):
        parallel_map(
            _maybe_boom, [(1,), (-2,), (3,), (-4,)], jobs=2
        )
    # An ordinary job exception must not poison the pool.
    assert parallel_map(_maybe_boom, [(5,), (6,)], jobs=2) == [50, 60]


def test_shutdown_pool_is_idempotent(fresh_pool):
    parallel_map(_negate, [(1,), (2,)], jobs=2)
    par.shutdown_pool()
    assert par._POOL is None
    par.shutdown_pool()  # second call is a no-op
    assert parallel_map(_negate, [(7,), (8,)], jobs=2) == [-7, -8]


def test_single_cpu_fallback_prints_one_notice(monkeypatch, capsys):
    monkeypatch.setattr(os, "cpu_count", lambda: 1)
    monkeypatch.setattr(par, "_WARNED_SINGLE_CPU", False)
    parallel_map(_negate, [(1,), (2,)], jobs=4)
    err = capsys.readouterr().err
    assert "single-CPU machine" in err and "jobs=4" in err
    parallel_map(_negate, [(1,), (2,)], jobs=4)
    assert "single-CPU" not in capsys.readouterr().err  # once per process


def test_single_cpu_notice_not_printed_for_serial_requests(
    monkeypatch, capsys
):
    monkeypatch.setattr(os, "cpu_count", lambda: 1)
    monkeypatch.setattr(par, "_WARNED_SINGLE_CPU", False)
    parallel_map(_negate, [(1,), (2,)], jobs=1)
    parallel_map(_negate, [(1,)], jobs=4)
    assert capsys.readouterr().err == ""


# ---------------------------------------------------------------------------
# sweeps: serial and parallel are byte-identical
# ---------------------------------------------------------------------------


def _tiny_params():
    return jacobi.JacobiParams(n=16, iterations=2)


def test_run_sweep_parallel_matches_serial():
    serial = run_sweep(jacobi, params=_tiny_params(), total_processors=4, jobs=1)
    twice = run_sweep(jacobi, params=_tiny_params(), total_processors=4, jobs=2)
    assert dataclasses.asdict(serial) == dataclasses.asdict(twice)


def test_run_figures_matches_individual_runs():
    from repro.bench import run_figure

    farmed = run_figures(["fig6"], total_processors=8, jobs=2)
    assert [key for key, _ in farmed] == ["fig6"]
    direct = run_figure("fig6", total_processors=8)
    assert dataclasses.asdict(farmed[0][1]) == dataclasses.asdict(direct)
