"""Tests for the reliable-delivery transport.

The centerpiece is a seeded-random property test: arbitrary message
schedules over a fabric that drops, duplicates, and delays must still
reach every handler exactly once, in per-channel order.
"""

import random

import pytest

from repro.machine import Machine
from repro.params import CostModel, MachineConfig, NetworkConfig
from repro.sim import Simulator


def make_machine(net, total=8, cluster=2, delay=500):
    sim = Simulator()
    config = MachineConfig(
        total_processors=total, cluster_size=cluster,
        inter_ssmp_delay=delay, network=net,
    )
    return sim, Machine(sim, config, CostModel())


LOSSY = dict(drop_rate=0.3, dup_rate=0.2, delay_rate=0.2, delay_cycles=1500)


@pytest.mark.parametrize("schedule_seed", [1, 2, 3, 4, 5])
def test_exactly_once_in_order_under_faults(schedule_seed):
    """Property: random schedules + drop/dup/delay => exactly-once,
    per-channel-in-order handler delivery."""
    rng = random.Random(schedule_seed)
    net = NetworkConfig(fault_seed=schedule_seed * 7919, **LOSSY)
    sim, m = make_machine(net)
    delivered: dict[tuple[int, int], list[int]] = {}
    sent: dict[tuple[int, int], int] = {}

    def handler(ch, payload):
        delivered.setdefault(ch, []).append(payload)

    n_messages = 120
    time = 0
    for _ in range(n_messages):
        src = rng.randrange(8)
        # pick a destination in another cluster
        dst = rng.choice([p for p in range(8) if p // 2 != src // 2])
        ch = (src, dst)
        payload = sent.get(ch, 0)
        sent[ch] = payload + 1
        m.send(src, dst, handler, ch, payload, at=time, label="prop")
        time += rng.randrange(0, 200)
    sim.run(max_events=2_000_000)

    assert set(delivered) == set(sent)
    for ch, count in sent.items():
        # exactly once, in order: the payload sequence is 0..count-1
        assert delivered[ch] == list(range(count)), f"channel {ch}"
    assert m.transport.in_flight == 0
    stats = m.stats
    assert stats.drops > 0
    assert stats.retransmits > 0
    assert stats.dups_suppressed > 0


def test_reliable_without_faults_is_transparent():
    net = NetworkConfig(reliable=True)
    sim, m = make_machine(net, delay=1000)
    arrivals = []
    m.send(0, 2, lambda: arrivals.append(sim.now))
    m.send(0, 2, lambda: arrivals.append(sim.now))
    sim.run()
    assert arrivals == [1000, 1000]
    assert m.stats.retransmits == 0
    assert m.stats.acks_sent == 2
    assert m.stats.dups_suppressed == 0


def test_out_of_order_send_times_still_deliver_in_wire_order():
    """Sequence numbers are assigned at the staged send time, not at
    call time, so a thread-local future timestamp cannot invert a
    channel's delivery order."""
    net = NetworkConfig(reliable=True)
    sim, m = make_machine(net, delay=1000)
    order = []
    m.send(0, 2, lambda: order.append("late"), at=5000)
    m.send(0, 2, lambda: order.append("early"), at=0)
    sim.run()
    assert order == ["early", "late"]


def test_retransmission_recovers_a_dropped_message():
    # Drop rate 0.999999 would retransmit forever; use a seed/rate pair
    # where the first transmission drops and a retry lands.
    net = NetworkConfig(drop_rate=0.45, fault_seed=3)
    sim, m = make_machine(net, delay=100)
    delivered = []
    for i in range(20):
        m.send(0, 2, delivered.append, i, at=i * 1000)
    sim.run(max_events=500_000)
    assert delivered == list(range(20))
    assert m.stats.drops > 0
    assert m.stats.retransmits >= m.stats.drops - 1  # acks can drop too
    assert m.transport.in_flight == 0


def test_retransmit_backoff_doubles_up_to_cap():
    net = NetworkConfig(reliable=True, ack_timeout=1000, backoff_cap=3)
    sim, m = make_machine(net)
    t = m.transport
    assert t.base_timeout == 1000
    # attempts -> timeout used after that attempt
    timeouts = [1000 << min(a - 1, 3) for a in (1, 2, 3, 4, 5, 6)]
    assert timeouts == [1000, 2000, 4000, 8000, 8000, 8000]


def test_transport_counters_exported():
    from repro.apps import jacobi
    from repro.metrics import run_result_to_dict

    net = NetworkConfig(drop_rate=0.1)
    config = MachineConfig(
        total_processors=4, cluster_size=1, inter_ssmp_delay=500, network=net
    )
    run = jacobi.run(config, jacobi.JacobiParams(n=16, iterations=2))
    assert run.valid
    exported = run_result_to_dict(run.result)
    netstats = exported["network"]
    assert netstats["reliable_transport"] is True
    assert netstats["drops"] > 0
    assert netstats["retransmits"] > 0
    assert "faults_by_link" in netstats


def test_transport_works_over_contended_bus():
    net = NetworkConfig(
        external="bus", bus_bandwidth=2.0, drop_rate=0.2, fault_seed=11
    )
    sim, m = make_machine(net)
    delivered = []
    for i in range(30):
        m.send(0, 2, delivered.append, i, at=i * 500, size=400)
    sim.run(max_events=500_000)
    assert delivered == list(range(30))
    assert m.stats.lan_queue_cycles >= 0
    assert m.transport.in_flight == 0
