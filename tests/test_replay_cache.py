"""The persistent cross-run replay store: correctness and invalidation.

The store (:class:`repro.bench.cache.ReplayStore`) lets a *fresh
process* apply phase deltas recorded by an earlier run.  The acceptance
bar mirrors in-process replay: a store-warm run must be bit-for-bit
identical to both the recording run and a replay-off run, for every
registered engine.  On top of that these tests pin the store's safety
rails — source-fingerprint invalidation, self-healing on corrupt or
truncated entries, the ``REPRO_NO_REPLAY`` kill switch dominating the
store selectors — and run one genuine two-process round trip through
``REPRO_REPLAY_CACHE_DIR``.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.apps import scanphase
from repro.bench.cache import ReplayStore, resolve_replay_store
from repro.core.engine import engine_names
from repro.params import MachineConfig

ENGINES = engine_names()

SCAN = scanphase.ScanPhaseParams(words=256, phases=6, window=16, chunk=8)


def _scan_state(engine, store, replay=True):
    """Full externally visible machine state of one scanphase run.

    ``store=False`` disables persistence (in-process replay only);
    a :class:`ReplayStore` instance pins it explicitly.
    """
    config = MachineConfig(
        total_processors=4, cluster_size=2, protocol=engine
    )
    rt = scanphase.make_runtime(config, replay=replay, replay_store=store)
    scanphase.build(rt, SCAN)
    result = rt.run()
    state = {
        "total_time": result.total_time,
        "threads": [
            (t.time, t.user, t.lock, t.barrier, t.mgs, t.finish_time)
            for t in result.threads
        ],
        "cache": dict(result.cache_stats),
        "protocol": dict(result.protocol_stats),
        "messages": (result.messages_inter_ssmp, result.messages_intra_ssmp),
        "flows": result.message_flows,
    }
    return state, result.replay_cache


# ---------------------------------------------------------------------------
# cross-run equivalence (the acceptance bar)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine", ENGINES)
def test_cross_run_replay_equivalence(engine, tmp_path):
    """A fresh runtime fed only persisted deltas reproduces the full
    machine state of both the recording run and a replay-off run."""
    off, _ = _scan_state(engine, store=False, replay=False)
    cold, cold_counters = _scan_state(engine, store=ReplayStore(tmp_path))
    assert cold_counters["stores"] >= 1
    assert cold_counters["hits"] == 0
    # A fresh ReplayStore instance models a cold process: its decoded
    # payload memo is empty, so every record comes off disk.
    warm, warm_counters = _scan_state(engine, store=ReplayStore(tmp_path))
    assert warm == cold == off
    assert warm_counters["hits"] > 0
    assert warm_counters["loads"] >= 1
    assert warm_counters["stores"] == 0
    # Persistence replays phases the recording run had to execute.
    assert warm_counters["replayed"] > cold_counters["replayed"]


def test_store_warm_run_validates(tmp_path):
    config = MachineConfig(total_processors=4, cluster_size=2)
    store = ReplayStore(tmp_path)
    scanphase.run(config, SCAN).require_valid()  # no store: baseline
    run = scanphase.run(config, SCAN)  # env off -> no store either
    assert run.result.replay_cache["hits"] == 0
    # Prime, then validate a warm run end to end through scanphase.run's
    # own golden check.
    rt = scanphase.make_runtime(config, replay_store=store)
    scanphase.build(rt, SCAN)
    rt.run()
    rt2 = scanphase.make_runtime(config, replay_store=ReplayStore(tmp_path))
    checks = scanphase.build(rt2, SCAN)
    result = rt2.run()
    assert result.replay_cache["hits"] > 0
    golden = scanphase.golden(SCAN, 4)
    measured = [v for _, v in sorted(checks)]
    assert measured == pytest.approx(golden)


# ---------------------------------------------------------------------------
# invalidation and self-healing
# ---------------------------------------------------------------------------


def test_source_fingerprint_invalidates_records(tmp_path):
    """A record written under one simulator source tree is never matched
    under another — the context key embeds the fingerprint."""
    baseline, first = _scan_state(
        "mgs", store=ReplayStore(tmp_path, source="fp-one")
    )
    assert first["stores"] >= 1
    changed, second = _scan_state(
        "mgs", store=ReplayStore(tmp_path, source="fp-two")
    )
    assert changed == baseline
    assert second["hits"] == 0  # old records invisible
    assert second["stores"] >= 1  # re-recorded under the new context
    back, third = _scan_state(
        "mgs", store=ReplayStore(tmp_path, source="fp-one")
    )
    assert back == baseline
    assert third["hits"] > 0 and third["stores"] == 0


def test_corrupt_and_truncated_entries_heal_to_live_run(tmp_path):
    baseline, _ = _scan_state("mgs", store=ReplayStore(tmp_path))
    entries = sorted(tmp_path.rglob("*.json"))
    assert entries
    entries[0].write_text("{ truncated garb")  # undecodable
    for extra in entries[1:]:
        extra.write_text(json.dumps({"replay_schema": -1}))  # wrong shape
    healed, counters = _scan_state("mgs", store=ReplayStore(tmp_path))
    assert healed == baseline  # fell back to live execution, bit-for-bit
    assert counters["hits"] == 0
    assert counters["stores"] >= 1  # rewrote the damaged entries
    again, after = _scan_state("mgs", store=ReplayStore(tmp_path))
    assert again == baseline
    assert after["hits"] > 0  # healed entries serve again


def test_record_payload_round_trip_rejects_shape_mismatch(tmp_path):
    """Payload decoding is defensive: a record from a different machine
    shape (stat-cell layout) is rejected, not mis-applied."""
    from repro.runtime.replay import record_from_payload

    store = ReplayStore(tmp_path)
    _scan_state("mgs", store=store)
    entry = json.loads(sorted(tmp_path.rglob("*.json"))[0].read_text())
    payload = entry["record"]
    n_ints = len(payload["stats"]["ints"])
    ok = record_from_payload(payload, n_ints, len(payload["stats"]["counts"]), 4)
    assert ok is not None and ok.from_store
    assert record_from_payload(payload, n_ints + 1, 1, 4) is None
    assert record_from_payload({"advance": 1}, n_ints, 1, 4) is None


# ---------------------------------------------------------------------------
# environment resolution
# ---------------------------------------------------------------------------


def test_no_replay_env_dominates_store_selectors(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_REPLAY_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_REPLAY_CACHE", "1")
    assert resolve_replay_store(None) is not None
    monkeypatch.setenv("REPRO_NO_REPLAY", "1")
    assert resolve_replay_store(None) is None


def test_resolver_memoizes_per_environment_state(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_NO_REPLAY", raising=False)
    monkeypatch.setenv("REPRO_REPLAY_CACHE_DIR", str(tmp_path / "a"))
    a1 = resolve_replay_store(None)
    a2 = resolve_replay_store(None)
    assert a1 is a2  # same env -> shared store (and payload memo)
    monkeypatch.setenv("REPRO_REPLAY_CACHE_DIR", str(tmp_path / "b"))
    b = resolve_replay_store(None)
    assert b is not a1 and b.root == tmp_path / "b"


def test_off_by_default(monkeypatch):
    for var in ("REPRO_REPLAY_CACHE", "REPRO_REPLAY_CACHE_DIR"):
        monkeypatch.delenv(var, raising=False)
    assert resolve_replay_store(None) is None
    assert resolve_replay_store(False) is None


# ---------------------------------------------------------------------------
# a real two-process round trip
# ---------------------------------------------------------------------------

_SUBPROCESS_PROGRAM = """\
import json
from repro.apps import scanphase
from repro.params import MachineConfig

run = scanphase.run(
    MachineConfig(total_processors=4, cluster_size=2),
    scanphase.ScanPhaseParams(words=256, phases=6, window=16, chunk=8),
)
assert run.valid
r = run.result
state = {
    "total_time": r.total_time,
    "threads": [
        [t.time, t.user, t.lock, t.barrier, t.mgs, t.finish_time]
        for t in r.threads
    ],
    "cache": dict(r.cache_stats),
    "protocol": dict(r.protocol_stats),
    "messages": [r.messages_inter_ssmp, r.messages_intra_ssmp],
}
print(json.dumps(state, sort_keys=True))
print(json.dumps(r.replay_cache, sort_keys=True))
"""


def test_separate_processes_share_the_replay_store(tmp_path):
    """Cold process records; a second, genuinely fresh process replays
    from disk and emits byte-identical state."""
    env = dict(os.environ)
    env.pop("REPRO_NO_REPLAY", None)
    env["REPRO_REPLAY_CACHE_DIR"] = str(tmp_path)
    env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])

    def run_once():
        proc = subprocess.run(
            [sys.executable, "-c", _SUBPROCESS_PROGRAM],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        state_line, counter_line = proc.stdout.splitlines()
        return state_line, json.loads(counter_line)

    cold_state, cold = run_once()
    assert cold["stores"] >= 1 and cold["hits"] == 0
    warm_state, warm = run_once()
    assert warm_state == cold_state  # byte-identical observables
    assert warm["hits"] > 0 and warm["stores"] == 0
