"""Intra-SSMP hardware cache coherence (Alewife-style directory)."""

from repro.hw.coherence import AccessClass, CacheSystem

__all__ = ["AccessClass", "CacheSystem"]
