"""Functional model of Alewife's hardware cache coherence within an SSMP.

The paper treats intra-SSMP hardware shared memory as a fast black box
with the measured miss penalties of Table 3 (local 11, remote 38, 2-party
42, 3-party 63 cycles, and 425 cycles once the software-extended LimitLESS
directory takes over).  We reproduce exactly that: a per-cluster, per-line
directory tracks which processors cache each line and in what state, and
every access is classified into one of the cost classes.  Directory state
changes take effect immediately (functional simulation); the access's
latency class is charged to the issuing processor by the runtime.

Classification rules:

* **hit** — the line is already cached with sufficient privilege.
* **local / remote miss** — the line is clean; cost depends on whether the
  line's home memory (the node hosting the page frame) is the issuing
  processor's own memory.
* **2-party / 3-party miss** — the line is dirty in another processor's
  cache (or, for writes, shared copies must be invalidated); the cost
  depends on how many distinct nodes take part in the transaction.
* **software directory** — the sharer set outgrew the hardware directory
  pointers, so a software handler services the miss (Table 3's "Remote
  Software", 425 cycles).

Capacity and conflict misses are not modeled (the directory acts as if
caches were infinite); the paper's working sets at our scaled problem
sizes fit comfortably in Alewife's 64 KB SRAM, and the effects the paper
studies — false sharing and multigrain locality — come from coherence
misses, which are modeled.
"""

from __future__ import annotations

import enum
from collections import Counter

from repro.params import CostModel, MachineConfig

__all__ = ["AccessClass", "CacheSystem"]


class AccessClass(enum.Enum):
    """Latency class of a hardware shared-memory access."""

    HIT = "hit"
    LOCAL = "local"
    REMOTE = "remote"
    TWO_PARTY = "2party"
    THREE_PARTY = "3party"
    SOFTWARE = "software"


class CacheSystem:
    """Per-cluster line directories with Table 3 cost classification."""

    def __init__(self, config: MachineConfig, costs: CostModel) -> None:
        self.config = config
        self.costs = costs
        # One directory per cluster: line id -> [owner_pid or -1, sharer set]
        self._lines: list[dict[int, list]] = [
            {} for _ in range(config.num_clusters)
        ]
        self.stats: Counter = Counter()
        self._cost_of = {
            AccessClass.HIT: costs.cache_hit,
            AccessClass.LOCAL: costs.miss_local,
            AccessClass.REMOTE: costs.miss_remote,
            AccessClass.TWO_PARTY: costs.miss_2party,
            AccessClass.THREE_PARTY: costs.miss_3party,
            AccessClass.SOFTWARE: costs.miss_software_dir,
        }

    def access(
        self, cluster: int, pid: int, line: int, is_write: bool, home_pid: int
    ) -> int:
        """Perform one access and return its cycle cost.

        Args:
            cluster: SSMP in which the access occurs (each SSMP has its
                own copy of the page and hence its own line states).
            pid: issuing processor.
            line: global line index (address // line_size).
            is_write: store vs load.
            home_pid: processor whose memory hosts this cluster's frame.
        """
        klass = self._classify_and_update(cluster, pid, line, is_write, home_pid)
        self.stats[klass] += 1
        return self._cost_of[klass]

    def _classify_and_update(
        self, cluster: int, pid: int, line: int, is_write: bool, home_pid: int
    ) -> AccessClass:
        directory = self._lines[cluster]
        state = directory.get(line)
        if state is None:
            state = [-1, set()]
            directory[line] = state
        owner, sharers = state[0], state[1]

        if is_write:
            if owner == pid:
                return AccessClass.HIT
            others = sharers - {pid}
            if owner != -1:
                # Dirty in another cache: fetch-exclusive, owner writes back.
                klass = self._party_class(pid, home_pid, owner)
            elif len(sharers) > self.config.hw_dir_pointers:
                klass = AccessClass.SOFTWARE
            elif not others:
                klass = (
                    AccessClass.LOCAL if home_pid == pid else AccessClass.REMOTE
                )
            else:
                # Invalidate shared copies; cost scales with parties involved.
                third = next(iter(others))
                klass = self._party_class(pid, home_pid, third)
                if len(others) > 1:
                    klass = AccessClass.THREE_PARTY
            state[0] = pid
            state[1] = set()
            return klass

        # Load.
        if owner == pid or (owner == -1 and pid in sharers):
            return AccessClass.HIT
        if owner != -1:
            klass = self._party_class(pid, home_pid, owner)
            state[1] = {pid, owner}
            state[0] = -1
            return klass
        if len(sharers) > self.config.hw_dir_pointers:
            sharers.add(pid)
            return AccessClass.SOFTWARE
        sharers.add(pid)
        return AccessClass.LOCAL if home_pid == pid else AccessClass.REMOTE

    @staticmethod
    def _party_class(pid: int, home_pid: int, other: int) -> AccessClass:
        parties = len({pid, home_pid, other})
        return AccessClass.TWO_PARTY if parties <= 2 else AccessClass.THREE_PARTY

    def flush_page(self, cluster: int, first_line: int, nlines: int) -> int:
        """Drop all line state of a page in ``cluster`` (page cleaning).

        Returns the number of lines that were actually present, which the
        protocol can use for the ``fast_read_clean`` ablation.
        """
        directory = self._lines[cluster]
        present = 0
        for line in range(first_line, first_line + nlines):
            if directory.pop(line, None) is not None:
                present += 1
        return present

    def lines_cached(self, cluster: int) -> int:
        """Number of lines with directory state in ``cluster``."""
        return len(self._lines[cluster])
