"""Functional model of Alewife's hardware cache coherence within an SSMP.

The paper treats intra-SSMP hardware shared memory as a fast black box
with the measured miss penalties of Table 3 (local 11, remote 38, 2-party
42, 3-party 63 cycles, and 425 cycles once the software-extended LimitLESS
directory takes over).  We reproduce exactly that: a per-cluster, per-line
directory tracks which processors cache each line and in what state, and
every access is classified into one of the cost classes.  Directory state
changes take effect immediately (functional simulation); the access's
latency class is charged to the issuing processor by the runtime.

Classification rules:

* **hit** — the line is already cached with sufficient privilege.
* **local / remote miss** — the line is clean; cost depends on whether the
  line's home memory (the node hosting the page frame) is the issuing
  processor's own memory.
* **2-party / 3-party miss** — the line is dirty in another processor's
  cache (or, for writes, shared copies must be invalidated); the cost
  depends on how many distinct nodes take part in the transaction.
* **software directory** — the sharer set outgrew the hardware directory
  pointers, so a software handler services the miss (Table 3's "Remote
  Software", 425 cycles).

Capacity and conflict misses are not modeled (the directory acts as if
caches were infinite); the paper's working sets at our scaled problem
sizes fit comfortably in Alewife's 64 KB SRAM, and the effects the paper
studies — false sharing and multigrain locality — come from coherence
misses, which are modeled.

Hot-path note: every simulated word access lands in :meth:`CacheSystem.
access`, so the common case — a hit — is resolved with one dict probe and
an inline privilege check before the full classify-and-update runs.
Statistics live in a fixed-slot integer list indexed by ``AccessClass``
position (no ``Counter``/enum hashing per access); the ``stats`` property
rebuilds the Counter view for reporting.  ``record_hits`` lets the
runtime's fast path (``repro.runtime.env``) account hits it proved
without a directory probe; see ``docs/PERFORMANCE.md`` for why that is
safe.
"""

from __future__ import annotations

import enum
from collections import Counter

from repro.params import CostModel, MachineConfig

__all__ = ["AccessClass", "CacheSystem"]


class AccessClass(enum.Enum):
    """Latency class of a hardware shared-memory access."""

    HIT = "hit"
    LOCAL = "local"
    REMOTE = "remote"
    TWO_PARTY = "2party"
    THREE_PARTY = "3party"
    SOFTWARE = "software"


#: definition-order view of the classes; slot ``i`` of the fixed counters
#: counts ``_CLASSES[i]`` accesses
_CLASSES = tuple(AccessClass)
_IDX = {klass: i for i, klass in enumerate(_CLASSES)}
_HIT = _IDX[AccessClass.HIT]


class CacheSystem:
    """Per-cluster line directories with Table 3 cost classification."""

    __slots__ = ("config", "costs", "_lines", "_counts", "_cost_of", "hit_cost")

    def __init__(self, config: MachineConfig, costs: CostModel) -> None:
        self.config = config
        self.costs = costs
        # One directory per cluster: line id -> [owner_pid or -1, sharer set]
        self._lines: list[dict[int, list]] = [
            {} for _ in range(config.num_clusters)
        ]
        self._counts: list[int] = [0] * len(_CLASSES)
        self._cost_of: list[int] = [
            costs.cache_hit,
            costs.miss_local,
            costs.miss_remote,
            costs.miss_2party,
            costs.miss_3party,
            costs.miss_software_dir,
        ]
        #: cost of a hit, exposed so the runtime fast path can charge it
        #: without a method call
        self.hit_cost = costs.cache_hit

    @property
    def stats(self) -> Counter:
        """Access counts by :class:`AccessClass` (Counter view).

        Only classes that occurred appear as keys, matching the behavior
        of the per-access ``Counter`` this property replaced.
        """
        return Counter(
            {klass: n for klass, n in zip(_CLASSES, self._counts) if n}
        )

    def hit_run(
        self, cluster: int, pid: int, first_line: int, max_lines: int, is_write: bool
    ) -> int:
        """Longest run of consecutive lines from ``first_line`` that are
        guaranteed hits for ``pid``.

        A read-only probe — no directory update, no statistics.  The
        runtime's batched fast paths use it to charge whole runs of hit
        words in closed form; the caller accounts the hits itself (e.g.
        via :meth:`record_hits`).
        """
        get = self._lines[cluster].get
        n = 0
        if is_write:
            while n < max_lines:
                state = get(first_line + n)
                if state is None or state[0] != pid:
                    break
                n += 1
        else:
            while n < max_lines:
                state = get(first_line + n)
                if state is None:
                    break
                owner = state[0]
                if owner != pid and (owner != -1 or pid not in state[1]):
                    break
                n += 1
        return n

    def record_hits(self, n: int) -> None:
        """Account ``n`` hits classified outside the directory.

        The runtime's fast path uses this for repeat accesses to the
        line it touched last, which are hits by construction (the line
        state cannot change while the thread runs uninterrupted).
        """
        self._counts[_HIT] += n

    def access(
        self, cluster: int, pid: int, line: int, is_write: bool, home_pid: int
    ) -> int:
        """Perform one access and return its cycle cost.

        Args:
            cluster: SSMP in which the access occurs (each SSMP has its
                own copy of the page and hence its own line states).
            pid: issuing processor.
            line: global line index (address // line_size).
            is_write: store vs load.
            home_pid: processor whose memory hosts this cluster's frame.
        """
        directory = self._lines[cluster]
        state = directory.get(line)
        if state is not None:
            # Inline hit check: sufficient privilege means no directory
            # update, so the full classification can be skipped.
            owner = state[0]
            if (
                owner == pid
                if is_write
                else owner == pid or (owner == -1 and pid in state[1])
            ):
                self._counts[_HIT] += 1
                return self.hit_cost
        klass = self._classify_and_update(
            directory, state, pid, line, is_write, home_pid
        )
        self._counts[_IDX[klass]] += 1
        return self._cost_of[_IDX[klass]]

    def _classify_and_update(
        self,
        directory: dict[int, list],
        state: list | None,
        pid: int,
        line: int,
        is_write: bool,
        home_pid: int,
    ) -> AccessClass:
        if state is None:
            state = [-1, set()]
            directory[line] = state
        owner, sharers = state[0], state[1]

        if is_write:
            if owner == pid:
                return AccessClass.HIT
            others = sharers - {pid}
            if owner != -1:
                # Dirty in another cache: fetch-exclusive, owner writes back.
                klass = self._party_class(pid, home_pid, owner)
            elif len(sharers) > self.config.hw_dir_pointers:
                klass = AccessClass.SOFTWARE
            elif not others:
                klass = (
                    AccessClass.LOCAL if home_pid == pid else AccessClass.REMOTE
                )
            else:
                # Invalidate shared copies; cost scales with parties involved.
                third = min(others)
                klass = self._party_class(pid, home_pid, third)
                if len(others) > 1:
                    klass = AccessClass.THREE_PARTY
            state[0] = pid
            state[1] = set()
            return klass

        # Load.
        if owner == pid or (owner == -1 and pid in sharers):
            return AccessClass.HIT
        if owner != -1:
            klass = self._party_class(pid, home_pid, owner)
            state[1] = {pid, owner}
            state[0] = -1
            return klass
        if len(sharers) > self.config.hw_dir_pointers:
            sharers.add(pid)
            return AccessClass.SOFTWARE
        sharers.add(pid)
        return AccessClass.LOCAL if home_pid == pid else AccessClass.REMOTE

    @staticmethod
    def _party_class(pid: int, home_pid: int, other: int) -> AccessClass:
        parties = len({pid, home_pid, other})
        return AccessClass.TWO_PARTY if parties <= 2 else AccessClass.THREE_PARTY

    def flush_page(self, cluster: int, first_line: int, nlines: int) -> int:
        """Drop all line state of a page in ``cluster`` (page cleaning).

        Returns the number of lines that were actually present, which the
        protocol can use for the ``fast_read_clean`` ablation.
        """
        directory = self._lines[cluster]
        present = 0
        for line in range(first_line, first_line + nlines):
            if directory.pop(line, None) is not None:
                present += 1
        return present

    def lines_cached(self, cluster: int) -> int:
        """Number of lines with directory state in ``cluster``."""
        return len(self._lines[cluster])
