"""Functional model of Alewife's hardware cache coherence within an SSMP.

The paper treats intra-SSMP hardware shared memory as a fast black box
with the measured miss penalties of Table 3 (local 11, remote 38, 2-party
42, 3-party 63 cycles, and 425 cycles once the software-extended LimitLESS
directory takes over).  We reproduce exactly that: a per-cluster, per-line
directory tracks which processors cache each line and in what state, and
every access is classified into one of the cost classes.  Directory state
changes take effect immediately (functional simulation); the access's
latency class is charged to the issuing processor by the runtime.

Classification rules:

* **hit** — the line is already cached with sufficient privilege.
* **local / remote miss** — the line is clean; cost depends on whether the
  line's home memory (the node hosting the page frame) is the issuing
  processor's own memory.
* **2-party / 3-party miss** — the line is dirty in another processor's
  cache (or, for writes, shared copies must be invalidated); the cost
  depends on how many distinct nodes take part in the transaction.
* **software directory** — the sharer set outgrew the hardware directory
  pointers, so a software handler services the miss (Table 3's "Remote
  Software", 425 cycles).

Capacity and conflict misses are not modeled (the directory acts as if
caches were infinite); the paper's working sets at our scaled problem
sizes fit comfortably in Alewife's 64 KB SRAM, and the effects the paper
studies — false sharing and multigrain locality — come from coherence
misses, which are modeled.

Hot-path note: every simulated word access lands in :meth:`CacheSystem.
access`, so the common case — a hit — is resolved with one dict probe and
an inline privilege check before the full classify-and-update runs.
Statistics live in a fixed-slot integer list indexed by ``AccessClass``
position (no ``Counter``/enum hashing per access); the ``stats`` property
rebuilds the Counter view for reporting.  ``record_hits`` lets the
runtime's fast path (``repro.runtime.env``) account hits it proved
without a directory probe; see ``docs/PERFORMANCE.md`` for why that is
safe.
"""

from __future__ import annotations

import enum
from collections import Counter

from repro.params import CostModel, MachineConfig

__all__ = ["AccessClass", "CacheSystem"]


class AccessClass(enum.Enum):
    """Latency class of a hardware shared-memory access."""

    HIT = "hit"
    LOCAL = "local"
    REMOTE = "remote"
    TWO_PARTY = "2party"
    THREE_PARTY = "3party"
    SOFTWARE = "software"


#: definition-order view of the classes; slot ``i`` of the fixed counters
#: counts ``_CLASSES[i]`` accesses.  The classifier works in these int
#: indices throughout — no enum hashing on the per-access hot path.
_CLASSES = tuple(AccessClass)
_IDX = {klass: i for i, klass in enumerate(_CLASSES)}
_HIT = _IDX[AccessClass.HIT]
_LOCAL = _IDX[AccessClass.LOCAL]
_REMOTE = _IDX[AccessClass.REMOTE]
_TWO_PARTY = _IDX[AccessClass.TWO_PARTY]
_THREE_PARTY = _IDX[AccessClass.THREE_PARTY]
_SOFTWARE = _IDX[AccessClass.SOFTWARE]


class CacheSystem:
    """Per-cluster line directories with Table 3 cost classification."""

    __slots__ = (
        "config",
        "costs",
        "_lines",
        "_counts",
        "_cost_of",
        "_hw_ptrs",
        "hit_cost",
        "worst_miss",
        "worst_hw_miss",
    )

    def __init__(self, config: MachineConfig, costs: CostModel) -> None:
        self.config = config
        self.costs = costs
        self._hw_ptrs = config.hw_dir_pointers
        # One directory per cluster: line id -> [owner_pid or -1, sharer set]
        self._lines: list[dict[int, list]] = [
            {} for _ in range(config.num_clusters)
        ]
        self._counts: list[int] = [0] * len(_CLASSES)
        self._cost_of: list[int] = [
            costs.cache_hit,
            costs.miss_local,
            costs.miss_remote,
            costs.miss_2party,
            costs.miss_3party,
            costs.miss_software_dir,
        ]
        #: cost of a hit, exposed so the runtime fast path can charge it
        #: without a method call
        self.hit_cost = costs.cache_hit
        #: most expensive miss class overall, and the most expensive
        #: *hardware* class (software servicing needs a sharer set that
        #: already outgrew the hardware pointers, so any other line is
        #: bounded by the hardware classes).  access_run admits lines
        #: under the per-line tight bound; the runtime fast path reads
        #: ``worst_hw_miss`` to skip hopeless batch attempts.
        self.worst_miss = max(self._cost_of[1:])
        self.worst_hw_miss = max(self._cost_of[1:_SOFTWARE])

    @property
    def stats(self) -> Counter:
        """Access counts by :class:`AccessClass` (Counter view).

        Only classes that occurred appear as keys, matching the behavior
        of the per-access ``Counter`` this property replaced.
        """
        return Counter(
            {klass: n for klass, n in zip(_CLASSES, self._counts) if n}
        )

    def hit_run(
        self, cluster: int, pid: int, first_line: int, max_lines: int, is_write: bool
    ) -> int:
        """Longest run of consecutive lines from ``first_line`` that are
        guaranteed hits for ``pid``.

        A read-only probe — no directory update, no statistics.  The
        runtime's batched fast paths use it to charge whole runs of hit
        words in closed form; the caller accounts the hits itself (e.g.
        via :meth:`record_hits`).
        """
        get = self._lines[cluster].get
        n = 0
        if is_write:
            while n < max_lines:
                state = get(first_line + n)
                if state is None or state[0] != pid:
                    break
                n += 1
        else:
            while n < max_lines:
                state = get(first_line + n)
                if state is None:
                    break
                owner = state[0]
                if owner != pid and (owner != -1 or pid not in state[1]):
                    break
                n += 1
        return n

    def hit_lines(
        self, cluster: int, pid: int, lines, is_write: bool
    ) -> bool:
        """Whether *every* line in ``lines`` is a guaranteed hit for ``pid``.

        The vector-probe companion to :meth:`hit_run`: same read-only
        hit criterion (sufficient privilege, so an ``access`` would make
        no directory update), applied to an arbitrary iterable of line
        ids instead of a consecutive run.  The runtime's vectorized
        ``read_many``/``write_many`` and the ``write_block`` all-hit
        preamble use it to prove a whole scatter/gather access vector
        conflict-free before charging it in one aggregate; the caller
        accounts the hits itself (via :meth:`record_hits`).
        """
        get = self._lines[cluster].get
        if is_write:
            for line in lines:
                state = get(line)
                if state is None or state[0] != pid:
                    return False
        else:
            for line in lines:
                state = get(line)
                if state is None:
                    return False
                owner = state[0]
                if owner != pid and (owner != -1 or pid not in state[1]):
                    return False
        return True

    def access_run(
        self,
        cluster: int,
        pid: int,
        first_line: int,
        is_write: bool,
        home_pid: int,
        extras: list[int],
        budget: int,
    ) -> tuple[int, int]:
        """Classify-and-update a run of consecutive *missing* lines.

        Batched companion to :meth:`access` for the runtime's block fast
        paths: starting at ``first_line``, lines are serviced with
        exactly the per-line state transitions, class counts, and costs
        that individual ``access`` calls would apply, while (a) the line
        would not be a hit and (b) the accumulated charge stays within
        ``budget``.  ``extras[i]`` is the caller's non-miss charge
        riding on line ``first_line + i`` (address translation plus the
        line's remaining hit words); a line is admitted only when its
        worst-case miss cost plus its extra keeps the running total
        within budget, so the caller can prove no quantum pause falls
        inside the batch.  The bound is per line and tight: software
        servicing is only possible when the line's sharer set has
        already outgrown the hardware directory pointers, so every
        other line is bounded by the worst *hardware* miss.  (The bound
        may still stop the run a little early near the quantum edge;
        the caller's per-word path then takes over with identical
        semantics, so the cut is a wall-clock detail, never a behavior
        change.)

        Returns ``(lines_processed, total_charge)``, the charge
        including the extras of the processed lines.
        """
        directory = self._lines[cluster]
        get = directory.get
        counts = self._counts
        cost_of = self._cost_of
        classify = self._classify_and_update
        worst_hw = self.worst_hw_miss
        soft = cost_of[_SOFTWARE]
        hw_ptrs = self._hw_ptrs
        total = 0
        k = 0
        for extra in extras:
            line = first_line + k
            state = get(line)
            if state is not None:
                owner = state[0]
                if (
                    owner == pid
                    if is_write
                    else owner == pid or (owner == -1 and pid in state[1])
                ):
                    break  # guaranteed hit: the caller's hit-run takes over
                bound = soft if len(state[1]) > hw_ptrs else worst_hw
            else:
                bound = worst_hw
            if total + bound + extra > budget:
                break
            i = classify(directory, state, pid, line, is_write, home_pid)
            counts[i] += 1
            total += cost_of[i] + extra
            k += 1
        return k, total

    def record_hits(self, n: int) -> None:
        """Account ``n`` hits classified outside the directory.

        The runtime's fast path uses this for repeat accesses to the
        line it touched last, which are hits by construction (the line
        state cannot change while the thread runs uninterrupted).
        """
        self._counts[_HIT] += n

    def access(
        self, cluster: int, pid: int, line: int, is_write: bool, home_pid: int
    ) -> int:
        """Perform one access and return its cycle cost.

        Args:
            cluster: SSMP in which the access occurs (each SSMP has its
                own copy of the page and hence its own line states).
            pid: issuing processor.
            line: global line index (address // line_size).
            is_write: store vs load.
            home_pid: processor whose memory hosts this cluster's frame.
        """
        directory = self._lines[cluster]
        state = directory.get(line)
        if state is not None:
            # Inline hit check: sufficient privilege means no directory
            # update, so the full classification can be skipped.
            owner = state[0]
            if (
                owner == pid
                if is_write
                else owner == pid or (owner == -1 and pid in state[1])
            ):
                self._counts[_HIT] += 1
                return self.hit_cost
        i = self._classify_and_update(
            directory, state, pid, line, is_write, home_pid
        )
        self._counts[i] += 1
        return self._cost_of[i]

    def _classify_and_update(
        self,
        directory: dict[int, list],
        state: list | None,
        pid: int,
        line: int,
        is_write: bool,
        home_pid: int,
    ) -> int:
        if state is None:
            state = [-1, set()]
            directory[line] = state
        owner, sharers = state[0], state[1]

        if is_write:
            if owner == pid:
                return _HIT
            if owner != -1:
                # Dirty in another cache: fetch-exclusive, owner writes
                # back.  The issuer and owner differ here (same-owner
                # writes returned HIT above), so the transaction stays
                # 2-party exactly when the home node is one of them.
                klass = (
                    _TWO_PARTY
                    if home_pid == pid or home_pid == owner
                    else _THREE_PARTY
                )
            elif len(sharers) > self._hw_ptrs:
                klass = _SOFTWARE
            else:
                # Invalidate shared copies; cost scales with parties
                # involved.  Count sharers other than the issuer without
                # materializing the difference set — this runs on every
                # upgrade write.
                in_set = pid in sharers
                nothers = len(sharers) - in_set
                if nothers == 0:
                    klass = _LOCAL if home_pid == pid else _REMOTE
                elif nothers > 1 or home_pid == pid:
                    # >1 invalidation targets is always 3-party; a
                    # single target with the issuer at home is 2-party.
                    klass = _THREE_PARTY if nothers > 1 else _TWO_PARTY
                else:
                    third = min(sharers - {pid}) if in_set else min(sharers)
                    klass = (
                        _TWO_PARTY if home_pid == third else _THREE_PARTY
                    )
            state[0] = pid
            state[1] = set()
            return klass

        # Load.
        if owner == pid or (owner == -1 and pid in sharers):
            return _HIT
        if owner != -1:
            # Issuer and owner differ (same-owner loads are hits), so
            # 2-party exactly when the home node is one of them.
            klass = (
                _TWO_PARTY
                if home_pid == pid or home_pid == owner
                else _THREE_PARTY
            )
            state[1] = {pid, owner}
            state[0] = -1
            return klass
        if len(sharers) > self._hw_ptrs:
            sharers.add(pid)
            return _SOFTWARE
        sharers.add(pid)
        return _LOCAL if home_pid == pid else _REMOTE

    def flush_page(self, cluster: int, first_line: int, nlines: int) -> int:
        """Drop all line state of a page in ``cluster`` (page cleaning).

        Returns the number of lines that were actually present, which the
        protocol can use for the ``fast_read_clean`` ablation.
        """
        directory = self._lines[cluster]
        present = 0
        for line in range(first_line, first_line + nlines):
            if directory.pop(line, None) is not None:
                present += 1
        return present

    def lines_cached(self, cluster: int) -> int:
        """Number of lines with directory state in ``cluster``."""
        return len(self._lines[cluster])
