"""Software virtual memory: address space layout, page homes, TLBs."""

from repro.svm.address import AccessKind, AddressSpace, Segment
from repro.svm.tlb import TLB, MapMode

__all__ = ["AccessKind", "AddressSpace", "Segment", "TLB", "MapMode"]
