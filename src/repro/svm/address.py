"""Virtual address space layout for the MGS reproduction.

MGS performs address translation in software: the compiler emits in-line
translation code before every access to a mapped object (section 4.2.1).
Two kinds of mapped accesses exist — distributed-array accesses (18
cycles) and pointer dereferences (24 cycles, the extra cost paying for the
virtual-vs-physical address check).  We reproduce that split with
:class:`AccessKind` recorded per segment.

Every virtual page has a fixed *home* processor whose memory holds the
physical home copy; the home "is based on the virtual address and remains
fixed for all time" (section 3.1).  Applications may control data
distribution at allocation time (the paper's apps distribute their main
arrays across processors), so :meth:`AddressSpace.alloc` accepts an
explicit home map; the default interleaves pages round-robin across all
processors.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.params import WORD_BYTES, MachineConfig

__all__ = ["AccessKind", "AddressSpace", "Segment"]


class AccessKind(enum.Enum):
    """How an access to a segment is translated (Table 3, middle group)."""

    ARRAY = "array"  # distributed-array access: always mapped
    POINTER = "pointer"  # pointer dereference: extra virtual/physical check


@dataclass(frozen=True)
class Segment:
    """A contiguous allocation in the shared virtual address space."""

    name: str
    base: int  # byte address, page aligned
    size: int  # bytes
    kind: AccessKind

    @property
    def end(self) -> int:
        return self.base + self.size

    def address_of_word(self, index: int) -> int:
        """Byte address of the ``index``-th 8-byte word in the segment."""
        addr = self.base + index * WORD_BYTES
        if addr + WORD_BYTES > self.end:
            raise IndexError(f"word {index} out of bounds for segment {self.name!r}")
        return addr


class AddressSpace:
    """Shared virtual address space with per-page home assignment.

    The virtual space starts at a non-zero base so that address 0 is never
    a valid shared address (mirroring the disjoint virtual/physical
    assignment the paper uses to distinguish pointer targets).
    """

    BASE = 0x1000_0000

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self._next = self.BASE
        self._segments: list[Segment] = []
        self._home: dict[int, int] = {}  # vpn -> home processor

    @property
    def segments(self) -> Sequence[Segment]:
        return tuple(self._segments)

    def alloc(
        self,
        name: str,
        nbytes: int,
        kind: AccessKind = AccessKind.ARRAY,
        home: int | Callable[[int], int] | None = None,
    ) -> Segment:
        """Allocate ``nbytes`` of page-aligned shared memory.

        Args:
            home: home *processor* for the segment's pages.  ``None``
                interleaves pages round-robin across all processors; an
                int pins every page; a callable maps the page ordinal
                within the segment to a processor id.
        """
        if nbytes <= 0:
            raise ValueError("allocation size must be positive")
        page = self.config.page_size
        size = (nbytes + page - 1) // page * page
        seg = Segment(name=name, base=self._next, size=size, kind=kind)
        self._next += size
        self._segments.append(seg)
        first_vpn = seg.base // page
        npages = size // page
        for i in range(npages):
            vpn = first_vpn + i
            if home is None:
                owner = vpn % self.config.total_processors
            elif callable(home):
                owner = home(i)
            else:
                owner = home
            if not 0 <= owner < self.config.total_processors:
                raise ValueError(f"home processor {owner} out of range")
            self._home[vpn] = owner
        return seg

    def vpn_of(self, addr: int) -> int:
        return addr // self.config.page_size

    def offset_of(self, addr: int) -> int:
        return addr % self.config.page_size

    def word_of(self, addr: int) -> int:
        """Word offset within the page of ``addr``."""
        return (addr % self.config.page_size) // WORD_BYTES

    def home_proc(self, vpn: int) -> int:
        """Home processor of a virtual page."""
        try:
            return self._home[vpn]
        except KeyError:
            raise KeyError(f"vpn {vpn:#x} is not an allocated shared page") from None

    def home_cluster(self, vpn: int) -> int:
        return self.config.cluster_of(self.home_proc(vpn))

    def is_shared(self, addr: int) -> bool:
        """True if ``addr`` falls inside an allocated shared segment."""
        vpn = addr // self.config.page_size
        return vpn in self._home
