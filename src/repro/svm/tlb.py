"""Per-processor software TLB.

The three mapping states match the Local Client states of Figure 4:
``TLB_INV`` (no entry), ``TLB_READ``, and ``TLB_WRITE``.  The TLB is a
map, not a fixed-size structure: Alewife's software translation consults a
page table on every access, so capacity effects do not apply — what
matters is whether a mapping with sufficient privilege exists.
"""

from __future__ import annotations

import enum

__all__ = ["MapMode", "TLB"]


class MapMode(enum.IntEnum):
    """Privilege of a TLB mapping."""

    READ = 1
    WRITE = 2


class TLB:
    """Mapping state for one processor."""

    __slots__ = ("pid", "_entries", "fills", "invalidations")

    def __init__(self, pid: int) -> None:
        self.pid = pid
        self._entries: dict[int, MapMode] = {}
        self.fills = 0
        self.invalidations = 0

    def lookup(self, vpn: int) -> MapMode | None:
        """Mapping mode for ``vpn``, or None (TLB_INV)."""
        return self._entries.get(vpn)

    def fill(self, vpn: int, mode: MapMode) -> None:
        """Install or upgrade a mapping."""
        current = self._entries.get(vpn)
        if current is None or mode > current:
            self._entries[vpn] = mode
        self.fills += 1

    def invalidate(self, vpn: int) -> bool:
        """Drop the mapping for ``vpn``.  Returns True if one existed."""
        existed = self._entries.pop(vpn, None) is not None
        if existed:
            self.invalidations += 1
        return existed

    def has_write(self, vpn: int) -> bool:
        return self._entries.get(vpn) == MapMode.WRITE

    def mapped_vpns(self) -> tuple[int, ...]:
        """Snapshot of the currently mapped page numbers.

        A tuple, so callers can invalidate while iterating.
        """
        return tuple(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._entries
