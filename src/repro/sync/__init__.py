"""Hierarchy-aware synchronization library (section 3.2 of the paper)."""

from repro.sync.barrier import TreeBarrier
from repro.sync.mgs_lock import LockStats, MGSLock

__all__ = ["MGSLock", "LockStats", "TreeBarrier"]
