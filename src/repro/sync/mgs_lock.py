"""The MGS token-based distributed lock (section 3.2).

Each MGS lock consists of a local lock on each SSMP and a single global
lock.  A token passes among the local locks; acquires on the SSMP that
owns the token succeed through hardware shared memory only (a *lock hit*
in the paper's Figure 11 metric).  When consecutive acquires come from
different SSMPs, the token must move: the requesting SSMP asks the global
lock's home, the home forwards the hand-off request to the current owner,
and the owner ships the token back through the home once its local queue
drains.  Local waiters are served before the token is handed off, which
is what rewards intra-SSMP lock locality.

At cluster size C == P the token never moves and the lock degrades to a
flat queue lock, matching the paper's P4 configuration.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.machine import Machine
from repro.params import CostModel, MachineConfig

__all__ = ["MGSLock", "LockStats"]


@dataclass
class LockStats:
    """Acquire statistics backing Figure 11 (lock hit ratio)."""

    acquires: int = 0
    hits: int = 0  # satisfied without inter-SSMP communication
    token_transfers: int = 0

    @property
    def hit_ratio(self) -> float:
        if self.acquires == 0:
            return 1.0
        return self.hits / self.acquires


@dataclass
class _Waiter:
    pid: int
    on_done: Callable[[], None]
    local_at_enqueue: bool  # token was resident when the acquire arrived


class MGSLock:
    """One token-based hierarchical lock."""

    def __init__(
        self,
        machine: Machine,
        config: MachineConfig,
        costs: CostModel,
        lock_id: int,
        home_cluster: int = 0,
    ) -> None:
        self.machine = machine
        self.config = config
        self.costs = costs
        self.lock_id = lock_id
        self.stats = LockStats()
        n = config.num_clusters
        self.home_cluster = home_cluster % n
        #: cluster currently owning the token (starts at the global home)
        self.token_cluster = self.home_cluster
        self.token_in_transit = False
        self.holder: int | None = None
        self._local_q: list[deque[_Waiter]] = [deque() for _ in range(n)]
        self._requested = [False] * n
        #: remote requests queued at the global home, FIFO
        self._home_pending: deque[int] = deque()
        #: hand-off request delivered to the current owner
        self._handoff_wanted = False
        #: local grants still allowed before honouring the hand-off
        #: (waiters already queued when the request arrived go first;
        #: later local arrivals must wait for the token to come back)
        self._handoff_budget = 0

    # ------------------------------------------------------------------

    def _manager(self, cluster: int) -> int:
        """Processor that runs this lock's handlers in ``cluster``."""
        return cluster * self.config.cluster_size + (
            self.lock_id % self.config.cluster_size
        )

    def acquire(self, pid: int, on_done: Callable[[], None]) -> None:
        """Request the lock for ``pid``; ``on_done`` fires once held."""
        cluster = self.config.cluster_of(pid)
        token_here = self.token_cluster == cluster and not self.token_in_transit
        self.stats.acquires += 1
        waiter = _Waiter(pid, on_done, local_at_enqueue=token_here)
        self._local_q[cluster].append(waiter)
        if token_here:
            self._try_grant_local()
        elif not self._requested[cluster]:
            self._requested[cluster] = True
            self.machine.send(
                self._manager(cluster),
                self._manager(self.home_cluster),
                self._home_on_request,
                cluster,
                label="LOCK_REQ",
            )

    def release(self, pid: int, on_done: Callable[[], None]) -> None:
        """Release the lock held by ``pid``.

        The caller must already have performed its release-consistency
        DUQ flush (the runtime does this), so the lock can move freely.
        """
        assert self.holder == pid, f"release by {pid} but holder is {self.holder}"
        self.holder = None
        sim = self.machine.sim
        sim.schedule(self.costs.lock_local_release, on_done)
        self._try_grant_local()

    # ------------------------------------------------------------------
    # local grant path
    # ------------------------------------------------------------------

    def _try_grant_local(self) -> None:
        cluster = self.token_cluster
        if self.token_in_transit or self.holder is not None:
            return
        queue = self._local_q[cluster]
        if self._handoff_wanted and (not queue or self._handoff_budget <= 0):
            self._ship_token()
            return
        if not queue:
            return
        waiter = queue.popleft()
        if self._handoff_wanted:
            self._handoff_budget -= 1
        self.holder = waiter.pid
        if waiter.local_at_enqueue:
            self.stats.hits += 1
        self.machine.sim.schedule(self.costs.lock_local_acquire, waiter.on_done)

    # ------------------------------------------------------------------
    # token protocol (global lock)
    # ------------------------------------------------------------------

    def _home_on_request(self, req_cluster: int) -> None:
        """Global home received a token request from ``req_cluster``."""
        completion = self.machine.occupy(
            self._manager(self.home_cluster), self.costs.lock_global_hop
        )
        self._home_pending.append(req_cluster)
        if len(self._home_pending) == 1 and not self.token_in_transit:
            # Ask the current owner to hand the token over.
            self.machine.send(
                self._manager(self.home_cluster),
                self._manager(self.token_cluster),
                self._owner_on_handoff_request,
                at=completion,
                label="LOCK_HANDOFF_REQ",
            )

    def _owner_on_handoff_request(self) -> None:
        owner = self._manager(self.token_cluster)
        self.machine.occupy(owner, self.costs.lock_global_hop)
        self._handoff_wanted = True
        # Bounded local preference: serve everyone already queued plus a
        # few more local acquires, then hand off.  This contains traffic
        # within the SSMP without starving remote clusters (the policy
        # of Cox et al the paper builds on).
        self._handoff_budget = (
            len(self._local_q[self.token_cluster])
            + max(1, self.config.cluster_size // 4)
        )
        if self.holder is None:
            self._try_grant_local()

    def _ship_token(self) -> None:
        """Send the token back through the home to the next requester."""
        assert self._handoff_wanted and self.holder is None
        self._handoff_wanted = False
        self.token_in_transit = True
        cluster = self.token_cluster
        src = self._manager(cluster)
        completion = self.machine.occupy(src, self.costs.lock_global_hop)
        self.machine.send(
            src,
            self._manager(self.home_cluster),
            self._home_on_token_return,
            at=completion,
            label="LOCK_TOKEN",
        )
        if self._local_q[cluster]:
            # Waiters beyond the hand-off budget stay queued: their
            # acquire now involves inter-SSMP traffic (no longer a hit),
            # and the token must be asked back so they are not stranded.
            for waiter in self._local_q[cluster]:
                waiter.local_at_enqueue = False
            if not self._requested[cluster]:
                self._requested[cluster] = True
                self.machine.send(
                    src,
                    self._manager(self.home_cluster),
                    self._home_on_request,
                    cluster,
                    at=completion,
                    label="LOCK_REQ",
                )

    def _home_on_token_return(self) -> None:
        home_mgr = self._manager(self.home_cluster)
        completion = self.machine.occupy(home_mgr, self.costs.lock_global_hop)
        assert self._home_pending, "token returned with no pending requester"
        dest = self._home_pending.popleft()
        self.stats.token_transfers += 1
        self.machine.send(
            home_mgr,
            self._manager(dest),
            self._cluster_on_token,
            dest,
            at=completion,
            label="LOCK_TOKEN",
        )

    def _cluster_on_token(self, cluster: int) -> None:
        completion = self.machine.occupy(
            self._manager(cluster), self.costs.lock_global_hop
        )
        self.token_cluster = cluster
        self.token_in_transit = False
        self._requested[cluster] = False
        if self._home_pending:
            # More clusters are waiting: pre-arm the hand-off so the token
            # keeps moving once this cluster's queue drains.
            self.machine.send(
                self._manager(self.home_cluster),
                self._manager(cluster),
                self._owner_on_handoff_request,
                at=completion,
                label="LOCK_HANDOFF_REQ",
            )
        self._try_grant_local()
