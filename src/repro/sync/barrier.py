"""Hierarchical tree barrier (section 3.2).

The MGS barrier matches the DSSMP structure: the first level synchronizes
the processors of each SSMP through hardware shared memory; the second
level synchronizes the SSMPs with exactly two inter-SSMP messages per
SSMP — one combine up to the root, one release back down — the minimum
the paper cites.

At cluster size C == P the same object degrades into the flat (P4-style)
barrier used for the paper's 32-processor bars: a single level, no
messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.machine import Machine
from repro.params import CostModel, MachineConfig

__all__ = ["TreeBarrier"]


@dataclass
class _ClusterState:
    arrived: int = 0
    waiters: list = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.waiters = []


class TreeBarrier:
    """One reusable two-level barrier."""

    def __init__(
        self, machine: Machine, config: MachineConfig, costs: CostModel
    ) -> None:
        self.machine = machine
        self.config = config
        self.costs = costs
        self._clusters = [_ClusterState() for _ in range(config.num_clusters)]
        self._combined = 0
        self.episodes = 0

    def _manager(self, cluster: int) -> int:
        return cluster * self.config.cluster_size

    @property
    def _root(self) -> int:
        return self._manager(0)

    def arrive(self, pid: int, on_done: Callable[[], None]) -> None:
        """Processor ``pid`` reached the barrier."""
        config = self.config
        cluster = config.cluster_of(pid)
        state = self._clusters[cluster]
        state.arrived += 1
        state.waiters.append(on_done)

        if config.hardware_only:
            if state.arrived == config.cluster_size:
                self._release_cluster(cluster, flat=True)
            return

        if state.arrived == config.cluster_size:
            # Last in the SSMP: combine up to the root.
            combine_cost = self.costs.barrier_local_per_proc * config.cluster_size
            self.machine.send(
                pid,
                self._root,
                self._on_combine,
                at=self.machine.sim.now + combine_cost,
                label="BAR_COMBINE",
            )

    def _on_combine(self) -> None:
        completion = self.machine.occupy(self._root, self.costs.barrier_msg)
        self._combined += 1
        if self._combined < self.config.num_clusters:
            return
        # Everyone arrived: release every SSMP.
        self._combined = 0
        self.episodes += 1
        for cluster in range(self.config.num_clusters):
            completion = self.machine.occupy(self._root, self.costs.msg_send)
            self.machine.send(
                self._root,
                self._manager(cluster),
                self._on_release,
                cluster,
                at=completion,
                label="BAR_RELEASE",
            )

    def _on_release(self, cluster: int) -> None:
        completion = self.machine.occupy(
            self._manager(cluster), self.costs.barrier_msg
        )
        self.machine.sim.schedule_at(completion, self._release_cluster, cluster, False)

    def _release_cluster(self, cluster: int, flat: bool) -> None:
        state = self._clusters[cluster]
        waiters = state.waiters
        state.waiters = []
        state.arrived = 0
        if flat:
            self.episodes += 1
            per_proc = self.costs.barrier_flat_per_proc
        else:
            per_proc = self.costs.barrier_local_per_proc
        sim = self.machine.sim
        for i, on_done in enumerate(waiters):
            # Wake-ups fan out through the SSMP's hardware shared memory.
            sim.schedule(per_proc * (1 + i % 4), on_done)
