"""The simulated DSSMP: processors, clusters, and the two networks.

A :class:`Machine` binds a :class:`~repro.sim.Simulator` to a
:class:`~repro.params.MachineConfig` and provides the message substrate the
MGS protocol engines run on.  Two latency regimes exist, mirroring the
paper's Figure 1:

* **internal network** — messages between processors of the same SSMP are
  active messages over Alewife's mesh; we charge a small wire latency.
* **external network** — messages that cross an SSMP boundary pay the
  configurable ``inter_ssmp_delay`` (the paper's LAN model: a fixed
  latency, no contention, exactly as in section 4.2.2).

All routing is delegated to the pluggable :mod:`repro.net` subsystem —
topology/contention models behind the :class:`~repro.net.Interconnect`
interface, deterministic fault injection, and a reliable-delivery
transport — selected by :class:`~repro.params.NetworkConfig`.  With the
default configuration every message takes the same single-event path the
paper's model took, bit for bit.

Handler model: a message handler runs at its arrival time, applies its
state effects, and calls :meth:`Machine.occupy` with the handler's cycle
cost.  ``occupy`` serializes handler execution per processor (one handler
context drains at a time) and returns the completion time at which the
handler schedules its own continuations (replies, wake-ups).  Handler
cycles are recorded as "stolen" time so the thread driver can charge them
against the application thread running on that processor, in the MGS
bucket of the runtime breakdown — this is how the paper's software-
coherence load imbalance (section 5.2.1, Water) emerges in the model.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.net import FaultInjector, ReliableTransport, build_external, build_internal
from repro.params import CostModel, MachineConfig
from repro.sim import Simulator

__all__ = ["Machine", "MessageStats", "ProcessorState"]

#: Default wire latency, in cycles, of the internal (intra-SSMP) network.
#: Kept for back-compat; the live value is ``MachineConfig.intra_wire_latency``.
INTRA_WIRE_LATENCY = 5


@dataclass
class ProcessorState:
    """Bookkeeping for one simulated processor."""

    pid: int
    cluster: int
    #: time at which the processor's handler context becomes free
    handler_free_at: int = 0
    #: handler cycles accumulated since the app thread last absorbed them
    stolen_cycles: int = 0
    #: lifetime handler cycles (statistics)
    handler_cycles_total: int = 0
    #: messages handled on this processor
    messages_handled: int = 0


@dataclass
class MessageStats:
    """Counts of protocol messages, split by network, plus the per-layer
    counters the :mod:`repro.net` subsystem merges in."""

    inter_ssmp: int = 0
    intra_ssmp: int = 0
    #: bytes shipped over the external network
    inter_ssmp_bytes: int = 0
    #: cycles inter-SSMP messages spent queued behind earlier traffic
    #: (nonzero only for contended external models: bus, fabric)
    lan_queue_cycles: int = 0
    by_label: Counter = field(default_factory=Counter)
    #: queue cycles split by link (one entry for "bus", one per fabric pair)
    queue_cycles_by_link: Counter = field(default_factory=Counter)
    #: datagrams actually put on the external wire (retransmissions,
    #: acks, and injected duplicates included; drops excluded)
    wire_messages: int = 0
    # --- fault-injection layer ---
    drops: int = 0
    dups_injected: int = 0
    delays_injected: int = 0
    # --- reliable-transport layer ---
    retransmits: int = 0
    retransmits_by_link: Counter = field(default_factory=Counter)
    acks_sent: int = 0
    dups_suppressed: int = 0

    def network_summary(self) -> dict:
        """JSON-ready roll-up for ``metrics.export``."""
        return {
            "inter_ssmp": self.inter_ssmp,
            "intra_ssmp": self.intra_ssmp,
            "inter_ssmp_bytes": self.inter_ssmp_bytes,
            "wire_messages": self.wire_messages,
            "queue_cycles": self.lan_queue_cycles,
            "queue_cycles_by_link": dict(self.queue_cycles_by_link),
            "drops": self.drops,
            "dups_injected": self.dups_injected,
            "delays_injected": self.delays_injected,
            "retransmits": self.retransmits,
            "retransmits_by_link": dict(self.retransmits_by_link),
            "acks_sent": self.acks_sent,
            "dups_suppressed": self.dups_suppressed,
        }


class Machine:
    """A DSSMP built from ``config.num_clusters`` SSMPs.

    The machine knows nothing about pages or coherence; it only delivers
    messages with the right latency and serializes handler occupancy per
    destination processor.  Latency, contention, loss, and recovery all
    live in :mod:`repro.net`.
    """

    def __init__(self, sim: Simulator, config: MachineConfig, costs: CostModel) -> None:
        self.sim = sim
        self.config = config
        self.costs = costs
        self.processors = [
            ProcessorState(pid=p, cluster=config.cluster_of(p))
            for p in range(config.total_processors)
        ]
        self.stats = MessageStats()
        net = config.resolved_network
        self.net_config = net
        self.internal = build_internal(net, config)
        self.external = build_external(net, config)
        self.faults = FaultInjector(net) if net.faults_enabled else None
        self.transport = (
            ReliableTransport(self, net, config) if net.reliable_effective else None
        )

    def wire_latency(self, src: int, dst: int) -> int:
        """Uncontended one-way latency between two processors."""
        if self.processors[src].cluster == self.processors[dst].cluster:
            return self.internal.latency(src, dst)
        return self.config.inter_ssmp_delay

    def external_link(self, src: int, dst: int) -> str:
        """Stats key of the external link a ``src``→``dst`` message uses."""
        return self.external.link_name(
            self.processors[src].cluster, self.processors[dst].cluster
        )

    def send(
        self,
        src: int,
        dst: int,
        fn: Callable[..., None],
        *args: Any,
        label: str = "msg",
        at: int | None = None,
        size: int | None = None,
    ) -> None:
        """Send a message from processor ``src`` to processor ``dst``.

        ``fn(*args)`` runs at the arrival time; it is responsible for
        calling :meth:`occupy` with its handler cost and for scheduling
        any continuations at the returned completion time.

        Args:
            at: send time; defaults to ``sim.now``.  Threads running ahead
                of the global clock inside a quantum pass their local time.
            size: message size in bytes (control messages default to
                ``config.control_msg_bytes``; data-carrying messages pass
                their payload size).  Only matters to contended
                interconnect models.
        """
        if size is None:
            size = self.config.control_msg_bytes
        send_time = self.sim.now if at is None else at
        self.stats.by_label[label] += 1
        if self.processors[src].cluster == self.processors[dst].cluster:
            self.stats.intra_ssmp += 1
            transit = self.internal.transit(src, dst, size, send_time)
            self.sim.schedule_at(transit.arrival, fn, *args)
            return
        self.stats.inter_ssmp += 1
        self.stats.inter_ssmp_bytes += size
        if self.transport is not None:
            self.transport.send(src, dst, fn, args, label, send_time, size)
        else:
            self._transmit_external(src, dst, fn, args, send_time, size)

    def _transmit_external(
        self,
        src: int,
        dst: int,
        fn: Callable[..., None],
        args: tuple[Any, ...],
        time: int,
        size: int,
    ) -> None:
        """Put one datagram on the external wire (fault layer included).

        The transport retransmits through this same path, so every copy —
        original, duplicate, retransmission, ack — faces the same faults
        and the same contention.
        """
        src_c = self.processors[src].cluster
        dst_c = self.processors[dst].cluster
        entries = [time]
        if self.faults is not None:
            decision = self.faults.decide(self.external.link_name(src_c, dst_c), time)
            self.stats.drops += decision.dropped
            self.stats.dups_injected += decision.duplicated
            self.stats.delays_injected += decision.delayed
            entries = decision.entries
        for entry in entries:
            self.stats.wire_messages += 1
            if self.external.contended:
                # Two-stage delivery: reserve the link *at* the wire-entry
                # time, inside the event queue, so reservations happen in
                # deterministic (time, seq) order regardless of the order
                # threads called send with future timestamps.
                self.sim.schedule_at(
                    entry, self._enter_external, src_c, dst_c, fn, args, size
                )
            else:
                transit = self.external.transit(src_c, dst_c, size, entry)
                self.sim.schedule_at(transit.arrival, fn, *args)

    def _enter_external(
        self,
        src_c: int,
        dst_c: int,
        fn: Callable[..., None],
        args: tuple[Any, ...],
        size: int,
    ) -> None:
        transit = self.external.transit(src_c, dst_c, size, self.sim.now)
        self.stats.lan_queue_cycles += transit.queue_cycles
        self.stats.queue_cycles_by_link[transit.link] += transit.queue_cycles
        self.sim.schedule_at(transit.arrival, fn, *args)

    def occupy(self, pid: int, cycles: int) -> int:
        """Charge ``cycles`` of handler execution to processor ``pid``.

        Serializes with other handlers on the same processor: execution
        begins no earlier than the previous handler's completion.  Returns
        the completion time, at which the caller should schedule replies.
        """
        proc = self.processors[pid]
        start = max(self.sim.now, proc.handler_free_at)
        finish = start + cycles
        proc.handler_free_at = finish
        proc.stolen_cycles += cycles
        proc.handler_cycles_total += cycles
        proc.messages_handled += 1
        return finish

    def take_stolen(self, pid: int) -> int:
        """Drain and return the stolen handler cycles of processor ``pid``."""
        proc = self.processors[pid]
        stolen = proc.stolen_cycles
        proc.stolen_cycles = 0
        return stolen

    def network_summary(self) -> dict:
        """Model names plus every ``repro.net`` counter, for export."""
        out = {
            "external_model": self.external.name,
            "internal_model": self.internal.name,
            "reliable_transport": self.transport is not None,
        }
        out.update(self.stats.network_summary())
        if self.faults is not None:
            out["faults_by_link"] = {
                link: {
                    "transmissions": self.faults.transmissions[link],
                    "drops": self.faults.drops[link],
                    "dups": self.faults.dups[link],
                    "delays": self.faults.delays[link],
                }
                for link in sorted(self.faults.transmissions)
            }
        return out
