"""The simulated DSSMP: processors, clusters, and the two networks.

A :class:`Machine` binds a :class:`~repro.sim.Simulator` to a
:class:`~repro.params.MachineConfig` and provides the message substrate the
MGS protocol engines run on.  Two latency regimes exist, mirroring the
paper's Figure 1:

* **internal network** — messages between processors of the same SSMP are
  active messages over Alewife's mesh; we charge a small wire latency.
* **external network** — messages that cross an SSMP boundary pay the
  configurable ``inter_ssmp_delay`` (the paper's LAN model: a fixed
  latency, no contention, exactly as in section 4.2.2).

Handler model: a message handler runs at its arrival time, applies its
state effects, and calls :meth:`Machine.occupy` with the handler's cycle
cost.  ``occupy`` serializes handler execution per processor (one handler
context drains at a time) and returns the completion time at which the
handler schedules its own continuations (replies, wake-ups).  Handler
cycles are recorded as "stolen" time so the thread driver can charge them
against the application thread running on that processor, in the MGS
bucket of the runtime breakdown — this is how the paper's software-
coherence load imbalance (section 5.2.1, Water) emerges in the model.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.params import CostModel, MachineConfig
from repro.sim import Simulator

__all__ = ["Machine", "ProcessorState"]

#: Wire latency, in cycles, of the internal (intra-SSMP) network.
INTRA_WIRE_LATENCY = 5


@dataclass
class ProcessorState:
    """Bookkeeping for one simulated processor."""

    pid: int
    cluster: int
    #: time at which the processor's handler context becomes free
    handler_free_at: int = 0
    #: handler cycles accumulated since the app thread last absorbed them
    stolen_cycles: int = 0
    #: lifetime handler cycles (statistics)
    handler_cycles_total: int = 0
    #: messages handled on this processor
    messages_handled: int = 0


@dataclass
class MessageStats:
    """Counts of protocol messages, split by network."""

    inter_ssmp: int = 0
    intra_ssmp: int = 0
    #: bytes shipped over the external network
    inter_ssmp_bytes: int = 0
    #: cycles inter-SSMP messages spent queued for the shared LAN link
    #: (only nonzero when MachineConfig.lan_bandwidth > 0)
    lan_queue_cycles: int = 0
    by_label: Counter = field(default_factory=Counter)


class Machine:
    """A DSSMP built from ``config.num_clusters`` SSMPs.

    The machine knows nothing about pages or coherence; it only delivers
    messages with the right latency and serializes handler occupancy per
    destination processor.
    """

    def __init__(self, sim: Simulator, config: MachineConfig, costs: CostModel) -> None:
        self.sim = sim
        self.config = config
        self.costs = costs
        self.processors = [
            ProcessorState(pid=p, cluster=config.cluster_of(p))
            for p in range(config.total_processors)
        ]
        self.stats = MessageStats()
        self._lan_free_at = 0

    def wire_latency(self, src: int, dst: int) -> int:
        """One-way latency between two processors."""
        if self.processors[src].cluster == self.processors[dst].cluster:
            return INTRA_WIRE_LATENCY
        return self.config.inter_ssmp_delay

    def send(
        self,
        src: int,
        dst: int,
        fn: Callable[..., None],
        *args: Any,
        label: str = "msg",
        at: int | None = None,
        size: int = 64,
    ) -> None:
        """Send a message from processor ``src`` to processor ``dst``.

        ``fn(*args)`` runs at the arrival time; it is responsible for
        calling :meth:`occupy` with its handler cost and for scheduling
        any continuations at the returned completion time.

        Args:
            at: send time; defaults to ``sim.now``.  Threads running ahead
                of the global clock inside a quantum pass their local time.
            size: message size in bytes (control messages default to 64;
                data-carrying messages pass their payload size).  Only
                matters when LAN contention modeling is enabled.
        """
        send_time = self.sim.now if at is None else at
        if self.processors[src].cluster == self.processors[dst].cluster:
            self.stats.intra_ssmp += 1
            arrival = send_time + INTRA_WIRE_LATENCY
        else:
            self.stats.inter_ssmp += 1
            self.stats.inter_ssmp_bytes += size
            arrival = send_time + self.config.inter_ssmp_delay
            bandwidth = self.config.lan_bandwidth
            if bandwidth > 0:
                # The external network is one shared link: messages
                # serialize at `bandwidth` bytes/cycle (the contention
                # the paper's fixed-latency model leaves out).
                start = max(send_time, self._lan_free_at)
                transfer = max(1, round(size / bandwidth))
                self._lan_free_at = start + transfer
                self.stats.lan_queue_cycles += start - send_time
                arrival = start + transfer + self.config.inter_ssmp_delay
        self.stats.by_label[label] += 1
        self.sim.schedule_at(arrival, fn, *args)

    def occupy(self, pid: int, cycles: int) -> int:
        """Charge ``cycles`` of handler execution to processor ``pid``.

        Serializes with other handlers on the same processor: execution
        begins no earlier than the previous handler's completion.  Returns
        the completion time, at which the caller should schedule replies.
        """
        proc = self.processors[pid]
        start = max(self.sim.now, proc.handler_free_at)
        finish = start + cycles
        proc.handler_free_at = finish
        proc.stolen_cycles += cycles
        proc.handler_cycles_total += cycles
        proc.messages_handled += 1
        return finish

    def take_stolen(self, pid: int) -> int:
        """Drain and return the stolen handler cycles of processor ``pid``."""
        proc = self.processors[pid]
        stolen = proc.stolen_cycles
        proc.stolen_cycles = 0
        return stolen
