"""Machine model: processors, SSMP clusters, and message delivery."""

from repro.machine.machine import Machine, MessageStats, ProcessorState

__all__ = ["Machine", "MessageStats", "ProcessorState"]
