"""Machine model: processors, SSMP clusters, and message delivery."""

from repro.machine.machine import Machine, ProcessorState

__all__ = ["Machine", "ProcessorState"]
