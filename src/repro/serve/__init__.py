"""Simulation-as-a-service: the repo's sweep engine behind HTTP+JSON.

``python -m repro.serve`` (or ``python -m repro.cli serve``) boots a
stdlib-only daemon that accepts sweep submissions, executes them through
the same :func:`repro.bench.sweep.run_sweep` path the CLI uses, and
serves results in the :mod:`repro.metrics.export` wire format.  All
jobs share one content-addressed run cache, identical in-flight
submissions coalesce onto a single computation, and per-client token
buckets keep any one caller from monopolizing the queue — the pieces
needed to put the simulator in front of many users (see ROADMAP.md).

Modules: :mod:`~repro.serve.validate` (strict request schema),
:mod:`~repro.serve.jobs` (single-flight queue + executor),
:mod:`~repro.serve.ratelimit` (token buckets),
:mod:`~repro.serve.daemon` (HTTP server + dispatcher),
:mod:`~repro.serve.client` (urllib client).  API reference and curl
examples: ``docs/SERVICE.md``.
"""

from repro.serve.daemon import ServeDaemon, main
from repro.serve.validate import JobRequest, RequestError, validate_request

__all__ = [
    "ServeDaemon",
    "JobRequest",
    "RequestError",
    "validate_request",
    "main",
]
