"""End-to-end smoke test for the ``repro.serve`` daemon (the CI job).

Boots a daemon on an ephemeral port over a fresh cache directory, then:

1. **cold** — submits a sweep over HTTP; every point must be simulated
   (``misses == points``, ``hits == 0``);
2. **warm** — resubmits the identical body; the job must be served
   entirely from the shared run cache (``hits == points``,
   ``misses == 0``, **zero simulation**) and its sweep payload must be
   byte-identical to the cold one.

Exits non-zero (with a reason on stderr) if any invariant fails, so CI
can gate on it directly:

.. code-block:: bash

    PYTHONPATH=src python -m repro.serve.smoke --out serve_smoke.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile

from repro.serve.client import ServeClient
from repro.serve.daemon import ServeDaemon

__all__ = ["main"]

#: the sweep the smoke test submits twice (small but multi-point)
REQUEST = {
    "workload": "jacobi",
    "params": {"n": 24, "iterations": 4},
    "total_processors": 8,
}


def _sweep_points(result: dict) -> int:
    return len(result["sweep"]["points"])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.serve.smoke",
        description="cold-then-warm HTTP smoke test against a live daemon",
    )
    parser.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="worker processes per job (default 2)",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the JSON report here (default: stdout only)",
    )
    args = parser.parse_args(argv)

    failures: list[str] = []

    def check(ok: bool, what: str) -> None:
        if not ok:
            failures.append(what)
            print(f"FAIL: {what}", file=sys.stderr)

    with tempfile.TemporaryDirectory(prefix="repro_serve_smoke_") as tmp:
        daemon = ServeDaemon(port=0, cache_dir=tmp, jobs=args.jobs)
        daemon.start_background()
        try:
            client = ServeClient(daemon.url, client_id="ci-smoke")

            cold_job = client.submit(**REQUEST)
            cold = client.wait(cold_job["id"], timeout=600, poll=0.2)
            points = _sweep_points(cold)
            check(points >= 2, f"cold sweep has {points} point(s), expected >=2")
            check(
                cold["cache"]["misses"] == points,
                f"cold run simulated {cold['cache']['misses']}/{points} points",
            )
            check(
                cold["cache"]["hits"] == 0,
                f"cold run claims {cold['cache']['hits']} cache hits",
            )

            warm_job = client.submit(**REQUEST)
            check(
                warm_job["id"] != cold_job["id"],
                "warm resubmission coalesced onto the finished cold job",
            )
            warm = client.wait(warm_job["id"], timeout=600, poll=0.2)
            check(
                warm["cache"]["hits"] == points,
                f"warm run hit only {warm['cache']['hits']}/{points} points",
            )
            check(
                warm["cache"]["misses"] == 0,
                f"warm run simulated {warm['cache']['misses']} point(s); "
                "must be served entirely from the cache",
            )
            check(
                warm["sweep"] == cold["sweep"],
                "warm sweep payload differs from the cold one",
            )

            stats = client.stats()
            report = {
                "ok": not failures,
                "failures": failures,
                "request": REQUEST,
                "points": points,
                "cold_cache": cold["cache"],
                "warm_cache": warm["cache"],
                "stats": stats,
            }
        finally:
            daemon.close()

    text = json.dumps(report, indent=1, sort_keys=True)
    print(text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
    if failures:
        print(f"serve smoke: {len(failures)} failure(s)", file=sys.stderr)
        return 1
    print(f"serve smoke: OK (cold simulated {points} points, "
          "warm served all of them from the cache)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
