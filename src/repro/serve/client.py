"""Minimal urllib client for the ``repro.serve`` HTTP API.

.. code-block:: python

    from repro.serve.client import ServeClient

    client = ServeClient("http://127.0.0.1:8642", client_id="alice")
    job = client.submit("jacobi", params={"n": 32, "iterations": 5})
    result = client.wait(job["id"])
    print(result["sweep"]["points"][0]["total_time"])

Every method returns the decoded JSON payload; non-2xx responses raise
:class:`ServeError` carrying the HTTP status and the server's decoded
error payload.  Stdlib only, like the daemon.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any

__all__ = ["ServeError", "ServeClient"]


class ServeError(RuntimeError):
    """A non-2xx response from the daemon."""

    def __init__(self, status: int, payload: dict) -> None:
        self.status = status
        self.payload = payload
        super().__init__(
            f"HTTP {status}: {payload.get('error', payload)}"
        )


class ServeClient:
    """One client identity against one daemon."""

    def __init__(
        self,
        base_url: str,
        client_id: str = "anonymous",
        timeout: float = 60.0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.client_id = client_id
        self.timeout = timeout

    # -- transport -----------------------------------------------------

    def request(self, method: str, path: str,
                body: dict | None = None) -> dict:
        data = None
        headers = {"X-Client-Id": self.client_id}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read())
            except ValueError:
                payload = {"error": exc.reason}
            raise ServeError(exc.code, payload) from None

    # -- API -----------------------------------------------------------

    def submit(self, workload: str, params: dict | None = None,
               **options: Any) -> dict:
        """``POST /v1/jobs``; returns the job record (see ``id``)."""
        body: dict[str, Any] = {"workload": workload, **options}
        if params is not None:
            body["params"] = params
        return self.request("POST", "/v1/jobs", body)

    def status(self, job_id: str) -> dict:
        return self.request("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        return self.request("GET", f"/v1/jobs/{job_id}/result")

    def stats(self) -> dict:
        return self.request("GET", "/v1/stats")

    def shutdown(self) -> dict:
        return self.request("POST", "/v1/shutdown", {})

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.1) -> dict:
        """Poll until the job finishes; returns the result payload.

        Raises :class:`ServeError` (status 500) if the job failed, or
        :class:`TimeoutError` after ``timeout`` seconds.
        """
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in ("done", "failed"):
                return self.result(job_id)
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after "
                    f"{timeout:.0f}s"
                )
            time.sleep(poll)
