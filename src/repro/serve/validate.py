"""Request validation for the ``repro.serve`` HTTP API.

A job submission is a JSON object describing one cluster-size sweep:

.. code-block:: json

    {
      "workload": "jacobi",
      "params": {"n": 32, "iterations": 5},
      "total_processors": 32,
      "sizes": [1, 4, 32],
      "inter_ssmp_delay": 1000,
      "costs": {"translate_array": 10},
      "network": {"external": "bus"},
      "overrides": {"page_size": 2048},
      "protocol": "mgs"
    }

Only ``workload`` is required.  Everything else defaults to the paper's
experimental platform, exactly as :func:`repro.bench.sweep.run_sweep`
does, so a bare ``{"workload": "water"}`` reproduces the CLI's
``sweep water`` bit-for-bit.

Validation is strict and reuses the :mod:`repro.params` machinery:
nested objects go through ``dataclass_from_dict``, which rejects unknown
fields with the full list of known ones, and ``overrides`` may only name
:class:`~repro.params.MachineConfig` fields the sweep itself does not
control.  Every accepted request canonicalizes to a deterministic JSON
form whose SHA-256 is the request key — the identity the daemon uses to
coalesce identical in-flight submissions onto one computation.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, fields
from typing import Any

from repro.apps import ALL_APPS
from repro.bench.cache import canonical_json
from repro.core.engine import engine_names
from repro.metrics import cluster_sizes
from repro.params import (
    CostModel,
    MachineConfig,
    NetworkConfig,
    cost_model_from_dict,
    dataclass_from_dict,
    network_config_from_dict,
)

__all__ = ["RequestError", "JobRequest", "PARAM_CLASSES", "validate_request"]


class RequestError(ValueError):
    """A submission failed validation (HTTP 400)."""


def _params_class(module) -> type:
    """The app module's frozen ``*Params`` dataclass (e.g. JacobiParams)."""
    for name in module.__all__:
        if name.endswith("Params"):
            return getattr(module, name)
    raise LookupError(f"{module.__name__} exports no Params dataclass")


#: workload name -> its parameter dataclass, derived from the registry
PARAM_CLASSES = {name: _params_class(mod) for name, mod in ALL_APPS.items()}

#: top-level request fields (anything else is rejected)
_REQUEST_FIELDS = (
    "workload",
    "params",
    "total_processors",
    "sizes",
    "inter_ssmp_delay",
    "costs",
    "network",
    "overrides",
    "protocol",
)

#: MachineConfig fields the sweep controls itself — not overridable
#: (``protocol`` has its own top-level request field)
_RESERVED_CONFIG_FIELDS = frozenset(
    ("total_processors", "cluster_size", "inter_ssmp_delay", "network",
     "protocol")
)


@dataclass(frozen=True)
class JobRequest:
    """One validated, canonicalized sweep submission."""

    workload: str
    params: Any
    total_processors: int
    sizes: tuple[int, ...]
    inter_ssmp_delay: int
    costs: CostModel | None
    network: NetworkConfig | None
    overrides: dict[str, Any]
    protocol: str

    def canonical(self) -> dict:
        """The deterministic JSON form (defaults applied, keys sorted)."""
        return {
            "workload": self.workload,
            "params": dataclasses.asdict(self.params),
            "total_processors": self.total_processors,
            "sizes": list(self.sizes),
            "inter_ssmp_delay": self.inter_ssmp_delay,
            "costs": (
                None if self.costs is None else dataclasses.asdict(self.costs)
            ),
            "network": (
                None
                if self.network is None
                else dataclasses.asdict(self.network)
            ),
            "overrides": dict(sorted(self.overrides.items())),
            "protocol": self.protocol,
        }

    @property
    def key(self) -> str:
        """SHA-256 of the canonical form: the single-flight identity."""
        return hashlib.sha256(
            canonical_json(self.canonical()).encode()
        ).hexdigest()

    def point_config(self, cluster_size: int) -> MachineConfig:
        """The MachineConfig one point of this request simulates."""
        from repro.bench.sweep import _point_config

        return _point_config(
            self.total_processors,
            cluster_size,
            self.inter_ssmp_delay,
            self.network,
            {**self.overrides, "protocol": self.protocol},
        )


def _require_int(body: dict, name: str, default: int) -> int:
    value = body.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise RequestError(f"{name} must be an integer, got {value!r}")
    return value


def validate_request(body: Any) -> JobRequest:
    """Parse one submission body; raise :class:`RequestError` on anything
    malformed, unknown, or unsatisfiable."""
    if not isinstance(body, dict):
        raise RequestError(
            f"request body must be a JSON object, got {type(body).__name__}"
        )
    unknown = sorted(k for k in body if k not in _REQUEST_FIELDS)
    if unknown:
        raise RequestError(
            f"unknown request field(s) {unknown}; "
            f"known fields: {', '.join(_REQUEST_FIELDS)}"
        )

    workload = body.get("workload")
    if workload not in PARAM_CLASSES:
        raise RequestError(
            f"workload must be one of {sorted(PARAM_CLASSES)}, "
            f"got {workload!r}"
        )

    try:
        params = dataclass_from_dict(
            PARAM_CLASSES[workload], body.get("params") or {}
        )
        costs = (
            cost_model_from_dict(body["costs"])
            if body.get("costs") is not None
            else None
        )
        network = (
            network_config_from_dict(body["network"])
            if body.get("network") is not None
            else None
        )
    except (TypeError, ValueError) as exc:
        raise RequestError(str(exc)) from None

    total_processors = _require_int(body, "total_processors", 32)
    inter_ssmp_delay = _require_int(body, "inter_ssmp_delay", 1000)

    protocol = body.get("protocol", "mgs")
    engines = engine_names()
    if protocol not in engines:
        raise RequestError(
            f"protocol must be one of {engines}, got {protocol!r}"
        )

    overrides = body.get("overrides") or {}
    if not isinstance(overrides, dict):
        raise RequestError(
            f"overrides must be an object, got {type(overrides).__name__}"
        )
    config_fields = {f.name for f in fields(MachineConfig)}
    bad = sorted(
        k
        for k in overrides
        if k not in config_fields or k in _RESERVED_CONFIG_FIELDS
    )
    if bad:
        allowed = sorted(config_fields - _RESERVED_CONFIG_FIELDS)
        raise RequestError(
            f"overrides may not set {bad}; "
            f"allowed MachineConfig fields: {allowed}"
        )

    sizes = body.get("sizes")
    if sizes is None:
        try:
            sizes = cluster_sizes(total_processors)
        except ValueError as exc:
            raise RequestError(str(exc)) from None
    if not isinstance(sizes, list) or not sizes:
        raise RequestError("sizes must be a non-empty list of cluster sizes")

    request = JobRequest(
        workload=workload,
        params=params,
        total_processors=total_processors,
        sizes=tuple(sizes),
        inter_ssmp_delay=inter_ssmp_delay,
        costs=costs,
        network=network,
        overrides=dict(overrides),
        protocol=protocol,
    )
    # Construct every point's MachineConfig now, so an unsatisfiable
    # shape (non-power-of-two sizes, C not dividing P, bad override
    # values) is a 400 at submission rather than a failed job later.
    for c in request.sizes:
        if isinstance(c, bool) or not isinstance(c, int):
            raise RequestError(f"sizes must be integers, got {c!r}")
        try:
            request.point_config(c)
        except (TypeError, ValueError) as exc:
            raise RequestError(f"cluster size {c}: {exc}") from None
    return request
