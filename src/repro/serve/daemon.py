"""The ``repro.serve`` daemon: simulation-as-a-service over HTTP+JSON.

Stdlib only (``http.server``); every response is JSON.  Endpoints:

========  ======================  =========================================
method    path                    purpose
========  ======================  =========================================
POST      ``/v1/jobs``            submit a sweep (body: see
                                  :mod:`repro.serve.validate`); 202 with
                                  the job record, 200 when coalesced onto
                                  an identical in-flight job, 400 on
                                  validation errors, 429 when throttled
GET       ``/v1/jobs/<id>``       job state + progress (points done /
                                  total, wall-time estimate from the run
                                  cache's index) + per-job cache counters
GET       ``/v1/jobs/<id>/result``  the finished sweep as the
                                  ``repro.metrics.export`` payload; 409
                                  until the job is done
GET       ``/v1/stats``           queue depth, aggregate cache counters,
                                  per-client request counts
POST      ``/v1/shutdown``        graceful shutdown: drain the running
                                  job, persist the queue, exit
========  ======================  =========================================

Architecture: a :class:`~http.server.ThreadingHTTPServer` answers
requests while one dispatcher thread drains the
:class:`~repro.serve.jobs.JobQueue` longest-job-first; each job fans its
cluster-size points to a bounded process pool through the sweep engine,
and all jobs share one content-addressed run cache, so identical work —
across requests, clients, daemon restarts, even the CLI — is simulated
exactly once.  Submissions are rate-limited per ``X-Client-Id`` with a
token bucket (429 + ``Retry-After`` when empty).
"""

from __future__ import annotations

import argparse
import json
import threading
import time
import traceback

from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.metrics.export import (
    SCHEMA_VERSION,
    run_cache_to_dict,
    sweep_to_dict,
)
from repro.serve.jobs import DONE, FAILED, JobQueue, execute_job
from repro.serve.ratelimit import ClientTable
from repro.serve.validate import RequestError, validate_request

__all__ = ["ServeDaemon", "main"]

#: cap on request body size (a sweep submission is a few hundred bytes)
MAX_BODY_BYTES = 1 << 20


class _Handler(BaseHTTPRequestHandler):
    server: "ServeDaemon"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    def log_message(self, format: str, *args) -> None:
        if self.server.verbose:
            super().log_message(format, *args)

    @property
    def client_id(self) -> str:
        return (
            self.headers.get("X-Client-Id") or self.client_address[0]
        ).strip()

    def send_json(self, code: int, payload: dict,
                  headers: dict | None = None) -> None:
        body = (json.dumps(payload, indent=1, sort_keys=True) + "\n").encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def send_error_json(self, code: int, message: str,
                        headers: dict | None = None) -> None:
        self.send_json(
            code,
            {"schema_version": SCHEMA_VERSION, "error": message},
            headers,
        )

    def read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise RequestError(f"request body over {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise RequestError("request body must be a JSON object")
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise RequestError(f"request body is not valid JSON: {exc}")

    # -- routes --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self.server.clients.note(self.client_id)
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts == ["v1", "stats"]:
            return self.send_json(200, self.server.stats_payload())
        if len(parts) >= 3 and parts[:2] == ["v1", "jobs"]:
            job = self.server.queue.get(parts[2])
            if job is None:
                return self.send_error_json(404, f"no such job {parts[2]!r}")
            if len(parts) == 3:
                return self.send_json(200, self.server.job_payload(job))
            if len(parts) == 4 and parts[3] == "result":
                return self.result_route(job)
        self.send_error_json(404, f"no such resource {self.path!r}")

    def result_route(self, job) -> None:
        if job.state == FAILED:
            return self.send_error_json(
                500, f"job {job.id} failed: {job.error}"
            )
        if job.state != DONE:
            return self.send_error_json(
                409,
                f"job {job.id} is {job.state}; result not available yet",
            )
        self.send_json(
            200,
            {
                "schema_version": SCHEMA_VERSION,
                "id": job.id,
                "request": job.request.canonical(),
                "sweep": sweep_to_dict(job.sweep),
                "cache": run_cache_to_dict(job.cache),
            },
        )

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        client = self.client_id
        self.server.clients.note(client)
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts == ["v1", "shutdown"]:
            self.send_json(
                200,
                {"schema_version": SCHEMA_VERSION, "shutting_down": True},
            )
            self.server.request_shutdown()
            return
        if parts != ["v1", "jobs"]:
            return self.send_error_json(404, f"no such resource {self.path!r}")
        if self.server.draining:
            return self.send_error_json(
                503, "daemon is shutting down", {"Retry-After": "1"}
            )
        retry_after = self.server.clients.admit(client)
        if retry_after > 0.0:
            return self.send_error_json(
                429,
                f"rate limit exceeded for client {client!r}; retry in "
                f"{retry_after:.2f}s",
                {"Retry-After": f"{max(1, round(retry_after))}"},
            )
        try:
            request = validate_request(self.read_body())
        except RequestError as exc:
            return self.send_error_json(400, str(exc))
        job, coalesced = self.server.queue.submit(request, client)
        payload = self.server.job_payload(job)
        payload["coalesced"] = coalesced
        self.send_json(200 if coalesced else 202, payload)


class ServeDaemon(ThreadingHTTPServer):
    """The HTTP server + dispatcher.  ``port=0`` binds an ephemeral port
    (read it back from ``.server_address``)."""

    daemon_threads = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_dir: str | None = None,
        jobs: int = 1,
        rate: float = 2.0,
        burst: float = 5.0,
        verbose: bool = False,
    ) -> None:
        super().__init__((host, port), _Handler)
        self.queue = JobQueue(cache_dir)
        self.clients = ClientTable(rate=rate, burst=burst)
        self.jobs = jobs
        self.verbose = verbose
        self.started = time.time()
        self.draining = False
        self._serving = False
        self._stop = threading.Event()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-dispatcher", daemon=True
        )
        restored = self.queue.restore()
        if restored and verbose:
            print(f"restored {restored} queued job(s) from a previous run")

    # -- lifecycle -----------------------------------------------------

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def serve(self) -> None:
        """Run until :meth:`close` (or ``POST /v1/shutdown``)."""
        self._dispatcher.start()
        self._serving = True
        try:
            self.serve_forever(poll_interval=0.1)
        finally:
            self.close()

    def start_background(self, dispatch: bool = True) -> None:
        """Run the accept loop in a thread (tests, embedding).

        ``dispatch=False`` accepts submissions without executing them —
        call :meth:`start_dispatcher` to begin; tests use the window to
        stage coalescing/persistence scenarios deterministically.
        """
        if dispatch:
            self.start_dispatcher()
        self._serving = True
        threading.Thread(
            target=self.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="serve-http",
            daemon=True,
        ).start()

    def start_dispatcher(self) -> None:
        if not self._dispatcher.is_alive():
            self._dispatcher.start()

    def request_shutdown(self) -> None:
        """Asynchronous graceful shutdown (the ``/v1/shutdown`` route)."""
        threading.Thread(target=self.close, daemon=True).start()

    def close(self) -> None:
        """Graceful shutdown: drain the running job, persist the queue.

        Idempotent.  New submissions get 503 the moment draining starts;
        the dispatcher finishes its current job (results stay readable
        until the process exits), then still-queued requests are written
        to ``serve_queue.json`` for the next daemon start.
        """
        if self.draining:
            return
        self.draining = True
        self._stop.set()
        self.queue.wake()
        if self._dispatcher.is_alive():
            self._dispatcher.join()
        persisted = self.queue.persist()
        if self.verbose and persisted:
            print(f"persisted {persisted} queued job(s)")
        if self._serving:
            self.shutdown()
        self.server_close()

    # -- dispatcher ----------------------------------------------------

    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            job = self.queue.take_next(timeout=0.2)
            if job is None:
                continue
            try:
                sweep = execute_job(job, jobs=self.jobs)
            except Exception as exc:  # noqa: BLE001 - job isolation
                if self.verbose:
                    traceback.print_exc()
                self.queue.finish(job, None, error=f"{type(exc).__name__}: {exc}")
            else:
                self.queue.finish(job, sweep)

    # -- payloads ------------------------------------------------------

    def job_payload(self, job) -> dict:
        payload = self.queue.job_status(job)
        payload["schema_version"] = SCHEMA_VERSION
        return payload

    def stats_payload(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "uptime_seconds": round(time.time() - self.started, 3),
            "draining": self.draining,
            **self.queue.counters(),
            "clients": self.clients.snapshot(),
        }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.serve",
        description="simulation-as-a-service daemon over the shared run cache",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8642,
        help="listen port (0 binds an ephemeral port; default 8642)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="shared run-cache directory (default: REPRO_CACHE_DIR or "
        ".repro_cache/)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes per job (default 1; 0 means all cores)",
    )
    parser.add_argument(
        "--rate", type=float, default=2.0, metavar="R",
        help="submissions per second refilled per client (default 2)",
    )
    parser.add_argument(
        "--burst", type=float, default=5.0, metavar="B",
        help="submission burst capacity per client (default 5)",
    )
    parser.add_argument("--verbose", action="store_true",
                        help="log every request")
    args = parser.parse_args(argv)

    daemon = ServeDaemon(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        rate=args.rate,
        burst=args.burst,
        verbose=args.verbose,
    )
    print(f"repro.serve listening on {daemon.url} "
          f"(cache: {daemon.queue.cache_root})", flush=True)
    try:
        daemon.serve()
    except KeyboardInterrupt:
        daemon.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
