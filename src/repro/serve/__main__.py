"""``python -m repro.serve``: boot the daemon (see serve/daemon.py)."""

from repro.serve.daemon import main

if __name__ == "__main__":
    raise SystemExit(main())
