"""Job queue for the serve daemon: single-flight, cost-aware, durable.

A job is one validated sweep request (:class:`~repro.serve.validate
.JobRequest`) plus its execution state.  The queue provides:

* **Single-flight deduplication** — submissions are keyed by the
  request's canonical SHA-256; an identical request arriving while the
  first is queued or running coalesces onto that job instead of
  simulating twice.  (A resubmission *after* completion gets a fresh
  job: it runs through the shared content-addressed run cache, so it
  still simulates nothing — and its per-job hit counters prove it.)
* **Longest-job-first dispatch** — the same
  :func:`repro.bench.parallel.submission_order` scheduler the parallel
  sweep runner uses, fed with wall-time estimates from the run cache's
  index, so the slowest queued sweep starts first.
* **Per-job cache counters** — every job executes against its own
  :class:`~repro.bench.cache.RunCache` instance over the daemon's shared
  store, so ``GET /v1/jobs/<id>`` reports exactly how much of that job
  was simulated versus served from cache.
* **Queue persistence** — a graceful shutdown drains the running job
  and writes the still-queued requests to ``serve_queue.json`` in the
  cache directory; the next daemon start re-enqueues them.

Execution chunks the request's cluster sizes into groups of the
daemon's worker count and runs each group through
:func:`repro.bench.sweep.run_sweep` — the bounded process pool, the
cache hit path, and the byte-identical collection order are all the
sweep engine's own; progress ticks per completed group.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from pathlib import Path

from repro.apps import ALL_APPS
from repro.bench.cache import RunCache
from repro.bench.parallel import submission_order
from repro.bench.sweep import run_sweep
from repro.metrics import ClusterSweep
from repro.serve.validate import JobRequest, validate_request

__all__ = ["Job", "JobQueue", "execute_job"]

QUEUE_STATE_SCHEMA = 1
QUEUE_STATE_FILE = "serve_queue.json"

#: job lifecycle: queued -> running -> done | failed
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"


class Job:
    """One submission's execution state (mutated only by the queue and
    the dispatcher; read via :meth:`JobQueue.job_status`)."""

    def __init__(self, job_id: str, request: JobRequest, cache: RunCache,
                 client: str) -> None:
        self.id = job_id
        self.request = request
        self.key = request.key
        self.cache = cache
        self.state = QUEUED
        self.clients = [client]
        self.created = time.time()
        self.started: float | None = None
        self.finished: float | None = None
        self.points_total = len(request.sizes)
        self.points_done = 0
        self.sweep: ClusterSweep | None = None
        self.error: str | None = None


class JobQueue:
    """Thread-safe job registry + FIFO-with-priorities dispatch queue."""

    def __init__(self, cache_root: str | Path | None = None) -> None:
        self.cache_root = Path(
            cache_root
            if cache_root is not None
            else os.environ.get("REPRO_CACHE_DIR") or ".repro_cache"
        )
        #: estimates only; jobs get their own counter-bearing instances
        self._estimator = RunCache(self.cache_root)
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._jobs: dict[str, Job] = {}
        self._queued: list[Job] = []
        self._inflight: dict[str, Job] = {}  # request key -> queued/running
        self._seq = itertools.count(1)
        self.submitted = 0
        self.deduplicated = 0
        self.done = 0
        self.failed = 0

    # -- submission ----------------------------------------------------

    def submit(self, request: JobRequest, client: str) -> tuple[Job, bool]:
        """Enqueue ``request``; returns ``(job, coalesced)``.

        ``coalesced`` is True when an identical request was already in
        flight and this submission attached to it (single-flight).
        """
        with self._wakeup:
            existing = self._inflight.get(request.key)
            if existing is not None:
                self.deduplicated += 1
                if client not in existing.clients:
                    existing.clients.append(client)
                return existing, True
            job = Job(
                f"j{next(self._seq):04d}-{request.key[:8]}",
                request,
                RunCache(self.cache_root),
                client,
            )
            self._jobs[job.id] = job
            self._queued.append(job)
            self._inflight[job.key] = job
            self.submitted += 1
            self._wakeup.notify()
            return job, False

    # -- dispatch ------------------------------------------------------

    def estimate_remaining(self, job: Job) -> float | None:
        """Wall-seconds estimate for the job's unfinished points, from
        the run cache's index; None when nothing is known yet."""
        remaining = job.request.sizes[job.points_done:]
        estimates = [
            self._estimator.estimate_seconds(
                job.request.workload, c, job.request.protocol
            )
            for c in remaining
        ]
        known = [e for e in estimates if e is not None]
        if not known:
            return None
        return sum(known)

    def take_next(self, timeout: float | None = None) -> Job | None:
        """Pop the next job (longest-first) and mark it running.

        Blocks up to ``timeout`` seconds for work; None on timeout.
        """
        with self._wakeup:
            if not self._queued:
                self._wakeup.wait(timeout)
            if not self._queued:
                return None
            order = submission_order(
                len(self._queued),
                [self.estimate_remaining(j) for j in self._queued],
            )
            job = self._queued.pop(order[0])
            job.state = RUNNING
            job.started = time.time()
            return job

    def finish(self, job: Job, sweep: ClusterSweep | None,
               error: str | None = None) -> None:
        """Record a job's outcome and release its single-flight slot."""
        with self._wakeup:
            job.finished = time.time()
            if error is None:
                job.sweep = sweep
                job.state = DONE
                self.done += 1
            else:
                job.error = error
                job.state = FAILED
                self.failed += 1
            if self._inflight.get(job.key) is job:
                del self._inflight[job.key]

    def wake(self) -> None:
        """Nudge a dispatcher blocked in :meth:`take_next`."""
        with self._wakeup:
            self._wakeup.notify_all()

    # -- introspection -------------------------------------------------

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def job_status(self, job: Job) -> dict:
        """JSON-ready status for ``GET /v1/jobs/<id>``."""
        with self._lock:
            status = {
                "id": job.id,
                "state": job.state,
                "workload": job.request.workload,
                "request_key": job.key,
                "clients": list(job.clients),
                "created": job.created,
                "started": job.started,
                "finished": job.finished,
                "progress": {
                    "points_done": job.points_done,
                    "points_total": job.points_total,
                    "estimate_seconds_remaining": (
                        0.0
                        if job.state in (DONE, FAILED)
                        else self.estimate_remaining(job)
                    ),
                },
                "cache": job.cache.stats.as_dict(),
                "error": job.error,
            }
        return status

    def counters(self) -> dict:
        """Queue-level counters for ``GET /v1/stats``."""
        with self._lock:
            running = sum(
                1 for j in self._jobs.values() if j.state == RUNNING
            )
            cache_totals: dict[str, int] = {}
            for j in self._jobs.values():
                for k, v in j.cache.stats.as_dict().items():
                    cache_totals[k] = cache_totals.get(k, 0) + v
            # Process-wide phase-replay-store counters: jobs execute in
            # this daemon process (and its pool workers), so the module
            # aggregate in repro.bench.cache is the daemon's replay
            # traffic.  Reporting only — never read back by behavior.
            from repro.bench.cache import PROCESS_REPLAY_STATS

            return {
                "queue": {
                    "depth": len(self._queued),
                    "running": running,
                    "submitted": self.submitted,
                    "deduplicated": self.deduplicated,
                    "done": self.done,
                    "failed": self.failed,
                },
                "cache": {"dir": str(self.cache_root), **cache_totals},
                "replay_cache": PROCESS_REPLAY_STATS.as_dict(),
            }

    # -- persistence ---------------------------------------------------

    @property
    def state_path(self) -> Path:
        return self.cache_root / QUEUE_STATE_FILE

    def persist(self) -> int:
        """Write still-queued requests to disk; returns how many."""
        with self._lock:
            pending = [j.request.canonical() for j in self._queued]
        self.cache_root.mkdir(parents=True, exist_ok=True)
        tmp = self.state_path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(
            json.dumps(
                {"queue_state_schema": QUEUE_STATE_SCHEMA, "queue": pending},
                indent=1,
                sort_keys=True,
            )
            + "\n"
        )
        os.replace(tmp, self.state_path)
        return len(pending)

    def restore(self) -> int:
        """Re-enqueue requests persisted by a previous daemon's graceful
        shutdown; the state file is consumed.  Returns how many."""
        try:
            state = json.loads(self.state_path.read_text())
        except (OSError, ValueError):
            return 0
        if state.get("queue_state_schema") != QUEUE_STATE_SCHEMA:
            return 0
        restored = 0
        for body in state.get("queue", []):
            try:
                request = validate_request(body)
            except ValueError:
                continue  # stale schema or workload; drop it
            self.submit(request, client="queue-restore")
            restored += 1
        try:
            self.state_path.unlink()
        except OSError:
            pass
        return restored


def execute_job(job: Job, jobs: int = 1) -> ClusterSweep:
    """Run one job, ticking progress per size group; returns the sweep.

    ``jobs`` bounds the worker-process pool each group is farmed to
    (``run_sweep``'s own ``parallel_map`` machinery); the group size
    matches it so progress advances as fast as results can arrive.
    The caller records the outcome via :meth:`JobQueue.finish`.
    """
    request = job.request
    module = ALL_APPS[request.workload]
    chunk = max(1, jobs)
    points = []
    app_name = None
    sizes = list(request.sizes)
    for start in range(0, len(sizes), chunk):
        group = sizes[start:start + chunk]
        sweep = run_sweep(
            module,
            request.params,
            total_processors=request.total_processors,
            sizes=group,
            costs=request.costs,
            inter_ssmp_delay=request.inter_ssmp_delay,
            network=request.network,
            jobs=jobs,
            cache=job.cache,
            overrides=request.overrides or None,
            protocol=request.protocol,
        )
        points.extend(sweep.points)
        app_name = sweep.app
        job.points_done += len(group)
    return ClusterSweep(
        app=app_name or request.workload,
        total_processors=request.total_processors,
        points=points,
        protocol=request.protocol,
    )
