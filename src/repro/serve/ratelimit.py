"""Per-client token-bucket rate limiting for the serve daemon.

Each client — identified by the ``X-Client-Id`` request header, falling
back to the peer address — owns one token bucket: ``burst`` tokens of
capacity, refilled at ``rate`` tokens per second.  Submitting a job
spends one token; an empty bucket means HTTP 429 with a ``Retry-After``
hint of when the next token lands.  Read-only endpoints are never
throttled, but every request (throttled or not) is counted per client so
``GET /v1/stats`` can report who is using the service.

The table is safe for concurrent use from the daemon's handler threads;
everything is in-memory and scoped to one daemon process.
"""

from __future__ import annotations

import threading
import time

__all__ = ["TokenBucket", "ClientTable"]


class TokenBucket:
    """Classic token bucket: ``burst`` capacity, ``rate`` tokens/second."""

    def __init__(self, rate: float, burst: float, now: float) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated = now

    def take(self, now: float) -> float:
        """Spend one token.  Returns 0.0 on success, else the seconds
        until a token will be available (the ``Retry-After`` hint)."""
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


class ClientTable:
    """Per-client buckets plus request/throttle counters (thread-safe)."""

    def __init__(self, rate: float = 2.0, burst: float = 5.0) -> None:
        self.rate = rate
        self.burst = burst
        self._lock = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}
        self._requests: dict[str, int] = {}
        self._throttled: dict[str, int] = {}

    def note(self, client: str) -> None:
        """Count one request from ``client`` (any endpoint)."""
        with self._lock:
            self._requests[client] = self._requests.get(client, 0) + 1

    def admit(self, client: str) -> float:
        """Charge one submission token.  0.0 = admitted, else the
        ``Retry-After`` delay in seconds (the request was throttled)."""
        now = time.monotonic()
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = self._buckets[client] = TokenBucket(
                    self.rate, self.burst, now
                )
            retry_after = bucket.take(now)
            if retry_after > 0.0:
                self._throttled[client] = self._throttled.get(client, 0) + 1
            return retry_after

    def snapshot(self) -> dict:
        """JSON-ready per-client counters for ``GET /v1/stats``."""
        with self._lock:
            return {
                client: {
                    "requests": self._requests.get(client, 0),
                    "throttled": self._throttled.get(client, 0),
                }
                for client in sorted(self._requests)
            }
