"""Machine configuration and cycle cost model for the MGS reproduction.

Every cycle constant used by the simulator lives here.  The defaults are
calibrated so that the micro-benchmarks of Table 3 in the paper (measured
on a 20 MHz Alewife with 1 KB pages and a 0-cycle inter-SSMP delay) come
out of the simulator with the values the paper reports.  See
``benchmarks/bench_table3.py`` for the paper-vs-measured comparison.

Two dataclasses are exported:

``MachineConfig``
    The knobs that define a DSSMP: total processors ``P``, cluster size
    ``C``, page and cache-line geometry, and the external network latency.

``CostModel``
    Cycle charges for each primitive event (hardware misses, translation,
    protocol handler occupancies, per-word data manipulation costs).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, fields, replace

__all__ = [
    "MachineConfig",
    "CostModel",
    "NetworkConfig",
    "ProtocolOptions",
    "UnknownFieldError",
    "dataclass_from_dict",
    "network_config_from_dict",
    "protocol_options_from_dict",
    "machine_config_from_dict",
    "cost_model_from_dict",
]

WORD_BYTES = 8

#: names of the external (inter-SSMP) interconnect models in ``repro.net``
EXTERNAL_MODELS = ("fixed", "bus", "fabric")
#: names of the internal (intra-SSMP) interconnect models in ``repro.net``
INTERNAL_MODELS = ("wire", "mesh")


@dataclass(frozen=True)
class NetworkConfig:
    """Configuration of the ``repro.net`` interconnect subsystem.

    The default (``external="fixed"``, ``internal="wire"``, all fault
    rates zero, transport off) reproduces the paper's section 4.2.2
    model bit-for-bit: a fixed one-way latency per network, no
    contention, perfectly reliable delivery.

    Attributes:
        external: inter-SSMP topology — ``"fixed"`` (paper model),
            ``"bus"`` (one shared link, serializes at
            ``bus_bandwidth``), or ``"fabric"`` (a switched fabric with
            a dedicated FIFO link per ordered cluster pair).
        internal: intra-SSMP topology — ``"wire"`` (fixed
            ``intra_wire_latency``) or ``"mesh"`` (Alewife-style 2-D
            mesh: base latency plus a per-hop charge).
        bus_bandwidth: bytes/cycle of the shared bus.
        link_bandwidth: bytes/cycle of each fabric link.
        mesh_hop_latency: extra cycles per mesh hop beyond the base
            ``intra_wire_latency``.
        drop_rate / dup_rate / delay_rate: per-message fault
            probabilities on external links, decided by a deterministic
            counter-seeded PRNG (no wall-clock randomness).
        delay_cycles: extra latency applied to a "delay"-faulted message.
        fault_seed: seed for the fault-decision PRNG.
        reliable: force the reliable-delivery transport on (``True``) or
            off (``False``); ``None`` auto-enables it exactly when any
            fault rate is nonzero, so the MGS engines always see
            exactly-once in-order delivery.
        ack_timeout: base retransmission timeout in cycles; ``0`` derives
            it from the machine's round-trip time.
        backoff_cap: maximum number of timeout doublings.
    """

    external: str = "fixed"
    internal: str = "wire"
    bus_bandwidth: float = 1.0
    link_bandwidth: float = 4.0
    mesh_hop_latency: int = 1
    drop_rate: float = 0.0
    dup_rate: float = 0.0
    delay_rate: float = 0.0
    delay_cycles: int = 2000
    fault_seed: int = 0xA1E31FE
    reliable: bool | None = None
    ack_timeout: int = 0
    backoff_cap: int = 6

    def __post_init__(self) -> None:
        if self.external not in EXTERNAL_MODELS:
            raise ValueError(f"external must be one of {EXTERNAL_MODELS}")
        if self.internal not in INTERNAL_MODELS:
            raise ValueError(f"internal must be one of {INTERNAL_MODELS}")
        for name in ("drop_rate", "dup_rate", "delay_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{name} must be in [0, 1)")
        if self.bus_bandwidth <= 0 or self.link_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.delay_cycles < 0 or self.ack_timeout < 0 or self.backoff_cap < 0:
            raise ValueError("delay_cycles/ack_timeout/backoff_cap must be >= 0")

    @property
    def faults_enabled(self) -> bool:
        """True when any fault injection is configured."""
        return self.drop_rate > 0 or self.dup_rate > 0 or self.delay_rate > 0

    @property
    def reliable_effective(self) -> bool:
        """Whether the reliable transport wraps external messages."""
        if self.reliable is None:
            return self.faults_enabled
        return self.reliable


@dataclass(frozen=True)
class ProtocolOptions:
    """Feature knobs for the MGS software protocol.

    These exist so the ablation benchmarks can toggle design choices the
    paper calls out.

    Attributes:
        single_writer_opt: enable the paper's single-writer optimization
            (send the whole page home instead of a diff when only one
            write copy is outstanding, and let the writer keep its copy).
        fast_read_clean: model the paper's proposed future optimization
            that removes invalidation of read-only data from the critical
            path of page cleaning (section 4.2.4).
    """

    single_writer_opt: bool = True
    fast_read_clean: bool = False


@dataclass(frozen=True)
class MachineConfig:
    """Shape of a simulated DSSMP.

    Attributes:
        total_processors: ``P`` in the paper's framework.
        cluster_size: ``C``, processors per SSMP.  ``C == P`` collapses
            the machine into a single tightly-coupled SSMP ("P4 mode" in
            the paper's 32-processor bars); ``C == 1`` makes every node a
            uniprocessor, i.e. a pure software-DSM system.
        page_size: bytes per virtual page (paper default 1 KB).
        line_size: bytes per hardware cache line (Alewife: 16 B).
        inter_ssmp_delay: fixed one-way latency, in cycles, added to every
            message that crosses an SSMP boundary (paper default 1000).
        intra_wire_latency: one-way wire latency, in cycles, of the
            internal (intra-SSMP) network.
        control_msg_bytes: size, in bytes, of a protocol control message
            (data-carrying messages add their payload on top).
        hw_dir_pointers: hardware directory pointers per line before the
            software-extended directory (LimitLESS) takes over.
        network: the ``repro.net`` interconnect configuration (topology,
            fault injection, reliable transport).
        protocol: name of the coherence engine driving software shared
            memory — ``"mgs"`` (default), ``"swdsm"``, ``"sc_pages"``,
            or ``"gcs"``; see :mod:`repro.protocols`.  Participates in
            run-cache keys (the config is hashed whole).
    """

    total_processors: int = 32
    cluster_size: int = 32
    page_size: int = 1024
    line_size: int = 16
    inter_ssmp_delay: int = 1000
    intra_wire_latency: int = 5
    control_msg_bytes: int = 64
    hw_dir_pointers: int = 5
    #: LAN bandwidth in bytes/cycle for the external network; 0 disables
    #: contention modeling (the paper's fixed-latency model, section
    #: 4.2.2 — which explicitly notes contention as unmodeled).  A
    #: positive value is back-compat shorthand for
    #: ``NetworkConfig(external="bus", bus_bandwidth=...)``.
    lan_bandwidth: float = 0.0
    network: NetworkConfig = field(default_factory=NetworkConfig)
    options: ProtocolOptions = field(default_factory=ProtocolOptions)
    #: default engine comes from ``REPRO_PROTOCOL`` so an engine-agnostic
    #: test subset can run under any engine (the CI protocol-matrix job);
    #: explicit ``protocol=`` always wins, and the field participates in
    #: run-cache keys either way.
    protocol: str = field(
        default_factory=lambda: os.environ.get("REPRO_PROTOCOL", "mgs")
    )

    def __post_init__(self) -> None:
        if self.total_processors < 1:
            raise ValueError("total_processors must be >= 1")
        if self.cluster_size < 1 or self.cluster_size > self.total_processors:
            raise ValueError("cluster_size must be in [1, total_processors]")
        if self.total_processors % self.cluster_size != 0:
            raise ValueError("cluster_size must divide total_processors")
        if self.page_size % self.line_size != 0:
            raise ValueError("line_size must divide page_size")
        if self.page_size % WORD_BYTES != 0:
            raise ValueError("page_size must be a multiple of the word size")
        if self.intra_wire_latency < 0:
            raise ValueError("intra_wire_latency must be >= 0")
        if self.control_msg_bytes < 1:
            raise ValueError("control_msg_bytes must be >= 1")
        if not isinstance(self.protocol, str) or not self.protocol:
            raise ValueError("protocol must be a non-empty engine name")
        if self.protocol != "mgs":
            # Registry lookup + per-engine option validation.  Imported
            # lazily: params is a leaf module and the engine registry
            # sits far above it; the default engine skips the lookup so
            # config construction stays import-cycle-free and cheap.
            from repro.core.engine import validate_engine_config

            validate_engine_config(self)

    @property
    def num_clusters(self) -> int:
        """Number of SSMPs in the DSSMP."""
        return self.total_processors // self.cluster_size

    @property
    def words_per_page(self) -> int:
        return self.page_size // WORD_BYTES

    @property
    def lines_per_page(self) -> int:
        return self.page_size // self.line_size

    @property
    def words_per_line(self) -> int:
        return self.line_size // WORD_BYTES

    @property
    def hardware_only(self) -> bool:
        """True when the machine is a single tightly-coupled SSMP."""
        return self.cluster_size == self.total_processors

    def cluster_of(self, processor: int) -> int:
        """SSMP index that owns ``processor``."""
        return processor // self.cluster_size

    def processors_of(self, cluster: int) -> range:
        """Processor ids belonging to SSMP ``cluster``."""
        base = cluster * self.cluster_size
        return range(base, base + self.cluster_size)

    def with_cluster_size(self, cluster_size: int) -> "MachineConfig":
        """A copy of this config with a different cluster size."""
        return replace(self, cluster_size=cluster_size)

    @property
    def resolved_network(self) -> NetworkConfig:
        """The effective :class:`NetworkConfig`.

        A positive ``lan_bandwidth`` with the default ``fixed`` external
        model is promoted to the shared-bus model it always meant.
        """
        if self.lan_bandwidth > 0 and self.network.external == "fixed":
            return replace(
                self.network, external="bus", bus_bandwidth=self.lan_bandwidth
            )
        return self.network


@dataclass(frozen=True)
class CostModel:
    """Cycle costs for every primitive simulator event.

    The hardware group and the translation group are taken directly from
    Table 3 of the paper.  The software-protocol components are free
    parameters calibrated so the end-to-end protocol operations land on
    the paper's measured values (TLB fill 1037, inter-SSMP read miss
    6982, write miss 16331, release with one writer 14226, release with
    two writers 32570).
    """

    # --- hardware shared memory (Table 3, top group) ---
    cache_hit: int = 2
    miss_local: int = 11
    miss_remote: int = 38
    miss_2party: int = 42
    miss_3party: int = 63
    miss_software_dir: int = 425

    # --- software virtual memory (Table 3, middle group) ---
    translate_array: int = 18
    translate_pointer: int = 24

    # --- software shared memory components (calibrated) ---
    # Fault entry: trap + page-table probe + mapping lock.
    fault_overhead: int = 600
    # Completing a fault once data is present: frame bookkeeping + TLB fill.
    map_fill: int = 437
    # A TLB fill that finds the page already resident in the local SSMP
    # costs fault_overhead + map_fill = 1037 (Table 3 "TLB Fill").

    # Per-message CPU occupancy.
    msg_inter_ssmp: int = 350  # active message across the external network
    msg_intra_ssmp: int = 100  # active message within an SSMP (PINV etc.)
    msg_send: int = 100  # launch cost per message sent from inside a handler

    # Server handler occupancies.
    server_read: int = 911
    server_write_extra: int = 757  # extra bookkeeping for a write grant
    server_release: int = 500

    # Remote-client / releaser occupancies.
    release_entry: int = 300  # DUQ pop + REL construction
    release_resume: int = 242  # RACK handling, resume faulting thread
    free_page: int = 100

    # Data manipulation (per 8-byte word unless noted).
    twin_fixed: int = 400
    twin_per_word: int = 64
    twin_refresh_per_word: int = 43  # refresh twin after a 1W release
    diff_fixed: int = 200
    diff_per_word: int = 60  # compare page against twin
    apply_fixed: int = 285
    apply_per_word: int = 74  # merge a diff into the home, per changed word
    apply_full_per_word: int = 12  # install a full page (1WDATA) at the home
    clean_per_line: int = 40  # page cleaning: prefetch/store/flush loop
    dma_fixed: int = 300
    dma_per_line: int = 16

    # Synchronization primitives.
    lock_local_acquire: int = 40  # hw shared-memory lock, token present
    lock_local_release: int = 20
    lock_global_hop: int = 250  # handler occupancy per token-protocol msg
    barrier_local_per_proc: int = 30  # intra-SSMP combine cost
    barrier_msg: int = 250  # combine/release handler per SSMP
    barrier_flat_per_proc: int = 25  # P4-style flat barrier at C == P

    def dma_page(self, lines: int) -> int:
        """Cycles to DMA ``lines`` cache lines between SSMPs."""
        return self.dma_fixed + lines * self.dma_per_line

    def clean_page(self, lines: int) -> int:
        """Cycles to make ``lines`` cache lines globally coherent."""
        return lines * self.clean_per_line

    def make_twin(self, words: int) -> int:
        return self.twin_fixed + words * self.twin_per_word

    def make_diff(self, words: int) -> int:
        return self.diff_fixed + words * self.diff_per_word

    def apply_words(self, words: int) -> int:
        return words * self.apply_per_word


# ---------------------------------------------------------------------------
# strict dict -> dataclass construction (the request validation surface)
# ---------------------------------------------------------------------------
#
# Everything that accepts configuration from the outside world — the run
# cache's entry round-trip and, above all, the ``repro.serve`` HTTP API —
# funnels through these constructors.  They are deliberately strict:
# unknown keys raise :class:`UnknownFieldError` instead of being silently
# dropped, so a typo in a request ("pagesize") is a 400, not a simulation
# of the wrong machine.  Value validation itself is the dataclasses' own
# ``__post_init__`` checks.


class UnknownFieldError(ValueError):
    """A dict carried keys the target dataclass does not define."""

    def __init__(self, cls: type, unknown: list[str]) -> None:
        self.cls = cls
        self.unknown = sorted(unknown)
        known = ", ".join(sorted(f.name for f in fields(cls)))
        super().__init__(
            f"unknown {cls.__name__} field(s) {self.unknown}; "
            f"known fields: {known}"
        )


def dataclass_from_dict(cls, d: dict, **nested):
    """Build dataclass ``cls`` from ``d``, rejecting unknown keys.

    ``nested`` maps a field name to a converter applied to that field's
    value when present (used for nested configuration dataclasses).
    Raises :class:`UnknownFieldError` on unknown keys and ``TypeError``
    when ``d`` is not a dict; the dataclass's own ``__post_init__``
    performs value validation.
    """
    if not isinstance(d, dict):
        raise TypeError(f"{cls.__name__} wants a dict, got {type(d).__name__}")
    names = {f.name for f in fields(cls)}
    unknown = [k for k in d if k not in names]
    if unknown:
        raise UnknownFieldError(cls, unknown)
    kwargs = dict(d)
    for name, convert in nested.items():
        # Already-constructed dataclass instances pass through untouched.
        if isinstance(kwargs.get(name), dict):
            kwargs[name] = convert(kwargs[name])
    return cls(**kwargs)


def _converter(cls, **nested):
    def convert(d: dict):
        return dataclass_from_dict(cls, d, **nested)

    return convert


network_config_from_dict = _converter(NetworkConfig)
"""Strict ``dict -> NetworkConfig`` (unknown keys raise)."""

protocol_options_from_dict = _converter(ProtocolOptions)
"""Strict ``dict -> ProtocolOptions`` (unknown keys raise)."""

cost_model_from_dict = _converter(CostModel)
"""Strict ``dict -> CostModel`` (unknown keys raise)."""

machine_config_from_dict = _converter(
    MachineConfig,
    network=network_config_from_dict,
    options=protocol_options_from_dict,
)
"""Strict ``dict -> MachineConfig``; nested ``network``/``options`` dicts
are converted (and validated) recursively."""
