"""Machine configuration and cycle cost model for the MGS reproduction.

Every cycle constant used by the simulator lives here.  The defaults are
calibrated so that the micro-benchmarks of Table 3 in the paper (measured
on a 20 MHz Alewife with 1 KB pages and a 0-cycle inter-SSMP delay) come
out of the simulator with the values the paper reports.  See
``benchmarks/bench_table3.py`` for the paper-vs-measured comparison.

Two dataclasses are exported:

``MachineConfig``
    The knobs that define a DSSMP: total processors ``P``, cluster size
    ``C``, page and cache-line geometry, and the external network latency.

``CostModel``
    Cycle charges for each primitive event (hardware misses, translation,
    protocol handler occupancies, per-word data manipulation costs).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["MachineConfig", "CostModel", "ProtocolOptions"]

WORD_BYTES = 8


@dataclass(frozen=True)
class ProtocolOptions:
    """Feature knobs for the MGS software protocol.

    These exist so the ablation benchmarks can toggle design choices the
    paper calls out.

    Attributes:
        single_writer_opt: enable the paper's single-writer optimization
            (send the whole page home instead of a diff when only one
            write copy is outstanding, and let the writer keep its copy).
        fast_read_clean: model the paper's proposed future optimization
            that removes invalidation of read-only data from the critical
            path of page cleaning (section 4.2.4).
    """

    single_writer_opt: bool = True
    fast_read_clean: bool = False


@dataclass(frozen=True)
class MachineConfig:
    """Shape of a simulated DSSMP.

    Attributes:
        total_processors: ``P`` in the paper's framework.
        cluster_size: ``C``, processors per SSMP.  ``C == P`` collapses
            the machine into a single tightly-coupled SSMP ("P4 mode" in
            the paper's 32-processor bars); ``C == 1`` makes every node a
            uniprocessor, i.e. a pure software-DSM system.
        page_size: bytes per virtual page (paper default 1 KB).
        line_size: bytes per hardware cache line (Alewife: 16 B).
        inter_ssmp_delay: fixed one-way latency, in cycles, added to every
            message that crosses an SSMP boundary (paper default 1000).
        hw_dir_pointers: hardware directory pointers per line before the
            software-extended directory (LimitLESS) takes over.
    """

    total_processors: int = 32
    cluster_size: int = 32
    page_size: int = 1024
    line_size: int = 16
    inter_ssmp_delay: int = 1000
    hw_dir_pointers: int = 5
    #: LAN bandwidth in bytes/cycle for the external network; 0 disables
    #: contention modeling (the paper's fixed-latency model, section
    #: 4.2.2 — which explicitly notes contention as unmodeled; this knob
    #: is the extension closing that gap).  When positive, inter-SSMP
    #: messages serialize on a shared link at this rate.
    lan_bandwidth: float = 0.0
    options: ProtocolOptions = field(default_factory=ProtocolOptions)

    def __post_init__(self) -> None:
        if self.total_processors < 1:
            raise ValueError("total_processors must be >= 1")
        if self.cluster_size < 1 or self.cluster_size > self.total_processors:
            raise ValueError("cluster_size must be in [1, total_processors]")
        if self.total_processors % self.cluster_size != 0:
            raise ValueError("cluster_size must divide total_processors")
        if self.page_size % self.line_size != 0:
            raise ValueError("line_size must divide page_size")
        if self.page_size % WORD_BYTES != 0:
            raise ValueError("page_size must be a multiple of the word size")

    @property
    def num_clusters(self) -> int:
        """Number of SSMPs in the DSSMP."""
        return self.total_processors // self.cluster_size

    @property
    def words_per_page(self) -> int:
        return self.page_size // WORD_BYTES

    @property
    def lines_per_page(self) -> int:
        return self.page_size // self.line_size

    @property
    def words_per_line(self) -> int:
        return self.line_size // WORD_BYTES

    @property
    def hardware_only(self) -> bool:
        """True when the machine is a single tightly-coupled SSMP."""
        return self.cluster_size == self.total_processors

    def cluster_of(self, processor: int) -> int:
        """SSMP index that owns ``processor``."""
        return processor // self.cluster_size

    def processors_of(self, cluster: int) -> range:
        """Processor ids belonging to SSMP ``cluster``."""
        base = cluster * self.cluster_size
        return range(base, base + self.cluster_size)

    def with_cluster_size(self, cluster_size: int) -> "MachineConfig":
        """A copy of this config with a different cluster size."""
        return replace(self, cluster_size=cluster_size)


@dataclass(frozen=True)
class CostModel:
    """Cycle costs for every primitive simulator event.

    The hardware group and the translation group are taken directly from
    Table 3 of the paper.  The software-protocol components are free
    parameters calibrated so the end-to-end protocol operations land on
    the paper's measured values (TLB fill 1037, inter-SSMP read miss
    6982, write miss 16331, release with one writer 14226, release with
    two writers 32570).
    """

    # --- hardware shared memory (Table 3, top group) ---
    cache_hit: int = 2
    miss_local: int = 11
    miss_remote: int = 38
    miss_2party: int = 42
    miss_3party: int = 63
    miss_software_dir: int = 425

    # --- software virtual memory (Table 3, middle group) ---
    translate_array: int = 18
    translate_pointer: int = 24

    # --- software shared memory components (calibrated) ---
    # Fault entry: trap + page-table probe + mapping lock.
    fault_overhead: int = 600
    # Completing a fault once data is present: frame bookkeeping + TLB fill.
    map_fill: int = 437
    # A TLB fill that finds the page already resident in the local SSMP
    # costs fault_overhead + map_fill = 1037 (Table 3 "TLB Fill").

    # Per-message CPU occupancy.
    msg_inter_ssmp: int = 350  # active message across the external network
    msg_intra_ssmp: int = 100  # active message within an SSMP (PINV etc.)
    msg_send: int = 100  # launch cost per message sent from inside a handler

    # Server handler occupancies.
    server_read: int = 911
    server_write_extra: int = 757  # extra bookkeeping for a write grant
    server_release: int = 500

    # Remote-client / releaser occupancies.
    release_entry: int = 300  # DUQ pop + REL construction
    release_resume: int = 242  # RACK handling, resume faulting thread
    free_page: int = 100

    # Data manipulation (per 8-byte word unless noted).
    twin_fixed: int = 400
    twin_per_word: int = 64
    twin_refresh_per_word: int = 43  # refresh twin after a 1W release
    diff_fixed: int = 200
    diff_per_word: int = 60  # compare page against twin
    apply_fixed: int = 285
    apply_per_word: int = 74  # merge a diff into the home, per changed word
    apply_full_per_word: int = 12  # install a full page (1WDATA) at the home
    clean_per_line: int = 40  # page cleaning: prefetch/store/flush loop
    dma_fixed: int = 300
    dma_per_line: int = 16

    # Synchronization primitives.
    lock_local_acquire: int = 40  # hw shared-memory lock, token present
    lock_local_release: int = 20
    lock_global_hop: int = 250  # handler occupancy per token-protocol msg
    barrier_local_per_proc: int = 30  # intra-SSMP combine cost
    barrier_msg: int = 250  # combine/release handler per SSMP
    barrier_flat_per_proc: int = 25  # P4-style flat barrier at C == P

    def dma_page(self, lines: int) -> int:
        """Cycles to DMA ``lines`` cache lines between SSMPs."""
        return self.dma_fixed + lines * self.dma_per_line

    def clean_page(self, lines: int) -> int:
        """Cycles to make ``lines`` cache lines globally coherent."""
        return lines * self.clean_per_line

    def make_twin(self, words: int) -> int:
        return self.twin_fixed + words * self.twin_per_word

    def make_diff(self, words: int) -> int:
        return self.diff_fixed + words * self.diff_per_word

    def apply_words(self, words: int) -> int:
        return words * self.apply_per_word
