"""Closed-form phase replay: stop re-simulating proven-deterministic work.

Phased applications (:meth:`repro.runtime.runner.Runtime.spawn_phases`)
execute as a sequence of barrier-delimited phases, each driven by a fresh
generator.  Because the simulator is deterministic, a phase's entire
effect is a pure function of the machine state it starts from: if the
state at a phase boundary has been seen before, the phase will replay
the exact same events, charge the exact same cycles, and land in the
exact same successor state.  This module makes that observation
executable:

* :meth:`PhaseRecorder.state_digest` hashes every behavior-bearing piece
  of machine state at a phase boundary — thread clock skews, TLB
  mappings, the hardware line directory, lock and barrier state, handler
  occupancy, interconnect reservations, and the coherence engine's own
  state via the :meth:`repro.core.engine.Protocol.phase_state` hook
  (page frames, home directories, page *contents*, per-processor
  queues).  Engines that do not implement the hook simply never replay.
* The first time a phase executes from a given digest, the recorder
  captures its full effect as a delta: the per-thread cycle-bucket
  advances, the event count, and the change in every statistic the
  simulation reports (coherence class counts, message flows and
  transaction-latency samples, protocol counters, per-page stats,
  handler totals, TLB fill counts, lock and barrier counters).
* A phase is **replayable** only when its recorded execution left the
  digest unchanged — a state-idempotent phase.  Replay application is
  then a pure time translation: advance every clock by the recorded
  span, add the recorded statistics, and skip the events.  Nothing needs
  to be restored, so nothing can be restored incorrectly.

Clock-like values (handler ``free_at``, interconnect reservations) are
digested *relative to the phase base time*, clamped at zero: any value
at or before the base is behaviorally identical to "free now", because
no future event can be scheduled before the earliest thread clock.

Replay is automatically disabled when fault injection or the reliable
transport is active (their behavior depends on absolute counters the
digest cannot translate) and when the analysis checkers are attached
(they observe the messages replay elides).  ``REPRO_NO_REPLAY=1`` — the
escape hatch mirroring ``REPRO_NO_FASTPATH`` — turns it off everywhere;
``tests/test_replay.py`` pins replay-on against replay-off bit-for-bit
for every registered engine.

Records optionally **persist across processes**: when a replay store is
attached (:func:`repro.bench.cache.resolve_replay_store`, enabled via
``REPRO_REPLAY_CACHE=1`` / ``REPRO_REPLAY_CACHE_DIR`` or the
``--replay-cache`` CLI flags), every recorded delta is also written as
versioned JSON into a content-addressed directory keyed by (source
fingerprint, canonical run context, phase digest), and every digest
miss in the in-memory table falls through to a store lookup.  A cold
process — a fresh CLI run, a pool worker, a ``repro.serve`` job — then
replays phases recorded by earlier runs or by sibling sweep points
whose state digests coincide.  Decoding is defensive: an entry that is
missing, truncated, schema-mismatched, or shaped wrong for this run's
statistic layout simply decodes to ``None``, the phase executes live,
and the fresh recording overwrites the bad entry (self-healing, exactly
like the run cache).
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:
    from repro.runtime.runner import Runtime

__all__ = [
    "PhaseRecorder",
    "array_digest",
    "record_from_payload",
    "record_to_payload",
    "replay_enabled_default",
]


def replay_enabled_default() -> bool:
    """Whether phased runtimes record and replay repeated phases.

    On by default; set ``REPRO_NO_REPLAY=1`` (or ``true``/``yes``) to
    force every phase to execute.  Both modes are bit-for-bit identical.
    """
    return os.environ.get("REPRO_NO_REPLAY", "").strip().lower() not in (
        "1",
        "true",
        "yes",
    )


def array_digest(arr: np.ndarray) -> bytes:
    """Fast content hash of a page-sized numpy array."""
    return hashlib.blake2b(arr.tobytes(), digest_size=16).digest()


class _StatCells:
    """Live references to every statistic a phase can change.

    The recorder snapshots these before an execution, computes the delta
    afterwards, and re-applies the delta on replay.  Statistics are
    *excluded* from the state digest (a monotone counter would make every
    phase unique); carrying them in the delta keeps a replayed run's
    :class:`~repro.runtime.runner.RunResult` identical to an executed
    one's.
    """

    def __init__(self, rt: "Runtime") -> None:
        machine = rt.machine
        bus = rt.protocol.bus
        # (obj, attr) pairs holding plain integer counters.
        self.ints: list[tuple[Any, str]] = []
        for f in dataclasses.fields(type(machine.stats)):
            if isinstance(getattr(machine.stats, f.name), int):
                self.ints.append((machine.stats, f.name))
        for proc in machine.processors:
            self.ints.append((proc, "handler_cycles_total"))
            self.ints.append((proc, "messages_handled"))
        for tlb in rt.protocol.tlbs:
            self.ints.append((tlb, "fills"))
            self.ints.append((tlb, "invalidations"))
        for lk in rt.locks:
            for attr in ("acquires", "hits", "token_transfers"):
                self.ints.append((lk.stats, attr))
        self.ints.append((rt.barrier_obj, "episodes"))
        self.ints.append((bus, "_next_txn"))
        for t in rt.threads:
            for attr in ("user", "lock", "barrier", "mgs"):
                self.ints.append((t, attr))
        self.ints.extend(rt.protocol.phase_stat_cells())
        # Flat ``key -> int`` dicts (Counters included).
        self.flats: list[dict] = [
            machine.stats.by_label,
            machine.stats.queue_cycles_by_link,
            machine.stats.retransmits_by_link,
            rt.protocol.stats.counters,
        ]
        #: ``key -> {key -> int}`` (per-page protocol event counts)
        self.nested: dict = rt.protocol.page_stats
        #: per-MsgType delivered count/bytes/latency records
        self.flows: dict = bus.flows
        #: append-only transaction latency sample logs
        self.latencies: dict = bus.latencies
        #: fixed-slot hardware access-class counters
        self.cache_counts: list[int] = rt.cache._counts

    def snapshot(self) -> tuple:
        return (
            [getattr(obj, attr) for obj, attr in self.ints],
            [dict(d) for d in self.flats],
            {k: dict(v) for k, v in self.nested.items()},
            {k: (f.count, f.bytes, f.latency_cycles) for k, f in self.flows.items()},
            {k: len(v) for k, v in self.latencies.items()},
            list(self.cache_counts),
        )

    def delta(self, pre: tuple) -> tuple:
        """Difference between the live state and the ``pre`` snapshot."""
        ints0, flats0, nested0, flows0, lats0, counts0 = pre
        dints = [
            getattr(obj, attr) - v0 for (obj, attr), v0 in zip(self.ints, ints0)
        ]
        dflats = []
        for live, d0 in zip(self.flats, flats0):
            dflats.append(
                {k: v - d0.get(k, 0) for k, v in live.items() if v != d0.get(k, 0)}
            )
        dnested = {}
        for k, inner in self.nested.items():
            i0 = nested0.get(k, {})
            diff = {kk: v - i0.get(kk, 0) for kk, v in inner.items() if v != i0.get(kk, 0)}
            if diff:
                dnested[k] = diff
        dflows = {}
        for k, f in self.flows.items():
            c0, b0, l0 = flows0.get(k, (0, 0, 0))
            if (f.count, f.bytes, f.latency_cycles) != (c0, b0, l0):
                dflows[k] = (f.count - c0, f.bytes - b0, f.latency_cycles - l0)
        dlats = {}
        for k, samples in self.latencies.items():
            n0 = lats0.get(k, 0)
            if len(samples) > n0:
                dlats[k] = list(samples[n0:])
        dcounts = [v - v0 for v, v0 in zip(self.cache_counts, counts0)]
        return (dints, dflats, dnested, dflows, dlats, dcounts)

    def apply(self, delta: tuple) -> None:
        from repro.core.bus import MessageFlow

        dints, dflats, dnested, dflows, dlats, dcounts = delta
        for (obj, attr), d in zip(self.ints, dints):
            if d:
                setattr(obj, attr, getattr(obj, attr) + d)
        for live, dd in zip(self.flats, dflats):
            for k, d in dd.items():
                live[k] = live.get(k, 0) + d
        for k, dd in dnested.items():
            inner = self.nested.setdefault(k, {})
            for kk, d in dd.items():
                inner[kk] = inner.get(kk, 0) + d
        for k, (dc, db, dl) in dflows.items():
            f = self.flows.get(k)
            if f is None:
                f = self.flows[k] = MessageFlow()
            f.count += dc
            f.bytes += db
            f.latency_cycles += dl
        for k, samples in dlats.items():
            self.latencies.setdefault(k, []).extend(samples)
        for i, d in enumerate(dcounts):
            if d:
                self.cache_counts[i] += d


@dataclasses.dataclass
class _PhaseRecord:
    """One recorded state-idempotent phase, ready for closed-form apply."""

    #: cycles every thread clock advances (identical across threads —
    #: the digest pins the relative skews)
    advance: int
    #: simulator events the phase processed
    events: int
    #: simulator clock at phase end, relative to the phase-end base
    now_offset: int
    #: per-processor handler ``free_at``, relative to phase-end base
    free_offsets: list[int]
    #: interconnect reservation offsets (external, internal models)
    net_offsets: list[Any]
    #: statistics delta (see :class:`_StatCells`)
    stats: tuple
    #: whether this record was decoded from the persistent replay store
    #: (replays of such records count as cache hits)
    from_store: bool = False


def _net_to_json(offs: Any) -> Any:
    """JSON encoding of one ``_net_state`` value.

    ``None`` (model exposes no reservations) and plain ints (single
    shared reservation) pass through; per-link reservation tuples become
    ``[[key, off], ...]`` with tuple keys listed.
    """
    if offs is None or isinstance(offs, int):
        return offs
    return [
        [list(k) if isinstance(k, tuple) else k, off] for k, off in offs
    ]


def _net_from_json(offs: Any) -> Any:
    if offs is None or isinstance(offs, int):
        return offs
    return tuple(
        (tuple(k) if isinstance(k, list) else k, off) for k, off in offs
    )


def record_to_payload(rec: _PhaseRecord) -> dict:
    """JSON-safe encoding of one :class:`_PhaseRecord`.

    Every delta container is JSON-representable as-is except the
    int-keyed per-page nested dict (keys become decimal strings), the
    flow 3-tuples (become lists), and interconnect reservation keys
    (tuples become lists).  ``record_from_payload`` inverts all three.
    """
    dints, dflats, dnested, dflows, dlats, dcounts = rec.stats
    return {
        "advance": rec.advance,
        "events": rec.events,
        "now_offset": rec.now_offset,
        "free_offsets": list(rec.free_offsets),
        "net_offsets": [_net_to_json(o) for o in rec.net_offsets],
        "stats": {
            "ints": list(dints),
            "flats": [dict(d) for d in dflats],
            "nested": {str(k): dict(v) for k, v in dnested.items()},
            "flows": {k: list(v) for k, v in dflows.items()},
            "lats": {k: list(v) for k, v in dlats.items()},
            "counts": list(dcounts),
        },
    }


def record_from_payload(
    payload: dict, n_ints: int, n_counts: int, n_processors: int
) -> _PhaseRecord | None:
    """Decode a persisted record, or ``None`` when it cannot possibly
    belong to this run's statistic layout.

    The caller passes the live layout sizes (int-cell count, hardware
    access-class slot count, processor count); a payload whose vectors
    disagree was produced by different source or a different
    configuration that slipped past the context key, and decoding it
    would corrupt statistics silently — so any shape mismatch, missing
    key, or non-numeric leaf rejects the record and the phase executes
    live instead.
    """
    try:
        stats = payload["stats"]
        dints = [int(v) for v in stats["ints"]]
        dflats = [
            {str(k): int(v) for k, v in d.items()} for d in stats["flats"]
        ]
        dnested = {
            int(k): {str(kk): int(vv) for kk, vv in v.items()}
            for k, v in stats["nested"].items()
        }
        dflows = {}
        for k, v in stats["flows"].items():
            dc, db, dl = v
            dflows[str(k)] = (int(dc), int(db), int(dl))
        dlats = {
            str(k): [int(s) for s in v] for k, v in stats["lats"].items()
        }
        dcounts = [int(v) for v in stats["counts"]]
        rec = _PhaseRecord(
            advance=int(payload["advance"]),
            events=int(payload["events"]),
            now_offset=int(payload["now_offset"]),
            free_offsets=[int(v) for v in payload["free_offsets"]],
            net_offsets=[
                _net_from_json(o) for o in payload["net_offsets"]
            ],
            stats=(dints, dflats, dnested, dflows, dlats, dcounts),
            from_store=True,
        )
    except (KeyError, TypeError, ValueError):
        return None
    if (
        len(rec.stats[0]) != n_ints
        or len(rec.stats[1]) != 4
        or len(rec.stats[5]) != n_counts
        or len(rec.free_offsets) != n_processors
        or len(rec.net_offsets) != 2
    ):
        return None
    return rec


class PhaseRecorder:
    """Record-once / replay-many driver state for one phased runtime.

    ``store`` (duck-typed — :class:`repro.bench.cache.ReplayStore` in
    practice) persists records across processes.  The recorder asks the
    store for a context key derived from everything that pins the
    record layout and meaning: source fingerprint, full machine config
    and cost table, scheduling quantum, engine class, and the
    app-dependent statistic layout (lock count, int-cell count).  Two
    runs share records only when their context keys agree, so a digest
    can never be applied across engines, configs, or source revisions.
    """

    def __init__(self, rt: "Runtime", store: Any = None) -> None:
        self.rt = rt
        self.cells = _StatCells(rt)
        self.records: dict[str, _PhaseRecord] = {}
        #: phases applied in closed form / recorded for reuse
        self.replayed = 0
        self.recorded = 0
        self.store = store
        #: persistent-store traffic attributable to this run
        self.cache_loads = 0
        self.cache_hits = 0
        self.cache_stores = 0
        self._ctx = (
            store.context_key(self._context()) if store is not None else None
        )

    def _context(self) -> dict:
        """Canonical description of everything that pins record layout."""
        rt = self.rt
        return {
            "config": dataclasses.asdict(rt.config),
            "costs": dataclasses.asdict(rt.costs),
            "quantum": rt.quantum,
            "engine": type(rt.protocol).__name__,
            "n_locks": len(rt.locks),
            "n_cells": len(self.cells.ints),
        }

    def cache_summary(self) -> dict:
        """Replay activity of this run, for ``RunResult.replay_cache``."""
        return {
            "replayed": self.replayed,
            "recorded": self.recorded,
            "loads": self.cache_loads,
            "hits": self.cache_hits,
            "stores": self.cache_stores,
        }

    # -- digest --------------------------------------------------------

    @staticmethod
    def _net_state(model: Any, base: int) -> Any:
        """Clamped reservation offsets of one interconnect model."""
        free = getattr(model, "_free_at", None)
        if free is None:
            return None
        if isinstance(free, dict):
            return tuple(
                sorted((k, v - base) for k, v in free.items() if v > base)
            )
        return max(0, free - base)

    def state_digest(self, phase_key: Any) -> tuple[str, int] | None:
        """Digest of the current phase-boundary state, or None when the
        engine opts out; returns ``(digest, base_time)``."""
        rt = self.rt
        engine_state = rt.protocol.phase_state()
        if engine_state is None:
            return None
        threads = rt.threads
        base = min(t.time for t in threads)
        machine = rt.machine
        # The hardware line directory is by far the largest component
        # (one entry per cached line), so it gets the cheap encoding:
        # a flat (line, owner, sharer-bitmask) int stream per cluster —
        # the bitmask is order-independent, no per-line sort needed —
        # collapsed to 16 bytes through numpy when the masks fit int64
        # (they always do at the paper's machine sizes).
        numeric = rt.config.total_processors <= 60
        cache_state = []
        for directory in rt.cache._lines:
            flat = []
            extend = flat.extend
            for line, s in directory.items():
                mask = 0
                for p in s[1]:
                    mask |= 1 << p
                extend((line, s[0], mask))
            if numeric:
                cache_state.append(
                    array_digest(np.array(flat, dtype=np.int64))
                )
            else:
                cache_state.append(tuple(flat))
        state = (
            phase_key,
            tuple((t.time - base, t.time - t.last_yield) for t in threads),
            tuple(
                tuple(
                    sorted(
                        (vpn, int(mode))
                        for vpn, mode in tlb._entries.items()
                    )
                )
                for tlb in rt.protocol.tlbs
            ),
            tuple(cache_state),
            tuple(
                (
                    lk.token_cluster,
                    lk.token_in_transit,
                    lk.holder,
                    tuple(len(q) for q in lk._local_q),
                    tuple(lk._requested),
                    tuple(lk._home_pending),
                    lk._handoff_wanted,
                    lk._handoff_budget,
                )
                for lk in rt.locks
            ),
            (
                rt.barrier_obj._combined,
                tuple(
                    (c.arrived, len(c.waiters))
                    for c in rt.barrier_obj._clusters
                ),
            ),
            tuple(
                (max(0, p.handler_free_at - base), p.stolen_cycles)
                for p in machine.processors
            ),
            (
                self._net_state(machine.external, base),
                self._net_state(machine.internal, base),
            ),
            len(rt.protocol.bus.open_txns),
            engine_state,
        )
        digest = hashlib.blake2b(
            repr(state).encode(), digest_size=16
        ).hexdigest()
        return digest, base

    # -- record / replay -----------------------------------------------

    def lookup(self, digest: str) -> _PhaseRecord | None:
        """Find a record for ``digest``: in-memory first, then the
        persistent store.  Store hits are decoded defensively and cached
        in the in-memory table so later phases of this run pay the file
        read once."""
        rec = self.records.get(digest)
        if rec is None and self.store is not None:
            payload = self.store.load(self._ctx, digest)
            if payload is not None:
                rec = record_from_payload(
                    payload,
                    n_ints=len(self.cells.ints),
                    n_counts=len(self.cells.cache_counts),
                    n_processors=len(self.rt.machine.processors),
                )
                if rec is not None:
                    self.records[digest] = rec
                    self.cache_loads += 1
        return rec

    def record(
        self, digest: str, pre_snapshot: tuple, pre_base: int, events: int
    ) -> None:
        """Store the just-executed phase's effect under ``digest``."""
        rt = self.rt
        post_base = min(t.time for t in rt.threads)
        machine = rt.machine
        rec = _PhaseRecord(
            advance=post_base - pre_base,
            events=events,
            now_offset=rt.sim.now - post_base,
            free_offsets=[
                max(0, p.handler_free_at - post_base)
                for p in machine.processors
            ],
            net_offsets=[
                self._net_state(machine.external, post_base),
                self._net_state(machine.internal, post_base),
            ],
            stats=self.cells.delta(pre_snapshot),
        )
        self.records[digest] = rec
        self.recorded += 1
        if self.store is not None:
            self.store.put(self._ctx, digest, record_to_payload(rec))
            self.cache_stores += 1

    def apply(self, rec: _PhaseRecord) -> None:
        """Apply a recorded phase as a pure time translation."""
        rt = self.rt
        d = rec.advance
        for t in rt.threads:
            t.time += d
            t.last_yield += d
            t.finish_time = t.time
        new_base = min(t.time for t in rt.threads)
        machine = rt.machine
        for proc, off in zip(machine.processors, rec.free_offsets):
            proc.handler_free_at = new_base + off
        for model, offs in zip(
            (machine.external, machine.internal), rec.net_offsets
        ):
            if offs is None:
                continue
            if isinstance(offs, int):
                model._free_at = new_base + offs
            else:
                for key, off in offs:
                    model._free_at[key] = new_base + off
        rt.sim.replay_advance(new_base + rec.now_offset, rec.events)
        self.cells.apply(rec.stats)
        self.replayed += 1
        if rec.from_store:
            self.cache_hits += 1
            if self.store is not None:
                self.store.count_hit()
