"""Runtime: the programming API and thread driver for simulated apps."""

from repro.runtime.env import Env
from repro.runtime.runner import RunResult, Runtime, fastpath_enabled_default
from repro.runtime.shared import SharedArray

__all__ = [
    "Env",
    "Runtime",
    "RunResult",
    "SharedArray",
    "fastpath_enabled_default",
]
