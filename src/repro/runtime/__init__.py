"""Runtime: the programming API and thread driver for simulated apps."""

from repro.runtime.env import Env
from repro.runtime.runner import RunResult, Runtime
from repro.runtime.shared import SharedArray

__all__ = ["Env", "Runtime", "RunResult", "SharedArray"]
