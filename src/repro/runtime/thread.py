"""Per-processor thread context and time-bucket accounting.

Each simulated processor runs one application thread, written as a Python
generator.  The thread owns a local clock that may run ahead of the
global simulated clock by up to one quantum; blocking operations (faults,
locks, barriers, releases) synchronize it back through the event queue.

Runtime breakdown buckets follow section 5.2.1 of the paper:

* ``user`` — useful cycles, software address translation, and hardware
  shared-memory stall time;
* ``lock`` / ``barrier`` — executing synchronization code and waiting on
  synchronization conditions;
* ``mgs`` — all time spent running the MGS protocol, including protocol
  handler cycles stolen from the thread by messages serviced on its
  processor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator

__all__ = ["ThreadContext"]


@dataclass(slots=True)
class ThreadContext:
    """State of one application thread."""

    pid: int
    gen: Generator[tuple, Any, None]
    time: int = 0  # local clock (cycles)
    user: int = 0
    lock: int = 0
    barrier: int = 0
    mgs: int = 0
    done: bool = False
    finish_time: int = 0
    #: local time at the last yield to the scheduler (quantum bookkeeping)
    last_yield: int = 0
    #: scratch for the driver: when the current blocking op started
    block_start: int = 0
    extra: dict = field(default_factory=dict)

    def charge_user(self, cycles: int) -> None:
        self.time += cycles
        self.user += cycles

    def charge_mgs(self, cycles: int) -> None:
        self.time += cycles
        self.mgs += cycles

    def buckets(self) -> dict[str, int]:
        return {
            "user": self.user,
            "lock": self.lock,
            "barrier": self.barrier,
            "mgs": self.mgs,
        }
