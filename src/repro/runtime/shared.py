"""Shared arrays: the allocation-level API applications use."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable

import numpy as np

from repro.params import WORD_BYTES
from repro.svm import AccessKind

if TYPE_CHECKING:
    from repro.runtime.runner import Runtime

__all__ = ["SharedArray"]


class SharedArray:
    """A distributed array of 8-byte words in shared virtual memory.

    Values are stored as float64 words (integers survive exactly up to
    2**53).  The array is page-aligned; its pages may be distributed
    across processor memories with the ``home`` argument, mirroring how
    the paper's applications distribute their main data structures.
    """

    def __init__(
        self,
        runtime: "Runtime",
        name: str,
        length: int,
        home: int | Callable[[int], int] | None = None,
        kind: AccessKind = AccessKind.ARRAY,
    ) -> None:
        self._rt = runtime
        self.name = name
        self.length = length
        self.kind = kind
        self.seg = runtime.aspace.alloc(name, length * WORD_BYTES, kind, home)
        self.base = self.seg.base

    def addr(self, index: int) -> int:
        """Byte address of element ``index``."""
        if not 0 <= index < self.length:
            raise IndexError(f"{self.name}[{index}] out of range (len={self.length})")
        return self.base + index * WORD_BYTES

    # ------------------------------------------------------------------
    # zero-cost loading / inspection (outside the timed region)
    # ------------------------------------------------------------------

    def init(self, values: Iterable[float]) -> None:
        """Load initial contents into the home copies, cost-free."""
        values = np.asarray(list(values), dtype=np.float64)
        if len(values) != self.length:
            raise ValueError(
                f"init of {self.name}: got {len(values)} values, need {self.length}"
            )
        protocol = self._rt.protocol
        wpp = self._rt.config.words_per_page
        first_vpn = self.base // self._rt.config.page_size
        for start in range(0, self.length, wpp):
            vpn = first_vpn + start // wpp
            chunk = values[start : start + wpp]
            protocol.home(vpn).data[: len(chunk)] = chunk

    def snapshot(self) -> np.ndarray:
        """Read the coherent page contents (cost-free, for validation)."""
        protocol = self._rt.protocol
        wpp = self._rt.config.words_per_page
        first_vpn = self.base // self._rt.config.page_size
        out = np.empty(self.length, dtype=np.float64)
        for start in range(0, self.length, wpp):
            vpn = first_vpn + start // wpp
            n = min(wpp, self.length - start)
            out[start : start + n] = protocol.page_view(vpn)[:n]
        return out

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SharedArray({self.name!r}, len={self.length}, base={self.base:#x})"
