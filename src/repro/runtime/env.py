"""The programming environment simulated application threads run against.

Application code is written as Python generators; every potentially
blocking operation is a sub-generator used with ``yield from``:

.. code-block:: python

    def worker(env):
        value = yield from env.read(array.addr(i))
        yield from env.write(array.addr(j), value + 1.0)
        yield from env.lock(lk)
        ...
        yield from env.unlock(lk)
        yield from env.barrier()

Reads and writes that hit in the TLB and hardware cache are charged to
the thread's local clock without touching the global event queue; only
mapping faults, synchronization, and quantum expiry suspend the thread.
This mirrors the real system, where hardware shared memory needs no
software intervention and only TLB faults enter the MGS protocol.

At cluster size C == P (``hardware_only``), MGS calls are nulled exactly
as in the paper's 32-processor runs: accesses go straight to the home
copy through hardware coherence, only the software-virtual-memory
translation overhead remains, and release points flush nothing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.params import WORD_BYTES
from repro.svm import MapMode

if TYPE_CHECKING:
    from repro.runtime.runner import Runtime
    from repro.runtime.thread import ThreadContext
    from repro.sync import MGSLock

__all__ = ["Env"]


class Env:
    """Per-thread view of the machine."""

    def __init__(self, runtime: "Runtime", thread: "ThreadContext") -> None:
        self._rt = runtime
        self._t = thread
        self.pid = thread.pid
        config = runtime.config
        self.cluster = config.cluster_of(self.pid)
        self.nprocs = config.total_processors
        self._page_size = config.page_size
        self._line_size = config.line_size
        self._quantum = runtime.quantum
        self._hw_only = config.hardware_only
        self._protocol = runtime.protocol
        self._cache = runtime.cache
        self._tlb = runtime.protocol.tlbs[self.pid]
        self._frames = runtime.protocol.frames[self.cluster]
        self._costs = runtime.costs

    # ------------------------------------------------------------------
    # memory operations
    # ------------------------------------------------------------------

    def read(self, addr: int, ptr: bool = False):
        """Load one shared word.  Usage: ``v = yield from env.read(a)``."""
        t = self._t
        costs = self._costs
        t.charge_user(costs.translate_pointer if ptr else costs.translate_array)
        vpn = addr // self._page_size
        if self._hw_only:
            data = self._hw_frame(vpn, t)
        else:
            while self._tlb.lookup(vpn) is None:
                yield ("fault", vpn, False)
            data = self._frames[vpn].data
        owner = self._owner_pid(vpn)
        t.charge_user(
            self._cache.access(
                self.cluster, self.pid, addr // self._line_size, False, owner
            )
        )
        if t.time - t.last_yield > self._quantum:
            yield ("pause",)
        return float(data[(addr % self._page_size) // WORD_BYTES])

    def write(self, addr: int, value: float, ptr: bool = False):
        """Store one shared word.  Usage: ``yield from env.write(a, v)``."""
        t = self._t
        costs = self._costs
        t.charge_user(costs.translate_pointer if ptr else costs.translate_array)
        vpn = addr // self._page_size
        if self._hw_only:
            data = self._hw_frame(vpn, t)
        else:
            while not self._tlb.has_write(vpn):
                yield ("fault", vpn, True)
            data = self._frames[vpn].data
        owner = self._owner_pid(vpn)
        t.charge_user(
            self._cache.access(
                self.cluster, self.pid, addr // self._line_size, True, owner
            )
        )
        data[(addr % self._page_size) // WORD_BYTES] = value
        if t.time - t.last_yield > self._quantum:
            yield ("pause",)

    def compute(self, cycles: int):
        """Spend ``cycles`` of pure computation."""
        t = self._t
        t.charge_user(cycles)
        if t.time - t.last_yield > self._quantum:
            yield ("pause",)

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------

    def lock(self, lk: "MGSLock"):
        """Acquire an MGS lock (an acquire point; no protocol action
        needed because MGS invalidates eagerly at releases)."""
        yield ("lock", lk)

    def unlock(self, lk: "MGSLock"):
        """Release an MGS lock.  This is a release point: the DUQ is
        flushed *before* the lock is freed — the source of the paper's
        critical-section dilation."""
        yield ("unlock", lk)

    def barrier(self):
        """Wait on the global barrier (also a release point)."""
        yield ("barrier",)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _owner_pid(self, vpn: int) -> int:
        if self._hw_only:
            return self._rt.aspace.home_proc(vpn)
        return self._frames[vpn].owner_pid

    def _hw_frame(self, vpn: int, t):
        """Home-copy access for the tightly-coupled configuration."""
        tlb = self._tlb
        if tlb.lookup(vpn) is None:
            # Only SVM overhead remains at C == P: a one-time fill.
            t.charge_user(self._costs.fault_overhead + self._costs.map_fill)
            tlb.fill(vpn, MapMode.WRITE)
        return self._protocol.home(vpn).data

    @property
    def now(self) -> int:
        """The thread's local clock (cycles)."""
        return self._t.time
