"""The programming environment simulated application threads run against.

Application code is written as Python generators; every potentially
blocking operation is a sub-generator used with ``yield from``:

.. code-block:: python

    def worker(env):
        value = yield from env.read(array.addr(i))
        yield from env.write(array.addr(j), value + 1.0)
        values = yield from env.read_block(array.addr(k), 16)
        yield from env.lock(lk)
        ...
        yield from env.unlock(lk)
        yield from env.barrier()

Reads and writes that hit in the TLB and hardware cache are charged to
the thread's local clock without touching the global event queue; only
mapping faults, synchronization, and quantum expiry suspend the thread.
This mirrors the real system, where hardware shared memory needs no
software intervention and only TLB faults enter the MGS protocol.

At cluster size C == P (``hardware_only``), MGS calls are nulled exactly
as in the paper's 32-processor runs: accesses go straight to the home
copy through hardware coherence, only the software-virtual-memory
translation overhead remains, and release points flush nothing.

Fast paths
----------

Word accesses dominate simulation wall-clock, so ``Env`` keeps a
fast-path cache across the current uninterrupted execution burst: the
pages it has resolved — ``vpn -> (frame data, write-ok, owner)`` — and
the hardware cache lines it has read and written.  A repeat access to a
resolved page skips the TLB and frame-dictionary probes; a repeat access
to a known line skips the hardware directory entirely (it is a hit by
construction).  The batched :meth:`Env.read_block` /
:meth:`Env.write_block` / :meth:`Env.read_many` APIs additionally
resolve a whole run of accesses inside one generator, eliminating the
per-word sub-generator round trip.

This is safe because thread execution between suspension points is
atomic: no simulator event — and therefore no protocol action, TLB
shootdown, or directory update by another processor — can run while the
thread's generator is executing.  The cache is dropped at every
suspension point (fault, pause, lock, unlock, barrier), so the fast
paths charge exactly the cycles, update exactly the statistics, and
suspend at exactly the times the slow paths do.  The contract is pinned
bit-for-bit by ``tests/test_golden_equivalence.py``; set
``REPRO_NO_FASTPATH=1`` (or ``Runtime(..., fastpath=False)``) to force
the original one-access-at-a-time code paths.  See
``docs/PERFORMANCE.md``.

Adaptive bypass
---------------

The burst caches only pay for themselves when bursts are long enough to
serve repeat accesses.  Miss-heavy loops with little per-burst reuse —
Jacobi's compute-bound stencil is the canonical case: ~1300 cycles of
per-point compute against a 1500-cycle quantum means nearly every
access burst is a handful of words — spend more maintaining the caches
than they save (the 0.89x regression BENCH_perfsmoke.json used to
record).  Each ``Env`` therefore *samples* its own burst-cache hit rate
over the engine's first ``fp_sample_bursts`` bursts and, when the
observed hits per burst fall below ``fp_bypass_hits_per_burst``,
rebinds its memory operations to the plain slow paths for the rest of
the run.  The thresholds are per-engine class attributes on
:class:`~repro.core.engine.Protocol`: an all-software engine like swdsm
turns nearly every fault into a long software round, so its bursts are
shorter, reuse is rarer, and the sampling window itself is a cost — it
decides after a third of the bursts MGS samples and demands more reuse
before keeping the caches.  Both engines are cycle-identical, and the
decision depends only on deterministic simulation state, so results are
bit-for-bit unchanged either way; only the wall-clock moves.  The
bypass is disabled while the race detector has the access methods
instrumented (rebinding would drop its recording wrappers).

Vectorized batches
------------------

``read_many`` additionally proves whole conflict-free access vectors
hit-only up front — every page already mapped, every line a guaranteed
hit (:meth:`CacheSystem.hit_lines`), the whole charge inside the
quantum — and then charges them as one numpy aggregate: one statistics
update, one clock bump, one fancy-indexed gather per touched page,
zero per-word Python.  Any failed precondition falls back to the
per-word loop before a single cycle is charged, so the vector path is
observation-equivalent by construction.

``write_many`` and ``write_block`` get the symmetric treatment: the
all-hit *scatter* path proves every page resolved with write privilege
(no faults), every line a guaranteed write hit (owner == pid, via the
burst caches or one ``hit_lines(..., is_write=True)`` probe), and the
whole charge inside the quantum — then lands the stores as one numpy
scatter per touched page.  Write miss runs batch through
:meth:`CacheSystem.access_run` exactly as reads do.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.params import WORD_BYTES
from repro.svm import MapMode

if TYPE_CHECKING:
    from repro.runtime.runner import Runtime
    from repro.runtime.thread import ThreadContext
    from repro.sync import MGSLock

__all__ = ["Env"]

#: below this many addresses, the per-word loop beats the vector setup
_VEC_MIN_ADDRS = 8


class Env:
    """Per-thread view of the machine.

    The memory operations (``read``, ``write``, ``read_block``,
    ``write_block``, ``read_many``, ``write_many``) are bound per
    instance: to the fast-path implementations normally, or to the
    original slow paths when the runtime was built with
    ``fastpath=False`` (e.g. via the ``REPRO_NO_FASTPATH=1`` escape
    hatch).  Both produce bit-for-bit identical simulations.
    """

    __slots__ = (
        "_rt",
        "_t",
        "pid",
        "cluster",
        "nprocs",
        "_page_size",
        "_line_size",
        "_quantum",
        "_hw_only",
        "_protocol",
        "_cache",
        "_cache_counts",
        "_hit_cost",
        "_tlb",
        "_frames",
        "_costs",
        "_ta",
        "_tp",
        "_fp_pages",
        "_fp_rlines",
        "_fp_wlines",
        "_fp_hits",
        "_fp_bursts",
        "_fp_adaptive",
        "_fp_sample_bursts",
        "_fp_bypass_threshold",
        # per-instance bindings (fast or slow implementation)
        "read",
        "write",
        "read_block",
        "write_block",
        "read_many",
        "write_many",
    )

    def __init__(self, runtime: "Runtime", thread: "ThreadContext") -> None:
        self._rt = runtime
        self._t = thread
        self.pid = thread.pid
        config = runtime.config
        self.cluster = config.cluster_of(self.pid)
        self.nprocs = config.total_processors
        self._page_size = config.page_size
        self._line_size = config.line_size
        self._quantum = runtime.quantum
        self._hw_only = runtime.protocol.hw_bypass
        self._protocol = runtime.protocol
        self._cache = runtime.cache
        self._cache_counts = runtime.cache._counts  # slot 0 counts hits
        self._hit_cost = runtime.cache.hit_cost
        self._tlb = runtime.protocol.tlbs[self.pid]
        self._frames = runtime.protocol.frames_view(self.pid)
        self._costs = runtime.costs
        self._ta = self._costs.translate_array
        self._tp = self._costs.translate_pointer
        # Pages resolved this burst: vpn -> (frame data, write-ok, owner).
        self._fp_pages: dict[int, tuple] = {}
        # Hardware cache lines known to hit for reads / for writes.
        self._fp_rlines: set[int] = set()
        self._fp_wlines: set[int] = set()
        # Adaptive-bypass sampling state (see module docstring); the
        # window and threshold are per-engine class attributes.
        self._fp_hits = 0
        self._fp_bursts = 0
        self._fp_adaptive = runtime.fastpath
        self._fp_sample_bursts = runtime.protocol.fp_sample_bursts
        self._fp_bypass_threshold = runtime.protocol.fp_bypass_hits_per_burst
        if runtime.fastpath:
            self.read = self._read_fast
            self.write = self._write_fast
            self.read_block = self._read_block_fast
            self.write_block = self._write_block_fast
            self.read_many = self._read_many_fast
            self.write_many = self._write_many_fast
        else:
            self.read = self._read_slow
            self.write = self._write_slow
            self.read_block = self._read_block_slow
            self.write_block = self._write_block_slow
            self.read_many = self._read_many_slow
            self.write_many = self._write_many_slow
        detector = runtime.race_detector
        if detector is not None:
            # Opt-in happens-before race detection (repro.analysis):
            # rebinds the five operations to recording wrappers that
            # delegate to the originals unchanged and charge nothing.
            # The adaptive bypass must not rebind over those wrappers.
            self._fp_adaptive = False
            detector.instrument(self)

    # ------------------------------------------------------------------
    # fast-path cache maintenance
    # ------------------------------------------------------------------

    def _fp_reset(self) -> None:
        """Drop the fast-path cache.

        Called after every suspension point: while the thread was
        suspended, protocol handlers may have invalidated its TLB entry,
        replaced the frame data, or changed hardware directory state.
        Cleared in place so batched loops can hold direct references.

        Doubles as the adaptive-bypass sampling point: every reset ends
        one burst, and after the engine's ``fp_sample_bursts`` bursts
        the Env decides once whether its burst caches earn their keep.
        """
        self._fp_pages.clear()
        self._fp_rlines.clear()
        self._fp_wlines.clear()
        if self._fp_adaptive:
            self._fp_bursts += 1
            if self._fp_bursts >= self._fp_sample_bursts:
                self._fp_adaptive = False
                if self._fp_hits < self._fp_bypass_threshold * self._fp_bursts:
                    self._fp_bypass()

    def _fp_bypass(self) -> None:
        """Fall back to the plain one-access-at-a-time paths.

        Cycle-identical by construction (the slow paths are the golden
        reference the fast paths are pinned against); only the Python
        wall-clock changes.  A generator currently suspended inside a
        fast-path method finishes that call on the fast code; every
        subsequent ``env.read``/``env.write``/... dispatches slow.
        """
        self.read = self._read_slow
        self.write = self._write_slow
        self.read_block = self._read_block_slow
        self.write_block = self._write_block_slow
        self.read_many = self._read_many_slow
        self.write_many = self._write_many_slow

    @property
    def fastpath_bypassed(self) -> bool:
        """Whether the adaptive sampler demoted this Env to slow paths.

        (``read`` may also be a race-detector wrapper function, which has
        no ``__func__`` — those runs never demote, so report False.)
        """
        return (
            self._rt.fastpath
            and getattr(self.read, "__func__", None) is Env._read_slow
        )

    def _fp_load(self, vpn: int):
        """Resolve ``vpn`` with read privilege; may yield mapping faults.

        Returns and caches the ``(frame data, write-ok, owner)`` entry.
        """
        if self._hw_only:
            data = self._hw_frame(vpn, self._t)
            entry = (data, True, self._rt.aspace.home_proc(vpn))
        else:
            tlb = self._tlb
            while tlb.lookup(vpn) is None:
                yield ("fault", vpn, False)
                self._fp_reset()
            frame = self._frames[vpn]
            entry = (frame.data, tlb.has_write(vpn), frame.owner_pid)
        self._fp_pages[vpn] = entry
        return entry

    def _fp_load_write(self, vpn: int):
        """Resolve ``vpn`` with write privilege; may yield mapping faults."""
        if self._hw_only:
            data = self._hw_frame(vpn, self._t)
            entry = (data, True, self._rt.aspace.home_proc(vpn))
        else:
            tlb = self._tlb
            while not tlb.has_write(vpn):
                yield ("fault", vpn, True)
                self._fp_reset()
            frame = self._frames[vpn]
            entry = (frame.data, True, frame.owner_pid)
        self._fp_pages[vpn] = entry
        return entry

    # ------------------------------------------------------------------
    # memory operations — fast paths
    # ------------------------------------------------------------------

    def _read_fast(self, addr: int, ptr: bool = False):
        """Load one shared word.  Usage: ``v = yield from env.read(a)``."""
        t = self._t
        cost = self._tp if ptr else self._ta
        t.time += cost
        t.user += cost
        entry = self._fp_pages.get(addr // self._page_size)
        if entry is None:
            entry = yield from self._fp_load(addr // self._page_size)
        line = addr // self._line_size
        if line in self._fp_wlines or line in self._fp_rlines:
            self._cache_counts[0] += 1
            self._fp_hits += 1
            cost = self._hit_cost
        else:
            cost = self._cache.access(
                self.cluster, self.pid, line, False, entry[2]
            )
            self._fp_rlines.add(line)
        t.time += cost
        t.user += cost
        if t.time - t.last_yield > self._quantum:
            yield ("pause",)
            self._fp_reset()
        return float(entry[0][(addr % self._page_size) // WORD_BYTES])

    def _write_fast(self, addr: int, value: float, ptr: bool = False):
        """Store one shared word.  Usage: ``yield from env.write(a, v)``."""
        t = self._t
        cost = self._tp if ptr else self._ta
        t.time += cost
        t.user += cost
        entry = self._fp_pages.get(addr // self._page_size)
        if entry is None or not entry[1]:
            entry = yield from self._fp_load_write(addr // self._page_size)
        line = addr // self._line_size
        if line in self._fp_wlines:
            self._cache_counts[0] += 1
            self._fp_hits += 1
            cost = self._hit_cost
        else:
            cost = self._cache.access(
                self.cluster, self.pid, line, True, entry[2]
            )
            self._fp_wlines.add(line)
        t.time += cost
        t.user += cost
        entry[0][(addr % self._page_size) // WORD_BYTES] = value
        if t.time - t.last_yield > self._quantum:
            yield ("pause",)
            self._fp_reset()

    def _fp_resolve(self, vpn: int):
        """Resolve ``vpn`` with read privilege iff no fault is needed.

        The non-suspending sibling of :meth:`_fp_load`: returns and
        caches the same ``(frame data, write-ok, owner)`` entry when the
        page is already mapped, or None (caching nothing, charging
        nothing) when resolution would fault.  The vector path uses it
        to prove a whole batch fault-free before committing to it;
        entries it caches are valid for the rest of the burst either
        way, exactly as if :meth:`_fp_load` had resolved them.
        """
        if self._tlb.lookup(vpn) is None:
            return None
        if self._hw_only:
            entry = (
                self._protocol.home(vpn).data,
                True,
                self._rt.aspace.home_proc(vpn),
            )
        else:
            frame = self._frames[vpn]
            entry = (frame.data, self._tlb.has_write(vpn), frame.owner_pid)
        self._fp_pages[vpn] = entry
        return entry

    def _read_vector(self, addrs, n: int, tcost: int):
        """All-hit aggregate load of ``addrs``; None → caller goes scalar.

        Preconditions proved before anything is charged: every page
        mapped (no faults), every line a guaranteed hit — via the burst
        caches or one :meth:`CacheSystem.hit_lines` directory probe —
        and the whole charge of ``n * (translate + hit)`` cycles inside
        the current quantum (no pause).  Then the per-word loop's exact
        effect is applied in aggregate: one clock/bucket bump, ``n``
        recorded hits, burst-hit sampling credit, newly probed lines
        remembered, and one numpy gather per touched page.
        """
        t = self._t
        whit = tcost + self._hit_cost
        if n * whit > t.last_yield + self._quantum - t.time:
            return None
        arr = np.asarray(addrs, dtype=np.int64)
        pages = self._fp_pages
        vpns = arr // self._page_size
        uvpns = np.unique(vpns).tolist()
        for vpn in uvpns:
            if vpn not in pages and self._fp_resolve(vpn) is None:
                return None
        lines = arr // self._line_size
        ulines, ucounts = np.unique(lines, return_counts=True)
        rlines = self._fp_rlines
        wlines = self._fp_wlines
        # Burst-cache hits the per-word loop would have sampled: every
        # access to an already-known line, plus the repeats of each line
        # first proven by the directory probe below.
        burst_hits = 0
        unknown = []
        for line, c in zip(ulines.tolist(), ucounts.tolist()):
            if line in wlines or line in rlines:
                burst_hits += c
            else:
                unknown.append(line)
                burst_hits += c - 1
        if unknown and not self._cache.hit_lines(
            self.cluster, self.pid, unknown, False
        ):
            return None
        rlines.update(unknown)
        self._cache_counts[0] += n
        self._fp_hits += burst_hits
        cost = n * whit
        t.time += cost
        t.user += cost
        widx = (arr % self._page_size) // WORD_BYTES
        out = np.empty(n, dtype=np.float64)
        if len(uvpns) == 1:
            out[:] = pages[uvpns[0]][0][widx]
        else:
            for vpn in uvpns:
                sel = vpns == vpn
                out[sel] = pages[vpn][0][widx[sel]]
        return out.tolist()

    def _read_many_fast(self, addrs: Iterable[int], ptr: bool = False):
        """Load several shared words in one call.

        Usage: ``a, b = yield from env.read_many((addr_a, addr_b))``.
        Equivalent — cycle for cycle, fault for fault, pause for pause —
        to a sequence of ``env.read`` calls over ``addrs``, but resolves
        the whole run inside one generator.  Batches long enough to
        amortize the setup first try the all-hit vector path
        (:meth:`_read_vector`); anything it cannot prove conflict-free
        falls through to the per-word loop untouched.
        """
        t = self._t
        if not isinstance(addrs, (tuple, list)):
            addrs = tuple(addrs)
        if len(addrs) >= _VEC_MIN_ADDRS:
            out = self._read_vector(
                addrs, len(addrs), self._tp if ptr else self._ta
            )
            if out is not None:
                return out
        pages = self._fp_pages
        rlines = self._fp_rlines
        wlines = self._fp_wlines
        access = self._cache.access
        counts = self._cache_counts
        cluster = self.cluster
        pid = self.pid
        page_size = self._page_size
        line_size = self._line_size
        quantum = self._quantum
        hit_cost = self._hit_cost
        tcost = self._tp if ptr else self._ta
        out = []
        append = out.append
        ttime = t.time
        tuser = t.user
        for addr in addrs:
            ttime += tcost
            tuser += tcost
            entry = pages.get(addr // page_size)
            if entry is None:
                t.time = ttime
                t.user = tuser
                entry = yield from self._fp_load(addr // page_size)
                ttime = t.time
                tuser = t.user
            line = addr // line_size
            if line in wlines or line in rlines:
                counts[0] += 1
                self._fp_hits += 1
                ttime += hit_cost
                tuser += hit_cost
            else:
                cost = access(cluster, pid, line, False, entry[2])
                rlines.add(line)
                ttime += cost
                tuser += cost
            if ttime - t.last_yield > quantum:
                t.time = ttime
                t.user = tuser
                yield ("pause",)
                self._fp_reset()
                ttime = t.time
                tuser = t.user
            append(float(entry[0][(addr % page_size) // WORD_BYTES]))
        t.time = ttime
        t.user = tuser
        return out

    def _fp_resolve_write(self, vpn: int):
        """Resolve ``vpn`` with *write* privilege iff no fault is needed.

        The non-suspending sibling of :meth:`_fp_load_write`, mirroring
        what :meth:`_fp_resolve` is to :meth:`_fp_load`: returns and
        caches the ``(frame data, True, owner)`` entry when the page is
        already write-mapped, or None (caching nothing, charging
        nothing) when a write fault — or, at C == P, the one-time TLB
        fill charge — would be required.
        """
        if self._tlb.lookup(vpn) is None:
            return None
        if self._hw_only:
            entry = (
                self._protocol.home(vpn).data,
                True,
                self._rt.aspace.home_proc(vpn),
            )
        else:
            if not self._tlb.has_write(vpn):
                return None
            frame = self._frames[vpn]
            entry = (frame.data, True, frame.owner_pid)
        self._fp_pages[vpn] = entry
        return entry

    def _write_vector(self, addrs, values, n: int, tcost: int):
        """All-hit aggregate scatter of ``values`` to ``addrs``; None →
        caller goes scalar.

        The write twin of :meth:`_read_vector`: every page proved
        write-resolved (no faults), every line a guaranteed *write* hit
        — already in the burst write-set, or owner == pid via one
        ``hit_lines(..., is_write=True)`` probe — and the whole
        ``n * (translate + hit)`` charge inside the quantum.  Then one
        clock bump, ``n`` recorded hits, and one numpy fancy-indexed
        scatter per touched page.  Duplicate target addresses bail to
        the per-word loop, whose last-store-wins order is explicit.
        """
        t = self._t
        whit = tcost + self._hit_cost
        if n * whit > t.last_yield + self._quantum - t.time:
            return None
        arr = np.asarray(addrs, dtype=np.int64)
        if len(np.unique(arr)) != n:
            return None
        pages = self._fp_pages
        vpns = arr // self._page_size
        uvpns = np.unique(vpns).tolist()
        for vpn in uvpns:
            entry = pages.get(vpn)
            if (entry is None or not entry[1]) and self._fp_resolve_write(
                vpn
            ) is None:
                return None
        lines = arr // self._line_size
        wlines = self._fp_wlines
        unknown = [
            line for line in np.unique(lines).tolist() if line not in wlines
        ]
        if unknown and not self._cache.hit_lines(
            self.cluster, self.pid, unknown, True
        ):
            return None
        wlines.update(unknown)
        self._cache_counts[0] += n
        self._fp_hits += n
        cost = n * whit
        t.time += cost
        t.user += cost
        vals = np.asarray(values, dtype=np.float64)
        widx = (arr % self._page_size) // WORD_BYTES
        if len(uvpns) == 1:
            pages[uvpns[0]][0][widx] = vals
        else:
            for vpn in uvpns:
                sel = vpns == vpn
                pages[vpn][0][widx[sel]] = vals[sel]
        return True

    def _write_many_fast(
        self, addrs: Iterable[int], values: Sequence[float], ptr: bool = False
    ):
        """Store several shared words in one call.

        Usage: ``yield from env.write_many((a0, a1), (v0, v1))``.
        Equivalent — cycle for cycle, fault for fault, pause for pause —
        to a sequence of ``env.write`` calls over ``(addrs, values)``
        pairs, but resolves the whole scatter inside one generator.
        Batches long enough to amortize the setup first try the all-hit
        vector path (:meth:`_write_vector`); anything it cannot prove
        conflict-free falls through to the per-word loop untouched.
        """
        t = self._t
        if not isinstance(addrs, (tuple, list)):
            addrs = tuple(addrs)
        if len(addrs) >= _VEC_MIN_ADDRS:
            done = self._write_vector(
                addrs, values, len(addrs), self._tp if ptr else self._ta
            )
            if done is not None:
                return
        pages = self._fp_pages
        wlines = self._fp_wlines
        access = self._cache.access
        counts = self._cache_counts
        cluster = self.cluster
        pid = self.pid
        page_size = self._page_size
        line_size = self._line_size
        quantum = self._quantum
        hit_cost = self._hit_cost
        tcost = self._tp if ptr else self._ta
        ttime = t.time
        tuser = t.user
        for addr, value in zip(addrs, values):
            ttime += tcost
            tuser += tcost
            entry = pages.get(addr // page_size)
            if entry is None or not entry[1]:
                t.time = ttime
                t.user = tuser
                entry = yield from self._fp_load_write(addr // page_size)
                ttime = t.time
                tuser = t.user
            line = addr // line_size
            if line in wlines:
                counts[0] += 1
                self._fp_hits += 1
                ttime += hit_cost
                tuser += hit_cost
            else:
                cost = access(cluster, pid, line, True, entry[2])
                wlines.add(line)
                ttime += cost
                tuser += cost
            # Stores land before a pause, as env.write does.
            entry[0][(addr % page_size) // WORD_BYTES] = value
            if ttime - t.last_yield > quantum:
                t.time = ttime
                t.user = tuser
                yield ("pause",)
                self._fp_reset()
                ttime = t.time
                tuser = t.user
        t.time = ttime
        t.user = tuser

    def _read_block_fast(self, addr: int, nwords: int, ptr: bool = False):
        """Load ``nwords`` consecutive shared words starting at ``addr``.

        Usage: ``row = yield from env.read_block(a.addr(i), n)``.
        Equivalent to ``nwords`` sequential ``env.read`` calls, but
        resolves whole runs of guaranteed-hit lines in closed form: one
        directory probe (:meth:`CacheSystem.hit_run`), one aggregate
        charge, one slice off the frame — instead of per-word work.
        """
        t = self._t
        pages = self._fp_pages
        rlines = self._fp_rlines
        wlines = self._fp_wlines
        access = self._cache.access
        access_run = self._cache.access_run
        hit_run = self._cache.hit_run
        counts = self._cache_counts
        cluster = self.cluster
        pid = self.pid
        page_size = self._page_size
        line_size = self._line_size
        quantum = self._quantum
        hit_cost = self._hit_cost
        tcost = self._tp if ptr else self._ta
        whit = tcost + hit_cost
        # A miss batch is only worth attempting when the quantum budget
        # can admit at least one worst-case *hardware* line plus its
        # hit words (access_run's per-line bound rejects a first line
        # that is software-class and does not fit).
        batch_floor = self._cache.worst_hw_miss + tcost + (
            line_size // WORD_BYTES - 1
        ) * whit
        out = []
        append = out.append
        extend = out.extend
        ttime = t.time
        tuser = t.user
        end = addr + nwords * WORD_BYTES
        while addr < end:
            vpn = addr // page_size
            entry = pages.get(vpn)
            if entry is None:
                # Unresolved page: translate is charged before any fault,
                # exactly as the per-word path does.
                ttime += tcost
                tuser += tcost
                t.time = ttime
                t.user = tuser
                entry = yield from self._fp_load(vpn)
                ttime = t.time
                tuser = t.user
                data = entry[0]
                line = addr // line_size
                if line in wlines or line in rlines:
                    counts[0] += 1
                    self._fp_hits += 1
                    ttime += hit_cost
                    tuser += hit_cost
                else:
                    cost = access(cluster, pid, line, False, entry[2])
                    rlines.add(line)
                    ttime += cost
                    tuser += cost
                if ttime - t.last_yield > quantum:
                    t.time = ttime
                    t.user = tuser
                    yield ("pause",)
                    self._fp_reset()
                    ttime = t.time
                    tuser = t.user
                append(float(data[(addr % page_size) // WORD_BYTES]))
                addr += WORD_BYTES
                continue
            data = entry[0]
            owner = entry[2]
            page_end = (vpn + 1) * page_size
            chunk_end = page_end if page_end < end else end
            while addr < chunk_end:
                line = addr // line_size
                max_lines = (chunk_end - 1) // line_size - line + 1
                budget = t.last_yield + quantum - ttime
                # Words beyond the first ``budget // whit + 1`` cannot
                # be charged before the next pause, and the pause stales
                # the probe anyway — so cap the probe at the lines the
                # budget can actually reach instead of the whole chunk.
                m = budget // whit + 1
                cap = (addr + m * WORD_BYTES - 1) // line_size - line + 1
                if cap > max_lines:
                    cap = max_lines
                nhit = hit_run(cluster, pid, line, cap, False)
                if nhit == 0:
                    # A run of genuine misses: service consecutive
                    # missing lines in one directory call, with the
                    # per-line classification, counts, and charges of
                    # the word loop — capped so no quantum pause can
                    # fall inside the batch.
                    k = 0
                    if budget > batch_floor:
                        extras = []
                        a = addr
                        line_end = (line + 1) * line_size
                        while a < chunk_end:
                            we = (
                                chunk_end
                                if chunk_end < line_end
                                else line_end
                            )
                            extras.append(
                                tcost + ((we - a) // WORD_BYTES - 1) * whit
                            )
                            a = we
                            line_end += line_size
                        k, charge = access_run(
                            cluster, pid, line, False, owner, extras, budget
                        )
                    if k:
                        run_end = (line + k) * line_size
                        if run_end > chunk_end:
                            run_end = chunk_end
                        m = (run_end - addr) // WORD_BYTES
                        rlines.update(range(line, line + k))
                        counts[0] += m - k
                        self._fp_hits += m - k
                        ttime += charge
                        tuser += charge
                        w0 = (addr % page_size) // WORD_BYTES
                        extend(data[w0 : w0 + m].tolist())
                        addr = run_end
                        continue
                    # Batch would cross the quantum before its first
                    # line: classify, charge, move one word.
                    cost = access(cluster, pid, line, False, owner)
                    rlines.add(line)
                    ttime += tcost + cost
                    tuser += tcost + cost
                    if ttime - t.last_yield > quantum:
                        t.time = ttime
                        t.user = tuser
                        yield ("pause",)
                        self._fp_reset()
                        ttime = t.time
                        tuser = t.user
                        append(float(data[(addr % page_size) // WORD_BYTES]))
                        addr += WORD_BYTES
                        break  # page/directory knowledge is stale
                    append(float(data[(addr % page_size) // WORD_BYTES]))
                    addr += WORD_BYTES
                    continue
                # Guaranteed-hit run, cut short at the word whose charge
                # crosses the quantum (that word reads after the pause,
                # as the per-word path does).
                run_end = (line + nhit) * line_size
                if run_end > chunk_end:
                    run_end = chunk_end
                k = (run_end - addr) // WORD_BYTES
                if m >= k:
                    m = k
                    paused = k * whit > budget
                else:
                    paused = True
                cost = m * whit
                ttime += cost
                tuser += cost
                counts[0] += m
                self._fp_hits += m
                w0 = (addr % page_size) // WORD_BYTES
                addr += m * WORD_BYTES
                if paused:
                    extend(data[w0 : w0 + m - 1].tolist())
                    t.time = ttime
                    t.user = tuser
                    yield ("pause",)
                    self._fp_reset()
                    ttime = t.time
                    tuser = t.user
                    append(float(data[w0 + m - 1]))
                    break  # page/directory knowledge is stale
                extend(data[w0 : w0 + m].tolist())
        t.time = ttime
        t.user = tuser
        return out

    def _write_block_vector(
        self, addr: int, values: Sequence[float], n: int, tcost: int
    ):
        """All-hit aggregate store of a whole contiguous block; None →
        caller runs the chunked loop.

        The contiguous sibling of :meth:`_write_vector`: every touched
        page write-resolved, every line in ``[first, last]`` a
        guaranteed write hit, the whole charge inside the quantum —
        then one aggregate charge and one contiguous slice store per
        page, with no per-chunk probing at all.
        """
        t = self._t
        whit = tcost + self._hit_cost
        if n * whit > t.last_yield + self._quantum - t.time:
            return None
        page_size = self._page_size
        pages = self._fp_pages
        last_addr = addr + (n - 1) * WORD_BYTES
        for vpn in range(addr // page_size, last_addr // page_size + 1):
            entry = pages.get(vpn)
            if (entry is None or not entry[1]) and self._fp_resolve_write(
                vpn
            ) is None:
                return None
        line_size = self._line_size
        wlines = self._fp_wlines
        unknown = [
            line
            for line in range(addr // line_size, last_addr // line_size + 1)
            if line not in wlines
        ]
        if unknown and not self._cache.hit_lines(
            self.cluster, self.pid, unknown, True
        ):
            return None
        wlines.update(unknown)
        self._cache_counts[0] += n
        self._fp_hits += n
        cost = n * whit
        t.time += cost
        t.user += cost
        vi = 0
        end = addr + n * WORD_BYTES
        while addr < end:
            vpn = addr // page_size
            page_end = (vpn + 1) * page_size
            chunk_end = page_end if page_end < end else end
            m = (chunk_end - addr) // WORD_BYTES
            w0 = (addr % page_size) // WORD_BYTES
            pages[vpn][0][w0 : w0 + m] = values[vi : vi + m]
            vi += m
            addr = chunk_end
        return True

    def _write_block_fast(
        self, addr: int, values: Sequence[float], ptr: bool = False
    ):
        """Store consecutive shared words starting at ``addr``.

        Usage: ``yield from env.write_block(a.addr(i), values)``.
        Equivalent to sequential ``env.write`` calls over ``values``,
        with the same closed-form hit-run batching as ``read_block``,
        plus an all-hit whole-block scatter preamble
        (:meth:`_write_block_vector`) for blocks it can prove
        conflict-free in one probe.
        """
        if len(values) >= _VEC_MIN_ADDRS:
            done = self._write_block_vector(
                addr, values, len(values), self._tp if ptr else self._ta
            )
            if done is not None:
                return
        t = self._t
        pages = self._fp_pages
        wlines = self._fp_wlines
        access = self._cache.access
        access_run = self._cache.access_run
        hit_run = self._cache.hit_run
        counts = self._cache_counts
        cluster = self.cluster
        pid = self.pid
        page_size = self._page_size
        line_size = self._line_size
        quantum = self._quantum
        hit_cost = self._hit_cost
        tcost = self._tp if ptr else self._ta
        whit = tcost + hit_cost
        batch_floor = self._cache.worst_hw_miss + tcost + (
            line_size // WORD_BYTES - 1
        ) * whit
        vi = 0
        ttime = t.time
        tuser = t.user
        end = addr + len(values) * WORD_BYTES
        while addr < end:
            vpn = addr // page_size
            entry = pages.get(vpn)
            if entry is None or not entry[1]:
                ttime += tcost
                tuser += tcost
                t.time = ttime
                t.user = tuser
                entry = yield from self._fp_load_write(vpn)
                ttime = t.time
                tuser = t.user
                data = entry[0]
                line = addr // line_size
                if line in wlines:
                    counts[0] += 1
                    self._fp_hits += 1
                    ttime += hit_cost
                    tuser += hit_cost
                else:
                    cost = access(cluster, pid, line, True, entry[2])
                    wlines.add(line)
                    ttime += cost
                    tuser += cost
                data[(addr % page_size) // WORD_BYTES] = values[vi]
                vi += 1
                addr += WORD_BYTES
                if ttime - t.last_yield > quantum:
                    t.time = ttime
                    t.user = tuser
                    yield ("pause",)
                    self._fp_reset()
                    ttime = t.time
                    tuser = t.user
                continue
            data = entry[0]
            owner = entry[2]
            page_end = (vpn + 1) * page_size
            chunk_end = page_end if page_end < end else end
            while addr < chunk_end:
                line = addr // line_size
                max_lines = (chunk_end - 1) // line_size - line + 1
                budget = t.last_yield + quantum - ttime
                # Budget-capped probe, as in _read_block_fast.
                m = budget // whit + 1
                cap = (addr + m * WORD_BYTES - 1) // line_size - line + 1
                if cap > max_lines:
                    cap = max_lines
                nhit = hit_run(cluster, pid, line, cap, True)
                if nhit == 0:
                    # Batched miss run, as in _read_block_fast: stores
                    # land in aggregate, and the budget cap proves no
                    # pause falls inside the batch.
                    k = 0
                    if budget > batch_floor:
                        extras = []
                        a = addr
                        line_end = (line + 1) * line_size
                        while a < chunk_end:
                            we = (
                                chunk_end
                                if chunk_end < line_end
                                else line_end
                            )
                            extras.append(
                                tcost + ((we - a) // WORD_BYTES - 1) * whit
                            )
                            a = we
                            line_end += line_size
                        k, charge = access_run(
                            cluster, pid, line, True, owner, extras, budget
                        )
                    if k:
                        run_end = (line + k) * line_size
                        if run_end > chunk_end:
                            run_end = chunk_end
                        m = (run_end - addr) // WORD_BYTES
                        wlines.update(range(line, line + k))
                        counts[0] += m - k
                        self._fp_hits += m - k
                        ttime += charge
                        tuser += charge
                        w0 = (addr % page_size) // WORD_BYTES
                        data[w0 : w0 + m] = values[vi : vi + m]
                        vi += m
                        addr = run_end
                        continue
                    cost = access(cluster, pid, line, True, owner)
                    wlines.add(line)
                    ttime += tcost + cost
                    tuser += tcost + cost
                    data[(addr % page_size) // WORD_BYTES] = values[vi]
                    vi += 1
                    addr += WORD_BYTES
                    if ttime - t.last_yield > quantum:
                        t.time = ttime
                        t.user = tuser
                        yield ("pause",)
                        self._fp_reset()
                        ttime = t.time
                        tuser = t.user
                        break  # page/directory knowledge is stale
                    continue
                run_end = (line + nhit) * line_size
                if run_end > chunk_end:
                    run_end = chunk_end
                k = (run_end - addr) // WORD_BYTES
                if m >= k:
                    m = k
                    paused = k * whit > budget
                else:
                    paused = True
                cost = m * whit
                ttime += cost
                tuser += cost
                counts[0] += m
                self._fp_hits += m
                w0 = (addr % page_size) // WORD_BYTES
                # Stores land before a pause, as the per-word path does.
                data[w0 : w0 + m] = values[vi : vi + m]
                vi += m
                addr += m * WORD_BYTES
                if paused:
                    t.time = ttime
                    t.user = tuser
                    yield ("pause",)
                    self._fp_reset()
                    ttime = t.time
                    tuser = t.user
                    break  # page/directory knowledge is stale
        t.time = ttime
        t.user = tuser

    # ------------------------------------------------------------------
    # memory operations — slow paths (REPRO_NO_FASTPATH=1)
    # ------------------------------------------------------------------

    def _read_slow(self, addr: int, ptr: bool = False):
        """Load one shared word (original one-access-at-a-time path)."""
        t = self._t
        costs = self._costs
        t.charge_user(costs.translate_pointer if ptr else costs.translate_array)
        vpn = addr // self._page_size
        if self._hw_only:
            data = self._hw_frame(vpn, t)
        else:
            while self._tlb.lookup(vpn) is None:
                yield ("fault", vpn, False)
            data = self._frames[vpn].data
        owner = self._owner_pid(vpn)
        t.charge_user(
            self._cache.access(
                self.cluster, self.pid, addr // self._line_size, False, owner
            )
        )
        if t.time - t.last_yield > self._quantum:
            yield ("pause",)
        return float(data[(addr % self._page_size) // WORD_BYTES])

    def _write_slow(self, addr: int, value: float, ptr: bool = False):
        """Store one shared word (original one-access-at-a-time path)."""
        t = self._t
        costs = self._costs
        t.charge_user(costs.translate_pointer if ptr else costs.translate_array)
        vpn = addr // self._page_size
        if self._hw_only:
            data = self._hw_frame(vpn, t)
        else:
            while not self._tlb.has_write(vpn):
                yield ("fault", vpn, True)
            data = self._frames[vpn].data
        owner = self._owner_pid(vpn)
        t.charge_user(
            self._cache.access(
                self.cluster, self.pid, addr // self._line_size, True, owner
            )
        )
        data[(addr % self._page_size) // WORD_BYTES] = value
        if t.time - t.last_yield > self._quantum:
            yield ("pause",)

    def _read_many_slow(self, addrs: Iterable[int], ptr: bool = False):
        out = []
        for addr in addrs:
            value = yield from self._read_slow(addr, ptr)
            out.append(value)
        return out

    def _write_many_slow(
        self, addrs: Iterable[int], values: Sequence[float], ptr: bool = False
    ):
        for addr, value in zip(addrs, values):
            yield from self._write_slow(addr, value, ptr)

    def _read_block_slow(self, addr: int, nwords: int, ptr: bool = False):
        return (
            yield from self._read_many_slow(
                range(addr, addr + nwords * WORD_BYTES, WORD_BYTES), ptr
            )
        )

    def _write_block_slow(
        self, addr: int, values: Sequence[float], ptr: bool = False
    ):
        for i, value in enumerate(values):
            yield from self._write_slow(addr + i * WORD_BYTES, value, ptr)

    # ------------------------------------------------------------------
    # computation
    # ------------------------------------------------------------------

    def compute(self, cycles: int):
        """Spend ``cycles`` of pure computation."""
        t = self._t
        t.time += cycles
        t.user += cycles
        if t.time - t.last_yield > self._quantum:
            yield ("pause",)
            self._fp_reset()

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------

    def lock(self, lk: "MGSLock"):
        """Acquire an MGS lock (an acquire point; no protocol action
        needed because MGS invalidates eagerly at releases)."""
        yield ("lock", lk)
        self._fp_reset()

    def unlock(self, lk: "MGSLock"):
        """Release an MGS lock.  This is a release point: the DUQ is
        flushed *before* the lock is freed — the source of the paper's
        critical-section dilation."""
        yield ("unlock", lk)
        self._fp_reset()

    def barrier(self):
        """Wait on the global barrier (also a release point)."""
        yield ("barrier",)
        self._fp_reset()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _owner_pid(self, vpn: int) -> int:
        if self._hw_only:
            return self._rt.aspace.home_proc(vpn)
        return self._frames[vpn].owner_pid

    def _hw_frame(self, vpn: int, t):
        """Home-copy access for the tightly-coupled configuration."""
        tlb = self._tlb
        if tlb.lookup(vpn) is None:
            # Only SVM overhead remains at C == P: a one-time fill.
            t.charge_user(self._costs.fault_overhead + self._costs.map_fill)
            tlb.fill(vpn, MapMode.WRITE)
        return self._protocol.home(vpn).data

    @property
    def now(self) -> int:
        """The thread's local clock (cycles)."""
        return self._t.time

    @property
    def fastpath(self) -> bool:
        """Whether this Env uses the hot-path access engine."""
        return self._rt.fastpath
