"""The Runtime: builds a simulated DSSMP and drives application threads.

Typical use (what every app in :mod:`repro.apps` does):

.. code-block:: python

    rt = Runtime(MachineConfig(total_processors=8, cluster_size=2))
    data = rt.array("data", 1024)
    data.init(range(1024))
    lk = rt.create_lock()
    rt.spawn_all(worker)           # one generator per processor
    result = rt.run()
    print(result.total_time, result.breakdown())
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable

from repro.core.engine import create_engine
from repro.hw import CacheSystem
from repro.machine import Machine
from repro.params import CostModel, MachineConfig
from repro.runtime.env import Env
from repro.runtime.replay import replay_enabled_default
from repro.runtime.shared import SharedArray
from repro.runtime.thread import ThreadContext
from repro.sim import Simulator
from repro.svm import AccessKind, AddressSpace
from repro.sync import LockStats, MGSLock, TreeBarrier

__all__ = [
    "Runtime",
    "RunResult",
    "fastpath_enabled_default",
    "replay_enabled_default",
]


def fastpath_enabled_default() -> bool:
    """Whether new runtimes use the hot-path access engine.

    On by default; set ``REPRO_NO_FASTPATH=1`` (or ``true``/``yes``) to
    fall back to the original one-access-at-a-time code paths.  Both are
    bit-for-bit identical (pinned by ``tests/test_golden_equivalence.py``);
    the escape hatch exists for debugging and for the perf-smoke harness.
    """
    return os.environ.get("REPRO_NO_FASTPATH", "").strip().lower() not in (
        "1",
        "true",
        "yes",
    )


@dataclass
class RunResult:
    """Everything a benchmark needs from one simulated execution."""

    config: MachineConfig
    total_time: int
    threads: list[ThreadContext]
    lock_stats: LockStats
    protocol_stats: dict[str, int]
    messages_inter_ssmp: int
    messages_intra_ssmp: int
    cache_stats: dict[str, int] = field(default_factory=dict)
    #: repro.net roll-up: models, queue cycles, drops, retransmits, ...
    network_stats: dict = field(default_factory=dict)
    #: per-MsgType delivered counts/bytes/latency from the protocol bus
    message_flows: dict = field(default_factory=dict)
    #: fault/release transaction latency percentiles (p50/p95/max)
    transactions: dict = field(default_factory=dict)
    #: phase-replay activity: phases replayed/recorded this run, plus
    #: persistent replay-store traffic (loads/hits/stores) when a store
    #: was attached.  Reporting only — deliberately *excluded* from the
    #: run-cache payload so a replay-warm run stays byte-identical to a
    #: cold one (``metrics.export`` publishes it; the cache does not).
    replay_cache: dict = field(default_factory=dict)

    def breakdown(self) -> dict[str, float]:
        """Average per-processor cycle breakdown (the paper's bars).

        Time between a thread's finish and the end of the run counts as
        barrier wait (threads end at the final barrier together; residual
        skew is synchronization slack).
        """
        n = len(self.threads)
        out = {"user": 0.0, "lock": 0.0, "barrier": 0.0, "mgs": 0.0}
        for t in self.threads:
            out["user"] += t.user
            out["lock"] += t.lock
            out["barrier"] += t.barrier + (self.total_time - t.finish_time)
            out["mgs"] += t.mgs
        return {k: v / n for k, v in out.items()}

    @property
    def speedup_denominator(self) -> int:
        return self.total_time


class Runtime:
    """One simulated DSSMP execution context."""

    #: callables invoked with every newly constructed Runtime.  The CLI
    #: uses this to attach :class:`~repro.trace.ProtocolTracer` instances
    #: (``--trace-pages``) without threading arguments through the app
    #: modules.  Append and remove around a run; entries persist for the
    #: process otherwise.
    construction_hooks: list[Callable[["Runtime"], None]] = []

    def __init__(
        self,
        config: MachineConfig,
        costs: CostModel | None = None,
        quantum: int = 1500,
        fastpath: bool | None = None,
        analysis=None,
        replay: bool | None = None,
        replay_store=None,
    ) -> None:
        self.config = config
        self.costs = costs if costs is not None else CostModel()
        self.quantum = quantum
        self.fastpath = (
            fastpath_enabled_default() if fastpath is None else bool(fastpath)
        )
        self.replay = (
            replay_enabled_default() if replay is None else bool(replay)
        )
        # Persistent replay store: a ReplayStore instance, True/False to
        # force on/off, or None to let REPRO_REPLAY_CACHE[_DIR] decide
        # (resolved lazily by the phased driver — see
        # repro.bench.cache.resolve_replay_store).
        self.replay_store = replay_store
        self.sim = Simulator()
        self.machine = Machine(self.sim, config, self.costs)
        self.aspace = AddressSpace(config)
        self.cache = CacheSystem(config, self.costs)
        self.protocol = create_engine(
            config.protocol,
            self.sim,
            self.machine,
            self.aspace,
            self.cache,
            config,
            self.costs,
        )
        self.barrier_obj = TreeBarrier(self.machine, config, self.costs)
        self.locks: list[MGSLock] = []
        self.threads: list[ThreadContext] = []
        self.envs: list[Env] = []
        self._spawned = False
        # Phased execution (spawn_phases): factory producing one fresh
        # generator per (thread, phase), plus the per-phase replay keys.
        self._phase_factory = None
        self._phase_count = 0
        self._phase_keys: list = []
        #: the PhaseRecorder of the last phased run (None when replay was
        #: off or never fired); tests read ``replayed``/``recorded`` here.
        self.phase_recorder = None
        # Opt-in checkers (see repro.analysis): pure observers, attached
        # before threads spawn so Env instrumentation sees them.  Both
        # stay None — and every hot path identical — when analysis is off.
        self.sanitizer = None
        self.race_detector = None
        if analysis:
            from repro.analysis import setup_analysis

            setup_analysis(self, analysis)
        for hook in Runtime.construction_hooks:
            hook(self)

    # ------------------------------------------------------------------
    # setup API
    # ------------------------------------------------------------------

    def array(
        self,
        name: str,
        length: int,
        home: int | Callable[[int], int] | None = None,
        kind: AccessKind = AccessKind.ARRAY,
    ) -> SharedArray:
        """Allocate a shared array of ``length`` words."""
        return SharedArray(self, name, length, home, kind)

    def create_lock(self, home_cluster: int | None = None) -> MGSLock:
        """Create an MGS lock; its global lock lives on ``home_cluster``."""
        lock_id = len(self.locks)
        if home_cluster is None:
            home_cluster = lock_id % self.config.num_clusters
        lk = MGSLock(self.machine, self.config, self.costs, lock_id, home_cluster)
        self.locks.append(lk)
        return lk

    def spawn(self, genfunc: Callable[[Env], object]) -> ThreadContext:
        """Add one application thread; it runs on the next processor."""
        if self._phase_factory is not None:
            raise RuntimeError("spawn cannot be mixed with spawn_phases")
        pid = len(self.threads)
        if pid >= self.config.total_processors:
            raise RuntimeError("more threads than processors")
        thread = ThreadContext(pid=pid, gen=None)  # type: ignore[arg-type]
        env = Env(self, thread)
        thread.gen = genfunc(env)
        self.threads.append(thread)
        self.envs.append(env)
        return thread

    def spawn_all(self, genfunc: Callable[[Env], object]) -> None:
        """One thread per processor."""
        for _ in range(self.config.total_processors):
            self.spawn(genfunc)

    def spawn_phases(
        self,
        factory: Callable[[Env, int], object],
        phases: int,
        keys: list | None = None,
    ) -> None:
        """Run the application as a sequence of barrier-delimited phases.

        ``factory(env, phase_index)`` must return a *fresh* generator for
        every call — one per (processor, phase).  Phases execute in order;
        each thread's clock and cycle buckets carry across phases, so the
        result is the same simulated execution an equivalent
        :meth:`spawn_all` program would produce — phase boundaries only
        add the scheduling points that already exist at the barrier each
        phase is expected to end with.

        The payoff is **phase replay**: because a fresh generator holds
        no state from earlier phases, the machine state at a phase
        boundary fully determines the phase's behavior.  When two phases
        start from the same digest (same ``keys`` entry, same machine
        state — see :mod:`repro.runtime.replay`), the second one is
        applied in closed form instead of being re-simulated.

        Args:
            factory: ``(env, phase_index) -> generator``.
            phases: number of phases to run.
            keys: optional per-phase replay keys (default: the phase
                index, which never replays; iterative apps pass a value
                that repeats, e.g. ``0`` for every sweep iteration, or
                the iteration's parameter tuple).
        """
        if self.threads:
            raise RuntimeError("spawn_phases cannot be mixed with spawn")
        if phases <= 0:
            raise ValueError(f"need at least one phase (got {phases})")
        if keys is not None and len(keys) != phases:
            raise ValueError(
                f"keys has {len(keys)} entries for {phases} phases"
            )
        self._phase_factory = factory
        self._phase_count = phases
        self._phase_keys = list(keys) if keys is not None else list(range(phases))
        for pid in range(self.config.total_processors):
            self.threads.append(ThreadContext(pid=pid, gen=None))  # type: ignore[arg-type]

    def spawn_epochs(
        self,
        factory: Callable[[Env, int], object],
        epochs: int,
        keys: list | None = None,
    ) -> None:
        """Run a non-phased application as a sequence of epochs —
        replay below barrier granularity.

        The phased driver never required a literal barrier at a
        boundary, only *quiescence*: every generator exhausted and the
        event heap drained.  Any program point with that property — the
        end of an outer loop iteration closed by its own lock releases,
        a super-quantum of uniform per-thread work — is therefore a
        legal replay boundary.  ``spawn_epochs`` exposes exactly that:
        it is :meth:`spawn_phases` under a name that makes the
        epoch-granularity contract explicit, and it shares all of its
        machinery, digesting the full machine state (thread skews, TLB,
        line directory, locks, handler/interconnect occupancy, engine
        pages) at every epoch boundary.

        An epoch whose execution proves state-idempotent — matmul
        recomputing an identical product, TSP re-walking a settled
        search — is recorded once and replayed in closed form on every
        later occurrence of its digest, in this run or (with the replay
        store) any other.  Epochs that change state simply execute;
        correctness never depends on the app's idempotence claim.  The
        same auto-disable rules apply (faults, transport, analysis
        checkers, ``REPRO_NO_REPLAY``).

        Args:
            factory: ``(env, epoch_index) -> generator``, fresh per
                (processor, epoch).
            epochs: number of epochs to run.
            keys: optional per-epoch replay keys; epochs replay only
                when their key *and* machine-state digest coincide, so
                give structurally different epochs (e.g. a drain/
                epilogue) distinct keys.
        """
        self.spawn_phases(factory, epochs, keys=keys)

    def annotate_benign_race(
        self, addr: int, words: int = 1, reason: str = ""
    ) -> None:
        """Declare a documented benign race (no-op without a detector).

        Applications use this for accesses that race by design — e.g.
        TSP's unlocked read of the monotonically tightening incumbent
        bound — so :class:`~repro.analysis.races.RaceDetector` can
        certify the rest of the execution race-free.
        """
        if self.race_detector is not None:
            self.race_detector.exempt(addr, words, reason)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(self, max_events: int | None = None) -> RunResult:
        """Drive every thread to completion and gather statistics."""
        if not self.threads:
            raise RuntimeError("no threads spawned")
        if self._phase_factory is not None:
            return self._run_phased(max_events)
        for t in self.threads:
            self.sim.schedule_at(0, self._resume, t, None)
        self.sim.run(max_events=max_events)
        self._check_finished()
        if self.sanitizer is not None:
            self.sanitizer.check_quiescent()
        return self._collect_result()

    def _check_finished(self) -> None:
        unfinished = [t.pid for t in self.threads if not t.done]
        if unfinished:
            raise RuntimeError(
                f"threads {unfinished} never finished (deadlock or missing barrier)"
            )

    def _replay_active(self) -> bool:
        """Whether this phased run may record and replay phases.

        Fault injection and the reliable transport consume absolute
        per-link counters a time-translated replay cannot reproduce, and
        the analysis checkers observe the very messages replay elides, so
        any of them forces full execution.  (Engines additionally opt in
        per-protocol via ``Protocol.phase_state``.)
        """
        return (
            self.replay
            and self.machine.transport is None
            and self.machine.faults is None
            and self.sanitizer is None
            and self.race_detector is None
        )

    def _start_phase(self, index: int) -> None:
        """Hand every thread a fresh generator and schedule its resume."""
        self.envs = []
        for t in self.threads:
            t.done = False
            env = Env(self, t)
            t.gen = self._phase_factory(env, index)
            self.envs.append(env)
            self.sim.schedule_at(t.time, self._resume, t, None)

    def _run_phased(self, max_events: int | None) -> RunResult:
        recorder = None
        if self._replay_active():
            # Lazy import: the store lives with the other persistent
            # caches in repro.bench (which imports repro.runtime at
            # module level — this direction must stay deferred).
            from repro.bench.cache import resolve_replay_store
            from repro.runtime.replay import PhaseRecorder

            recorder = PhaseRecorder(
                self, store=resolve_replay_store(self.replay_store)
            )
        self.phase_recorder = recorder
        for index in range(self._phase_count):
            base = min(t.time for t in self.threads)
            # Phase boundaries are quiescent; rewind the clock to the
            # earliest thread so schedule_at accepts every resume.
            self.sim.reset_quiescent(base)
            digest = None
            pre_snapshot = pre_events = None
            if recorder is not None:
                digested = recorder.state_digest(self._phase_keys[index])
                if digested is not None:
                    digest = digested[0]
                    rec = recorder.lookup(digest)
                    if rec is not None:
                        recorder.apply(rec)
                        continue
                    pre_snapshot = recorder.cells.snapshot()
                    pre_events = self.sim.events_processed
            self._start_phase(index)
            self.sim.run(max_events=max_events)
            self._check_finished()
            if digest is not None:
                # Replay is sound only for state-idempotent phases: the
                # execution must have returned the machine to its entry
                # digest (clocks aside), so applying the delta later
                # needs no state restoration at all.
                post = recorder.state_digest(self._phase_keys[index])
                if post is not None and post[0] == digest:
                    recorder.record(
                        digest,
                        pre_snapshot,
                        base,
                        self.sim.events_processed - pre_events,
                    )
        if self.sanitizer is not None:
            self.sanitizer.check_quiescent()
        return self._collect_result()

    def _collect_result(self) -> RunResult:
        total = max(t.finish_time for t in self.threads)
        lock_stats = LockStats()
        for lk in self.locks:
            lock_stats.acquires += lk.stats.acquires
            lock_stats.hits += lk.stats.hits
            lock_stats.token_transfers += lk.stats.token_transfers
        recorder = self.phase_recorder
        return RunResult(
            config=self.config,
            total_time=total,
            threads=self.threads,
            lock_stats=lock_stats,
            protocol_stats=self.protocol.stats.as_dict(),
            messages_inter_ssmp=self.machine.stats.inter_ssmp,
            messages_intra_ssmp=self.machine.stats.intra_ssmp,
            cache_stats={k.value: v for k, v in self.cache.stats.items()},
            network_stats=self.machine.network_summary(),
            message_flows=self.protocol.bus.flow_summary(),
            transactions=self.protocol.bus.transaction_summary(),
            replay_cache=(
                recorder.cache_summary() if recorder is not None else {}
            ),
        )

    # ------------------------------------------------------------------
    # the driver
    # ------------------------------------------------------------------

    def _absorb_stolen(self, t: ThreadContext) -> None:
        """Handler cycles executed on this processor while the thread ran
        push the thread's clock forward; they are MGS protocol time."""
        stolen = self.machine.take_stolen(t.pid)
        if stolen:
            t.charge_mgs(stolen)

    def _discard_stolen(self, t: ThreadContext) -> None:
        """While the thread was blocked, its processor was idle anyway;
        handler cycles do not additionally delay it."""
        self.machine.take_stolen(t.pid)

    def _resume(self, t: ThreadContext, value=None) -> None:
        self._absorb_stolen(t)
        try:
            req = t.gen.send(value)
        except StopIteration:
            t.done = True
            t.finish_time = t.time
            return
        op = req[0]
        if op == "pause":
            t.last_yield = t.time
            self.sim.schedule_at(t.time, self._resume, t, None)
        elif op == "fault":
            self._handle_fault(t, req[1], req[2])
        elif op == "lock":
            self._handle_lock(t, req[1])
        elif op == "unlock":
            self._handle_unlock(t, req[1])
        elif op == "barrier":
            self._handle_barrier(t)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown thread request {req!r}")

    def _wake(self, t: ThreadContext, bucket: str) -> None:
        now = self.sim.now
        elapsed = now - t.block_start
        t.time = now
        setattr(t, bucket, getattr(t, bucket) + elapsed)
        self._discard_stolen(t)
        t.last_yield = now
        self._resume(t, None)

    def _wake_acquire(self, t: ThreadContext, bucket: str) -> None:
        """Wake after a lock grant / barrier departure, running the
        engine's acquire-side coherence first when it has any.

        Engines that piggyback coherence on synchronization (gcs) do
        their invalidation work here; the wait so far lands in the sync
        bucket and the coherence work in the mgs bucket.  For engines
        without acquire work this is exactly :meth:`_wake`.
        """
        if not self.protocol.needs_acquire:
            self._wake(t, bucket)
            return
        now = self.sim.now
        setattr(t, bucket, getattr(t, bucket) + now - t.block_start)
        t.time = now
        t.block_start = now
        self.protocol.acquire(t.pid, lambda: self._wake(t, "mgs"))

    def _handle_fault(self, t: ThreadContext, vpn: int, want_write: bool) -> None:
        t.block_start = t.time
        self.sim.schedule_at(
            t.time,
            self.protocol.fault,
            t.pid,
            vpn,
            want_write,
            lambda: self._wake(t, "mgs"),
        )

    def _handle_lock(self, t: ThreadContext, lk: MGSLock) -> None:
        t.block_start = t.time
        detector = self.race_detector
        if detector is None:
            wake = lambda: self._wake_acquire(t, "lock")  # noqa: E731
        else:
            # Happens-before: join the lock's clock at acquisition time.
            def wake() -> None:
                detector.on_acquire(t.pid, lk.lock_id)
                self._wake_acquire(t, "lock")

        self.sim.schedule_at(t.time, lk.acquire, t.pid, wake)

    def _handle_unlock(self, t: ThreadContext, lk: MGSLock) -> None:
        t.block_start = t.time
        if self.race_detector is not None:
            # Happens-before: publish the thread's clock through the
            # lock at the release point (before the DUQ flush; the
            # thread performs no accesses in between).
            self.race_detector.on_release(t.pid, lk.lock_id)
        if self.protocol.hw_bypass:
            self.sim.schedule_at(
                t.time, lk.release, t.pid, lambda: self._wake(t, "lock")
            )
            return

        # Release consistency: flush the DUQ, then free the lock.  The
        # flush is software coherence (MGS bucket); waiters meanwhile
        # accumulate lock time — critical-section dilation, emerging.
        def after_flush() -> None:
            now = self.sim.now
            t.mgs += now - t.block_start
            t.time = now
            t.block_start = now
            lk.release(t.pid, lambda: self._wake(t, "lock"))

        self.sim.schedule_at(t.time, self.protocol.release, t.pid, after_flush)

    def _handle_barrier(self, t: ThreadContext) -> None:
        t.block_start = t.time
        detector = self.race_detector
        if detector is None:
            wake = lambda: self._wake_acquire(t, "barrier")  # noqa: E731
        else:
            # Happens-before: a barrier is a release by all arrivals
            # followed by an acquire by all departures.
            detector.on_barrier_arrive(t.pid)

            def wake() -> None:
                detector.on_barrier_depart(t.pid)
                self._wake_acquire(t, "barrier")

        if self.protocol.hw_bypass:
            self.sim.schedule_at(t.time, self.barrier_obj.arrive, t.pid, wake)
            return

        def after_flush() -> None:
            now = self.sim.now
            t.mgs += now - t.block_start
            t.time = now
            t.block_start = now
            self.barrier_obj.arrive(t.pid, wake)

        self.sim.schedule_at(t.time, self.protocol.release, t.pid, after_flush)
