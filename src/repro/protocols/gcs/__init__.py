"""Synchronization-piggybacked lazy release consistency (``gcs``)."""

from repro.protocols.gcs.protocol import GCSProtocol, REQUIRED_LABELS

__all__ = ["GCSProtocol", "REQUIRED_LABELS"]
