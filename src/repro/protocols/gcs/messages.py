"""Typed messages of the synchronization-piggybacked lazy-RC engine.

Fetches (``G_RREQ``/``G_WREQ`` answered by versioned grants), the lazy
release-consistency diff pair (``G_DIFF``/``G_RACK``), and the
acquire-side refresh pair (``G_AREQ``/``G_ADATA``).  There are no
invalidation rounds: staleness is detected against page versions at
acquire points instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar

import numpy as np

from repro.core.messages import DIFF_ENTRY_BYTES, ProtocolMessage

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.params import MachineConfig

__all__ = [
    "GRreq",
    "GWreq",
    "GData",
    "GWdata",
    "GDiff",
    "GRack",
    "GAreq",
    "GAdata",
]


@dataclass(frozen=True, eq=False)
class GRreq(ProtocolMessage):
    """Cluster -> home: fetch a read copy."""

    label: ClassVar[str] = "G_RREQ"

    @property
    def want_write(self) -> bool:
        return False


@dataclass(frozen=True, eq=False)
class GWreq(ProtocolMessage):
    """Cluster -> home: fetch a writable copy (no exclusivity implied)."""

    label: ClassVar[str] = "G_WREQ"

    @property
    def want_write(self) -> bool:
        return True


@dataclass(frozen=True, eq=False)
class GData(ProtocolMessage):
    """Home -> cluster: read copy, stamped with the home's version."""

    label: ClassVar[str] = "G_DATA"

    version: int = 0
    data: np.ndarray = None  # type: ignore[assignment]

    @property
    def write_grant(self) -> bool:
        return False

    def wire_bytes(self, config: "MachineConfig") -> int:
        return config.control_msg_bytes + config.page_size


@dataclass(frozen=True, eq=False)
class GWdata(ProtocolMessage):
    """Home -> cluster: writable copy (the client twins it on arrival)."""

    label: ClassVar[str] = "G_WDATA"

    version: int = 0
    data: np.ndarray = None  # type: ignore[assignment]

    @property
    def write_grant(self) -> bool:
        return True

    def wire_bytes(self, config: "MachineConfig") -> int:
        return config.control_msg_bytes + config.page_size


@dataclass(frozen=True, eq=False)
class GDiff(ProtocolMessage):
    """Releaser -> home: one dirty page's diff; bumps the home version."""

    label: ClassVar[str] = "G_DIFF"

    indices: np.ndarray = None  # type: ignore[assignment]
    values: np.ndarray = None  # type: ignore[assignment]

    def wire_bytes(self, config: "MachineConfig") -> int:
        n = 0 if self.indices is None else len(self.indices)
        return config.control_msg_bytes + DIFF_ENTRY_BYTES * n


@dataclass(frozen=True, eq=False)
class GRack(ProtocolMessage):
    """Home -> releaser: diff applied; carries the new page version."""

    label: ClassVar[str] = "G_RACK"

    version: int = 0


@dataclass(frozen=True, eq=False)
class GAreq(ProtocolMessage):
    """Acquirer -> home: refresh a written page found stale at acquire."""

    label: ClassVar[str] = "G_AREQ"


@dataclass(frozen=True, eq=False)
class GAdata(ProtocolMessage):
    """Home -> acquirer: fresh base for an acquire-time refresh."""

    label: ClassVar[str] = "G_ADATA"

    version: int = 0
    data: np.ndarray = None  # type: ignore[assignment]

    def wire_bytes(self, config: "MachineConfig") -> int:
        return config.control_msg_bytes + config.page_size
