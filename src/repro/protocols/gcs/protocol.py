"""Synchronization-piggybacked lazy-RC coherence (``protocol = "gcs"``).

A lazy release-consistency engine in the spirit of TreadMarks/Soul,
restated at cluster grain: coherence work rides on synchronization
operations instead of on faults.

* **Fetch.**  The home always grants immediately — there are no
  directories of copies to collect and no invalidation rounds.  Grants
  are stamped with the page's *version* (the count of diffs merged at
  the home); the cluster remembers it as ``fversion``.
* **Release.**  The releaser diffs each written page against its twin,
  sends the diff home (``G_DIFF``), and write-protects the page again
  (twin dropped, TLB write mappings downgraded).  Each merged diff bumps
  the home version.  ``release`` completes only when the last diff is
  acknowledged, so versions observed after a release are current.
* **Acquire** (:attr:`needs_acquire` — the runtime calls this at lock
  acquisition and barrier departure).  The acquirer compares each
  replicated page's ``fversion`` against the home version — modelling
  the write-notices that travel piggybacked on the synchronization
  grant, so the comparison itself is free.  Stale read copies are
  dropped on the spot; stale written copies are *refreshed*
  (``G_AREQ``/``G_ADATA``): the fresh base is fetched and the cluster's
  own unflushed writes are re-applied over it, Munin multiple-writer
  style.

With no exclusivity anywhere, concurrent writers to one page are legal;
word-grain diffs keep them from clobbering each other as long as the
application is data-race-free.
"""

from __future__ import annotations

from typing import Callable

from repro.core.bus import handles
from repro.core.engine import Protocol, register_engine
from repro.core.page import (
    FrameState,
    PageFrame,
    Waiter,
    apply_diff,
    make_diff,
)
from repro.hw import CacheSystem
from repro.machine import Machine
from repro.params import CostModel, MachineConfig
from repro.protocols.gcs.messages import (
    GAdata,
    GAreq,
    GData,
    GDiff,
    GRack,
    GRreq,
    GWdata,
    GWreq,
)
from repro.sim import Simulator
from repro.svm import AddressSpace, MapMode

__all__ = ["GCSProtocol", "REQUIRED_LABELS"]

#: every bus label this engine registers a handler for; checked
#: statically by ``repro.analysis.lint`` against the ``@handles`` marks.
REQUIRED_LABELS = (
    "G_RREQ",
    "G_WREQ",
    "G_DATA",
    "G_WDATA",
    "G_DIFF",
    "G_RACK",
    "G_AREQ",
    "G_ADATA",
)


@register_engine
class GCSProtocol(Protocol):
    """Lazy release consistency with acquire-time version checks."""

    name = "gcs"
    needs_acquire = True

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        aspace: AddressSpace,
        cache: CacheSystem,
        config: MachineConfig,
        costs: CostModel,
    ) -> None:
        super().__init__(sim, machine, aspace, cache, config, costs)
        self.frames: list[dict[int, PageFrame]] = [
            {} for _ in range(config.num_clusters)
        ]
        #: per-processor FIFO of written pages awaiting a release flush.
        #: Per processor, not per cluster: a release flushes only the
        #: releaser's own writes (TreadMarks semantics), so one thread's
        #: synchronization traffic never write-protects pages a sibling
        #: thread on the same cluster is actively writing.
        self.dirty: list[dict[int, None]] = [
            {} for _ in range(config.total_processors)
        ]
        #: home-side diff count per page (version 0 = initial contents)
        self.versions: dict[int, int] = {}
        #: per-cluster version each replica was last made current at
        self.fversions: list[dict[int, int]] = [
            {} for _ in range(config.num_clusters)
        ]
        #: (cluster, vpn) -> completion callbacks of acquires waiting on
        #: an in-flight refresh of that page
        self._refreshing: dict[tuple[int, int], list[Callable[[], None]]] = {}
        #: pid -> (on_done, txn) of the release drain awaiting a G_RACK
        self._drain: dict[int, tuple[Callable[[], None], int]] = {}
        self.bus.register(self)
        self.check_bus()

    # ------------------------------------------------------------------
    # engine surface
    # ------------------------------------------------------------------

    def bus_handlers(self) -> frozenset[str]:
        return frozenset(REQUIRED_LABELS)

    def arc_rules(self, sanitizer):
        from repro.protocols.gcs.arcs import GCSArcRules

        return GCSArcRules(sanitizer)

    def phase_state(self):
        # Versions are monotone (the home bumps one per applied diff);
        # behavior only ever compares a replica's fversion against the
        # home version, so the digest encodes the *staleness gap* per
        # (cluster, page).  A phase that bumps versions but restores all
        # gaps is still state-idempotent — and replay, which advances
        # neither dict, leaves every future comparison unchanged.
        gaps = []
        for fv in self.fversions:
            vpns = sorted(set(self.versions) | set(fv))
            gaps.append(
                tuple(
                    (vpn, self.versions.get(vpn, 0) - fv.get(vpn, 0))
                    for vpn in vpns
                )
            )
        return (
            self._phase_frames_state(self.frames),
            self._phase_homes_state(),
            tuple(tuple(d) for d in self.dirty),
            tuple(gaps),
            tuple(sorted((k, len(v)) for k, v in self._refreshing.items())),
            tuple(sorted(self._drain)),
        )

    def page_view(self, vpn: int):
        """Coherent contents: the home copy plus any unflushed diffs.

        Clusters may still hold written pages whose diffs have not been
        released home (e.g. writes after the last synchronization).  For
        validation snapshots, merge those outstanding word-grain diffs
        over the home copy, exactly as the next release would.
        """
        view = self.home(vpn).data
        merged = None
        for frames in self.frames:
            frame = frames.get(vpn)
            if (
                frame is None
                or frame.state is not FrameState.WRITE
                or frame.twin is None
            ):
                continue
            indices, values = make_diff(frame.data, frame.twin)
            if len(indices) == 0:
                continue
            if merged is None:
                merged = view.copy()
            apply_diff(merged, indices, values)
        return view if merged is None else merged

    # ------------------------------------------------------------------
    # fault handling (cluster side)
    # ------------------------------------------------------------------

    def fault(
        self, pid: int, vpn: int, want_write: bool, on_done: Callable[[], None]
    ) -> None:
        txn = self.bus.begin(
            "fault", pid, vpn, note="write" if want_write else "read"
        )

        def done() -> None:
            self.bus.end(txn)
            on_done()

        self.stats.record("faults")
        self.record_page(vpn, "faults")
        self.sim.schedule(
            self.costs.fault_overhead, self._service, pid, vpn, want_write,
            done, txn,
        )

    def _service(
        self,
        pid: int,
        vpn: int,
        want_write: bool,
        on_done: Callable[[], None],
        txn: int,
    ) -> None:
        cluster = self.config.cluster_of(pid)
        frame = self.frames[cluster].get(vpn)

        if frame is not None and frame.lock_held:
            frame.waiters.append(Waiter(pid, want_write, on_done, txn))
            self.stats.record("fault_lock_waits")
            return

        if frame is not None and frame.state is FrameState.WRITE:
            self._fill(frame, pid, want_write, on_done)
            return

        if frame is not None and frame.state is FrameState.READ:
            if not want_write:
                self._fill(frame, pid, False, on_done)
                return
            # Local upgrade: twin the page and write freely — the home
            # learns about the writes at the next release.
            frame.twin = frame.data.copy()
            frame.state = FrameState.WRITE
            self.dirty[pid][vpn] = None
            self.stats.record("upgrades")
            self.tlbs[pid].fill(vpn, MapMode.WRITE)
            frame.tlb_dir.add(pid)
            self.sim.schedule(
                self.costs.make_twin(self.words_per_page)
                + self.costs.map_fill,
                on_done,
            )
            return

        # Fetch from the home.
        if frame is None:
            frame = PageFrame(vpn=vpn, cluster=cluster, owner_pid=pid)
            self.frames[cluster][vpn] = frame
        frame.owner_pid = pid
        frame.state = FrameState.BUSY
        frame.lock_held = True
        frame.waiters.append(Waiter(pid, want_write, on_done, txn))
        home = self.home(vpn)
        home_cluster = self.config.cluster_of(home.home_pid)
        send_cost = (
            self.costs.msg_intra_ssmp
            if cluster == home_cluster
            else self.costs.msg_inter_ssmp
        )
        request = GWreq if want_write else GRreq
        self.stats.record("write_requests" if want_write else "read_requests")
        self.bus.send(
            request(
                vpn=vpn,
                src_pid=pid,
                src_cluster=cluster,
                dst_pid=home.home_pid,
                dst_cluster=home_cluster,
                txn=txn,
            ),
            at=self.sim.now + send_cost,
        )

    def _fill(
        self,
        frame: PageFrame,
        pid: int,
        want_write: bool,
        on_done: Callable[[], None],
    ) -> None:
        mode = MapMode.WRITE if want_write else MapMode.READ
        self.tlbs[pid].fill(frame.vpn, mode)
        frame.tlb_dir.add(pid)
        if want_write:
            self.dirty[pid][frame.vpn] = None
        self.stats.record("tlb_fill_local")
        self.sim.schedule(self.costs.map_fill, on_done)

    # ------------------------------------------------------------------
    # fetch service (home side) — always grants, no rounds
    # ------------------------------------------------------------------

    @handles("G_RREQ", "G_WREQ")
    def on_request(self, msg: GRreq | GWreq) -> None:
        costs = self.costs
        vpn = msg.vpn
        home = self.home(vpn)
        home_cluster = self.config.cluster_of(home.home_pid)
        lines = self.config.lines_per_page
        work = self.dispatch_cost(msg.src_cluster, vpn) + costs.server_read
        if msg.want_write:
            work += costs.server_write_extra
        work += costs.msg_send
        if msg.src_cluster != home_cluster:
            self.cache.flush_page(
                home_cluster, self.page_first_line(vpn), lines
            )
            work += costs.clean_page(lines) + costs.dma_page(lines)
            self.stats.record("pages_transferred")
            self.record_page(vpn, "transfers")
        else:
            work += costs.dma_page(lines)
        grant = GWdata if msg.want_write else GData
        completion = self.machine.occupy(home.home_pid, work)
        self.bus.send(
            grant(
                vpn=vpn,
                src_pid=home.home_pid,
                src_cluster=home_cluster,
                dst_pid=msg.src_pid,
                dst_cluster=msg.src_cluster,
                txn=msg.txn,
                version=self.versions.get(vpn, 0),
                data=home.data.copy(),
            ),
            at=completion,
        )

    @handles("G_DATA", "G_WDATA")
    def on_grant(self, msg: GData | GWdata) -> None:
        cluster, vpn = msg.dst_cluster, msg.vpn
        frame = self.frames[cluster][vpn]
        assert frame.lock_held and frame.state is FrameState.BUSY, (
            f"grant for vpn {vpn} at cluster {cluster} with no fetch open"
        )
        frame.data = msg.data
        work = self.dispatch_cost(cluster, vpn)
        if msg.write_grant:
            frame.twin = msg.data.copy()
            frame.state = FrameState.WRITE
            self.dirty[msg.dst_pid][vpn] = None
            work += self.costs.make_twin(self.words_per_page)
        else:
            frame.state = FrameState.READ
        self.fversions[cluster][vpn] = msg.version
        completion = self.machine.occupy(msg.dst_pid, work)
        self.sim.schedule_at(completion, self._unlock, frame)

    def _unlock(self, frame: PageFrame) -> None:
        frame.lock_held = False
        waiters = frame.waiters
        frame.waiters = []
        for waiter in waiters:
            if frame.lock_held:
                frame.waiters.append(waiter)
            else:
                self._service(
                    waiter.pid, frame.vpn, waiter.want_write, waiter.on_done,
                    waiter.txn,
                )

    # ------------------------------------------------------------------
    # release: diff every written page home, then write-protect it
    # ------------------------------------------------------------------

    def release(self, pid: int, on_done: Callable[[], None]) -> None:
        txn = self.bus.begin("release", pid)

        def done() -> None:
            self.bus.end(txn)
            on_done()

        self._release_next(pid, done, txn)

    def _release_next(
        self, pid: int, on_done: Callable[[], None], txn: int
    ) -> None:
        costs = self.costs
        cluster = self.config.cluster_of(pid)
        pending = self.dirty[pid]
        if not pending:
            self.sim.schedule(costs.release_resume, on_done)
            return
        vpn = next(iter(pending))
        del pending[vpn]
        frame = self.frames[cluster].get(vpn)
        if frame is None or frame.state is not FrameState.WRITE:
            # Already flushed and write-protected by a concurrent release
            # from another processor of this cluster.
            self.sim.schedule(
                costs.release_entry, self._release_next, pid, on_done, txn
            )
            return
        if frame.lock_held:
            # An acquire-time refresh of this page is in flight; revisit
            # once it lands (refreshes are bounded, so this terminates).
            pending[vpn] = None
            self.sim.schedule(
                costs.release_entry, self._release_next, pid, on_done, txn
            )
            return

        # Snapshot and write-protect atomically: diff against the twin,
        # drop the twin, downgrade every write mapping.  Writes landing
        # after this instant fault, twin anew, and re-enter the FIFO.
        indices, values = make_diff(frame.data, frame.twin)
        work = costs.release_entry + costs.make_diff(self.words_per_page)
        shootdowns = 0
        for mapped_pid in sorted(frame.tlb_dir):
            tlb = self.tlbs[mapped_pid]
            if tlb.has_write(vpn):
                tlb.invalidate(vpn)
                tlb.fill(vpn, MapMode.READ)
                shootdowns += 1
        work += costs.msg_intra_ssmp * shootdowns
        frame.twin = None
        frame.state = FrameState.READ
        if len(indices) == 0:
            self.stats.record("empty_diffs")
            self.sim.schedule(work, self._release_next, pid, on_done, txn)
            return
        self.stats.record("diffs_sent")
        self.record_page(vpn, "diffs")
        self._drain[pid] = (on_done, txn)
        home = self.home(vpn)
        home_cluster = self.config.cluster_of(home.home_pid)
        send_cost = (
            self.costs.msg_intra_ssmp
            if cluster == home_cluster
            else self.costs.msg_inter_ssmp
        )
        self.bus.send(
            GDiff(
                vpn=vpn,
                src_pid=pid,
                src_cluster=cluster,
                dst_pid=home.home_pid,
                dst_cluster=home_cluster,
                txn=txn,
                indices=indices,
                values=values,
            ),
            at=self.sim.now + work + costs.msg_send + send_cost,
        )

    @handles("G_DIFF")
    def on_diff(self, msg: GDiff) -> None:
        costs = self.costs
        vpn = msg.vpn
        home = self.home(vpn)
        apply_diff(home.data, msg.indices, msg.values)
        version = self.versions.get(vpn, 0) + 1
        self.versions[vpn] = version
        work = (
            self.dispatch_cost(msg.src_cluster, vpn)
            + costs.apply_fixed
            + costs.apply_words(len(msg.indices))
            + costs.msg_send
        )
        completion = self.machine.occupy(home.home_pid, work)
        self.bus.send(
            GRack(
                vpn=vpn,
                src_pid=home.home_pid,
                src_cluster=self.config.cluster_of(home.home_pid),
                dst_pid=msg.src_pid,
                dst_cluster=msg.src_cluster,
                txn=msg.txn,
                version=version,
            ),
            at=completion,
        )

    @handles("G_RACK")
    def on_rack(self, msg: GRack) -> None:
        cluster, vpn = msg.dst_cluster, msg.vpn
        # The replica is current at the new version only if it was
        # current at the previous one — an interleaved diff from another
        # cluster means our copy misses words and stays stale.
        fv = self.fversions[cluster]
        if fv.get(vpn, 0) == msg.version - 1:
            fv[vpn] = msg.version
        completion = self.machine.occupy(
            msg.dst_pid, self.dispatch_cost(cluster, vpn)
        )
        on_done, txn = self._drain.pop(msg.dst_pid)
        self.sim.schedule_at(
            completion, self._release_next, msg.dst_pid, on_done, txn
        )

    # ------------------------------------------------------------------
    # acquire: version check, drop stale reads, refresh stale writes
    # ------------------------------------------------------------------

    def acquire(self, pid: int, on_done: Callable[[], None]) -> None:
        txn = self.bus.begin("acquire", pid)
        cluster = self.config.cluster_of(pid)
        fv = self.fversions[cluster]
        pending = {"n": 0}

        def finish() -> None:
            self.bus.end(txn)
            on_done()

        def dec() -> None:
            pending["n"] -= 1
            if pending["n"] == 0:
                finish()

        for vpn in sorted(self.frames[cluster]):
            frame = self.frames[cluster][vpn]
            if not frame.mapped:
                continue
            if fv.get(vpn, 0) >= self.versions.get(vpn, 0):
                continue
            if frame.state is FrameState.READ:
                # The write-notice piggybacked on the synchronization
                # grant names this page: drop the stale copy.  Modelled
                # cost-free — the notice rode a message already paid for.
                for mapped_pid in sorted(frame.tlb_dir):
                    self.tlbs[mapped_pid].invalidate(vpn)
                frame.tlb_dir.clear()
                frame.state = FrameState.INVALID
                frame.data = None
                fv.pop(vpn, None)
                self.stats.record("acquire_drops")
                continue
            # Stale page with unflushed local writes: refresh the base
            # and re-apply our diff over it.
            self.stats.record("acquire_refreshes")
            pending["n"] += 1
            key = (cluster, vpn)
            waiting = self._refreshing.get(key)
            if waiting is not None:
                waiting.append(dec)
                continue
            self._refreshing[key] = [dec]
            frame.lock_held = True
            home = self.home(vpn)
            home_cluster = self.config.cluster_of(home.home_pid)
            send_cost = (
                self.costs.msg_intra_ssmp
                if cluster == home_cluster
                else self.costs.msg_inter_ssmp
            )
            self.bus.send(
                GAreq(
                    vpn=vpn,
                    src_pid=pid,
                    src_cluster=cluster,
                    dst_pid=home.home_pid,
                    dst_cluster=home_cluster,
                    txn=txn,
                ),
                at=self.sim.now + send_cost,
            )
        if pending["n"] == 0:
            finish()

    @handles("G_AREQ")
    def on_areq(self, msg: GAreq) -> None:
        costs = self.costs
        vpn = msg.vpn
        home = self.home(vpn)
        home_cluster = self.config.cluster_of(home.home_pid)
        lines = self.config.lines_per_page
        work = (
            self.dispatch_cost(msg.src_cluster, vpn)
            + costs.server_read
            + costs.msg_send
        )
        if msg.src_cluster != home_cluster:
            self.cache.flush_page(
                home_cluster, self.page_first_line(vpn), lines
            )
            work += costs.clean_page(lines) + costs.dma_page(lines)
            self.stats.record("pages_transferred")
            self.record_page(vpn, "transfers")
        else:
            work += costs.dma_page(lines)
        completion = self.machine.occupy(home.home_pid, work)
        self.bus.send(
            GAdata(
                vpn=vpn,
                src_pid=home.home_pid,
                src_cluster=home_cluster,
                dst_pid=msg.src_pid,
                dst_cluster=msg.src_cluster,
                txn=msg.txn,
                version=self.versions.get(vpn, 0),
                data=home.data.copy(),
            ),
            at=completion,
        )

    @handles("G_ADATA")
    def on_adata(self, msg: GAdata) -> None:
        costs = self.costs
        cluster, vpn = msg.dst_cluster, msg.vpn
        frame = self.frames[cluster][vpn]
        assert frame.lock_held and frame.state is FrameState.WRITE, (
            f"G_ADATA for vpn {vpn} at cluster {cluster} with no refresh "
            "in flight"
        )
        base = msg.data
        indices, values = make_diff(frame.data, frame.twin)
        fresh = base.copy()
        apply_diff(fresh, indices, values)
        frame.data = fresh
        frame.twin = base
        self.fversions[cluster][vpn] = msg.version
        words = self.words_per_page
        work = (
            self.dispatch_cost(cluster, vpn)
            + costs.make_diff(words)
            + costs.apply_fixed
            + costs.apply_words(words)
            + costs.make_twin(words)
        )
        completion = self.machine.occupy(msg.dst_pid, work)
        self.sim.schedule_at(completion, self._refresh_done, frame)

    def _refresh_done(self, frame: PageFrame) -> None:
        frame.lock_held = False
        callbacks = self._refreshing.pop((frame.cluster, frame.vpn), [])
        self._unlock(frame)
        for callback in callbacks:
            callback()

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        if self.hw_bypass:
            return
        for cluster, frames in enumerate(self.frames):
            for vpn, frame in frames.items():
                if frame.state is FrameState.WRITE:
                    assert frame.twin is not None, (
                        f"WRITE frame for vpn {vpn} at cluster {cluster} "
                        "has no twin"
                    )
                    assert any(
                        vpn in self.dirty[pid]
                        for pid in range(self.config.total_processors)
                        if self.config.cluster_of(pid) == cluster
                    ), (
                        f"WRITE frame for vpn {vpn} at cluster {cluster} "
                        "missing from every release FIFO of the cluster"
                    )
        for pid, tlb in enumerate(self.tlbs):
            cluster = self.config.cluster_of(pid)
            for vpn in tlb.mapped_vpns():
                frame = self.frames[cluster].get(vpn)
                assert frame is not None and frame.mapped, (
                    f"TLB of proc {pid} maps vpn {vpn} without a frame"
                )
                if tlb.has_write(vpn):
                    assert frame.state is FrameState.WRITE
