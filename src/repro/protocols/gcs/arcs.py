"""Invariant-sanitizer rules for the lazy-RC (gcs) engine."""

from __future__ import annotations

from repro.core.engine import ArcRules
from repro.core.page import FrameState

__all__ = ["GCSArcRules"]


class GCSArcRules(ArcRules):
    """Legal-arc catalogue for ``protocols/gcs``."""

    def __init__(self, sanitizer) -> None:
        super().__init__(sanitizer)
        self.config = sanitizer.config

    def on_message(self, msg) -> None:
        check = self._CHECKS.get(msg.label)
        if check is not None:
            check(self, msg)

    def _fail(self, rule: str, detail: str, msg) -> None:
        self.s.fail(rule, detail, vpn=msg.vpn, txn=msg.txn)

    # ------------------------------------------------------------------
    # per-message pre-state checks
    # ------------------------------------------------------------------

    def _check_request(self, msg) -> None:
        frame = self.protocol.frames[msg.src_cluster].get(msg.vpn)
        if frame is None or frame.state is not FrameState.BUSY:
            state = "absent" if frame is None else frame.state.value
            self._fail(
                "gcs-request",
                f"{msg.label} from cluster {msg.src_cluster} but its "
                f"frame is {state} (no fetch outstanding)",
                msg,
            )

    def _check_diff(self, msg) -> None:
        # Diffs travel only inside a release drain; the drain entry is
        # registered before the diff is posted and cleared by the G_RACK
        # that answers it.
        if msg.src_pid not in self.protocol._drain:
            self._fail(
                "gcs-diff",
                f"G_DIFF from proc {msg.src_pid} which has no release "
                "drain awaiting an acknowledgement",
                msg,
            )
        elif msg.indices is None or len(msg.indices) == 0:
            self._fail(
                "gcs-diff",
                f"empty G_DIFF for vpn {msg.vpn} (empty diffs are "
                "resolved locally, never posted)",
                msg,
            )

    def _check_areq(self, msg) -> None:
        if (msg.src_cluster, msg.vpn) not in self.protocol._refreshing:
            self._fail(
                "gcs-areq",
                f"G_AREQ for vpn {msg.vpn} from cluster {msg.src_cluster} "
                "with no acquire waiting on the refresh",
                msg,
            )

    def _check_grant(self, msg) -> None:
        frame = self.protocol.frames[msg.dst_cluster].get(msg.vpn)
        if frame is None or not frame.lock_held:
            self._fail(
                "gcs-grant",
                f"{msg.label} for vpn {msg.vpn} at cluster "
                f"{msg.dst_cluster} with no fetch outstanding",
                msg,
            )
        elif frame.state is not FrameState.BUSY:
            self._fail(
                "gcs-grant",
                f"{msg.label} for vpn {msg.vpn} but cluster "
                f"{msg.dst_cluster} is {frame.state.value}, not fetching",
                msg,
            )

    def _check_adata(self, msg) -> None:
        p = self.protocol
        frame = p.frames[msg.dst_cluster].get(msg.vpn)
        if frame is None or not frame.lock_held:
            self._fail(
                "gcs-refresh",
                f"G_ADATA for vpn {msg.vpn} at cluster {msg.dst_cluster} "
                "with no refresh outstanding",
                msg,
            )
            return
        if frame.state is not FrameState.WRITE or frame.twin is None:
            state = frame.state.value
            self._fail(
                "gcs-refresh",
                f"G_ADATA for vpn {msg.vpn} but cluster {msg.dst_cluster} "
                f"is {state} (twin "
                f"{'present' if frame.twin is not None else 'absent'}); "
                "refreshes only target written pages",
                msg,
            )
        if (msg.dst_cluster, msg.vpn) not in p._refreshing:
            self._fail(
                "gcs-refresh",
                f"G_ADATA for vpn {msg.vpn} at cluster {msg.dst_cluster} "
                "with no acquire waiting on the refresh",
                msg,
            )

    def _check_rack(self, msg) -> None:
        if msg.dst_pid not in self.protocol._drain:
            self._fail(
                "gcs-rack",
                f"G_RACK for vpn {msg.vpn} but proc {msg.dst_pid} has no "
                "release drain awaiting an acknowledgement",
                msg,
            )

    def _check_version(self, msg) -> None:
        # Grants and acks carry monotone versions; a cluster may never
        # believe it is *ahead* of the home.
        p = self.protocol
        fv = p.fversions[msg.dst_cluster].get(msg.vpn)
        if fv is not None and fv > p.versions.get(msg.vpn, 0):
            self._fail(
                "gcs-version",
                f"cluster {msg.dst_cluster} holds vpn {msg.vpn} at "
                f"fversion {fv} > home version "
                f"{p.versions.get(msg.vpn, 0)}",
                msg,
            )

    def _check_grant_and_version(self, msg) -> None:
        self._check_grant(msg)
        self._check_version(msg)

    _CHECKS = {
        "G_RREQ": _check_request,
        "G_WREQ": _check_request,
        "G_DATA": _check_grant_and_version,
        "G_WDATA": _check_grant_and_version,
        "G_DIFF": _check_diff,
        "G_AREQ": _check_areq,
        "G_ADATA": _check_adata,
        "G_RACK": _check_rack,
    }

    # ------------------------------------------------------------------
    # structural checks
    # ------------------------------------------------------------------

    def check_page(self, vpn: int) -> None:
        p = self.protocol
        for cluster in range(self.config.num_clusters):
            fv = p.fversions[cluster].get(vpn)
            if fv is not None and fv > p.versions.get(vpn, 0):
                self.s.fail(
                    "gcs-version",
                    f"cluster {cluster} holds vpn {vpn} at fversion {fv} "
                    f"> home version {p.versions.get(vpn, 0)}",
                    vpn=vpn,
                )

    def check_quiescent(self) -> None:
        p = self.protocol
        for cluster, frames in enumerate(p.frames):
            for vpn, frame in sorted(frames.items()):
                if frame.state is FrameState.BUSY or frame.lock_held:
                    self.s.fail(
                        "quiesce-gcs-busy",
                        f"cluster {cluster} still fetching or refreshing "
                        f"vpn {vpn} at quiescence",
                        vpn=vpn,
                    )
                if frame.state is FrameState.WRITE and frame.twin is None:
                    self.s.fail(
                        "quiesce-gcs-twin",
                        f"cluster {cluster} holds vpn {vpn} writable with "
                        "no twin at quiescence",
                        vpn=vpn,
                    )
        if p._refreshing:
            self.s.fail(
                "quiesce-gcs-refresh",
                "acquire refreshes still outstanding at quiescence: "
                f"{sorted(p._refreshing)}",
            )
        if p._drain:
            self.s.fail(
                "quiesce-gcs-drain",
                f"release drains still awaiting acks at quiescence: "
                f"procs {sorted(p._drain)}",
            )

    # ------------------------------------------------------------------
    # queue-aware whole-state rules (explorer only)
    # ------------------------------------------------------------------

    def check_state(self, inflight) -> None:
        """Open drains and refreshes must have their round-trip in flight."""
        super().check_state(inflight)
        p = self.protocol
        for pid in sorted(p._drain):
            if not any(
                m.label in ("G_DIFF", "G_RACK")
                and (m.src_pid == pid or m.dst_pid == pid)
                for m in inflight
            ):
                self.s.fail(
                    "gcs-drain-stuck",
                    f"proc {pid} awaits a release acknowledgement with no "
                    "G_DIFF or G_RACK in flight",
                )
        for cluster, vpn in sorted(p._refreshing):
            if not any(
                m.vpn == vpn
                and m.label in ("G_AREQ", "G_ADATA")
                and (m.src_cluster == cluster or m.dst_cluster == cluster)
                for m in inflight
            ):
                self.s.fail(
                    "gcs-refresh-stuck",
                    f"cluster {cluster} awaits a refresh of vpn {vpn} "
                    "with no G_AREQ or G_ADATA in flight",
                    vpn=vpn,
                )
