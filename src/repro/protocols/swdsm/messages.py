"""Typed messages of the single-grain software DSM engine.

The vocabulary is deliberately small — a fetch pair, an eager
release-round triple, and the acknowledgements — and every label is
prefixed ``S_`` so bus flow summaries never collide with Table 2 names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, ClassVar

import numpy as np

from repro.core.messages import DIFF_ENTRY_BYTES, ProtocolMessage

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.params import MachineConfig

__all__ = ["SRreq", "SWreq", "SData", "SDiff", "SInv", "SIack", "SRack"]


@dataclass(frozen=True, eq=False)
class SRreq(ProtocolMessage):
    """Node -> home: fetch a read copy."""

    label: ClassVar[str] = "S_RREQ"

    @property
    def want_write(self) -> bool:
        return False


@dataclass(frozen=True, eq=False)
class SWreq(ProtocolMessage):
    """Node -> home: fetch a write copy."""

    label: ClassVar[str] = "S_WREQ"

    @property
    def want_write(self) -> bool:
        return True


@dataclass(frozen=True, eq=False)
class SData(ProtocolMessage):
    """Home -> node: page data grant (read or write)."""

    label: ClassVar[str] = "S_DATA"

    write: bool = False
    data: np.ndarray = None  # type: ignore[assignment]

    def wire_bytes(self, config: "MachineConfig") -> int:
        return config.control_msg_bytes + config.page_size


@dataclass(frozen=True, eq=False)
class SDiff(ProtocolMessage):
    """Releaser -> home: one dirty page's diff (eager release).

    ``join`` marks a data-less release of a page whose writes already
    travelled home with an invalidation round that stole them; the home
    acknowledges once that round (or the current one) has completed.
    """

    label: ClassVar[str] = "S_DIFF"

    indices: np.ndarray = None  # type: ignore[assignment]
    values: np.ndarray = None  # type: ignore[assignment]
    join: bool = False
    on_done: Callable[[], None] = None  # type: ignore[assignment]

    def wire_bytes(self, config: "MachineConfig") -> int:
        n = 0 if self.indices is None else len(self.indices)
        return config.control_msg_bytes + DIFF_ENTRY_BYTES * n


@dataclass(frozen=True, eq=False)
class SInv(ProtocolMessage):
    """Home -> node: invalidate your copy (eager release round)."""

    label: ClassVar[str] = "S_INV"


@dataclass(frozen=True, eq=False)
class SIack(ProtocolMessage):
    """Node -> home: invalidation done; carries a diff when the dropped
    copy was a write copy with uncommitted changes."""

    label: ClassVar[str] = "S_IACK"

    indices: np.ndarray = None  # type: ignore[assignment]
    values: np.ndarray = None  # type: ignore[assignment]

    def wire_bytes(self, config: "MachineConfig") -> int:
        n = 0 if self.indices is None else len(self.indices)
        return config.control_msg_bytes + DIFF_ENTRY_BYTES * n


@dataclass(frozen=True, eq=False)
class SRack(ProtocolMessage):
    """Home -> releaser: release of one page acknowledged."""

    label: ClassVar[str] = "S_RACK"

    on_done: Callable[[], None] = None  # type: ignore[assignment]
