"""Single-grain software page DSM — the Figure 6 all-software baseline.

This engine deliberately ignores the machine's hardware line sharing:
every *processor* is its own DSM node with a private replica of each
page it touches, exactly the protocol MGS degenerates to when the SSMP
node size is one.  Three properties define it:

* **Per-processor replication.**  ``frames`` is indexed by pid, not by
  cluster, and no node ever aliases the home copy — even the home
  processor works on a private replica.  ``hw_bypass`` is always False:
  there is no configuration in which this engine lets hardware carry
  shared data.
* **Eager release consistency.**  A release pushes every dirty page's
  diff home and the home runs an invalidation round over *all* other
  replicas (read and write) before acknowledging.  A write copy caught
  by a round returns its own diff with the acknowledgement and its
  dirty-set entry is *stolen*; the owner's next release sends a
  data-less ``join`` so it cannot complete before the round that
  carried its writes has.  The releaser drops its own copy when the
  diff leaves — after a release the home is the only consistent copy.
* **Local write upgrades.**  A write fault on a resident read copy
  twins the page locally without a message; the home learns of the
  writer from the release diff.

Directory note: ``HomePage.read_dir``/``write_dir`` hold *pids* here
(the replication grain), where MGS stores cluster ids.
"""

from __future__ import annotations

from typing import Callable

from repro.core.bus import handles
from repro.core.engine import Protocol, register_engine
from repro.core.page import (
    FrameState,
    HomePage,
    PageFrame,
    ServerState,
    Waiter,
    apply_diff,
    make_diff,
)
from repro.hw import CacheSystem
from repro.machine import Machine
from repro.params import CostModel, MachineConfig
from repro.protocols.swdsm.messages import (
    SData,
    SDiff,
    SIack,
    SInv,
    SRack,
    SRreq,
    SWreq,
)
from repro.sim import Simulator
from repro.svm import AddressSpace, MapMode

__all__ = ["SWDSMProtocol", "REQUIRED_LABELS"]

#: every bus label this engine registers a handler for; checked
#: statically by ``repro.analysis.lint`` against the ``@handles`` marks.
REQUIRED_LABELS = (
    "S_RREQ",
    "S_WREQ",
    "S_DATA",
    "S_DIFF",
    "S_INV",
    "S_IACK",
    "S_RACK",
)


@register_engine
class SWDSMProtocol(Protocol):
    """All-software single-grain page DSM (one DSM node per processor)."""

    name = "swdsm"
    # Every miss is a software round here, so execution bursts are short
    # and burst-cache reuse is rare: sample a third of the window MGS
    # uses and demand more reuse before keeping the caches (the
    # ``swdsm_jacobi_fastpath`` perfsmoke regression came from paying
    # the full MGS-sized sampling window on every Env).
    fp_sample_bursts = 12
    fp_bypass_hits_per_burst = 3

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        aspace: AddressSpace,
        cache: CacheSystem,
        config: MachineConfig,
        costs: CostModel,
    ) -> None:
        super().__init__(sim, machine, aspace, cache, config, costs)
        n = config.total_processors
        #: per-*processor* replicas (the single-grain premise)
        self.frames: list[dict[int, PageFrame]] = [{} for _ in range(n)]
        #: per-processor dirty sets (insertion-ordered), the DUQ analogue
        self.dirty: list[dict[int, None]] = [{} for _ in range(n)]
        #: pages whose dirty entry was stolen by an invalidation round
        self.stolen: list[set[int]] = [set() for _ in range(n)]
        self.bus.register(self)
        self.check_bus()

    # ------------------------------------------------------------------
    # engine surface
    # ------------------------------------------------------------------

    def bus_handlers(self) -> frozenset[str]:
        return frozenset(REQUIRED_LABELS)

    @property
    def hw_bypass(self) -> bool:
        """Never: this engine exists to show the cost of ignoring the
        hardware sharing the machine could provide."""
        return False

    def frames_view(self, pid: int) -> dict[int, PageFrame]:
        return self.frames[pid]

    def phase_state(self):
        return (
            self._phase_frames_state(self.frames),
            self._phase_homes_state(),
            tuple(tuple(d) for d in self.dirty),
            tuple(tuple(sorted(s)) for s in self.stolen),
        )

    def arc_rules(self, sanitizer):
        from repro.protocols.swdsm.arcs import SWDSMArcRules

        return SWDSMArcRules(sanitizer)

    # ------------------------------------------------------------------
    # fault handling (node side)
    # ------------------------------------------------------------------

    def fault(
        self, pid: int, vpn: int, want_write: bool, on_done: Callable[[], None]
    ) -> None:
        txn = self.bus.begin(
            "fault", pid, vpn, note="write" if want_write else "read"
        )

        def done() -> None:
            self.bus.end(txn)
            on_done()

        self.stats.record("faults")
        self.record_page(vpn, "faults")
        self.sim.schedule(
            self.costs.fault_overhead, self._service, pid, vpn, want_write,
            done, txn,
        )

    def _service(
        self,
        pid: int,
        vpn: int,
        want_write: bool,
        on_done: Callable[[], None],
        txn: int,
    ) -> None:
        costs = self.costs
        frame = self.frames[pid].get(vpn)
        assert frame is None or frame.state is not FrameState.BUSY, (
            f"node {pid} faulted on vpn {vpn} with a fetch already in flight"
        )

        if frame is not None and frame.state is FrameState.WRITE:
            self._fill(frame, pid, want_write, on_done)
            return

        if frame is not None and frame.state is FrameState.READ:
            if not want_write:
                self._fill(frame, pid, False, on_done)
                return
            # Local upgrade: twin the page and take the write mapping
            # without a message; the home learns from the release diff.
            frame.twin = frame.data.copy()
            frame.state = FrameState.WRITE
            self.tlbs[pid].fill(vpn, MapMode.WRITE)
            frame.tlb_dir.add(pid)
            self.dirty[pid][vpn] = None
            self.stats.record("upgrades")
            self.sim.schedule(
                costs.make_twin(self.words_per_page) + costs.map_fill, on_done
            )
            return

        # No usable replica: fetch from the home.
        cluster = self.config.cluster_of(pid)
        if frame is None:
            frame = PageFrame(vpn=vpn, cluster=cluster, owner_pid=pid)
            self.frames[pid][vpn] = frame
        frame.owner_pid = pid
        frame.state = FrameState.BUSY
        frame.waiters.append(Waiter(pid, want_write, on_done, txn))
        home_pid = self.aspace.home_proc(vpn)
        home_cluster = self.config.cluster_of(home_pid)
        send_cost = (
            costs.msg_intra_ssmp
            if cluster == home_cluster
            else costs.msg_inter_ssmp
        )
        request = SWreq if want_write else SRreq
        self.stats.record("write_requests" if want_write else "read_requests")
        self.bus.send(
            request(
                vpn=vpn,
                src_pid=pid,
                src_cluster=cluster,
                dst_pid=home_pid,
                dst_cluster=home_cluster,
                txn=txn,
            ),
            at=self.sim.now + send_cost,
        )

    def _fill(
        self,
        frame: PageFrame,
        pid: int,
        want_write: bool,
        on_done: Callable[[], None],
    ) -> None:
        mode = MapMode.WRITE if want_write else MapMode.READ
        self.tlbs[pid].fill(frame.vpn, mode)
        frame.tlb_dir.add(pid)
        if want_write:
            self.dirty[pid][frame.vpn] = None
        self.stats.record("tlb_fill_local")
        self.sim.schedule(self.costs.map_fill, on_done)

    # ------------------------------------------------------------------
    # replication (home side)
    # ------------------------------------------------------------------

    @handles("S_RREQ", "S_WREQ")
    def on_request(self, msg: SRreq | SWreq) -> None:
        home = self.home(msg.vpn)
        dispatch = self.dispatch_cost(msg.src_cluster, msg.vpn)
        if home.state is ServerState.REL_IN_PROG:
            self.machine.occupy(home.home_pid, dispatch)
            (home.wr if msg.want_write else home.rd).append(msg)
            self.stats.record("requests_queued_on_release")
            return
        self._grant(home, msg, dispatch)

    def _grant(self, home: HomePage, msg: SRreq | SWreq, dispatch: int) -> None:
        if home.state is ServerState.REL_IN_PROG:
            # A new round started between this grant being scheduled and
            # running; a copy granted now would dodge the round's sweep.
            (home.wr if msg.want_write else home.rd).append(msg)
            return
        costs = self.costs
        req_pid = msg.src_pid
        req_cluster = self.config.cluster_of(req_pid)
        home_cluster = self.config.cluster_of(home.home_pid)
        lines = self.config.lines_per_page
        work = dispatch + costs.server_read + costs.msg_send
        if msg.want_write:
            work += costs.server_write_extra
        if req_cluster != home_cluster:
            self.cache.flush_page(
                home_cluster, self.page_first_line(home.vpn), lines
            )
            work += costs.clean_page(lines) + costs.dma_page(lines)
            self.stats.record("pages_transferred")
            self.record_page(home.vpn, "transfers")
        else:
            # Even a same-SSMP node gets a private replica (no aliasing).
            work += costs.dma_page(lines)
        (home.write_dir if msg.want_write else home.read_dir).add(req_pid)
        completion = self.machine.occupy(home.home_pid, work)
        self.bus.send(
            SData(
                vpn=home.vpn,
                src_pid=home.home_pid,
                src_cluster=home_cluster,
                dst_pid=req_pid,
                dst_cluster=req_cluster,
                txn=msg.txn,
                write=msg.want_write,
                data=home.data.copy(),
            ),
            at=completion,
        )

    @handles("S_DATA")
    def on_data(self, msg: SData) -> None:
        pid, vpn = msg.dst_pid, msg.vpn
        frame = self.frames[pid][vpn]
        assert frame.state is FrameState.BUSY, (
            f"S_DATA for vpn {vpn} at node {pid} but frame is {frame.state}"
        )
        work = self.dispatch_cost(msg.dst_cluster, vpn)
        frame.data = msg.data
        if msg.write:
            frame.state = FrameState.WRITE
            frame.twin = msg.data.copy()
            work += self.costs.make_twin(self.words_per_page)
        else:
            frame.state = FrameState.READ
        completion = self.machine.occupy(pid, work)
        waiters = frame.waiters
        frame.waiters = []
        for waiter in waiters:
            mode = MapMode.WRITE if waiter.want_write else MapMode.READ
            self.tlbs[pid].fill(vpn, mode)
            frame.tlb_dir.add(pid)
            if waiter.want_write:
                self.dirty[pid][vpn] = None
            self.sim.schedule_at(
                completion + self.costs.map_fill, waiter.on_done
            )

    # ------------------------------------------------------------------
    # release operation (eager: diff home, invalidate every replica)
    # ------------------------------------------------------------------

    def release(self, pid: int, on_done: Callable[[], None]) -> None:
        txn = self.bus.begin("release", pid)

        def done() -> None:
            self.bus.end(txn)
            on_done()

        dirty = self.dirty[pid]
        stolen = self.stolen[pid]
        if stolen:
            for vpn in sorted(stolen):
                dirty.setdefault(vpn, None)
            stolen.clear()
            self.stats.record("stolen_joins")
        if not dirty:
            done()
            return
        self.stats.record("releases")
        self._release_next(pid, done, txn)

    def _release_next(
        self, pid: int, on_done: Callable[[], None], txn: int
    ) -> None:
        costs = self.costs
        dirty = self.dirty[pid]
        if not dirty:
            self.sim.schedule(costs.release_resume, on_done)
            return
        vpn = next(iter(dirty))
        del dirty[vpn]
        cluster = self.config.cluster_of(pid)
        home_pid = self.aspace.home_proc(vpn)
        home_cluster = self.config.cluster_of(home_pid)
        send_cost = (
            costs.msg_intra_ssmp
            if cluster == home_cluster
            else costs.msg_inter_ssmp
        )
        frame = self.frames[pid].get(vpn)
        self.stats.record("rel_pages")
        self.record_page(vpn, "releases")
        if frame is None or frame.state is not FrameState.WRITE:
            # Stolen entry: the writes already travelled home with an
            # invalidation round; send a data-less join.
            self.bus.send(
                SDiff(
                    vpn=vpn,
                    src_pid=pid,
                    src_cluster=cluster,
                    dst_pid=home_pid,
                    dst_cluster=home_cluster,
                    txn=txn,
                    join=True,
                    on_done=on_done,
                ),
                at=self.sim.now + costs.release_entry + send_cost,
            )
            return
        indices, values = make_diff(frame.data, frame.twin)
        # Eager RC: after a release the home must be the only consistent
        # copy, so the releaser drops its own replica with the diff.
        self._drop(pid, frame)
        work = (
            costs.release_entry
            + costs.make_diff(self.words_per_page)
            + costs.free_page
        )
        self.bus.send(
            SDiff(
                vpn=vpn,
                src_pid=pid,
                src_cluster=cluster,
                dst_pid=home_pid,
                dst_cluster=home_cluster,
                txn=txn,
                indices=indices,
                values=values,
                on_done=on_done,
            ),
            at=self.sim.now + work + send_cost,
        )

    def _drop(self, pid: int, frame: PageFrame) -> None:
        frame.state = FrameState.INVALID
        frame.data = None
        frame.twin = None
        frame.tlb_dir.discard(pid)
        self.tlbs[pid].invalidate(frame.vpn)

    @handles("S_DIFF")
    def on_diff(self, msg: SDiff) -> None:
        home = self.home(msg.vpn)
        dispatch = self.dispatch_cost(msg.src_cluster, msg.vpn)
        if home.state is ServerState.REL_IN_PROG:
            self.machine.occupy(home.home_pid, dispatch)
            if msg.join:
                # Coalesce: the round in flight (whichever it is) closes
                # strictly after the one that stole this page's writes.
                home.rl.append(msg)
                self.stats.record("releases_coalesced")
            else:
                home.pending_rels.append(msg)
                self.stats.record("releases_deferred")
            return
        if msg.join:
            # The stealing round has completed; home already consistent.
            completion = self.machine.occupy(
                home.home_pid, dispatch + self.costs.msg_send
            )
            self.stats.record("joins_acked")
            self._send_rack(home, msg, completion)
            return
        self._start_round(home, msg, dispatch)

    def _start_round(self, home: HomePage, msg: SDiff, dispatch: int) -> None:
        costs = self.costs
        apply_diff(home.data, msg.indices, msg.values)
        home.read_dir.discard(msg.src_pid)
        home.write_dir.discard(msg.src_pid)
        targets = sorted(home.read_dir | home.write_dir)
        home.state = ServerState.REL_IN_PROG
        home.rl = [msg]
        home.count = len(targets)
        home.round_txn = msg.txn
        self.stats.record("release_rounds")
        work = (
            dispatch
            + costs.server_release
            + costs.apply_fixed
            + costs.apply_words(len(msg.indices))
            + costs.msg_send * max(1, len(targets))
        )
        completion = self.machine.occupy(home.home_pid, work)
        if not targets:
            self.sim.schedule_at(completion, self._complete_round, home)
            return
        home_cluster = self.config.cluster_of(home.home_pid)
        for pid in targets:
            self.bus.send(
                SInv(
                    vpn=home.vpn,
                    src_pid=home.home_pid,
                    src_cluster=home_cluster,
                    dst_pid=pid,
                    dst_cluster=self.config.cluster_of(pid),
                    txn=msg.txn,
                ),
                at=completion,
            )

    @handles("S_INV")
    def on_inv(self, msg: SInv) -> None:
        pid, vpn = msg.dst_pid, msg.vpn
        costs = self.costs
        frame = self.frames[pid].get(vpn)
        work = self.dispatch_cost(msg.dst_cluster, vpn) + costs.msg_send
        indices = values = None
        if frame is not None and frame.state is FrameState.WRITE:
            indices, values = make_diff(frame.data, frame.twin)
            work += costs.make_diff(self.words_per_page)
            # Steal the dirty entry: its writes travel with this round,
            # and the owner's next release must join it.
            del self.dirty[pid][vpn]
            self.stolen[pid].add(vpn)
            self.stats.record("writer_invalidations")
        if frame is not None and frame.state is not FrameState.INVALID:
            work += costs.free_page
            self._drop(pid, frame)
        completion = self.machine.occupy(pid, work)
        self.bus.send(
            SIack(
                vpn=vpn,
                src_pid=pid,
                src_cluster=msg.dst_cluster,
                dst_pid=msg.src_pid,
                dst_cluster=msg.src_cluster,
                txn=msg.txn,
                indices=indices,
                values=values,
            ),
            at=completion,
        )

    @handles("S_IACK")
    def on_iack(self, msg: SIack) -> None:
        home = self.home(msg.vpn)
        assert home.state is ServerState.REL_IN_PROG and home.count > 0, (
            f"S_IACK for vpn {msg.vpn} without an open round"
        )
        costs = self.costs
        work = self.dispatch_cost(msg.src_cluster, msg.vpn)
        if msg.indices is not None and len(msg.indices):
            apply_diff(home.data, msg.indices, msg.values)
            work += costs.apply_fixed + costs.apply_words(len(msg.indices))
        home.read_dir.discard(msg.src_pid)
        home.write_dir.discard(msg.src_pid)
        completion = self.machine.occupy(home.home_pid, work)
        home.count -= 1
        if home.count == 0:
            self.sim.schedule_at(completion, self._complete_round, home)

    def _complete_round(self, home: HomePage) -> None:
        home.state = ServerState.READ
        racks = home.rl
        home.rl = []
        home.count = 0
        home.round_txn = -1
        completion = self.machine.occupy(
            home.home_pid, self.costs.msg_send * len(racks)
        )
        for msg in racks:
            self._send_rack(home, msg, completion)
        if home.pending_rels:
            nxt = home.pending_rels.pop(0)
            self.sim.schedule_at(completion, self._replay_rel, home, nxt)
            return
        queued = home.rd + home.wr
        home.rd = []
        home.wr = []
        for msg in queued:
            self.sim.schedule_at(completion, self._grant, home, msg, 0)

    def _replay_rel(self, home: HomePage, msg: SDiff) -> None:
        if home.state is ServerState.REL_IN_PROG:
            home.pending_rels.append(msg)
            return
        self._start_round(home, msg, self.dispatch_cost(msg.src_cluster, msg.vpn))

    def _send_rack(self, home: HomePage, msg: SDiff, at: int) -> None:
        self.bus.send(
            SRack(
                vpn=msg.vpn,
                src_pid=home.home_pid,
                src_cluster=self.config.cluster_of(home.home_pid),
                dst_pid=msg.src_pid,
                dst_cluster=msg.src_cluster,
                txn=msg.txn,
                on_done=msg.on_done,
            ),
            at=at,
        )

    @handles("S_RACK")
    def on_rack(self, msg: SRack) -> None:
        completion = self.machine.occupy(
            msg.dst_pid, self.dispatch_cost(msg.dst_cluster, msg.vpn)
        )
        self.sim.schedule_at(
            completion, self._release_next, msg.dst_pid, msg.on_done, msg.txn
        )

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        for pid, tlb in enumerate(self.tlbs):
            for vpn in tlb.mapped_vpns():
                frame = self.frames[pid].get(vpn)
                assert frame is not None and frame.mapped, (
                    f"TLB of node {pid} maps vpn {vpn} without a frame"
                )
                if tlb.has_write(vpn):
                    assert frame.state is FrameState.WRITE
                    assert frame.twin is not None
                    assert vpn in self.dirty[pid], (
                        f"write mapping of vpn {vpn} on node {pid} untracked"
                    )
