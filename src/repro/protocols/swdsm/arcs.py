"""Invariant-sanitizer rules for the single-grain DSM engine."""

from __future__ import annotations

from repro.core.engine import ArcRules
from repro.core.page import FrameState, ServerState

__all__ = ["SWDSMArcRules"]


class SWDSMArcRules(ArcRules):
    """Legal-arc catalogue for ``protocols/swdsm``."""

    def __init__(self, sanitizer) -> None:
        super().__init__(sanitizer)
        self.config = sanitizer.config

    def on_message(self, msg) -> None:
        check = self._CHECKS.get(msg.label)
        if check is not None:
            check(self, msg)

    def _fail(self, rule: str, detail: str, msg) -> None:
        self.s.fail(rule, detail, vpn=msg.vpn, txn=msg.txn)

    # ------------------------------------------------------------------
    # per-message pre-state checks
    # ------------------------------------------------------------------

    def _check_request(self, msg) -> None:
        frame = self.protocol.frames[msg.src_pid].get(msg.vpn)
        if frame is None or frame.state is not FrameState.BUSY:
            state = "absent" if frame is None else frame.state.value
            self._fail(
                "swdsm-request",
                f"{msg.label} from node {msg.src_pid} but its frame is "
                f"{state} (no fetch outstanding)",
                msg,
            )

    def _check_diff(self, msg) -> None:
        # The eager releaser drops its replica before the diff travels
        # (and a join comes from a stolen entry with no replica at all),
        # so a write replica still present at the sender means the diff
        # is spurious or the drop was forgotten.
        frame = self.protocol.frames[msg.src_pid].get(msg.vpn)
        if frame is not None and frame.state is FrameState.WRITE:
            self._fail(
                "swdsm-diff",
                f"S_DIFF from node {msg.src_pid} which still holds a "
                "write replica (releaser must drop before diffing)",
                msg,
            )

    def _check_data(self, msg) -> None:
        frame = self.protocol.frames[msg.dst_pid].get(msg.vpn)
        if frame is None or frame.state is not FrameState.BUSY:
            state = "absent" if frame is None else frame.state.value
            self._fail(
                "swdsm-grant",
                f"S_DATA for vpn {msg.vpn} at node {msg.dst_pid} but frame "
                f"is {state} (no fetch outstanding)",
                msg,
            )

    def _check_inv(self, msg) -> None:
        frame = self.protocol.frames[msg.dst_pid].get(msg.vpn)
        if frame is not None and frame.state is FrameState.BUSY:
            self._fail(
                "swdsm-inv-busy",
                f"S_INV overtook the data grant for vpn {msg.vpn} at node "
                f"{msg.dst_pid} (delivery order violated)",
                msg,
            )

    def _check_iack(self, msg) -> None:
        home = self.protocol.homes.get(msg.vpn)
        if home is None or home.state is not ServerState.REL_IN_PROG:
            self._fail(
                "swdsm-iack",
                f"S_IACK for vpn {msg.vpn} without a release round open",
                msg,
            )
        elif home.count <= 0:
            self._fail(
                "swdsm-iack",
                f"S_IACK for vpn {msg.vpn} but the round expects no more "
                "acknowledgements",
                msg,
            )

    def _check_rack(self, msg) -> None:
        frame = self.protocol.frames[msg.dst_pid].get(msg.vpn)
        if frame is not None and frame.state is FrameState.WRITE:
            self._fail(
                "swdsm-rack",
                f"S_RACK for vpn {msg.vpn} but node {msg.dst_pid} still "
                "holds a write replica (releaser must have dropped it)",
                msg,
            )

    _CHECKS = {
        "S_RREQ": _check_request,
        "S_WREQ": _check_request,
        "S_DATA": _check_data,
        "S_DIFF": _check_diff,
        "S_INV": _check_inv,
        "S_IACK": _check_iack,
        "S_RACK": _check_rack,
    }

    # ------------------------------------------------------------------
    # structural checks
    # ------------------------------------------------------------------

    def check_page(self, vpn: int) -> None:
        p = self.protocol
        home = p.homes.get(vpn)
        if home is None:
            return
        for pid in sorted(home.write_dir):
            frame = p.frames[pid].get(vpn)
            if frame is None:
                self.s.fail(
                    "swdsm-dir",
                    f"write_dir of vpn {vpn} lists node {pid} with no frame",
                    vpn=vpn,
                )

    def check_quiescent(self) -> None:
        p = self.protocol
        for vpn, home in sorted(p.homes.items()):
            if home.state is ServerState.REL_IN_PROG:
                self.s.fail(
                    "quiesce-swdsm-round",
                    f"vpn {vpn} still in a release round at quiescence",
                    vpn=vpn,
                )
            if home.rl or home.rd or home.wr or home.pending_rels:
                self.s.fail(
                    "quiesce-swdsm-queue",
                    f"vpn {vpn} has queued work at quiescence "
                    f"(rl={len(home.rl)} rd={len(home.rd)} wr={len(home.wr)} "
                    f"deferred={len(home.pending_rels)})",
                    vpn=vpn,
                )
        for pid, frames in enumerate(p.frames):
            for vpn, frame in sorted(frames.items()):
                if frame.state is FrameState.BUSY:
                    self.s.fail(
                        "quiesce-swdsm-busy",
                        f"node {pid} still fetching vpn {vpn} at quiescence",
                        vpn=vpn,
                    )

    # ------------------------------------------------------------------
    # queue-aware whole-state rules (explorer only)
    # ------------------------------------------------------------------

    def check_state(self, inflight) -> None:
        """An open invalidation round must have messages left to close it."""
        super().check_state(inflight)
        for vpn, home in sorted(self.protocol.homes.items()):
            if (
                home.state is ServerState.REL_IN_PROG
                and home.count > 0
                and not any(
                    m.vpn == vpn and m.label in ("S_INV", "S_IACK")
                    for m in inflight
                )
            ):
                self.s.fail(
                    "swdsm-round-stuck",
                    f"vpn {vpn} round expects {home.count} more "
                    "acknowledgements with no S_INV or S_IACK in flight",
                    vpn=vpn,
                )
