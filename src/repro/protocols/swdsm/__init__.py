"""Single-grain software page DSM engine (``protocol = "swdsm"``)."""

from repro.protocols.swdsm.protocol import REQUIRED_LABELS, SWDSMProtocol

__all__ = ["REQUIRED_LABELS", "SWDSMProtocol"]
