"""The concrete coherence engines behind ``MachineConfig.protocol``.

Importing this package registers every built-in engine with the
string-keyed registry in :mod:`repro.core.engine`:

* ``mgs`` — the paper's multigrain shared-memory protocol (default).
* ``swdsm`` — single-grain software page DSM, the all-software baseline
  of Figure 6: one DSM node per processor, no hardware line sharing.
* ``sc_pages`` — sequentially-consistent single-writer pages with
  invalidate-on-write and home migration on repeated remote writes.
* ``gcs`` — synchronization-aware coherence in the spirit of Soul
  (GCS): write notices piggyback on lock/barrier transfer and stale
  copies are invalidated lazily at acquire points.

Adding an engine: subclass :class:`repro.core.engine.Protocol` in a new
package here, decorate it with ``@register_engine``, declare a literal
``REQUIRED_LABELS`` tuple next to it (the analysis lint checks it
against the package's ``@handles`` registrations), and import the module
below.  See docs/PROTOCOL.md, "Engines".
"""

from repro.protocols import gcs, mgs, sc_pages, swdsm  # noqa: F401

__all__ = ["gcs", "mgs", "sc_pages", "swdsm"]
