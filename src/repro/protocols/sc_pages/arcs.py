"""Invariant-sanitizer rules for the SC single-writer pages engine."""

from __future__ import annotations

from repro.core.engine import ArcRules
from repro.core.page import FrameState, ServerState

__all__ = ["SCPagesArcRules"]


class SCPagesArcRules(ArcRules):
    """Legal-arc catalogue for ``protocols/sc_pages``."""

    def __init__(self, sanitizer) -> None:
        super().__init__(sanitizer)
        self.config = sanitizer.config

    def on_message(self, msg) -> None:
        check = self._CHECKS.get(msg.label)
        if check is not None:
            check(self, msg)

    def _fail(self, rule: str, detail: str, msg) -> None:
        self.s.fail(rule, detail, vpn=msg.vpn, txn=msg.txn)

    # ------------------------------------------------------------------
    # per-message pre-state checks
    # ------------------------------------------------------------------

    def _check_request(self, msg) -> None:
        frame = self.protocol.frames[msg.src_cluster].get(msg.vpn)
        if frame is None or not frame.lock_held:
            self._fail(
                "sc-request",
                f"{msg.label} from cluster {msg.src_cluster} with no "
                "fault holding the frame lock",
                msg,
            )

    def _check_inv(self, msg) -> None:
        home = self.protocol.homes.get(msg.vpn)
        if home is None or home.state is not ServerState.REL_IN_PROG:
            self._fail(
                "sc-inv",
                f"SC_INV for vpn {msg.vpn} outside a coherence round",
                msg,
            )
        elif home.round_txn != msg.txn:
            self._fail(
                "sc-inv",
                f"SC_INV carries txn {msg.txn} but the round is "
                f"txn {home.round_txn}",
                msg,
            )

    def _check_grant(self, msg) -> None:
        frame = self.protocol.frames[msg.dst_cluster].get(msg.vpn)
        if frame is None or not frame.lock_held:
            self._fail(
                "sc-grant",
                f"{msg.label} for vpn {msg.vpn} at cluster "
                f"{msg.dst_cluster} with no request outstanding",
                msg,
            )

    def _check_down(self, msg) -> None:
        # Legal at a WRITE frame, or at a frame whose write grant is
        # still in flight (lock held) — after a home migration the new
        # home's revocation can outrun the old home's queued grant, and
        # the engine parks it until the grant lands.
        frame = self.protocol.frames[msg.dst_cluster].get(msg.vpn)
        if frame is None or (
            frame.state is not FrameState.WRITE and not frame.lock_held
        ):
            state = "absent" if frame is None else frame.state.value
            self._fail(
                "sc-down",
                f"SC_DOWN for vpn {msg.vpn} but cluster {msg.dst_cluster} "
                f"is {state} with no grant in flight, not the exclusive "
                "writer",
                msg,
            )

    def _check_ack(self, msg) -> None:
        home = self.protocol.homes.get(msg.vpn)
        if home is None or home.state is not ServerState.REL_IN_PROG:
            self._fail(
                "sc-round",
                f"{msg.label} for vpn {msg.vpn} without a coherence round "
                "open",
                msg,
            )
        elif home.count <= 0:
            self._fail(
                "sc-round",
                f"{msg.label} for vpn {msg.vpn} but the round expects no "
                "more acknowledgements",
                msg,
            )

    _CHECKS = {
        "SC_RREQ": _check_request,
        "SC_WREQ": _check_request,
        "SC_DATA": _check_grant,
        "SC_WGRANT": _check_grant,
        "SC_DOWN": _check_down,
        "SC_INV": _check_inv,
        "SC_WB": _check_ack,
        "SC_IACK": _check_ack,
    }

    # ------------------------------------------------------------------
    # structural checks
    # ------------------------------------------------------------------

    def check_page(self, vpn: int) -> None:
        p = self.protocol
        home = p.homes.get(vpn)
        if home is None:
            return
        if len(home.write_dir) > 1:
            self.s.fail(
                "sc-single-writer",
                f"vpn {vpn} has {len(home.write_dir)} exclusive writers: "
                f"{sorted(home.write_dir)}",
                vpn=vpn,
            )
        overlap = home.write_dir & home.read_dir
        if overlap:
            self.s.fail(
                "sc-single-writer",
                f"vpn {vpn} lists clusters {sorted(overlap)} as both "
                "reader and exclusive writer",
                vpn=vpn,
            )

    def check_quiescent(self) -> None:
        p = self.protocol
        for vpn, home in sorted(p.homes.items()):
            if home.state is ServerState.REL_IN_PROG:
                self.s.fail(
                    "quiesce-sc-round",
                    f"vpn {vpn} still in a coherence round at quiescence",
                    vpn=vpn,
                )
            if home.rd or home.wr:
                self.s.fail(
                    "quiesce-sc-queue",
                    f"vpn {vpn} has queued requests at quiescence "
                    f"(rd={len(home.rd)} wr={len(home.wr)})",
                    vpn=vpn,
                )
        if p.pending:
            self.s.fail(
                "quiesce-sc-pending",
                f"requests still being serviced at quiescence: "
                f"vpns {sorted(p.pending)}",
            )
        for cluster, frames in enumerate(p.frames):
            for vpn, frame in sorted(frames.items()):
                if frame.state is FrameState.BUSY or frame.lock_held:
                    self.s.fail(
                        "quiesce-sc-busy",
                        f"cluster {cluster} still fetching vpn {vpn} at "
                        "quiescence",
                        vpn=vpn,
                    )
                if frame.queued_invals:
                    self.s.fail(
                        "quiesce-sc-revocation",
                        f"cluster {cluster} never drained "
                        f"{len(frame.queued_invals)} deferred revocations "
                        f"for vpn {vpn}",
                        vpn=vpn,
                    )

    # ------------------------------------------------------------------
    # queue-aware whole-state rules (explorer only)
    # ------------------------------------------------------------------

    def check_state(self, inflight) -> None:
        """An open coherence round must still be able to make progress.

        With ``count`` acknowledgements outstanding, either a round
        message is in flight for the page or a revocation is parked on a
        frame (deferred behind an access in progress); neither means the
        round is lost forever.
        """
        super().check_state(inflight)
        p = self.protocol
        for vpn, home in sorted(p.homes.items()):
            if home.state is not ServerState.REL_IN_PROG or home.count <= 0:
                continue
            if any(
                m.vpn == vpn
                and m.label in ("SC_DOWN", "SC_INV", "SC_WB", "SC_IACK")
                for m in inflight
            ):
                continue
            if any(
                (frame := frames.get(vpn)) is not None
                and (frame.queued_invals or frame.pinv_count > 0)
                for frames in p.frames
            ):
                continue
            self.s.fail(
                "sc-round-stuck",
                f"vpn {vpn} round expects {home.count} more "
                "acknowledgements with no round message in flight and no "
                "revocation parked",
                vpn=vpn,
            )
