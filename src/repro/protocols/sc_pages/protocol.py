"""Sequentially-consistent single-writer pages (``protocol = "sc_pages"``).

The classic MSI directory protocol lifted to page grain and cluster
replication: at most one cluster holds a page with write privilege at
any time, and a write request invalidates every other copy *before* the
grant — coherence is paid at write faults, not at release points, so
``release`` is a no-op.  Against MGS this isolates what lazy release
consistency buys: the same cluster-grain replication, but eager MSI
semantics.

* **Read request.**  A current exclusive writer is downgraded first
  (``SC_DOWN`` / ``SC_WB``, keeping a shared copy); then the home grants
  a shared copy.
* **Write request.**  The writer (if any) is invalidated with writeback
  and every shared copy dropped (``SC_INV`` / ``SC_IACK``); the grant
  makes the requester the sole copy.  A requester upgrading its own
  shared copy keeps it until the grant refreshes it.
* **Home migration.**  After :attr:`MIGRATE_AFTER` consecutive exclusive
  grants to the same remote cluster, the page's home moves to that
  cluster (``home_pid`` is rebound; a simulation shortcut — the
  directory state itself moves instantly and only the data transfer the
  grant already pays for is charged).
* **peek.**  The home copy legitimately lags the exclusive writer, so
  result validation consults the writer cluster's frame first.

No twins, no diffs, no release work: the cost profile is pure
request/invalidate traffic.
"""

from __future__ import annotations

from typing import Callable

from repro.core.bus import handles
from repro.core.engine import Protocol, register_engine
from repro.core.page import FrameState, HomePage, PageFrame, ServerState, Waiter
from repro.hw import CacheSystem
from repro.machine import Machine
from repro.params import CostModel, MachineConfig
from repro.protocols.sc_pages.messages import (
    ScData,
    ScDown,
    ScIack,
    ScInv,
    ScRreq,
    ScWb,
    ScWgrant,
    ScWreq,
)
from repro.sim import Simulator
from repro.svm import AddressSpace, MapMode

__all__ = ["SCPagesProtocol", "REQUIRED_LABELS"]

#: every bus label this engine registers a handler for; checked
#: statically by ``repro.analysis.lint`` against the ``@handles`` marks.
REQUIRED_LABELS = (
    "SC_RREQ",
    "SC_WREQ",
    "SC_DATA",
    "SC_WGRANT",
    "SC_DOWN",
    "SC_WB",
    "SC_INV",
    "SC_IACK",
)


@register_engine
class SCPagesProtocol(Protocol):
    """Eager MSI page coherence at cluster grain, with home migration."""

    name = "sc_pages"

    #: consecutive remote exclusive grants to one cluster before the
    #: page's home migrates there
    MIGRATE_AFTER = 3

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        aspace: AddressSpace,
        cache: CacheSystem,
        config: MachineConfig,
        costs: CostModel,
    ) -> None:
        super().__init__(sim, machine, aspace, cache, config, costs)
        self.frames: list[dict[int, PageFrame]] = [
            {} for _ in range(config.num_clusters)
        ]
        #: vpn -> request message currently being serviced by a round
        self.pending: dict[int, ScRreq | ScWreq] = {}
        #: vpn -> (cluster, consecutive remote exclusive grants)
        self.streaks: dict[int, tuple[int, int]] = {}
        self.bus.register(self)
        self.check_bus()

    # ------------------------------------------------------------------
    # engine surface
    # ------------------------------------------------------------------

    def bus_handlers(self) -> frozenset[str]:
        return frozenset(REQUIRED_LABELS)

    def arc_rules(self, sanitizer):
        from repro.protocols.sc_pages.arcs import SCPagesArcRules

        return SCPagesArcRules(sanitizer)

    def phase_state(self):
        return (
            self._phase_frames_state(self.frames),
            self._phase_homes_state(),
            tuple(
                sorted(
                    (vpn, type(msg).__name__) for vpn, msg in self.pending.items()
                )
            ),
            tuple(sorted(self.streaks.items())),
        )

    def release(self, pid: int, on_done: Callable[[], None]) -> None:
        """SC needs no release-point work: writes were ordered eagerly."""
        txn = self.bus.begin("release", pid)
        self.bus.end(txn)
        on_done()

    def home_cluster(self, vpn: int) -> int:
        """Home migration rebinds ``home_pid`` away from the address-space
        default, so cost accounting must follow the live binding."""
        page = self.homes.get(vpn)
        if page is not None:
            return self.config.cluster_of(page.home_pid)
        return super().home_cluster(vpn)

    def page_view(self, vpn: int):
        """The exclusive writer's copy is authoritative, not the home."""
        home = self.homes.get(vpn)
        if home is not None and home.write_dir:
            (writer,) = home.write_dir
            frame = self.frames[writer].get(vpn)
            if frame is not None and frame.data is not None:
                return frame.data
        return super().page_view(vpn)

    # ------------------------------------------------------------------
    # fault handling (cluster side)
    # ------------------------------------------------------------------

    def fault(
        self, pid: int, vpn: int, want_write: bool, on_done: Callable[[], None]
    ) -> None:
        txn = self.bus.begin(
            "fault", pid, vpn, note="write" if want_write else "read"
        )

        def done() -> None:
            self.bus.end(txn)
            on_done()

        self.stats.record("faults")
        self.record_page(vpn, "faults")
        self.sim.schedule(
            self.costs.fault_overhead, self._service, pid, vpn, want_write,
            done, txn,
        )

    def _service(
        self,
        pid: int,
        vpn: int,
        want_write: bool,
        on_done: Callable[[], None],
        txn: int,
        served: bool = False,
    ) -> None:
        cluster = self.config.cluster_of(pid)
        frame = self.frames[cluster].get(vpn)

        if frame is not None and (
            frame.lock_held or (frame.queued_invals and not served)
        ):
            # Locked, or a revocation is parked on the frame — granting
            # more local accesses now would starve the home's round.
            # Waiters replayed from ``_unlock`` (``served``) are exempt:
            # the grant was for them, and their fill is what triggers the
            # deferred-revocation drain.
            frame.waiters.append(Waiter(pid, want_write, on_done, txn))
            self.stats.record("fault_lock_waits")
            return

        if frame is not None and frame.state is FrameState.WRITE:
            self._fill(frame, pid, want_write, on_done)
            return

        if (
            frame is not None
            and frame.state is FrameState.READ
            and not want_write
        ):
            self._fill(frame, pid, False, on_done)
            return

        # Fetch, or upgrade of a shared copy: one home round-trip.
        if frame is None:
            frame = PageFrame(vpn=vpn, cluster=cluster, owner_pid=pid)
            self.frames[cluster][vpn] = frame
        if frame.state is FrameState.INVALID:
            frame.owner_pid = pid
            frame.state = FrameState.BUSY
        # (a READ frame stays READ while its upgrade is in flight)
        frame.lock_held = True
        frame.waiters.append(Waiter(pid, want_write, on_done, txn))
        home = self.home(vpn)
        home_cluster = self.config.cluster_of(home.home_pid)
        send_cost = (
            self.costs.msg_intra_ssmp
            if cluster == home_cluster
            else self.costs.msg_inter_ssmp
        )
        request = ScWreq if want_write else ScRreq
        self.stats.record("write_requests" if want_write else "read_requests")
        self.bus.send(
            request(
                vpn=vpn,
                src_pid=pid,
                src_cluster=cluster,
                dst_pid=home.home_pid,
                dst_cluster=home_cluster,
                txn=txn,
            ),
            at=self.sim.now + send_cost,
        )

    def _fill(
        self,
        frame: PageFrame,
        pid: int,
        want_write: bool,
        on_done: Callable[[], None],
    ) -> None:
        mode = MapMode.WRITE if want_write else MapMode.READ
        self.tlbs[pid].fill(frame.vpn, mode)
        frame.tlb_dir.add(pid)
        self.stats.record("tlb_fill_local")
        # Progress guarantee: a revocation must not land between this fill
        # and the access it enables, or write-shared pages ping-pong
        # between clusters with no thread ever completing its access.
        # ``pinv_count`` counts fills whose access is still pending; SC_DOWN
        # and SC_INV arriving meanwhile park in ``queued_invals``.
        frame.pinv_count += 1
        self.sim.schedule(self.costs.map_fill, self._fill_done, frame, on_done)

    def _fill_done(
        self, frame: PageFrame, on_done: Callable[[], None]
    ) -> None:
        on_done()  # resumes the thread; the access completes synchronously
        frame.pinv_count -= 1
        if frame.pinv_count == 0 and frame.queued_invals:
            queued = frame.queued_invals
            frame.queued_invals = []
            for msg in queued:
                if msg.label == "SC_DOWN":
                    self._do_down(msg)
                else:
                    self._do_inv(msg)
            if frame.waiters and not frame.lock_held:
                self._unlock(frame)

    # ------------------------------------------------------------------
    # request service (home side)
    # ------------------------------------------------------------------

    @handles("SC_RREQ", "SC_WREQ")
    def on_request(self, msg: ScRreq | ScWreq) -> None:
        home = self.home(msg.vpn)
        dispatch = self.dispatch_cost(msg.src_cluster, msg.vpn)
        if home.state is ServerState.REL_IN_PROG:
            self.machine.occupy(home.home_pid, dispatch)
            (home.wr if msg.want_write else home.rd).append(msg)
            self.stats.record("requests_queued_on_round")
            return
        self._begin_service(home, msg, dispatch)

    def _begin_service(
        self, home: HomePage, msg: ScRreq | ScWreq, dispatch: int
    ) -> None:
        req_cluster = msg.src_cluster
        # single-writer: write_dir holds at most one cluster
        writer = min(home.write_dir) if home.write_dir else None
        assert writer != req_cluster, (
            f"cluster {req_cluster} requested vpn {home.vpn} it already "
            "holds exclusively"
        )
        downs = [writer] if writer is not None else []
        invs = (
            sorted(home.read_dir - {req_cluster}) if msg.want_write else []
        )
        if not downs and not invs:
            self._grant(home, msg, dispatch)
            return
        # One coherence round per page at a time; REL_IN_PROG doubles as
        # the round-in-progress marker.
        home.state = ServerState.REL_IN_PROG
        home.count = len(downs) + len(invs)
        home.round_txn = msg.txn
        self.pending[home.vpn] = msg
        self.stats.record("coherence_rounds")
        work = (
            dispatch
            + self.costs.server_release
            + self.costs.msg_send * home.count
        )
        completion = self.machine.occupy(home.home_pid, work)
        home_cluster = self.config.cluster_of(home.home_pid)
        for cluster in downs:
            frame = self.frames[cluster][home.vpn]
            self.bus.send(
                ScDown(
                    vpn=home.vpn,
                    src_pid=home.home_pid,
                    src_cluster=home_cluster,
                    dst_pid=frame.owner_pid,
                    dst_cluster=cluster,
                    txn=msg.txn,
                    drop=msg.want_write,
                ),
                at=completion,
            )
        for cluster in invs:
            frame = self.frames[cluster][home.vpn]
            self.bus.send(
                ScInv(
                    vpn=home.vpn,
                    src_pid=home.home_pid,
                    src_cluster=home_cluster,
                    dst_pid=frame.owner_pid,
                    dst_cluster=cluster,
                    txn=msg.txn,
                ),
                at=completion,
            )

    def _grant(
        self, home: HomePage, msg: ScRreq | ScWreq, dispatch: int
    ) -> None:
        costs = self.costs
        vpn = home.vpn
        req_cluster, req_pid = msg.src_cluster, msg.src_pid
        server_pid = home.home_pid
        home_cluster = self.config.cluster_of(server_pid)
        lines = self.config.lines_per_page
        work = dispatch + costs.server_read + costs.msg_send
        if msg.want_write:
            work += costs.server_write_extra
        if req_cluster != home_cluster:
            self.cache.flush_page(
                home_cluster, self.page_first_line(vpn), lines
            )
            work += costs.clean_page(lines) + costs.dma_page(lines)
            self.stats.record("pages_transferred")
            self.record_page(vpn, "transfers")
        else:
            work += costs.dma_page(lines)
        payload = home.data.copy()
        if msg.want_write:
            home.read_dir.discard(req_cluster)
            home.write_dir = {req_cluster}
            home.state = ServerState.WRITE
            self._note_exclusive_grant(home, req_cluster, req_pid)
        else:
            home.read_dir.add(req_cluster)
            if not home.write_dir:
                home.state = ServerState.READ
        completion = self.machine.occupy(server_pid, work)
        grant = ScWgrant if msg.want_write else ScData
        self.bus.send(
            grant(
                vpn=vpn,
                src_pid=server_pid,
                src_cluster=home_cluster,
                dst_pid=req_pid,
                dst_cluster=req_cluster,
                txn=msg.txn,
                data=payload,
            ),
            at=completion,
        )

    def _note_exclusive_grant(
        self, home: HomePage, req_cluster: int, req_pid: int
    ) -> None:
        """Home migration: follow a run of remote exclusive grants."""
        vpn = home.vpn
        if req_cluster == self.config.cluster_of(home.home_pid):
            self.streaks.pop(vpn, None)
            return
        cluster, n = self.streaks.get(vpn, (req_cluster, 0))
        n = n + 1 if cluster == req_cluster else 1
        if n >= self.MIGRATE_AFTER:
            home.home_pid = req_pid
            self.streaks.pop(vpn, None)
            self.stats.record("home_migrations")
            self.record_page(vpn, "migrations")
        else:
            self.streaks[vpn] = (req_cluster, n)

    # ------------------------------------------------------------------
    # coherence round (client side)
    # ------------------------------------------------------------------

    @handles("SC_DOWN")
    def on_down(self, msg: ScDown) -> None:
        frame = self.frames[msg.dst_cluster][msg.vpn]
        # Defer while a just-granted access is pending (progress
        # guarantee) or while the write grant this revocation refers to
        # is still in flight — after a home migration the new home's
        # processor can issue a revocation that outruns the old home's
        # queued grant.
        if frame.pinv_count > 0 or frame.state is not FrameState.WRITE:
            frame.queued_invals.append(msg)
            self.stats.record("revocations_deferred")
            return
        self._do_down(msg)

    def _do_down(self, msg: ScDown) -> None:
        cluster, vpn = msg.dst_cluster, msg.vpn
        costs = self.costs
        frame = self.frames[cluster][vpn]
        assert frame.state is FrameState.WRITE, (
            f"SC_DOWN for vpn {vpn} but cluster {cluster} is {frame.state}"
        )
        lines = self.config.lines_per_page
        self.cache.flush_page(cluster, self.page_first_line(vpn), lines)
        work = (
            self.dispatch_cost(cluster, vpn)
            + costs.clean_page(lines)
            + costs.dma_page(lines)
            + costs.msg_send
            + costs.msg_intra_ssmp * len(frame.tlb_dir)  # TLB shootdown
        )
        payload = frame.data.copy()
        if msg.drop:
            work += costs.free_page
            self._drop_frame(frame)
            kept = False
        else:
            for pid in sorted(frame.tlb_dir):
                tlb = self.tlbs[pid]
                if tlb.has_write(vpn):
                    tlb.invalidate(vpn)
                    tlb.fill(vpn, MapMode.READ)
            frame.state = FrameState.READ
            kept = True
            self.stats.record("downgrades")
        completion = self.machine.occupy(msg.dst_pid, work)
        self.bus.send(
            ScWb(
                vpn=vpn,
                src_pid=msg.dst_pid,
                src_cluster=cluster,
                dst_pid=msg.src_pid,
                dst_cluster=msg.src_cluster,
                txn=msg.txn,
                kept=kept,
                data=payload,
            ),
            at=completion,
        )

    @handles("SC_INV")
    def on_inv(self, msg: ScInv) -> None:
        frame = self.frames[msg.dst_cluster][msg.vpn]
        # Defer while a just-granted access is pending, or while the read
        # grant that registered this cluster in ``read_dir`` is still in
        # flight (BUSY: answering now would orphan the arriving copy).
        # A READ frame with an upgrade outstanding must answer
        # immediately, though — the home's round is blocked on our ack
        # while our own request queues behind it (``_do_inv`` handles
        # that with the BUSY transition).
        if frame.pinv_count > 0 or frame.state is FrameState.BUSY:
            frame.queued_invals.append(msg)
            self.stats.record("revocations_deferred")
            return
        self._do_inv(msg)

    def _do_inv(self, msg: ScInv) -> None:
        cluster, vpn = msg.dst_cluster, msg.vpn
        costs = self.costs
        frame = self.frames[cluster][vpn]
        work = (
            self.dispatch_cost(cluster, vpn)
            + costs.free_page
            + costs.msg_send
            + costs.msg_intra_ssmp * len(frame.tlb_dir)
        )
        if frame.lock_held:
            # An upgrade of this copy is in flight; the grant reinstalls.
            for pid in sorted(frame.tlb_dir):
                self.tlbs[pid].invalidate(vpn)
            frame.tlb_dir.clear()
            frame.data = None
            frame.state = FrameState.BUSY
        else:
            self._drop_frame(frame)
        completion = self.machine.occupy(msg.dst_pid, work)
        self.bus.send(
            ScIack(
                vpn=vpn,
                src_pid=msg.dst_pid,
                src_cluster=cluster,
                dst_pid=msg.src_pid,
                dst_cluster=msg.src_cluster,
                txn=msg.txn,
            ),
            at=completion,
        )

    def _drop_frame(self, frame: PageFrame) -> None:
        for pid in sorted(frame.tlb_dir):
            self.tlbs[pid].invalidate(frame.vpn)
        frame.tlb_dir.clear()
        frame.state = FrameState.INVALID
        frame.data = None

    # ------------------------------------------------------------------
    # coherence round (home side)
    # ------------------------------------------------------------------

    @handles("SC_WB")
    def on_wb(self, msg: ScWb) -> None:
        home = self.home(msg.vpn)
        assert home.state is ServerState.REL_IN_PROG and home.count > 0, (
            f"SC_WB for vpn {msg.vpn} without a round open"
        )
        costs = self.costs
        home.data[:] = msg.data
        home.write_dir.discard(msg.src_cluster)
        if msg.kept:
            home.read_dir.add(msg.src_cluster)
        work = (
            self.dispatch_cost(msg.src_cluster, msg.vpn)
            + costs.apply_fixed
            + self.words_per_page * costs.apply_full_per_word
        )
        self._ack_round(home, work)

    @handles("SC_IACK")
    def on_iack(self, msg: ScIack) -> None:
        home = self.home(msg.vpn)
        assert home.state is ServerState.REL_IN_PROG and home.count > 0, (
            f"SC_IACK for vpn {msg.vpn} without a round open"
        )
        home.read_dir.discard(msg.src_cluster)
        self._ack_round(home, self.dispatch_cost(msg.src_cluster, msg.vpn))

    def _ack_round(self, home: HomePage, work: int) -> None:
        completion = self.machine.occupy(home.home_pid, work)
        home.count -= 1
        if home.count == 0:
            self.sim.schedule_at(completion, self._finish_round, home)

    def _finish_round(self, home: HomePage) -> None:
        home.state = ServerState.READ
        home.round_txn = -1
        msg = self.pending.pop(home.vpn)
        self._grant(home, msg, 0)
        self._next_queued(home)

    def _next_queued(self, home: HomePage) -> None:
        while home.state is not ServerState.REL_IN_PROG and (
            home.rd or home.wr
        ):
            queue = home.rd if home.rd else home.wr
            msg = queue.pop(0)
            self._begin_service(home, msg, 0)

    # ------------------------------------------------------------------
    # grants (client side)
    # ------------------------------------------------------------------

    @handles("SC_DATA", "SC_WGRANT")
    def on_grant(self, msg: ScData | ScWgrant) -> None:
        cluster, vpn = msg.dst_cluster, msg.vpn
        frame = self.frames[cluster][vpn]
        assert frame.lock_held, (
            f"grant for vpn {vpn} at cluster {cluster} with no request open"
        )
        frame.data = msg.data
        frame.state = (
            FrameState.WRITE if msg.write_grant else FrameState.READ
        )
        completion = self.machine.occupy(
            msg.dst_pid, self.dispatch_cost(cluster, vpn)
        )
        self.sim.schedule_at(completion, self._unlock, frame)

    def _unlock(self, frame: PageFrame) -> None:
        frame.lock_held = False
        waiters = frame.waiters
        frame.waiters = []
        for waiter in waiters:
            if frame.lock_held:
                frame.waiters.append(waiter)
            else:
                self._service(
                    waiter.pid, frame.vpn, waiter.want_write, waiter.on_done,
                    waiter.txn, served=True,
                )

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        if self.hw_bypass:
            return
        for vpn, home in self.homes.items():
            assert len(home.write_dir) <= 1, (
                f"vpn {vpn} has multiple exclusive writers: {home.write_dir}"
            )
            assert not (home.write_dir & home.read_dir), (
                f"vpn {vpn} lists cluster as both reader and writer"
            )
        for pid, tlb in enumerate(self.tlbs):
            cluster = self.config.cluster_of(pid)
            for vpn in tlb.mapped_vpns():
                frame = self.frames[cluster].get(vpn)
                assert frame is not None and frame.mapped, (
                    f"TLB of proc {pid} maps vpn {vpn} without a frame"
                )
                if tlb.has_write(vpn):
                    assert frame.state is FrameState.WRITE
