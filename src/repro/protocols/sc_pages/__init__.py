"""Sequentially-consistent single-writer pages (``protocol = "sc_pages"``)."""

from repro.protocols.sc_pages.protocol import REQUIRED_LABELS, SCPagesProtocol

__all__ = ["REQUIRED_LABELS", "SCPagesProtocol"]
