"""Typed messages of the sequentially-consistent single-writer engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar

import numpy as np

from repro.core.messages import ProtocolMessage

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.params import MachineConfig

__all__ = [
    "ScRreq",
    "ScWreq",
    "ScData",
    "ScWgrant",
    "ScDown",
    "ScWb",
    "ScInv",
    "ScIack",
]


@dataclass(frozen=True, eq=False)
class ScRreq(ProtocolMessage):
    """Cluster -> home: fetch a shared (read) copy."""

    label: ClassVar[str] = "SC_RREQ"

    @property
    def want_write(self) -> bool:
        return False


@dataclass(frozen=True, eq=False)
class ScWreq(ProtocolMessage):
    """Cluster -> home: request exclusive (write) ownership."""

    label: ClassVar[str] = "SC_WREQ"

    @property
    def want_write(self) -> bool:
        return True


@dataclass(frozen=True, eq=False)
class ScData(ProtocolMessage):
    """Home -> cluster: shared read copy."""

    label: ClassVar[str] = "SC_DATA"

    data: np.ndarray = None  # type: ignore[assignment]

    @property
    def write_grant(self) -> bool:
        return False

    def wire_bytes(self, config: "MachineConfig") -> int:
        return config.control_msg_bytes + config.page_size


@dataclass(frozen=True, eq=False)
class ScWgrant(ProtocolMessage):
    """Home -> cluster: exclusive write copy (everyone else is gone)."""

    label: ClassVar[str] = "SC_WGRANT"

    data: np.ndarray = None  # type: ignore[assignment]

    @property
    def write_grant(self) -> bool:
        return True

    def wire_bytes(self, config: "MachineConfig") -> int:
        return config.control_msg_bytes + config.page_size


@dataclass(frozen=True, eq=False)
class ScDown(ProtocolMessage):
    """Home -> writer: write back; ``drop`` invalidates, else downgrade
    to a shared copy."""

    label: ClassVar[str] = "SC_DOWN"

    drop: bool = False


@dataclass(frozen=True, eq=False)
class ScWb(ProtocolMessage):
    """Writer -> home: the authoritative page travels back; ``kept``
    reports whether a downgraded shared copy remains."""

    label: ClassVar[str] = "SC_WB"

    kept: bool = False
    data: np.ndarray = None  # type: ignore[assignment]

    def wire_bytes(self, config: "MachineConfig") -> int:
        return config.control_msg_bytes + config.page_size


@dataclass(frozen=True, eq=False)
class ScInv(ProtocolMessage):
    """Home -> reader: drop your shared copy."""

    label: ClassVar[str] = "SC_INV"


@dataclass(frozen=True, eq=False)
class ScIack(ProtocolMessage):
    """Reader -> home: shared copy dropped."""

    label: ClassVar[str] = "SC_IACK"
