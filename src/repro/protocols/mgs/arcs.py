"""MGS arc rules for the protocol invariant sanitizer.

The generic :class:`~repro.analysis.invariants.InvariantSanitizer` owns
the observation plumbing (bus taps, transaction traces, violation
raising); everything *semantic* — which message arcs are legal against
which page state, per docs/PROTOCOL.md — is MGS-specific and lives here,
behind :meth:`MGSProtocol.arc_rules`.  See docs/ANALYSIS.md for the
invariant catalogue with arc-by-arc cross-references.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.engine import ArcRules
from repro.core.page import FrameState, ServerState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.page import HomePage, PageFrame

__all__ = ["MGSArcRules"]


class MGSArcRules(ArcRules):
    """Validates MGS protocol transitions as the bus delivers them."""

    def __init__(self, sanitizer) -> None:
        super().__init__(sanitizer)
        self.bus = sanitizer.bus
        self.config = sanitizer.config
        #: RELs awaiting their RACK, keyed ``(txn, vpn)``
        self._pending_rels: dict[tuple[int, int], str] = {}

    def on_message(self, msg) -> None:
        check = self._CHECKS.get(msg.label)
        if check is not None:
            check(self, msg)

    # ------------------------------------------------------------------
    # violation plumbing
    # ------------------------------------------------------------------

    def _fail(self, rule: str, detail: str, vpn: int = -1, txn: int = -1):
        self.s.fail(rule, detail, vpn=vpn, txn=txn)

    def _frame(self, cluster: int, vpn: int) -> "PageFrame | None":
        return self.protocol.frames[cluster].get(vpn)

    def _need_frame(self, cluster: int, vpn: int, label: str, txn: int):
        frame = self._frame(cluster, vpn)
        if frame is None:
            self._fail(
                "frame-exists",
                f"{label} targets cluster {cluster} which has no frame",
                vpn=vpn,
                txn=txn,
            )
        return frame

    # ------------------------------------------------------------------
    # per-message pre-state checks (arcs per docs/PROTOCOL.md)
    # ------------------------------------------------------------------

    def _check_request(self, msg) -> None:
        """RREQ/WREQ (arc 5): requester must be mid-fault, frame BUSY."""
        frame = self._need_frame(msg.src_cluster, msg.vpn, msg.label, msg.txn)
        if frame.state is not FrameState.BUSY or not frame.lock_held:
            self._fail(
                "busy-request",
                f"{msg.label} from cluster {msg.src_cluster} but frame is "
                f"{frame.state.value} (lock={frame.lock_held})",
                vpn=msg.vpn,
                txn=msg.txn,
            )
        if not any(w.txn == msg.txn for w in frame.waiters):
            self._fail(
                "busy-waiter",
                f"{msg.label} carries txn {msg.txn} but no waiter entered "
                "with that transaction",
                vpn=msg.vpn,
                txn=msg.txn,
            )

    def _check_grant(self, msg) -> None:
        """RDAT/WDAT (arc 6): grant lands on a BUSY, locked frame."""
        frame = self._need_frame(msg.dst_cluster, msg.vpn, msg.label, msg.txn)
        if frame.state is not FrameState.BUSY:
            self._fail(
                "grant-busy",
                f"{msg.label} but frame is {frame.state.value}",
                vpn=msg.vpn,
                txn=msg.txn,
            )
        if not frame.lock_held or not frame.waiters:
            self._fail(
                "grant-lock",
                f"{msg.label} but mapping lock free or no waiters",
                vpn=msg.vpn,
                txn=msg.txn,
            )
        if msg.txn not in self.bus.open_txns:
            self._fail(
                "grant-txn",
                f"{msg.label} carries txn {msg.txn} which is not in flight",
                vpn=msg.vpn,
                txn=msg.txn,
            )

    def _check_upgrade(self, msg) -> None:
        """UPGRADE (arc 2): only a locked READ frame may upgrade."""
        frame = self._need_frame(msg.src_cluster, msg.vpn, msg.label, msg.txn)
        if frame.state is not FrameState.READ or not frame.lock_held:
            self._fail(
                "upgrade-read",
                f"UPGRADE but frame is {frame.state.value} "
                f"(lock={frame.lock_held})",
                vpn=msg.vpn,
                txn=msg.txn,
            )

    def _check_up_ack(self, msg) -> None:
        """UP_ACK (arc 7): privilege was raised before the ack."""
        frame = self._need_frame(msg.dst_cluster, msg.vpn, msg.label, msg.txn)
        if frame.state is not FrameState.WRITE or not frame.lock_held:
            self._fail(
                "upack-write",
                f"UP_ACK but frame is {frame.state.value} "
                f"(lock={frame.lock_held})",
                vpn=msg.vpn,
                txn=msg.txn,
            )

    def _check_pinv(self, msg) -> None:
        """PINV (arcs 11-12): shootdown only during an invalidation."""
        frame = self._need_frame(msg.dst_cluster, msg.vpn, msg.label, msg.txn)
        if frame.inval_kind is None or not frame.lock_held:
            self._fail(
                "pinv-inval",
                "PINV outside an invalidation "
                f"(kind={frame.inval_kind}, lock={frame.lock_held})",
                vpn=msg.vpn,
                txn=msg.txn,
            )
        if frame.pinv_count < 1:
            self._fail(
                "pinv-count",
                f"PINV with pinv_count={frame.pinv_count}",
                vpn=msg.vpn,
                txn=msg.txn,
            )
        if msg.dst_pid not in frame.tlb_dir:
            self._fail(
                "pinv-target",
                f"PINV for proc {msg.dst_pid} which is not in tlb_dir "
                f"{sorted(frame.tlb_dir)}",
                vpn=msg.vpn,
                txn=msg.txn,
            )

    def _check_pinv_ack(self, msg) -> None:
        """PINV_ACK (arcs 15-16): exactly matches outstanding shootdowns."""
        frame = self._need_frame(msg.dst_cluster, msg.vpn, msg.label, msg.txn)
        if frame.inval_kind is None or frame.pinv_count < 1:
            self._fail(
                "pinvack-count",
                "PINV_ACK with no shootdown outstanding "
                f"(kind={frame.inval_kind}, count={frame.pinv_count})",
                vpn=msg.vpn,
                txn=msg.txn,
            )

    def _check_inv(self, msg) -> None:
        """INV/1WINV (arc 14): sent only by an in-flight release round."""
        home = self.protocol.homes.get(msg.vpn)
        if home is None or home.state is not ServerState.REL_IN_PROG:
            self._fail(
                "inv-round",
                f"{msg.label} outside a release round",
                vpn=msg.vpn,
                txn=msg.txn,
            )
        if home.round_txn != msg.txn:
            self._fail(
                "inv-txn",
                f"{msg.label} carries txn {msg.txn} but the round is "
                f"txn {home.round_txn}",
                vpn=msg.vpn,
                txn=msg.txn,
            )
        if home.count < 1:
            self._fail(
                "inv-count",
                f"{msg.label} with round count={home.count}",
                vpn=msg.vpn,
                txn=msg.txn,
            )
        frame = self._need_frame(msg.dst_cluster, msg.vpn, msg.label, msg.txn)
        if getattr(msg, "recall", False):
            # Recall of a retained copy: the single-writer invalidation
            # just finished, so the mapping lock is still held and no
            # invalidation is in progress (Server._complete_release).
            if not frame.lock_held or frame.inval_kind is not None:
                self._fail(
                    "recall-state",
                    "recall INV but retained frame has lock="
                    f"{frame.lock_held}, kind={frame.inval_kind}",
                    vpn=msg.vpn,
                    txn=msg.txn,
                )

    def _check_inval_response(self, msg) -> None:
        """ACK/DIFF/1WDATA (arcs 22-23): answer the round in flight."""
        home = self.protocol.homes.get(msg.vpn)
        if home is None or home.state is not ServerState.REL_IN_PROG:
            self._fail(
                "resp-round",
                f"{msg.label} but the home is not in REL_IN_PROG",
                vpn=msg.vpn,
                txn=msg.txn,
            )
        if home.count < 1:
            self._fail(
                "resp-count",
                f"{msg.label} with round count={home.count}",
                vpn=msg.vpn,
                txn=msg.txn,
            )
        if home.round_txn != msg.txn:
            self._fail(
                "resp-txn",
                f"{msg.label} carries txn {msg.txn} but the round is "
                f"txn {home.round_txn}",
                vpn=msg.vpn,
                txn=msg.txn,
            )

    def _check_rel(self, msg) -> None:
        """REL (arc 8): register it; exactly one RACK must answer."""
        if msg.txn not in self.bus.open_txns:
            self._fail(
                "rel-txn",
                f"REL carries txn {msg.txn} which is not in flight",
                vpn=msg.vpn,
                txn=msg.txn,
            )
        key = (msg.txn, msg.vpn)
        if key in self._pending_rels:
            self._fail(
                "rel-duplicate",
                f"second REL for vpn {msg.vpn} within txn {msg.txn}",
                vpn=msg.vpn,
                txn=msg.txn,
            )
        self._pending_rels[key] = f"REL from p{msg.src_pid}"

    def _check_rack(self, msg) -> None:
        """RACK (arcs 9-10): answers exactly one outstanding REL."""
        key = (msg.txn, msg.vpn)
        if self._pending_rels.pop(key, None) is None:
            self._fail(
                "rack-unmatched",
                f"RACK for vpn {msg.vpn} txn {msg.txn} matches no "
                "outstanding REL (duplicate or spurious acknowledgement)",
                vpn=msg.vpn,
                txn=msg.txn,
            )

    def _check_wnotify(self, msg) -> None:
        """WNOTIFY (arc 18): an upgrade notice from a granted copy.

        Deliberately weak: between send and delivery a release round may
        invalidate or recall the upgrading cluster's copy, so the only
        always-sound pre-state is that the cluster has a frame at all
        (a notice from a never-granted cluster is spurious).
        """
        frame = self._frame(msg.src_cluster, msg.vpn)
        if frame is None:
            self._fail(
                "wnotify-frame",
                f"WNOTIFY from cluster {msg.src_cluster} which has no frame",
                vpn=msg.vpn,
                txn=msg.txn,
            )
        if self.protocol.homes.get(msg.vpn) is None:
            self._fail(
                "wnotify-home",
                f"WNOTIFY for vpn {msg.vpn} which has no home page",
                vpn=msg.vpn,
                txn=msg.txn,
            )

    def _check_retained_unlock(self, msg) -> None:
        """1W_UNLOCK: the retained copy is consistent and still locked."""
        frame = self._need_frame(msg.dst_cluster, msg.vpn, msg.label, msg.txn)
        if frame.state is not FrameState.WRITE or not frame.lock_held:
            self._fail(
                "retain-state",
                f"1W_UNLOCK but retained frame is {frame.state.value} "
                f"(lock={frame.lock_held})",
                vpn=msg.vpn,
                txn=msg.txn,
            )
        home = self.protocol.homes.get(msg.vpn)
        if home is None or msg.dst_cluster not in home.write_dir:
            self._fail(
                "retain-dir",
                f"1W_UNLOCK but cluster {msg.dst_cluster} is not in "
                "write_dir (retention must re-register the copy)",
                vpn=msg.vpn,
                txn=msg.txn,
            )

    _CHECKS = {
        "RREQ": _check_request,
        "WREQ": _check_request,
        "RDAT": _check_grant,
        "WDAT": _check_grant,
        "UPGRADE": _check_upgrade,
        "UP_ACK": _check_up_ack,
        "PINV": _check_pinv,
        "PINV_ACK": _check_pinv_ack,
        "INV": _check_inv,
        "1WINV": _check_inv,
        "ACK": _check_inval_response,
        "DIFF": _check_inval_response,
        "1WDATA": _check_inval_response,
        "REL": _check_rel,
        "RACK": _check_rack,
        "WNOTIFY": _check_wnotify,
        "1W_UNLOCK": _check_retained_unlock,
    }

    # ------------------------------------------------------------------
    # structural checks, scoped to one page
    # ------------------------------------------------------------------

    def check_page(self, vpn: int) -> None:
        """Cross-engine state consistency for one page (cheap, per msg)."""
        if vpn < 0:
            return
        home = self.protocol.homes.get(vpn)
        if home is not None:
            self._check_home(vpn, home)
        for cluster, frames in enumerate(self.protocol.frames):
            frame = frames.get(vpn)
            if frame is not None:
                self._check_frame(vpn, cluster, frame)

    def _check_home(self, vpn: int, home: "HomePage") -> None:
        overlap = home.read_dir & home.write_dir
        if overlap:
            self._fail(
                "dir-exclusion",
                f"clusters {sorted(overlap)} in both read_dir and write_dir",
                vpn=vpn,
                txn=home.round_txn,
            )
        if home.state is ServerState.REL_IN_PROG:
            if home.count < 0:
                self._fail("round-count", f"count={home.count}", vpn=vpn,
                           txn=home.round_txn)
            if not home.rl:
                self._fail(
                    "round-releaser",
                    "REL_IN_PROG with no queued releaser",
                    vpn=vpn,
                    txn=home.round_txn,
                )
            if home.round_txn not in self.bus.open_txns:
                self._fail(
                    "round-txn",
                    f"REL_IN_PROG round txn {home.round_txn} is not an "
                    "in-flight transaction",
                    vpn=vpn,
                    txn=home.round_txn,
                )
        else:
            if home.count != 0:
                self._fail(
                    "idle-count",
                    f"count={home.count} outside a release round",
                    vpn=vpn,
                )
            if home.single_writer is not None:
                self._fail(
                    "idle-single-writer",
                    f"single_writer={home.single_writer} outside a round",
                    vpn=vpn,
                )

    def _check_frame(self, vpn: int, cluster: int, frame: "PageFrame") -> None:
        if frame.state is FrameState.BUSY:
            if not frame.lock_held or not frame.waiters:
                self._fail(
                    "busy-lock",
                    f"BUSY frame in cluster {cluster} with lock="
                    f"{frame.lock_held}, waiters={len(frame.waiters)}",
                    vpn=vpn,
                )
            for w in frame.waiters:
                if w.txn >= 0 and w.txn not in self.bus.open_txns:
                    self._fail(
                        "busy-txn",
                        f"BUSY frame waiter txn {w.txn} is not in flight",
                        vpn=vpn,
                        txn=w.txn,
                    )
        if frame.pinv_count > 0 and frame.inval_kind is None:
            self._fail(
                "shootdown-kind",
                f"pinv_count={frame.pinv_count} with no invalidation "
                "in progress",
                vpn=vpn,
            )
        if frame.inval_kind is not None:
            if not frame.lock_held:
                self._fail(
                    "inval-lock",
                    f"invalidation '{frame.inval_kind}' without the "
                    "mapping lock",
                    vpn=vpn,
                    txn=frame.inval_txn,
                )
            if frame.inval_txn not in self.bus.open_txns:
                self._fail(
                    "inval-txn",
                    f"invalidation txn {frame.inval_txn} is not in flight",
                    vpn=vpn,
                    txn=frame.inval_txn,
                )
        if frame.twin is not None and (
            frame.state is not FrameState.WRITE or frame.aliases_home
        ):
            self._fail(
                "twin-leak",
                f"twin present on a {frame.state.value} frame "
                f"(aliases_home={frame.aliases_home}) in cluster {cluster}",
                vpn=vpn,
            )
        if frame.inval_kind is None and frame.pinv_count == 0:
            # TLB dir <= mapped processors.  Mid-shootdown the PINVs drop
            # TLB entries one by one while tlb_dir is only cleared at the
            # end, so the check is gated on no invalidation in progress.
            tlbs = self.protocol.tlbs
            for pid in sorted(frame.tlb_dir):
                if self.config.cluster_of(pid) != cluster:
                    self._fail(
                        "tlbdir-cluster",
                        f"proc {pid} in tlb_dir of cluster {cluster}",
                        vpn=vpn,
                    )
                if not frame.mapped or tlbs[pid].lookup(vpn) is None:
                    self._fail(
                        "tlbdir-mapped",
                        f"proc {pid} in tlb_dir but holds no TLB mapping "
                        f"(frame state {frame.state.value})",
                        vpn=vpn,
                    )

    # ------------------------------------------------------------------
    # quiescence sweep
    # ------------------------------------------------------------------

    def check_quiescent(self) -> None:
        """Full-state leak check once the simulation has drained."""
        protocol = self.protocol
        protocol.check_invariants()
        if self._pending_rels:
            (txn, vpn), who = sorted(self._pending_rels.items())[0]
            self._fail(
                "quiesce-rel",
                f"{who} (txn {txn}) was never answered by a RACK",
                vpn=vpn,
                txn=txn,
            )
        for vpn in sorted(protocol.homes):
            home = protocol.homes[vpn]
            self._check_home(vpn, home)
            if home.state is ServerState.REL_IN_PROG:
                self._fail("quiesce-round", "release round never completed",
                           vpn=vpn, txn=home.round_txn)
            if home.rl or home.rd or home.wr or home.pending_wnotify:
                self._fail(
                    "quiesce-queues",
                    f"home queues not drained (rl={len(home.rl)}, "
                    f"rd={len(home.rd)}, wr={len(home.wr)}, "
                    f"wnotify={len(home.pending_wnotify)})",
                    vpn=vpn,
                )
            if home.pending_rels:
                self._fail(
                    "quiesce-deferred",
                    f"{len(home.pending_rels)} deferred releases never "
                    "replayed",
                    vpn=vpn,
                )
            for cluster in sorted(home.write_dir):
                frame = protocol.frame(cluster, vpn)
                if frame is None or frame.state not in (
                    FrameState.WRITE,
                    FrameState.BUSY,
                ):
                    self._fail(
                        "quiesce-writedir",
                        f"write_dir lists cluster {cluster} whose frame is "
                        f"{'absent' if frame is None else frame.state.value}",
                        vpn=vpn,
                    )
        for cluster, frames in enumerate(protocol.frames):
            for vpn in sorted(frames):
                frame = frames[vpn]
                self._check_frame(vpn, cluster, frame)
                if frame.lock_held:
                    self._fail("quiesce-lock",
                               f"mapping lock leaked in cluster {cluster}",
                               vpn=vpn)
                if frame.waiters or frame.queued_invals:
                    self._fail(
                        "quiesce-waiters",
                        f"{len(frame.waiters)} waiters / "
                        f"{len(frame.queued_invals)} queued invalidations "
                        "leaked",
                        vpn=vpn,
                    )
                if frame.inval_kind is not None or frame.pinv_count:
                    self._fail(
                        "quiesce-inval",
                        f"invalidation '{frame.inval_kind}' "
                        f"(pinv_count={frame.pinv_count}) never completed",
                        vpn=vpn,
                    )
                if frame.state is FrameState.WRITE:
                    home = protocol.homes.get(vpn)
                    if home is None or cluster not in home.write_dir:
                        self._fail(
                            "quiesce-refill",
                            f"write copy in cluster {cluster} missing from "
                            "write_dir (directory refill forgotten)",
                            vpn=vpn,
                        )
                    if frame.twin is None and not frame.aliases_home:
                        self._fail(
                            "quiesce-twin",
                            f"write copy in cluster {cluster} has no twin "
                            "(diffs against it would be impossible)",
                            vpn=vpn,
                        )
        for pid, duq in enumerate(protocol.duqs):
            tlb = protocol.tlbs[pid]
            for vpn in duq.vpns():
                if not tlb.has_write(vpn):
                    self._fail(
                        "quiesce-duq",
                        f"DUQ of proc {pid} holds vpn {vpn} without a "
                        "write mapping (leaked entry)",
                        vpn=vpn,
                    )
        for pid, stolen in enumerate(protocol.stolen):
            for vpn in sorted(stolen):
                if protocol.tlbs[pid].has_write(vpn):
                    self._fail(
                        "quiesce-stolen",
                        f"stolen set of proc {pid} holds vpn {vpn} which "
                        "is still write-mapped",
                        vpn=vpn,
                    )

    # ------------------------------------------------------------------
    # queue-aware whole-state rules (explorer only)
    # ------------------------------------------------------------------

    def check_state(self, inflight) -> None:
        """Invariants over protocol state *plus* undelivered messages.

        These relate stable state to messages still in the event queue,
        so only the explorer (which snapshots between events) can
        evaluate them; each is the mid-run form of a quiescence rule,
        gated on "nothing in flight can still repair this".
        """
        super().check_state(inflight)
        protocol = self.protocol
        vpns_in_flight = {m.vpn for m in inflight}
        for cluster, frames in enumerate(protocol.frames):
            for vpn in sorted(frames):
                frame = frames[vpn]
                if (
                    frame.state is FrameState.WRITE
                    and not frame.aliases_home
                    and frame.twin is None
                ):
                    # A write copy's twin is created with the grant and
                    # only dropped when the copy itself is dropped or
                    # downgraded (atomically, within one handler), so no
                    # in-flight message can excuse its absence.
                    self._fail(
                        "state-twin",
                        f"write copy in cluster {cluster} has no twin "
                        "(diffs against it would be impossible)",
                        vpn=vpn,
                    )
                if frame.pinv_count > 0 and not any(
                    m.vpn == vpn and m.label in ("PINV", "PINV_ACK")
                    for m in inflight
                ):
                    # Shootdowns outstanding but nothing left in flight
                    # to complete them: the invalidation hangs forever.
                    self._fail(
                        "state-pinv",
                        f"cluster {cluster} counts {frame.pinv_count} "
                        "outstanding TLB shootdowns with no PINV or "
                        "PINV_ACK in flight",
                        vpn=vpn,
                    )
                if frame.state is FrameState.WRITE and not frame.lock_held:
                    home = protocol.homes.get(vpn)
                    if (
                        home is not None
                        and home.state is not ServerState.REL_IN_PROG
                        and vpn not in vpns_in_flight
                        and cluster not in home.write_dir
                    ):
                        # Nothing in flight for the page, no round open:
                        # the directory can no longer learn of this copy,
                        # so the next round will skip invalidating it.
                        self._fail(
                            "state-refill",
                            f"write copy in cluster {cluster} missing "
                            "from write_dir with nothing in flight to "
                            "register it",
                            vpn=vpn,
                        )
        for pid, duq in enumerate(protocol.duqs):
            tlb = protocol.tlbs[pid]
            for vpn in duq.vpns():
                home = protocol.homes.get(vpn)
                if (
                    not tlb.has_write(vpn)
                    and vpn not in vpns_in_flight
                    and (
                        home is None
                        or home.state is not ServerState.REL_IN_PROG
                    )
                ):
                    self._fail(
                        "state-duq",
                        f"DUQ of proc {pid} holds vpn {vpn} without a "
                        "write mapping and nothing in flight to resolve "
                        "it",
                        vpn=vpn,
                    )
