"""The Server engine (Figure 4, right).

Runs on the processor whose memory is home for a page.  It grants
replication requests (``RREQ``/``WREQ`` -> ``RDAT``/``WDAT``, arcs 17-19),
tracks the directories of read and write copies, and orchestrates eager
release operations (arcs 20-23): invalidate every replica, collect
acknowledgements/diffs, merge them into the home copy, and only then
acknowledge the releaser and serve queued requests.

Single-writer optimization (section 3.1.1): when the releasing SSMP holds
the only write copy, the Server sends ``1WINV`` instead of ``INV``; the
writer returns the whole page (``1WDATA``) and keeps its copy cached with
write privilege, so the Server retains it in ``write_dir`` afterwards.

Robustness rules for races (documented in DESIGN.md section 3):

* A ``REL`` arriving during ``REL_IN_PROG`` queues on ``rl`` and is
  acknowledged when the in-flight release completes — the releaser's diff
  was already collected by that round's invalidations.
* Invalidation targets are the directories plus the releasing cluster;
  clusters whose frame is mid-fetch (``BUSY``) are only targeted when the
  Server has already sent their data grant (cluster present in a
  directory), which guarantees the queued invalidation will eventually
  run and prevents request/invalidate deadlock.
* A ``WNOTIFY`` racing a release is queued and applied afterwards, and
  ignored if the round invalidated the upgrading cluster meanwhile.

All traffic flows as typed messages over the protocol bus; inbound arcs
are the ``@handles``-marked methods.  A release round's fan-out carries
the transaction id of the ``REL`` that started it; queued releasers and
requesters keep their own messages (and so their own transaction ids)
until the round completes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.bus import handles
from repro.core.messages import (
    Ack,
    Diff,
    Inv,
    MsgType,
    OneWdata,
    OneWinv,
    Rack,
    Rdat,
    Rel,
    RetainedUnlock,
    Rreq,
    Wdat,
    Wnotify,
    Wreq,
)
from repro.core.page import FrameState, HomePage, ServerState, apply_diff

if TYPE_CHECKING:
    from repro.protocols.mgs.protocol import MGSProtocol

__all__ = ["Server"]


class Server:
    """Server-side page replication and release engine."""

    def __init__(self, ctx: "MGSProtocol") -> None:
        self.ctx = ctx

    # ------------------------------------------------------------------
    # replication requests (arcs 17-19)
    # ------------------------------------------------------------------

    @handles(MsgType.RREQ, MsgType.WREQ)
    def on_request(self, msg: Rreq | Wreq) -> None:
        ctx = self.ctx
        home = ctx.home(msg.vpn)
        dispatch = ctx.dispatch_cost(msg.src_cluster, msg.vpn)
        if home.state is ServerState.REL_IN_PROG:
            ctx.machine.occupy(home.home_pid, dispatch)
            queue = home.wr if msg.want_write else home.rd
            queue.append(msg)
            ctx.stats.record("requests_queued_on_release")
            return
        self._grant(home, msg.src_cluster, msg.src_pid, msg.want_write,
                    dispatch, msg.txn)

    def _grant(
        self,
        home: HomePage,
        req_cluster: int,
        req_pid: int,
        want_write: bool,
        dispatch: int,
        txn: int,
    ) -> None:
        """Send page data to a requester and update the directories."""
        ctx = self.ctx
        costs = ctx.costs
        home_cluster = ctx.config.cluster_of(home.home_pid)
        lines = ctx.config.lines_per_page
        work = dispatch + costs.server_read + costs.msg_send
        if want_write:
            work += costs.server_write_extra
        if req_cluster == home_cluster:
            # The home SSMP maps the physical home copy directly: no page
            # cleaning, no DMA, and the frame will alias home data.
            payload = home.data
        else:
            # Sending a page requires global coherence: clean the home
            # SSMP's cached lines first (section 4.2.4), then DMA.
            ctx.cache.flush_page(home_cluster, ctx.page_first_line(home.vpn), lines)
            work += costs.clean_page(lines) + costs.dma_page(lines)
            payload = home.data.copy()
            ctx.stats.record("pages_transferred")
            ctx.record_page(home.vpn, "transfers")
        if want_write:
            home.write_dir.add(req_cluster)
            home.state = ServerState.WRITE
        else:
            home.read_dir.add(req_cluster)
        completion = ctx.machine.occupy(home.home_pid, work)
        grant = Wdat if want_write else Rdat
        ctx.bus.send(
            grant(
                vpn=home.vpn,
                src_pid=home.home_pid,
                src_cluster=home_cluster,
                dst_pid=req_pid,
                dst_cluster=req_cluster,
                txn=txn,
                data=payload,
            ),
            at=completion,
        )

    @handles(MsgType.WNOTIFY)
    def on_wnotify(self, msg: Wnotify) -> None:
        """WNOTIFY: a read copy was upgraded to write (arc 18)."""
        ctx = self.ctx
        home = ctx.home(msg.vpn)
        ctx.machine.occupy(home.home_pid, ctx.dispatch_cost(msg.src_cluster, msg.vpn))
        if home.state is ServerState.REL_IN_PROG:
            home.pending_wnotify.append(msg.src_cluster)
            return
        self._apply_wnotify(home, msg.src_cluster)

    def _apply_wnotify(self, home: HomePage, cluster: int) -> None:
        home.read_dir.discard(cluster)
        home.write_dir.add(cluster)
        if home.state is ServerState.READ:
            home.state = ServerState.WRITE

    # ------------------------------------------------------------------
    # release operations (arcs 20-23)
    # ------------------------------------------------------------------

    @handles(MsgType.REL)
    def on_rel(self, msg: Rel) -> None:
        ctx = self.ctx
        vpn, rel_cluster, rel_pid = msg.vpn, msg.src_cluster, msg.src_pid
        home = ctx.home(vpn)
        dispatch = ctx.dispatch_cost(rel_cluster, vpn)
        if home.state is ServerState.REL_IN_PROG:
            ctx.machine.occupy(home.home_pid, dispatch)
            frame = ctx.frame(rel_cluster, vpn)
            if (
                frame is not None
                and frame.state is FrameState.WRITE
                and frame.post_snapshot_writes
            ):
                # The releaser's copy holds writes newer than the round's
                # data snapshot (possible only for retained or aliased
                # write copies): coalescing would acknowledge a release
                # whose data never reached home.  Re-play it as a fresh
                # round once the current one completes.
                home.pending_rels.append(msg)
                ctx.stats.record("releases_deferred")
                return
            # Arc 22: queue the releaser; the in-flight round collects its
            # diff, so a single completion satisfies everyone.
            home.rl.append(msg)
            ctx.stats.record("releases_coalesced")
            return

        rel_frame = ctx.frame(rel_cluster, vpn)
        if rel_frame is None or rel_frame.state is FrameState.INVALID:
            # A "join" release: the releaser's copy was already
            # invalidated (its diff collected and merged by the round
            # that did it, which has completed — otherwise we would be
            # in REL_IN_PROG above).  The home is consistent with the
            # releaser's writes; acknowledge without a new round.
            completion = ctx.machine.occupy(
                home.home_pid, dispatch + ctx.costs.msg_send
            )
            ctx.stats.record("joins_acked")
            self._send_rack(home, msg, at=completion)
            return

        directories = home.read_dir | home.write_dir
        candidates = directories | {rel_cluster}
        live: list[int] = []
        for cluster in sorted(candidates):
            frame = ctx.frame(cluster, vpn)
            if frame is None or frame.state is FrameState.INVALID:
                continue
            if frame.state is FrameState.BUSY and cluster not in directories:
                # Its data grant has not been sent yet (request queued or
                # in flight): nothing to invalidate, and targeting it
                # would deadlock against its pending fetch.
                continue
            live.append(cluster)

        single_writer = (
            ctx.options.single_writer_opt
            and home.write_dir == {rel_cluster}
            and not home.pending_wnotify
            and rel_cluster in live
            # No other replica may hold (or be acquiring) write
            # privilege: an upgrade whose WNOTIFY is still in flight
            # would make the retained copy stale.
            and not any(
                c != rel_cluster
                and (f := ctx.frame(c, vpn)) is not None
                and (f.state is FrameState.WRITE or f.lock_held)
                for c in live
            )
        )
        home.state = ServerState.REL_IN_PROG
        home.rl = [msg]
        home.rd = []
        home.wr = []
        home.count = len(live)
        home.single_writer = rel_cluster if single_writer else None
        home.round_txn = msg.txn
        ctx.stats.record("release_rounds")

        work = dispatch + ctx.costs.server_release + ctx.costs.msg_send * len(live)
        completion = ctx.machine.occupy(home.home_pid, work)
        if not live:
            ctx.sim.schedule_at(completion, self._complete_release, home)
            return
        for cluster in live:
            frame = ctx.frame(cluster, vpn)
            inval = OneWinv if (single_writer and cluster == rel_cluster) else Inv
            ctx.bus.send(
                inval(
                    vpn=vpn,
                    src_pid=home.home_pid,
                    src_cluster=ctx.config.cluster_of(home.home_pid),
                    dst_pid=frame.owner_pid,
                    dst_cluster=cluster,
                    txn=msg.txn,
                ),
                at=completion,
            )

    def _send_rack(self, home: HomePage, rel: Rel, at: int | None) -> None:
        """Acknowledge one releaser, echoing its transaction id."""
        self.ctx.bus.send(
            Rack(
                vpn=rel.vpn,
                src_pid=home.home_pid,
                src_cluster=self.ctx.config.cluster_of(home.home_pid),
                dst_pid=rel.src_pid,
                dst_cluster=rel.src_cluster,
                txn=rel.txn,
                on_done=rel.on_done,
            ),
            at=at,
        )

    @handles(MsgType.ACK, MsgType.DIFF, MsgType.ONE_WDATA)
    def on_inval_response(self, msg: Ack | Diff | OneWdata) -> None:
        """ACK / DIFF / 1WDATA from a Remote Client (arcs 22-23)."""
        ctx = self.ctx
        home = ctx.home(msg.vpn)
        assert home.state is ServerState.REL_IN_PROG
        cluster = msg.src_cluster
        dispatch = ctx.dispatch_cost(cluster, msg.vpn)
        work = dispatch
        if isinstance(msg, Diff):
            apply_diff(home.data, msg.indices, msg.values)
            work += ctx.costs.apply_fixed + len(msg.indices) * ctx.costs.apply_per_word
            ctx.stats.record("diffs_merged")
        elif isinstance(msg, OneWdata):
            apply_diff(home.data, msg.indices, msg.values)
            work += ctx.words_per_page * ctx.costs.apply_full_per_word
            ctx.stats.record("full_pages_merged")
        foreign_writer = isinstance(msg, Diff) or (isinstance(msg, Ack) and msg.dirty)
        if foreign_writer and home.single_writer is not None:
            # A cluster the server believed was a reader contributed
            # writes — either a diff (it upgraded while its WNOTIFY raced
            # this release) or direct home-copy writes through the home
            # cluster's alias: the "single writer"'s retained copy is now
            # stale and must be recalled before the round completes.
            home.round_foreign_diff = True
        completion = ctx.machine.occupy(home.home_pid, work)
        home.count -= 1
        assert home.count >= 0
        if home.count == 0:
            ctx.sim.schedule_at(completion, self._complete_release, home)

    def _complete_release(self, home: HomePage) -> None:
        """Arc 23: home is consistent; wake releasers and serve queues."""
        ctx = self.ctx
        home_cluster = ctx.config.cluster_of(home.home_pid)
        if home.single_writer is not None and home.round_foreign_diff:
            # A foreign writer surfaced during what started as a
            # single-writer round: recall the retained copy before
            # completing, otherwise it would serve stale data.
            cluster = home.single_writer
            home.single_writer = None
            home.round_foreign_diff = False
            frame = ctx.frame(cluster, home.vpn)
            if frame is not None and frame.state is not FrameState.INVALID:
                home.count = 1
                completion = ctx.machine.occupy(home.home_pid, ctx.costs.msg_send)
                ctx.stats.record("one_writer_recalls")
                ctx.bus.send(
                    Inv(
                        vpn=home.vpn,
                        src_pid=home.home_pid,
                        src_cluster=home_cluster,
                        dst_pid=frame.owner_pid,
                        dst_cluster=cluster,
                        txn=home.round_txn,
                        recall=True,
                    ),
                    at=completion,
                )
                return
        home.round_foreign_diff = False
        home.read_dir = set()
        home.write_dir = set()
        retained = home.single_writer
        if retained is not None:
            home.write_dir.add(retained)
        home.single_writer = None
        home.state = ServerState.WRITE if home.write_dir else ServerState.READ
        if retained is not None:
            # Wake the retained copy: its mapping lock was held through
            # the round so it could not serve stale data mid-merge.
            frame = ctx.frame(retained, home.vpn)
            if frame is not None:
                ctx.bus.send(
                    RetainedUnlock(
                        vpn=home.vpn,
                        src_pid=home.home_pid,
                        src_cluster=home_cluster,
                        dst_pid=frame.owner_pid,
                        dst_cluster=retained,
                        txn=home.round_txn,
                    )
                )

        releasers = home.rl
        reads = home.rd
        writes = home.wr
        notifies = home.pending_wnotify
        home.rl, home.rd, home.wr, home.pending_wnotify = [], [], [], []
        home.round_txn = -1

        send_work = ctx.costs.msg_send * max(1, len(releasers))
        completion = ctx.machine.occupy(home.home_pid, send_work)
        for rel in releasers:
            self._send_rack(home, rel, at=completion)
        for cluster in notifies:
            frame = ctx.frame(cluster, home.vpn)
            if frame is not None and frame.state is FrameState.WRITE:
                self._apply_wnotify(home, cluster)
        for req in reads:
            self._grant(home, req.src_cluster, req.src_pid, False, 0, req.txn)
        for req in writes:
            self._grant(home, req.src_cluster, req.src_pid, True, 0, req.txn)
        if home.pending_rels:
            # Releases covering post-snapshot writes start a new round
            # (the first re-entry flips the state back to REL_IN_PROG;
            # the rest coalesce into it or defer again).
            pending = home.pending_rels
            home.pending_rels = []
            for rel in pending:
                self.on_rel(rel)
