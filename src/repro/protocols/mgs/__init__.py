"""The MGS multigrain shared-memory protocol (the paper's contribution).

Three cooperating engines implement the protocol, exactly as in Figure 4
of the paper:

* :class:`~repro.protocols.mgs.local_client.LocalClient` — runs on the
  faulting processor; maintains mapping (TLB) state and requests page
  data.
* :class:`~repro.protocols.mgs.remote_client.RemoteClient` — runs on the
  processor owning an SSMP's copy of a page; performs page invalidation,
  diffing, and upgrades.
* :class:`~repro.protocols.mgs.server.Server` — runs on the page's home
  processor; grants replication requests and orchestrates release
  operations.

:class:`~repro.protocols.mgs.protocol.MGSProtocol` wires the three
engines to the machine, hardware-coherence, and SVM substrates.
"""

from repro.protocols.mgs.duq import DUQ
from repro.protocols.mgs.protocol import REQUIRED_LABELS, MGSProtocol

__all__ = ["DUQ", "MGSProtocol", "REQUIRED_LABELS"]
