"""Protocol context and facade wiring the three MGS engines together.

:class:`MGSProtocol` is the entry point the runtime uses:

* :meth:`MGSProtocol.fault` — a processor suffered a mapping (TLB) fault;
  the Local Client services it and the callback fires at completion time.
* :meth:`MGSProtocol.release` — a processor reached a release point
  (unlock or barrier); the DUQ is drained, one ``REL`` at a time.
* ``poke`` / ``peek`` (inherited) — zero-cost home copy initialization /
  inspection, used to load application data before timing starts and to
  validate results afterwards.

The protocol also exposes the shared state the engines operate on: TLBs,
DUQs, per-cluster page frames, and per-page home state.
"""

from __future__ import annotations

from typing import Callable

from repro.core.engine import Protocol, ProtocolStats, register_engine
from repro.core.messages import MsgType
from repro.core.page import FrameState, PageFrame
from repro.hw import CacheSystem
from repro.machine import Machine
from repro.params import CostModel, MachineConfig
from repro.protocols.mgs.duq import DUQ
from repro.sim import Simulator
from repro.svm import AddressSpace

__all__ = ["MGSProtocol", "ProtocolStats", "REQUIRED_LABELS"]

#: every bus label the MGS engines must have a handler for: the sixteen
#: Table-2 message types plus the internal retained-copy unlock.  Kept as
#: a literal so ``repro.analysis.lint`` can check it statically against
#: the ``@handles`` registrations; the assert below pins it to ``MsgType``.
REQUIRED_LABELS = (
    "RREQ",
    "WREQ",
    "RDAT",
    "WDAT",
    "UPGRADE",
    "UP_ACK",
    "PINV",
    "PINV_ACK",
    "INV",
    "ACK",
    "DIFF",
    "REL",
    "RACK",
    "WNOTIFY",
    "1WINV",
    "1WDATA",
    "1W_UNLOCK",
)


@register_engine
class MGSProtocol(Protocol):
    """The complete multigrain shared-memory system of the paper."""

    name = "mgs"

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        aspace: AddressSpace,
        cache: CacheSystem,
        config: MachineConfig,
        costs: CostModel,
    ) -> None:
        super().__init__(sim, machine, aspace, cache, config, costs)
        self.duqs = [DUQ(p) for p in range(config.total_processors)]
        #: pages whose DUQ entry was stolen by an invalidation round
        #: (Table 1, arc 12) before this processor released them; the
        #: next release must join those rounds — see LocalClient.release
        self.stolen: list[set[int]] = [set() for _ in range(config.total_processors)]
        self.frames: list[dict[int, PageFrame]] = [
            {} for _ in range(config.num_clusters)
        ]

        # The engines import this module; bind them lazily to avoid cycles.
        from repro.protocols.mgs.local_client import LocalClient
        from repro.protocols.mgs.remote_client import RemoteClient
        from repro.protocols.mgs.server import Server

        self.local = LocalClient(self)
        self.remote = RemoteClient(self)
        self.server = Server(self)
        self.bus.register(self.local)
        self.bus.register(self.remote)
        self.bus.register(self.server)
        self.bus.check_complete()

    # ------------------------------------------------------------------
    # engine surface
    # ------------------------------------------------------------------

    def bus_handlers(self) -> frozenset[str]:
        return frozenset(REQUIRED_LABELS)

    def arc_rules(self, sanitizer):
        from repro.protocols.mgs.arcs import MGSArcRules

        return MGSArcRules(sanitizer)

    @classmethod
    def validate_config(cls, config: MachineConfig) -> None:
        """MGS implements every :class:`ProtocolOptions` knob."""

    def phase_state(self):
        return (
            self._phase_frames_state(self.frames),
            self._phase_homes_state(),
            tuple(tuple(duq.vpns()) for duq in self.duqs),
            tuple(tuple(sorted(s)) for s in self.stolen),
        )

    def phase_stat_cells(self) -> list[tuple[object, str]]:
        cells: list[tuple[object, str]] = []
        for duq in self.duqs:
            cells.append((duq, "enqueues"))
            cells.append((duq, "early_removals"))
        return cells

    # ------------------------------------------------------------------
    # state accessors
    # ------------------------------------------------------------------

    def frame(self, cluster: int, vpn: int) -> PageFrame | None:
        return self.frames[cluster].get(vpn)

    # ------------------------------------------------------------------
    # runtime-facing operations
    # ------------------------------------------------------------------

    def fault(
        self, pid: int, vpn: int, want_write: bool, on_done: Callable[[], None]
    ) -> None:
        """Service a TLB fault for ``pid`` on page ``vpn``.

        Must be invoked at the faulting thread's current time (the runtime
        schedules it on the event queue).  ``on_done`` fires when the
        mapping is installed; the elapsed interval is the fault latency,
        tracked as one bus transaction.
        """
        txn = self.bus.begin(
            "fault", pid, vpn, note="write" if want_write else "read"
        )

        def done() -> None:
            self.bus.end(txn)
            on_done()

        self.local.fault(pid, vpn, want_write, done, txn)

    def release(self, pid: int, on_done: Callable[[], None]) -> None:
        """Drain the DUQ of ``pid`` (release point semantics)."""
        txn = self.bus.begin("release", pid)

        def done() -> None:
            self.bus.end(txn)
            on_done()

        self.local.release(pid, done, txn)

    # ------------------------------------------------------------------
    # invariants (used by tests)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert cross-engine invariants; raises AssertionError on bugs."""
        if self.config.hardware_only:
            # MGS is nulled at C == P: TLB entries act as a touched-set
            # for SVM fill costs and have no frames behind them.
            return
        for pid, tlb in enumerate(self.tlbs):
            cluster = self.config.cluster_of(pid)
            for vpn in tlb.mapped_vpns():
                frame = self.frame(cluster, vpn)
                assert frame is not None and frame.mapped, (
                    f"TLB of proc {pid} maps vpn {vpn} but frame is absent/unmapped"
                )
                assert pid in frame.tlb_dir, (
                    f"proc {pid} maps vpn {vpn} but is missing from tlb_dir"
                )
                if tlb.has_write(vpn):
                    assert frame.state is FrameState.WRITE
                    assert vpn in self.duqs[pid], (
                        f"write mapping of vpn {vpn} on proc {pid} not in DUQ"
                    )
        for vpn, home in self.homes.items():
            for cluster in sorted(home.write_dir):
                frame = self.frame(cluster, vpn)
                assert frame is not None, (
                    f"write_dir of vpn {vpn} lists cluster {cluster} with no frame"
                )


assert set(REQUIRED_LABELS) == {t.value for t in MsgType} | {"1W_UNLOCK"}, (
    "REQUIRED_LABELS out of sync with MsgType"
)
