"""The Local Client engine (Figure 4, left).

Runs on the processor that suffers a TLB fault.  It maintains mapping
state (the three TLB states), acquires the per-mapping page-table lock,
and either fills the TLB from a resident local frame (arc 1/3/4), starts
an upgrade (arcs 2/5 via the Remote Client), or negotiates with the home
Server for replication of the page (arc 5, ``RREQ``/``WREQ``).

The Local Client also implements the client side of release operations:
walking the DUQ and sending one ``REL`` per dirty page, continuing on each
``RACK`` (arcs 8-10).

All traffic flows as typed messages over the protocol bus
(:mod:`repro.core.bus`); inbound arcs are the ``@handles``-marked
methods.  Every message carries the transaction id of the fault or
release operation it serves.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.bus import handles
from repro.core.messages import (
    MsgType,
    Rack,
    Rdat,
    Rel,
    Rreq,
    UpAck,
    Upgrade,
    Wdat,
    Wreq,
)
from repro.core.page import FrameState, PageFrame, Waiter
from repro.svm import MapMode

if TYPE_CHECKING:
    from repro.protocols.mgs.protocol import MGSProtocol

__all__ = ["LocalClient"]


class LocalClient:
    """Client-side mapping management for every processor."""

    def __init__(self, ctx: "MGSProtocol") -> None:
        self.ctx = ctx

    # ------------------------------------------------------------------
    # fault handling
    # ------------------------------------------------------------------

    def fault(
        self,
        pid: int,
        vpn: int,
        want_write: bool,
        on_done: Callable[[], None],
        txn: int,
    ) -> None:
        """Entry point for a TLB fault: trap + page-table probe."""
        ctx = self.ctx
        ctx.stats.record("faults")
        ctx.record_page(vpn, "faults")
        ctx.sim.schedule(
            ctx.costs.fault_overhead, self._service, pid, vpn, want_write, on_done, txn
        )

    def _service(
        self,
        pid: int,
        vpn: int,
        want_write: bool,
        on_done: Callable[[], None],
        txn: int,
    ) -> None:
        """Fault body, running with the page-table state visible.

        Re-entered for waiters when the mapping lock is released, so it
        must handle every frame state.
        """
        ctx = self.ctx
        cluster = ctx.config.cluster_of(pid)
        frame = ctx.frames[cluster].get(vpn)

        if frame is not None and frame.lock_held:
            # Mapping lock busy (fault, upgrade, or invalidation in
            # progress): queue, exactly like spinning on the lock.
            frame.waiters.append(Waiter(pid, want_write, on_done, txn))
            ctx.stats.record("fault_lock_waits")
            return

        if frame is not None and frame.state is FrameState.WRITE:
            # Arc 1 (read) or arcs 3,4 (write): local fill.
            self._local_fill(frame, pid, want_write, on_done)
            return

        if frame is not None and frame.state is FrameState.READ:
            if not want_write:
                self._local_fill(frame, pid, False, on_done)  # arc 1
            else:
                self._start_upgrade(frame, pid, on_done, txn)  # arc 2
            return

        # No usable frame (absent or INV): fetch from the home (arc 5).
        self._start_fetch(pid, vpn, want_write, on_done, frame, txn)

    def _local_fill(
        self,
        frame: PageFrame,
        pid: int,
        want_write: bool,
        on_done: Callable[[], None],
    ) -> None:
        """Copy the mapping into the TLB (the 1037-cycle "TLB Fill")."""
        ctx = self.ctx
        mode = MapMode.WRITE if want_write else MapMode.READ
        ctx.tlbs[pid].fill(frame.vpn, mode)
        frame.tlb_dir.add(pid)
        if want_write:
            ctx.duqs[pid].add(frame.vpn)
            frame.post_snapshot_writes = True
        ctx.stats.record("tlb_fill_local")
        ctx.sim.schedule(ctx.costs.map_fill, on_done)

    def _start_upgrade(
        self, frame: PageFrame, pid: int, on_done: Callable[[], None], txn: int
    ) -> None:
        """Arc 2: request read->write privilege upgrade from the Remote
        Client that owns this SSMP's copy."""
        ctx = self.ctx
        frame.lock_held = True
        ctx.stats.record("upgrades")
        ctx.bus.send(
            Upgrade(
                vpn=frame.vpn,
                src_pid=pid,
                src_cluster=frame.cluster,
                dst_pid=frame.owner_pid,
                dst_cluster=frame.cluster,
                txn=txn,
                on_done=on_done,
            ),
            at=ctx.sim.now + ctx.costs.msg_intra_ssmp,
        )

    def _start_fetch(
        self,
        pid: int,
        vpn: int,
        want_write: bool,
        on_done: Callable[[], None],
        frame: PageFrame | None,
        txn: int,
    ) -> None:
        """Arc 5: enter BUSY and request the page from the home Server."""
        ctx = self.ctx
        cluster = ctx.config.cluster_of(pid)
        home_pid = ctx.aspace.home_proc(vpn)
        home_cluster = ctx.config.cluster_of(home_pid)
        aliases_home = cluster == home_cluster
        owner = home_pid if aliases_home else pid  # first-touch placement
        if frame is None:
            frame = PageFrame(vpn=vpn, cluster=cluster, owner_pid=owner)
            ctx.frames[cluster][vpn] = frame
        else:
            frame.owner_pid = owner  # re-placed on refetch
        frame.aliases_home = aliases_home
        frame.state = FrameState.BUSY
        frame.lock_held = True
        frame.waiters.append(Waiter(pid, want_write, on_done, txn))
        send_cost = (
            ctx.costs.msg_intra_ssmp if aliases_home else ctx.costs.msg_inter_ssmp
        )
        request = Wreq if want_write else Rreq
        ctx.stats.record("write_requests" if want_write else "read_requests")
        ctx.bus.send(
            request(
                vpn=vpn,
                src_pid=pid,
                src_cluster=cluster,
                dst_pid=home_pid,
                dst_cluster=home_cluster,
                txn=txn,
            ),
            at=ctx.sim.now + send_cost,
        )

    # ------------------------------------------------------------------
    # data arrival (RDAT / WDAT, arcs 6-7)
    # ------------------------------------------------------------------

    @handles(MsgType.RDAT, MsgType.WDAT)
    def on_data(self, msg: Rdat | Wdat) -> None:
        """RDAT/WDAT arrived: install the frame and drain waiters."""
        ctx = self.ctx
        vpn, cluster, req_pid = msg.vpn, msg.dst_cluster, msg.dst_pid
        frame = ctx.frames[cluster][vpn]
        assert frame.state is FrameState.BUSY, (
            f"data grant for vpn {vpn} in cluster {cluster} but frame is {frame.state}"
        )
        dispatch = ctx.dispatch_cost(cluster, vpn)
        work = dispatch
        frame.data = msg.data
        if msg.write_grant:
            frame.state = FrameState.WRITE
            frame.post_snapshot_writes = True
            if not frame.aliases_home:
                frame.twin = msg.data.copy()
                work += ctx.costs.make_twin(ctx.words_per_page)
        else:
            frame.state = FrameState.READ
        completion = ctx.machine.occupy(req_pid, work)
        ctx.sim.schedule_at(completion, self.release_mapping_lock, frame)

    @handles(MsgType.UP_ACK)
    def on_up_ack(self, msg: UpAck) -> None:
        """UP_ACK arrived: complete the upgrading fault (arc 7)."""
        ctx = self.ctx
        vpn, cluster, pid = msg.vpn, msg.dst_cluster, msg.dst_pid
        frame = ctx.frames[cluster][vpn]
        assert frame.state is FrameState.WRITE
        completion = ctx.machine.occupy(pid, ctx.costs.msg_intra_ssmp)
        ctx.tlbs[pid].fill(vpn, MapMode.WRITE)
        frame.tlb_dir.add(pid)
        ctx.duqs[pid].add(vpn)
        frame.post_snapshot_writes = True
        ctx.sim.schedule_at(completion + ctx.costs.map_fill, msg.on_done)
        ctx.sim.schedule_at(completion, self.release_mapping_lock, frame)

    def release_mapping_lock(self, frame: PageFrame) -> None:
        """Release the page-table lock; run queued work in FIFO-ish order.

        Waiting faulters are serviced first (they re-enter ``_service``
        and may re-acquire the lock, e.g. for an upgrade); any queued
        invalidation then proceeds once the lock is free again.
        """
        ctx = self.ctx
        frame.lock_held = False
        waiters = frame.waiters
        frame.waiters = []
        for waiter in waiters:
            if frame.lock_held:
                frame.waiters.append(waiter)
            else:
                self._service(
                    waiter.pid, frame.vpn, waiter.want_write, waiter.on_done,
                    waiter.txn,
                )
        if not frame.lock_held and frame.queued_invals:
            kind, txn = frame.queued_invals.pop(0)
            ctx.remote.start_inval(frame, kind, txn)

    # ------------------------------------------------------------------
    # release operation (DUQ drain, arcs 8-10)
    # ------------------------------------------------------------------

    def release(self, pid: int, on_done: Callable[[], None], txn: int) -> None:
        """Release point: push every dirty page home, serially.

        Pages whose DUQ entry was stolen by an invalidation round (arc
        12) are re-queued as data-less "joins": their writes travelled
        with that round's diff, but this release may not complete until
        the round has — otherwise another processor could acquire the
        protecting lock and read a copy the round has not invalidated
        yet.  A join whose round already finished costs one immediately
        acknowledged REL.
        """
        ctx = self.ctx
        duq = ctx.duqs[pid]
        stolen = ctx.stolen[pid]
        if stolen:
            for vpn in sorted(stolen):
                duq.add(vpn)
            stolen.clear()
            ctx.stats.record("stolen_joins")
        if not duq:
            on_done()
            return
        ctx.stats.record("releases")
        self._release_next(pid, on_done, txn)

    def _release_next(self, pid: int, on_done: Callable[[], None], txn: int) -> None:
        ctx = self.ctx
        duq = ctx.duqs[pid]
        if not duq:
            ctx.sim.schedule(ctx.costs.release_resume, on_done)
            return
        vpn = duq.pop_head()
        home_pid = ctx.aspace.home_proc(vpn)
        cluster = ctx.config.cluster_of(pid)
        home_cluster = ctx.home_cluster(vpn)
        send_cost = (
            ctx.costs.msg_intra_ssmp
            if cluster == home_cluster
            else ctx.costs.msg_inter_ssmp
        )
        ctx.stats.record("rel_pages")
        ctx.bus.send(
            Rel(
                vpn=vpn,
                src_pid=pid,
                src_cluster=cluster,
                dst_pid=home_pid,
                dst_cluster=home_cluster,
                txn=txn,
                on_done=on_done,
            ),
            at=ctx.sim.now + ctx.costs.release_entry + send_cost,
        )

    @handles(MsgType.RACK)
    def on_rack(self, msg: Rack) -> None:
        """RACK arrived: continue with the next DUQ entry (arcs 9-10)."""
        ctx = self.ctx
        completion = ctx.machine.occupy(msg.dst_pid, ctx.costs.msg_inter_ssmp)
        ctx.sim.schedule_at(
            completion, self._release_next, msg.dst_pid, msg.on_done, msg.txn
        )
