"""The Remote Client engine (Figure 4, middle).

Runs on the processor that owns an SSMP's copy of a page (the first-touch
owner).  It performs page invalidation on the client side — flushing
hardware cache lines (page cleaning), shooting down TLB entries via
``PINV``, computing Munin-style diffs for write pages — and services
privilege upgrades (arc 13).

Invalidation kinds (Table 1, arcs 14-16):

* ``read`` — page had read privilege: clean + free, reply ``ACK``.
* ``write`` — page had write privilege: diff against the twin, free,
  reply ``DIFF``.
* ``1w`` — single-writer optimization: clean, send the whole page home
  (``1WDATA``), refresh the twin, and *keep* the page cached with write
  privilege; only TLB entries are dropped.

The diff (or page snapshot) is taken after all ``PINV`` acknowledgements
arrive, so writes performed through still-valid TLB entries during the
shootdown window are never lost.  This is the simulator's analogue of the
paper's translation-critical-section rollback (section 4.2.1).

All traffic flows as typed messages over the protocol bus; inbound arcs
are the ``@handles``-marked methods.  Invalidation responses carry the
transaction id of the release round that drove them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.bus import handles
from repro.core.messages import (
    Ack,
    Diff,
    Inv,
    MsgType,
    OneWdata,
    OneWinv,
    Pinv,
    PinvAck,
    RetainedUnlock,
    UpAck,
    Upgrade,
    Wnotify,
)
from repro.core.page import FrameState, PageFrame, dirty_lines, make_diff

if TYPE_CHECKING:
    from repro.protocols.mgs.protocol import MGSProtocol

__all__ = ["RemoteClient"]


class RemoteClient:
    """Client-side invalidation and upgrade engine."""

    def __init__(self, ctx: "MGSProtocol") -> None:
        self.ctx = ctx

    # ------------------------------------------------------------------
    # upgrades (arc 13)
    # ------------------------------------------------------------------

    @handles(MsgType.UPGRADE)
    def on_upgrade(self, msg: Upgrade) -> None:
        """UPGRADE: twin the read page and raise privilege to write."""
        ctx = self.ctx
        vpn, cluster, req_pid = msg.vpn, msg.src_cluster, msg.src_pid
        frame = ctx.frames[cluster][vpn]
        assert frame.state is FrameState.READ and frame.lock_held, (
            f"upgrade of vpn {vpn} found frame in {frame.state} "
            f"(lock={frame.lock_held})"
        )
        work = ctx.costs.msg_intra_ssmp + 2 * ctx.costs.msg_send
        if not frame.aliases_home:
            work += ctx.costs.make_twin(ctx.words_per_page)
            frame.twin = frame.data.copy()
        frame.state = FrameState.WRITE
        completion = ctx.machine.occupy(frame.owner_pid, work)
        ctx.bus.send(
            UpAck(
                vpn=vpn,
                src_pid=frame.owner_pid,
                src_cluster=cluster,
                dst_pid=req_pid,
                dst_cluster=cluster,
                txn=msg.txn,
                on_done=msg.on_done,
            ),
            at=completion,
        )
        home_pid = ctx.aspace.home_proc(vpn)
        ctx.bus.send(
            Wnotify(
                vpn=vpn,
                src_pid=frame.owner_pid,
                src_cluster=cluster,
                dst_pid=home_pid,
                dst_cluster=ctx.config.cluster_of(home_pid),
                txn=msg.txn,
            ),
            at=completion,
        )

    # ------------------------------------------------------------------
    # invalidations (arcs 11-16)
    # ------------------------------------------------------------------

    @handles(MsgType.INV, MsgType.ONE_WINV)
    def on_inv(self, msg: Inv | OneWinv) -> None:
        """INV or 1WINV arrived from the Server."""
        ctx = self.ctx
        frame = ctx.frames[msg.dst_cluster].get(msg.vpn)
        assert frame is not None, (
            f"INV for vpn {msg.vpn} in cluster {msg.dst_cluster} with no frame"
        )
        if isinstance(msg, Inv) and msg.recall:
            # Recall of a retained copy whose round saw foreign writes.
            # The mapping lock is still held by the just-finished
            # single-writer invalidation (see ``_inval_done``), so the
            # queue below would wait forever; take the lock over directly.
            assert frame.lock_held and frame.inval_kind is None
            frame.lock_held = False
            self.start_inval(frame, "inv", msg.txn)
            return
        if frame.lock_held:
            # Mapping lock busy (fault/upgrade in flight): queue; the
            # Local Client re-launches us when the lock is released.
            frame.queued_invals.append((msg.kind, msg.txn))
            ctx.stats.record("inv_lock_waits")
            return
        self.start_inval(frame, msg.kind, msg.txn)

    def start_inval(self, frame: PageFrame, kind: str, txn: int) -> None:
        """Begin the invalidation: clean/diff cost + TLB shootdown."""
        ctx = self.ctx
        costs = ctx.costs
        assert frame.inval_kind is None, "overlapping invalidations on one frame"
        frame.lock_held = True
        frame.inval_txn = txn

        lines = ctx.config.lines_per_page
        words = ctx.words_per_page
        dispatch = ctx.dispatch_cost(frame.cluster, frame.vpn)
        single_writer = kind == "1w" and frame.state is FrameState.WRITE
        if single_writer and not frame.aliases_home:
            work = costs.clean_page(lines) + words * costs.twin_refresh_per_word
            frame.inval_kind = "1w"
        elif frame.state is FrameState.WRITE and not frame.aliases_home:
            work = costs.make_diff(words) + costs.free_page
            frame.inval_kind = "write"
        else:
            # Read copies — and any home-cluster frame, whose writes land
            # directly in the physical home copy and need no diff.  An
            # aliased frame also needs no page cleaning here: the home
            # copy stays in place, and every outbound grant pays its own
            # cleaning cost before the DMA (Server._grant).
            if frame.aliases_home:
                clean = 0
            else:
                clean = costs.clean_page(lines)
                if ctx.options.fast_read_clean and frame.state is FrameState.READ:
                    # Future optimization of section 4.2.4: invalidation
                    # of read-only data leaves the critical path.
                    clean //= 4
            work = clean + costs.free_page
            if single_writer:
                frame.inval_kind = "1w_alias"
            elif frame.state is FrameState.WRITE and frame.aliases_home:
                # The home cluster wrote through the alias: its changes
                # are already merged, but the server must know a foreign
                # writer contributed so any single-writer retention in
                # this round gets recalled instead of going stale.
                frame.inval_kind = "alias_dirty"
            else:
                frame.inval_kind = "read"

        # Page cleaning drops this SSMP's hardware line state.
        ctx.cache.flush_page(
            frame.cluster, ctx.page_first_line(frame.vpn), lines
        )
        completion = ctx.machine.occupy(frame.owner_pid, dispatch + work)

        targets = sorted(frame.tlb_dir)
        frame.pinv_count = len(targets)
        ctx.stats.record("invalidations")
        ctx.record_page(frame.vpn, "invalidations")
        if not targets:
            ctx.sim.schedule_at(completion, self._inval_done, frame)
            return
        for pid in targets:
            ctx.stats.record("pinvs")
            ctx.bus.send(
                Pinv(
                    vpn=frame.vpn,
                    src_pid=frame.owner_pid,
                    src_cluster=frame.cluster,
                    dst_pid=pid,
                    dst_cluster=frame.cluster,
                    txn=txn,
                ),
                at=completion,
            )

    @handles(MsgType.PINV)
    def on_pinv(self, msg: Pinv) -> None:
        """PINV: drop the TLB entry and the DUQ entry (arcs 11-12)."""
        ctx = self.ctx
        pid = msg.dst_pid
        frame = ctx.frames[msg.dst_cluster][msg.vpn]
        completion = ctx.machine.occupy(pid, ctx.costs.msg_intra_ssmp)
        ctx.tlbs[pid].invalidate(frame.vpn)
        if ctx.duqs[pid].remove_if_present(frame.vpn):
            # Arc 12 stole a pending release: the round now carries this
            # processor's writes, so its next release point must not
            # complete before that round does (release semantics).  The
            # Local Client sends a data-less "join" REL for the page.
            ctx.stolen[pid].add(frame.vpn)
        ctx.bus.send(
            PinvAck(
                vpn=frame.vpn,
                src_pid=pid,
                src_cluster=frame.cluster,
                dst_pid=frame.owner_pid,
                dst_cluster=frame.cluster,
                txn=msg.txn,
            ),
            at=completion,
        )

    @handles(MsgType.PINV_ACK)
    def on_pinv_ack(self, msg: PinvAck) -> None:
        """Collect TLB shootdown acknowledgements (arcs 15-16)."""
        ctx = self.ctx
        frame = ctx.frames[msg.dst_cluster][msg.vpn]
        completion = ctx.machine.occupy(frame.owner_pid, ctx.costs.msg_intra_ssmp)
        frame.pinv_count -= 1
        if frame.pinv_count == 0:
            ctx.sim.schedule_at(completion, self._inval_done, frame)

    def _inval_done(self, frame: PageFrame) -> None:
        """All mappings gone: snapshot data, free/keep the page, reply."""
        ctx = self.ctx
        costs = ctx.costs
        kind = frame.inval_kind
        txn = frame.inval_txn
        frame.inval_kind = None
        frame.inval_txn = -1
        frame.tlb_dir.clear()
        # The snapshot below covers every write made so far: releases of
        # those writes may coalesce into the round in flight.
        frame.post_snapshot_writes = False
        home_pid = ctx.aspace.home_proc(frame.vpn)
        endpoints = dict(
            vpn=frame.vpn,
            src_pid=frame.owner_pid,
            src_cluster=frame.cluster,
            dst_pid=home_pid,
            dst_cluster=ctx.config.cluster_of(home_pid),
            txn=txn,
        )
        wpl = ctx.config.words_per_line

        if kind == "1w":
            # The whole page travels home (full-page DMA cost), but it is
            # *applied* as a diff against the twin so that diffs merged
            # concurrently in the same release round — a reader that
            # upgraded while the round was in flight — are never
            # clobbered by the full-page install.
            indices, values = make_diff(frame.data, frame.twin)
            response = OneWdata(indices=indices, values=values, **endpoints)
            frame.twin = frame.data.copy()
            # Page stays cached with write privilege (the optimization's
            # whole point: reward sharing within the SSMP).
            send_work = costs.dma_page(ctx.config.lines_per_page) + costs.msg_send
            ctx.stats.record("one_writer_releases")
        elif kind == "write":
            indices, values = make_diff(frame.data, frame.twin)
            response = Diff(indices=indices, values=values, **endpoints)
            frame.data = None
            frame.twin = None
            frame.state = FrameState.INVALID
            send_work = costs.dma_page(dirty_lines(indices, wpl)) + costs.msg_send
            ctx.stats.record("diffs_sent")
            ctx.stats.record("diff_words", len(indices))
            ctx.record_page(frame.vpn, "diff_words", len(indices))
        else:
            # "read", "alias_dirty", and "1w_alias": no data travels.
            response = Ack(dirty=kind == "alias_dirty", **endpoints)
            if kind in ("read", "alias_dirty"):
                frame.data = None
                frame.twin = None
                frame.state = FrameState.INVALID
            send_work = costs.msg_send

        completion = ctx.machine.occupy(frame.owner_pid, send_work)
        ctx.bus.send(response, at=completion)
        if kind in ("1w", "1w_alias"):
            # The retained copy must not serve new mappings until the
            # release round completes: the round may still merge foreign
            # contributions (making the copy stale until the recall), and
            # in the real system a freed page would force refetches to
            # queue at the server until the round's end.  Keep the
            # mapping lock held; the Server releases it at completion
            # (on_retained_unlock) or recalls the copy instead.
            return
        ctx.sim.schedule_at(completion, ctx.local.release_mapping_lock, frame)

    @handles(RetainedUnlock.label)
    def on_retained_unlock(self, msg: RetainedUnlock) -> None:
        """The release round completed: the retained copy is consistent
        with the home again and may serve local mappings."""
        ctx = self.ctx
        frame = ctx.frames[msg.dst_cluster][msg.vpn]
        ctx.machine.occupy(frame.owner_pid, ctx.costs.msg_intra_ssmp)
        ctx.local.release_mapping_lock(frame)
