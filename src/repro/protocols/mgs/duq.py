"""The Delayed Update Queue (DUQ).

MGS borrows the DUQ from Munin (section 3.1.1): every page a processor
writes is queued, and at a release point the queue is drained — a ``REL``
message goes to each page's home, serially, and the release completes
when every ``RACK`` has returned (Table 1, arcs 8-10).

A page is removed early if its mapping is invalidated before the release
(Table 1, arc 12): the diff was already collected by the invalidation
round, so releasing it again would be redundant.
"""

from __future__ import annotations

__all__ = ["DUQ"]


class DUQ:
    """Ordered set of dirty pages awaiting release, one per processor."""

    def __init__(self, pid: int) -> None:
        self.pid = pid
        self._pages: dict[int, None] = {}  # insertion-ordered set of vpns
        self.enqueues = 0
        self.early_removals = 0

    def add(self, vpn: int) -> None:
        """Queue a page (idempotent)."""
        if vpn not in self._pages:
            self._pages[vpn] = None
            self.enqueues += 1

    def remove_if_present(self, vpn: int) -> bool:
        """Remove ``vpn``; True if it was queued."""
        if vpn in self._pages:
            del self._pages[vpn]
            self.early_removals += 1
            return True
        return False

    def vpns(self) -> list[int]:
        """The queued pages, oldest first (for inspection/analysis)."""
        return list(self._pages)

    def pop_head(self) -> int:
        """Dequeue the oldest dirty page."""
        vpn = next(iter(self._pages))
        del self._pages[vpn]
        return vpn

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._pages

    def __bool__(self) -> bool:
        return bool(self._pages)
