"""The MGS multigrain shared-memory protocol (the paper's contribution).

Three cooperating engines implement the protocol, exactly as in Figure 4
of the paper:

* :class:`~repro.core.local_client.LocalClient` — runs on the faulting
  processor; maintains mapping (TLB) state and requests page data.
* :class:`~repro.core.remote_client.RemoteClient` — runs on the processor
  owning an SSMP's copy of a page; performs page invalidation, diffing,
  and upgrades.
* :class:`~repro.core.server.Server` — runs on the page's home processor;
  grants replication requests and orchestrates release operations.

:class:`~repro.core.protocol.MGSProtocol` wires the three engines to the
machine, hardware-coherence, and SVM substrates.
"""

from repro.core.bus import MessageBus, MessageFlow, Transaction, handles
from repro.core.messages import MsgType, ProtocolMessage
from repro.core.page import FrameState, HomePage, PageFrame, ServerState
from repro.core.protocol import MGSProtocol, ProtocolStats

__all__ = [
    "FrameState",
    "HomePage",
    "MessageBus",
    "MessageFlow",
    "MsgType",
    "PageFrame",
    "ProtocolMessage",
    "ServerState",
    "MGSProtocol",
    "ProtocolStats",
    "Transaction",
    "handles",
]
