"""Protocol-engine substrate: the message bus, page state, and the
pluggable :class:`~repro.core.engine.Protocol` interface.

The concrete coherence engines live in :mod:`repro.protocols`; the MGS
multigrain protocol (the paper's contribution) is
:class:`repro.protocols.mgs.MGSProtocol` and remains importable from
here for backward compatibility.  What stays in ``core`` is everything
engines share:

* :mod:`repro.core.bus` — the typed protocol message bus with
  ``@handles`` registration, taps, and transaction tracking.
* :mod:`repro.core.messages` — the Table-2 message vocabulary.
* :mod:`repro.core.page` — page frames, home pages, twin/diff helpers.
* :mod:`repro.core.engine` — the :class:`Protocol` interface and the
  string-keyed engine registry.
"""

from repro.core.bus import MessageBus, MessageFlow, Transaction, handles
from repro.core.engine import (
    ArcRules,
    Protocol,
    ProtocolStats,
    UnknownEngineError,
    create_engine,
    engine_class,
    engine_names,
    register_engine,
)
from repro.core.messages import MsgType, ProtocolMessage
from repro.core.page import FrameState, HomePage, PageFrame, ServerState

__all__ = [
    "ArcRules",
    "FrameState",
    "HomePage",
    "MessageBus",
    "MessageFlow",
    "MsgType",
    "PageFrame",
    "Protocol",
    "ProtocolMessage",
    "ServerState",
    "MGSProtocol",
    "ProtocolStats",
    "Transaction",
    "UnknownEngineError",
    "create_engine",
    "engine_class",
    "engine_names",
    "handles",
    "register_engine",
]


def __getattr__(name: str):
    # MGSProtocol historically lived here; import it lazily so that
    # ``import repro.core`` does not pull in the whole engine package.
    if name == "MGSProtocol":
        from repro.protocols.mgs.protocol import MGSProtocol

        return MGSProtocol
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
