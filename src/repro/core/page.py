"""Per-SSMP page frames, home pages, and the twin/diff machinery.

Client side (one per SSMP that replicated a page): a :class:`PageFrame`
holds the physical local copy, its twin (for the Munin-style multiple
writer protocol), the set of processors with TLB mappings (``tlb_dir`` in
Table 1), and the transient state used while a fault, upgrade, or
invalidation is in progress.

Server side (one per virtual page, at its home): a :class:`HomePage`
holds the physical home copy, the directories of replicated read/write
copies (``read_dir`` / ``write_dir``), and the release-in-progress
bookkeeping (``count``, queued requesters ``rd``/``wr``, queued releasers
``rl``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

__all__ = [
    "FrameState",
    "ServerState",
    "PageFrame",
    "HomePage",
    "Waiter",
    "make_diff",
    "apply_diff",
    "dirty_lines",
]


class FrameState(enum.Enum):
    """Client-side page state within one SSMP (Figure 4, Local Client)."""

    INVALID = "INV"
    BUSY = "BUSY"  # request outstanding to the home
    READ = "READ"
    WRITE = "WRITE"


class ServerState(enum.Enum):
    """Server-side page state at the home (Figure 4, Server)."""

    READ = "READ"
    WRITE = "WRITE"
    REL_IN_PROG = "REL_IN_PROG"


@dataclass(slots=True)
class Waiter:
    """A processor blocked on a mapping fault for a page."""

    pid: int
    want_write: bool
    on_done: Callable[[], None]
    #: transaction id of the fault this processor entered with
    txn: int = -1


@dataclass(slots=True)
class PageFrame:
    """One SSMP's replica of a virtual page."""

    vpn: int
    cluster: int
    owner_pid: int  # first-touch owner; the Remote Client runs here
    state: FrameState = FrameState.INVALID
    data: np.ndarray | None = None
    twin: np.ndarray | None = None
    #: processors of this SSMP holding a TLB mapping for the page
    tlb_dir: set[int] = field(default_factory=set)
    #: True while the per-mapping page-table lock is held (fault/upgrade)
    lock_held: bool = False
    #: faulting processors queued on the mapping lock
    waiters: list[Waiter] = field(default_factory=list)
    #: invalidations that arrived while the mapping lock was held,
    #: as ``(kind, txn)`` pairs
    queued_invals: list[Any] = field(default_factory=list)
    #: outstanding PINV acknowledgements during an invalidation
    pinv_count: int = 0
    #: kind of the invalidation in progress: "read", "write", or "1w"
    inval_kind: str | None = None
    #: transaction id of the release round driving the invalidation
    inval_txn: int = -1
    #: True while this frame aliases the home copy (home-cluster frame)
    aliases_home: bool = False
    #: a write mapping was handed out after the last invalidation
    #: snapshot pushed this frame's data home; a release for such writes
    #: cannot be coalesced into an in-flight release round
    post_snapshot_writes: bool = False

    @property
    def mapped(self) -> bool:
        return self.state in (FrameState.READ, FrameState.WRITE)


@dataclass(slots=True)
class HomePage:
    """Server-side state for one virtual page at its home."""

    vpn: int
    home_pid: int
    #: the home copy; always present — every creation site allocates it
    data: np.ndarray
    state: ServerState = ServerState.READ
    read_dir: set[int] = field(default_factory=set)  # clusters w/ read copy
    write_dir: set[int] = field(default_factory=set)  # clusters w/ write copy
    # --- REL_IN_PROG bookkeeping (Table 1, arcs 20-23) ---
    count: int = 0  # outstanding invalidation acknowledgements
    rl: list[Any] = field(default_factory=list)  # queued releasers (Rel msgs)
    rd: list[Any] = field(default_factory=list)  # queued read requests (Rreq)
    wr: list[Any] = field(default_factory=list)  # queued write requests (Wreq)
    #: transaction id of the release driving the in-flight round
    round_txn: int = -1
    pending_wnotify: list[int] = field(default_factory=list)
    #: releases that arrived mid-round but cover post-snapshot writes;
    #: each is re-played as a fresh round after the current one completes
    pending_rels: list[Any] = field(default_factory=list)
    #: cluster keeping its copy under the single-writer optimization
    single_writer: int | None = None
    #: a diff arrived from a cluster other than the single writer during
    #: the current release round (the retained copy must be recalled)
    round_foreign_diff: bool = False

    @property
    def copies(self) -> set[int]:
        """Clusters holding any replica."""
        return self.read_dir | self.write_dir


def make_diff(data: np.ndarray, twin: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Word-wise diff of a dirty page against its twin.

    Returns ``(indices, values)``: the word offsets that changed and their
    new values.  This is the Munin-style diff the Remote Client computes
    at invalidation time (Table 1, arc 14, ``make diff``).
    """
    changed = data != twin
    indices = np.flatnonzero(changed)
    return indices, data[indices].copy()


def apply_diff(home: np.ndarray, indices: np.ndarray, values: np.ndarray) -> None:
    """Merge a diff into the home copy (Table 1, arc 23, ``merge diffs``)."""
    home[indices] = values


def dirty_lines(indices: np.ndarray, words_per_line: int) -> int:
    """Number of distinct cache lines touched by a diff (for DMA sizing)."""
    if len(indices) == 0:
        return 0
    return len(np.unique(indices // words_per_line))
