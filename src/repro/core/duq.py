"""Backward-compatible alias: the DUQ moved to :mod:`repro.protocols.mgs`.

The delayed-update queue is MGS machinery (it drains at release points,
one ``REL`` per page), so it lives with the MGS engine package now.
"""

from repro.protocols.mgs.duq import DUQ

__all__ = ["DUQ"]
