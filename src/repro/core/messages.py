"""Protocol message vocabulary (Table 2 of the paper).

The simulator delivers messages as scheduled handler invocations, so these
enum members serve as the canonical names used for statistics, tracing and
tests rather than as wire formats.  The full Table 2 set:

=============  =====================================================
Local Client -> Remote Client
  UPGRADE      upgrade local page from read to write privilege
  PINV_ACK     acknowledge TLB invalidation
Remote Client -> Local Client
  PINV         invalidate TLB entry
  UP_ACK       acknowledge upgrade
Local Client -> Server
  RREQ         read data request
  WREQ         write data request
  REL          release request
Server -> Local Client
  RDAT         read data
  WDAT         write data
  RACK         acknowledge release
Remote Client -> Server
  ACK          acknowledge read invalidate
  DIFF         acknowledge write invalidate and return diff
  ONE_WDATA    acknowledge single-writer invalidate and return data
  WNOTIFY      notify upgrade from read to write privilege
Server -> Remote Client
  INV          invalidate page
  ONE_WINV     invalidate single-writer page
=============  =====================================================
"""

from __future__ import annotations

import enum

__all__ = ["MsgType"]


class MsgType(enum.Enum):
    """Every message type of the MGS protocol (Table 2)."""

    # Local Client -> Remote Client
    UPGRADE = "UPGRADE"
    PINV_ACK = "PINV_ACK"
    # Remote Client -> Local Client
    PINV = "PINV"
    UP_ACK = "UP_ACK"
    # Local Client -> Server
    RREQ = "RREQ"
    WREQ = "WREQ"
    REL = "REL"
    # Server -> Local Client
    RDAT = "RDAT"
    WDAT = "WDAT"
    RACK = "RACK"
    # Remote Client -> Server
    ACK = "ACK"
    DIFF = "DIFF"
    ONE_WDATA = "1WDATA"
    WNOTIFY = "WNOTIFY"
    # Server -> Remote Client
    INV = "INV"
    ONE_WINV = "1WINV"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
