"""Typed protocol messages (Table 2 of the paper).

Every arc of the MGS protocol travels as a frozen dataclass from this
module: one class per Table 2 message type, each carrying the page it
concerns (``vpn``), its endpoints (source/destination cluster and
processor), and the **transaction id** (``txn``) of the fault or release
operation it belongs to, assigned by the
:class:`~repro.core.bus.MessageBus` when the operation enters the
protocol and threaded through every message until the operation
completes.  Wire sizes are derived from the message type itself
(:meth:`ProtocolMessage.wire_bytes`), so call sites never hand-compute
payload bytes.  The full Table 2 set:

=============  =====================================================
Local Client -> Remote Client
  UPGRADE      upgrade local page from read to write privilege
  PINV_ACK     acknowledge TLB invalidation
Remote Client -> Local Client
  PINV         invalidate TLB entry
  UP_ACK       acknowledge upgrade
Local Client -> Server
  RREQ         read data request
  WREQ         write data request
  REL          release request
Server -> Local Client
  RDAT         read data
  WDAT         write data
  RACK         acknowledge release
Remote Client -> Server
  ACK          acknowledge read invalidate
  DIFF         acknowledge write invalidate and return diff
  ONE_WDATA    acknowledge single-writer invalidate and return data
  WNOTIFY      notify upgrade from read to write privilege
Server -> Remote Client
  INV          invalidate page
  ONE_WINV     invalidate single-writer page
=============  =====================================================

One implementation-internal message exists beyond Table 2:
:class:`RetainedUnlock` (label ``1W_UNLOCK``), the Server's completion
signal releasing the mapping lock of a copy retained under the
single-writer optimization (see ``docs/PROTOCOL.md``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, ClassVar

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.params import MachineConfig

__all__ = [
    "MsgType",
    "ProtocolMessage",
    "Upgrade",
    "PinvAck",
    "Pinv",
    "UpAck",
    "Rreq",
    "Wreq",
    "Rel",
    "Rdat",
    "Wdat",
    "Rack",
    "Ack",
    "Diff",
    "OneWdata",
    "Wnotify",
    "Inv",
    "OneWinv",
    "RetainedUnlock",
    "TABLE2_CLASSES",
    "message_class",
]

#: bytes per (word index, word value) pair in a diff payload
DIFF_ENTRY_BYTES = 12


class MsgType(enum.Enum):
    """Every message type of the MGS protocol (Table 2)."""

    # Local Client -> Remote Client
    UPGRADE = "UPGRADE"
    PINV_ACK = "PINV_ACK"
    # Remote Client -> Local Client
    PINV = "PINV"
    UP_ACK = "UP_ACK"
    # Local Client -> Server
    RREQ = "RREQ"
    WREQ = "WREQ"
    REL = "REL"
    # Server -> Local Client
    RDAT = "RDAT"
    WDAT = "WDAT"
    RACK = "RACK"
    # Remote Client -> Server
    ACK = "ACK"
    DIFF = "DIFF"
    ONE_WDATA = "1WDATA"
    WNOTIFY = "WNOTIFY"
    # Server -> Remote Client
    INV = "INV"
    ONE_WINV = "1WINV"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, eq=False)
class ProtocolMessage:
    """Base of every protocol message.

    ``txn`` is the transaction id of the fault or release operation this
    message serves; the bus records per-transaction latency under it.
    """

    #: the Table 2 type, or None for implementation-internal messages
    mtype: ClassVar[MsgType | None] = None
    #: wire label used for statistics and dispatch (``mtype.value`` for
    #: Table 2 messages)
    label: ClassVar[str] = "?"

    vpn: int
    src_pid: int
    src_cluster: int
    dst_pid: int
    dst_cluster: int
    txn: int

    def wire_bytes(self, config: "MachineConfig") -> int:
        """Bytes this message occupies on the wire (control header)."""
        return config.control_msg_bytes

    def describe(self) -> str:
        """Short human-readable rendering for traces."""
        return (
            f"{self.label} c{self.src_cluster}p{self.src_pid}"
            f"->c{self.dst_cluster}p{self.dst_pid}"
        )


# ----------------------------------------------------------------------
# Local Client -> Remote Client
# ----------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class Upgrade(ProtocolMessage):
    """Request read->write privilege upgrade (arc 2)."""

    mtype: ClassVar[MsgType] = MsgType.UPGRADE
    label: ClassVar[str] = MsgType.UPGRADE.value

    on_done: Callable[[], None] = None  # type: ignore[assignment]


@dataclass(frozen=True, eq=False)
class PinvAck(ProtocolMessage):
    """Acknowledge a TLB shootdown (arcs 15-16)."""

    mtype: ClassVar[MsgType] = MsgType.PINV_ACK
    label: ClassVar[str] = MsgType.PINV_ACK.value


# ----------------------------------------------------------------------
# Remote Client -> Local Client
# ----------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class Pinv(ProtocolMessage):
    """Invalidate one processor's TLB entry (arcs 11-12)."""

    mtype: ClassVar[MsgType] = MsgType.PINV
    label: ClassVar[str] = MsgType.PINV.value


@dataclass(frozen=True, eq=False)
class UpAck(ProtocolMessage):
    """Acknowledge an upgrade (arc 7)."""

    mtype: ClassVar[MsgType] = MsgType.UP_ACK
    label: ClassVar[str] = MsgType.UP_ACK.value

    on_done: Callable[[], None] = None  # type: ignore[assignment]


# ----------------------------------------------------------------------
# Local Client -> Server
# ----------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class Rreq(ProtocolMessage):
    """Read data request (arc 5)."""

    mtype: ClassVar[MsgType] = MsgType.RREQ
    label: ClassVar[str] = MsgType.RREQ.value

    @property
    def want_write(self) -> bool:
        return False


@dataclass(frozen=True, eq=False)
class Wreq(ProtocolMessage):
    """Write data request (arc 5)."""

    mtype: ClassVar[MsgType] = MsgType.WREQ
    label: ClassVar[str] = MsgType.WREQ.value

    @property
    def want_write(self) -> bool:
        return True


@dataclass(frozen=True, eq=False)
class Rel(ProtocolMessage):
    """Release one dirty page (arc 8)."""

    mtype: ClassVar[MsgType] = MsgType.REL
    label: ClassVar[str] = MsgType.REL.value

    on_done: Callable[[], None] = None  # type: ignore[assignment]


# ----------------------------------------------------------------------
# Server -> Local Client
# ----------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class Rdat(ProtocolMessage):
    """Read data grant (arc 6): control header plus the page."""

    mtype: ClassVar[MsgType] = MsgType.RDAT
    label: ClassVar[str] = MsgType.RDAT.value

    data: np.ndarray = None  # type: ignore[assignment]

    @property
    def write_grant(self) -> bool:
        return False

    def wire_bytes(self, config: "MachineConfig") -> int:
        return config.control_msg_bytes + config.page_size


@dataclass(frozen=True, eq=False)
class Wdat(ProtocolMessage):
    """Write data grant (arc 6): control header plus the page."""

    mtype: ClassVar[MsgType] = MsgType.WDAT
    label: ClassVar[str] = MsgType.WDAT.value

    data: np.ndarray = None  # type: ignore[assignment]

    @property
    def write_grant(self) -> bool:
        return True

    def wire_bytes(self, config: "MachineConfig") -> int:
        return config.control_msg_bytes + config.page_size


@dataclass(frozen=True, eq=False)
class Rack(ProtocolMessage):
    """Acknowledge a release (arcs 9-10)."""

    mtype: ClassVar[MsgType] = MsgType.RACK
    label: ClassVar[str] = MsgType.RACK.value

    on_done: Callable[[], None] = None  # type: ignore[assignment]


# ----------------------------------------------------------------------
# Remote Client -> Server
# ----------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class Ack(ProtocolMessage):
    """Acknowledge a read-copy invalidation (arc 15).

    ``dirty`` marks the home cluster's aliased write copy: its changes
    are already merged, but the Server must learn a foreign writer
    contributed so a single-writer retention in the round is recalled.
    """

    mtype: ClassVar[MsgType] = MsgType.ACK
    label: ClassVar[str] = MsgType.ACK.value

    dirty: bool = False


@dataclass(frozen=True, eq=False)
class Diff(ProtocolMessage):
    """Acknowledge a write-copy invalidation with the Munin diff."""

    mtype: ClassVar[MsgType] = MsgType.DIFF
    label: ClassVar[str] = MsgType.DIFF.value

    indices: np.ndarray = None  # type: ignore[assignment]
    values: np.ndarray = None  # type: ignore[assignment]

    def wire_bytes(self, config: "MachineConfig") -> int:
        return config.control_msg_bytes + DIFF_ENTRY_BYTES * len(self.indices)


@dataclass(frozen=True, eq=False)
class OneWdata(ProtocolMessage):
    """Single-writer invalidation response: the whole page travels home,
    applied as a diff against the twin (see ``docs/PROTOCOL.md``)."""

    mtype: ClassVar[MsgType] = MsgType.ONE_WDATA
    label: ClassVar[str] = MsgType.ONE_WDATA.value

    indices: np.ndarray = None  # type: ignore[assignment]
    values: np.ndarray = None  # type: ignore[assignment]

    def wire_bytes(self, config: "MachineConfig") -> int:
        return config.control_msg_bytes + config.page_size


@dataclass(frozen=True, eq=False)
class Wnotify(ProtocolMessage):
    """Notify the home of a read->write upgrade (arc 18)."""

    mtype: ClassVar[MsgType] = MsgType.WNOTIFY
    label: ClassVar[str] = MsgType.WNOTIFY.value


# ----------------------------------------------------------------------
# Server -> Remote Client
# ----------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class Inv(ProtocolMessage):
    """Invalidate an SSMP's page copy (arc 14).

    ``recall`` marks the follow-up invalidation of a retained
    single-writer copy whose round saw foreign writes; it takes over the
    mapping lock the finished single-writer invalidation still holds.
    """

    mtype: ClassVar[MsgType] = MsgType.INV
    label: ClassVar[str] = MsgType.INV.value

    recall: bool = False

    @property
    def kind(self) -> str:
        return "inv"


@dataclass(frozen=True, eq=False)
class OneWinv(ProtocolMessage):
    """Invalidate the single writer's copy, which it keeps (arc 14)."""

    mtype: ClassVar[MsgType] = MsgType.ONE_WINV
    label: ClassVar[str] = MsgType.ONE_WINV.value

    @property
    def kind(self) -> str:
        return "1w"


# ----------------------------------------------------------------------
# implementation-internal (not part of Table 2)
# ----------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class RetainedUnlock(ProtocolMessage):
    """Release-round completion signal for a retained single-writer copy:
    the copy is consistent with home again and may serve mappings."""

    mtype: ClassVar[None] = None
    label: ClassVar[str] = "1W_UNLOCK"


#: Table 2 message classes, keyed by type — the completeness checks and
#: the protocol documentation are generated from this registry.
TABLE2_CLASSES: dict[MsgType, type[ProtocolMessage]] = {
    cls.mtype: cls
    for cls in (
        Upgrade, PinvAck, Pinv, UpAck, Rreq, Wreq, Rel, Rdat, Wdat, Rack,
        Ack, Diff, OneWdata, Wnotify, Inv, OneWinv,
    )
}


def message_class(mtype: MsgType) -> type[ProtocolMessage]:
    """The message class implementing a Table 2 type."""
    return TABLE2_CLASSES[mtype]
