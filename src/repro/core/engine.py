"""The pluggable coherence-engine seam: ``Protocol`` plus the registry.

The simulation spine (``repro.runtime``) drives shared memory through a
small abstract surface — service a mapping fault, perform a release,
optionally perform acquire-side coherence, and load/inspect data outside
timed execution.  :class:`Protocol` pins that surface down so rival
coherence engines can be swapped in behind ``MachineConfig.protocol``:

* ``protocols/mgs`` — the paper's multigrain protocol (the default).
* ``protocols/swdsm`` — single-grain software page DSM (Figure 6's
  all-software baseline).
* ``protocols/sc_pages`` — sequentially-consistent single-writer pages.
* ``protocols/gcs`` — synchronization-piggybacked coherence in the
  spirit of Soul (GCS).

Engines register themselves by name (:func:`register_engine`); the
runtime constructs whatever ``config.protocol`` names via
:func:`create_engine`.  Two hooks keep the tooling engine-agnostic:
:meth:`Protocol.bus_handlers` declares the message labels an engine must
have registered on its bus (checked at construction, mirrored statically
by ``repro.analysis.lint``), and :meth:`Protocol.arc_rules` hands the
invariant sanitizer an engine-specific rule set.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Callable, ClassVar

import numpy as np

from repro.core.bus import MessageBus
from repro.core.page import HomePage
from repro.params import WORD_BYTES, CostModel, MachineConfig, ProtocolOptions

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hw import CacheSystem
    from repro.machine import Machine
    from repro.sim import Simulator
    from repro.svm import AddressSpace

__all__ = [
    "ArcRules",
    "Protocol",
    "ProtocolStats",
    "UnknownEngineError",
    "create_engine",
    "engine_class",
    "engine_names",
    "register_engine",
    "validate_engine_config",
]


class ProtocolStats:
    """Event counters for the software shared-memory protocol."""

    def __init__(self) -> None:
        self.counters: Counter = Counter()

    def record(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def __getitem__(self, name: str) -> int:
        return self.counters[name]

    def as_dict(self) -> dict[str, int]:
        return dict(self.counters)


class ArcRules:
    """Engine-specific validation rules for the invariant sanitizer.

    The sanitizer (:class:`repro.analysis.invariants.InvariantSanitizer`)
    owns the generic observation plumbing — bus taps, transaction traces,
    the message ring, violation raising — and delegates every semantic
    judgement to the rule object the engine's :meth:`Protocol.arc_rules`
    returned.  The base class accepts everything; engines override the
    three hooks with their own legal-arc catalogue.
    """

    def __init__(self, sanitizer) -> None:
        self.s = sanitizer
        self.protocol = sanitizer.protocol

    def on_message(self, msg) -> None:
        """Validate the pre-state of one delivered bus message."""

    def check_page(self, vpn: int) -> None:
        """Structural consistency of one page's distributed state."""

    def check_quiescent(self) -> None:
        """Full-state leak sweep once the simulation has drained."""

    def check_state(self, inflight) -> None:
        """Whole-state invariants over protocol state *plus* the set of
        in-flight messages.

        Only the explorer (:mod:`repro.analysis.explore`) can call this:
        the live sanitizer observes deliveries one at a time and never
        sees the event queue, but the bounded model checker snapshots
        every reachable state, so rules here may relate engine
        bookkeeping to the messages still queued — "this shootdown
        counter is non-zero, therefore an invalidation or its ack must
        still be in flight".  ``inflight`` is the ordered tuple of
        undelivered :class:`~repro.core.messages.ProtocolMessage`
        objects.  The base rule, valid for every engine: the protocol
        never has two byte-identical messages in flight at once (each
        arc is a distinct request/reply; duplication is the transport's
        business, below the bus).
        """
        seen: set[tuple] = set()
        for m in inflight:
            key = (
                m.label,
                m.vpn,
                m.src_pid,
                m.dst_pid,
                m.txn,
            )
            if key in seen:
                self.s.fail(
                    "inflight-dup",
                    f"two identical {m.label} messages in flight "
                    f"p{m.src_pid}->p{m.dst_pid}",
                    vpn=m.vpn,
                    txn=m.txn,
                )
            seen.add(key)


class Protocol:
    """Abstract coherence engine behind the runtime's shared memory.

    Subclasses must implement :meth:`fault` and :meth:`release` and
    declare their bus surface via :meth:`bus_handlers`.  The base class
    provides the state every engine shares — per-processor TLBs, the
    typed message bus, home pages, stats — plus the default behaviors
    MGS defined historically, so the MGS engine itself overrides almost
    nothing and stays cycle-identical to the pre-refactor code.

    State contract with :class:`repro.runtime.env.Env` (the application
    access engine binds these once, at spawn time):

    * ``tlbs[pid]`` — the per-processor TLB.
    * ``frames_view(pid)`` — a dict ``vpn -> frame`` of the replicas the
      processor reads through; each frame exposes ``data`` (numpy array)
      and ``owner_pid``.
    * ``hw_bypass`` — True when software coherence is nulled and the
      whole machine behaves as one hardware-coherent SSMP.
    * ``home(vpn).data`` — the authoritative copy used by the hardware
      bypass path and by :meth:`poke`/:meth:`peek`.
    """

    #: registry key; subclasses must override
    name: ClassVar[str] = ""
    #: True when the engine performs acquire-side coherence work; the
    #: runtime then calls :meth:`acquire` at lock acquisition and
    #: barrier departure
    needs_acquire: ClassVar[bool] = False
    #: adaptive burst-cache bypass profile (see ``repro.runtime.env``):
    #: how many execution bursts the access engine samples before
    #: deciding whether its burst caches pay off, and the average hits
    #: per burst below which it rebinds to the plain slow paths.  All-
    #: software engines (swdsm) override these: their miss services are
    #: so much more expensive that the sampling window itself is a cost,
    #: so they decide earlier and demand more.
    fp_sample_bursts: ClassVar[int] = 32
    fp_bypass_hits_per_burst: ClassVar[int] = 2

    def __init__(
        self,
        sim: "Simulator",
        machine: "Machine",
        aspace: "AddressSpace",
        cache: "CacheSystem",
        config: MachineConfig,
        costs: CostModel,
    ) -> None:
        from repro.svm import TLB

        self.sim = sim
        self.machine = machine
        self.aspace = aspace
        self.cache = cache
        self.config = config
        self.costs = costs
        self.options = config.options
        self.tlbs = [TLB(p) for p in range(config.total_processors)]
        self.homes: dict[int, HomePage] = {}
        self.stats = ProtocolStats()
        #: per-page event counts backing the multigrain-locality report
        #: (see repro.metrics.locality)
        self.page_stats: dict[int, dict[str, int]] = {}
        self.bus = MessageBus(machine, config)

    # ------------------------------------------------------------------
    # engine surface (the runtime calls these)
    # ------------------------------------------------------------------

    def fault(
        self, pid: int, vpn: int, want_write: bool, on_done: Callable[[], None]
    ) -> None:
        """Service a TLB fault for ``pid`` on page ``vpn``.

        Must be invoked at the faulting thread's current time; ``on_done``
        fires once the mapping is installed.
        """
        raise NotImplementedError

    def release(self, pid: int, on_done: Callable[[], None]) -> None:
        """Perform release-point coherence for ``pid`` (unlock/barrier)."""
        raise NotImplementedError

    def acquire(self, pid: int, on_done: Callable[[], None]) -> None:
        """Perform acquire-side coherence for ``pid``.

        Only called when :attr:`needs_acquire` is True (lock acquisition
        and barrier departure).  The default completes synchronously with
        zero cost.
        """
        on_done()

    @property
    def hw_bypass(self) -> bool:
        """True when software coherence is nulled for this run.

        The default mirrors MGS: at ``C == P`` the machine is one
        tightly-coupled SSMP and pure hardware coherence applies.
        Engines that never exploit hardware sharing (swdsm) return False
        unconditionally.
        """
        return self.config.hardware_only

    def frames_view(self, pid: int) -> dict:
        """The ``vpn -> frame`` mapping processor ``pid`` accesses through.

        The default is cluster-grain sharing: every processor of an SSMP
        sees the same frame dict.  Engines with a different replication
        grain (swdsm replicates per processor) override this.
        """
        return self.frames[self.config.cluster_of(pid)]

    def frame(self, cluster: int, vpn: int):
        """The frame replica ``cluster`` holds for ``vpn``, or None.

        Observers (the tracer, arc rules) use this to peek at replicas
        by index without knowing the engine's replication grain.
        """
        return self.frames[cluster].get(vpn)

    def bus_handlers(self) -> frozenset[str]:
        """The message labels this engine must have handlers for."""
        raise NotImplementedError

    def arc_rules(self, sanitizer) -> ArcRules:
        """Sanitizer rules for this engine (default: structural no-op)."""
        return ArcRules(sanitizer)

    def check_invariants(self) -> None:
        """Assert cross-engine invariants; raises AssertionError on bugs."""

    def check_bus(self) -> None:
        """Verify every declared label has a registered bus handler."""
        missing = sorted(self.bus_handlers() - self.bus.handled_labels())
        if missing:
            raise LookupError(
                f"engine {self.name!r} declares labels with no handler: "
                f"{missing}"
            )

    # ------------------------------------------------------------------
    # phase-replay surface (see repro.runtime.replay)
    # ------------------------------------------------------------------

    def phase_state(self):
        """Digestible summary of every behavior-bearing engine state.

        The phase-replay engine hashes this (together with the runtime's
        own state: TLBs, hardware directory, locks, barrier, handler
        occupancy) at every phase boundary; a repeated digest whose
        recorded phase left the digest unchanged is applied in closed
        form instead of re-executed.  The contract:

        * include everything that can influence *future* timing or data
          — frame/home metadata, page contents, per-processor queues;
        * exclude pure statistics (event counters, latency logs): those
          are carried by the recorded delta, and a monotone counter in
          the digest would make every phase look unique;
        * clock-like values must be encoded relative to the phase base
          time (the replay is a time translation).

        Returning ``None`` (the default) disables replay for the engine.
        """
        return None

    def phase_stat_cells(self) -> list[tuple[object, str]]:
        """Engine-private integer stat counters the replay delta must
        carry, as ``(obj, attr)`` pairs.  :class:`ProtocolStats` and
        ``page_stats`` are handled generically; engines add counters
        living on their own sub-objects (e.g. MGS's per-DUQ counters).
        """
        return []

    def _phase_frames_state(self, frames: list[dict]) -> tuple:
        """Digest helper: one entry per live :class:`PageFrame`."""
        from repro.runtime.replay import array_digest

        out = []
        for d in frames:
            out.append(
                tuple(
                    (
                        vpn,
                        f.state.value,
                        f.owner_pid,
                        None if f.data is None else array_digest(f.data),
                        None if f.twin is None else array_digest(f.twin),
                        tuple(sorted(f.tlb_dir)),
                        f.lock_held,
                        len(f.waiters),
                        len(f.queued_invals),
                        f.pinv_count,
                        f.inval_kind,
                        f.inval_txn != -1,
                        f.aliases_home,
                        f.post_snapshot_writes,
                    )
                    for vpn, f in d.items()
                )
            )
        return tuple(out)

    def _phase_homes_state(self) -> tuple:
        """Digest helper: one entry per instantiated :class:`HomePage`."""
        from repro.runtime.replay import array_digest

        return tuple(
            (
                vpn,
                h.state.value,
                h.home_pid,
                tuple(sorted(h.read_dir)),
                tuple(sorted(h.write_dir)),
                h.count,
                len(h.rl),
                len(h.rd),
                len(h.wr),
                h.round_txn != -1,
                tuple(h.pending_wnotify),
                len(h.pending_rels),
                h.single_writer,
                h.round_foreign_diff,
                array_digest(h.data),
            )
            for vpn, h in self.homes.items()
        )

    # ------------------------------------------------------------------
    # per-engine configuration validation
    # ------------------------------------------------------------------

    @classmethod
    def validate_config(cls, config: MachineConfig) -> None:
        """Reject configuration knobs this engine does not implement.

        The default refuses non-default :class:`ProtocolOptions`: those
        knobs (single-writer optimization, fast read clean) are MGS
        design-ablation switches and silently ignoring them would
        simulate a different machine than requested.  MGS overrides this
        to accept everything.
        """
        if config.options != ProtocolOptions():
            raise ValueError(
                f"options {config.options} are MGS-specific; engine "
                f"{cls.name!r} does not implement them"
            )

    # ------------------------------------------------------------------
    # shared state accessors
    # ------------------------------------------------------------------

    def home(self, vpn: int) -> HomePage:
        """Home state of a page, created on first use with zeroed data."""
        page = self.homes.get(vpn)
        if page is None:
            home_pid = self.aspace.home_proc(vpn)
            page = HomePage(
                vpn=vpn,
                home_pid=home_pid,
                data=np.zeros(self.config.words_per_page, dtype=np.float64),
            )
            self.homes[vpn] = page
        return page

    def home_cluster(self, vpn: int) -> int:
        return self.config.cluster_of(self.aspace.home_proc(vpn))

    def dispatch_cost(self, cluster: int, vpn: int) -> int:
        """Handler dispatch cost for a message between ``cluster`` and
        the page's home: cheaper when it never left the SSMP."""
        if cluster == self.home_cluster(vpn):
            return self.costs.msg_intra_ssmp
        return self.costs.msg_inter_ssmp

    def record_page(self, vpn: int, key: str, amount: int = 1) -> None:
        """Count a per-page protocol event for the locality report."""
        counts = self.page_stats.get(vpn)
        if counts is None:
            counts = {}
            self.page_stats[vpn] = counts
        counts[key] = counts.get(key, 0) + amount

    # ------------------------------------------------------------------
    # zero-cost data loading / inspection (outside timed execution)
    # ------------------------------------------------------------------

    def poke(self, addr: int, value: float) -> None:
        """Write the home copy directly, with no simulated cost.

        Used to load initial application data, the way the real system's
        loader populates memory before the timed region starts.
        """
        vpn = self.aspace.vpn_of(addr)
        word = self.aspace.word_of(addr)
        self.home(vpn).data[word] = value

    def peek(self, addr: int) -> float:
        """Read the current coherent value of ``addr`` with no cost."""
        vpn = self.aspace.vpn_of(addr)
        word = self.aspace.word_of(addr)
        return float(self.page_view(vpn)[word])

    def page_view(self, vpn: int) -> np.ndarray:
        """The current coherent contents of a page, cost-free.

        Used by result validation (``SharedArray.snapshot``) and
        :meth:`peek`.  The default returns the home copy, which release
        consistency makes authoritative after the final barrier.  Engines
        whose home copy can legitimately lag a live replica even then
        (sc_pages' exclusive writer) override this.
        """
        return self.home(vpn).data

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------

    @property
    def words_per_page(self) -> int:
        return self.config.words_per_page

    def page_first_line(self, vpn: int) -> int:
        return vpn * self.config.lines_per_page

    def addr_line(self, addr: int) -> int:
        return addr // self.config.line_size

    def word_index(self, addr: int) -> int:
        return (addr % self.config.page_size) // WORD_BYTES


# ---------------------------------------------------------------------------
# the registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, type[Protocol]] = {}


class UnknownEngineError(ValueError):
    """``config.protocol`` named an engine the registry does not know."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.known = engine_names()
        super().__init__(
            f"unknown protocol engine {name!r}; known engines: "
            f"{', '.join(self.known)}"
        )


def register_engine(cls: type[Protocol]) -> type[Protocol]:
    """Class decorator: register ``cls`` under ``cls.name``."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must set a non-empty name")
    existing = _REGISTRY.get(cls.name)
    if existing is not None and existing is not cls:
        raise ValueError(f"engine name {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def _ensure_loaded() -> None:
    # Engine packages self-register on import; repro.protocols pulls
    # them all in.  Imported lazily to keep repro.core cycle-free.
    import repro.protocols  # noqa: F401


def engine_names() -> list[str]:
    """Sorted names of every registered engine."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def engine_class(name: str) -> type[Protocol]:
    """The engine class registered under ``name``."""
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownEngineError(name) from None


def validate_engine_config(config: MachineConfig) -> None:
    """Registry lookup plus the engine's own option validation.

    ``MachineConfig.__post_init__`` calls this for every construction,
    so an unknown engine name or an engine/option mismatch fails at
    configuration time — long before a simulation starts.
    """
    engine_class(config.protocol).validate_config(config)


def create_engine(
    name: str,
    sim: "Simulator",
    machine: "Machine",
    aspace: "AddressSpace",
    cache: "CacheSystem",
    config: MachineConfig,
    costs: CostModel,
) -> Protocol:
    """Instantiate the engine registered under ``name``."""
    return engine_class(name)(sim, machine, aspace, cache, config, costs)
