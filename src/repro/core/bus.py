"""The typed protocol message bus.

The three MGS engines (Local Client, Remote Client, Server) never call
:meth:`Machine.send` directly: every Table 2 message is a frozen
dataclass from :mod:`repro.core.messages`, routed through one
:class:`MessageBus`.  The bus

* owns **handler registration** — engines mark methods with
  ``@handles(MsgType.RREQ)`` and :meth:`MessageBus.register` builds the
  dispatch table, enforcing exactly one handler per message type;
* routes through ``Machine.send`` (and therefore :mod:`repro.net`)
  **unchanged** — one simulator event per message, same label, same wire
  size, so the default-configuration cycle counts are bit-for-bit those
  of the hand-wired callbacks it replaced;
* auto-records **per-type observability** — delivered message counts,
  wire bytes, and wire latency per :class:`MsgType`, plus the
  per-transaction latency log behind the fault/release percentiles in
  ``RunResult`` (see :mod:`repro.metrics.transactions`);
* exposes **tap hooks** — :meth:`add_tap` observes every delivered
  message, :meth:`add_txn_tap` every transaction begin/end; the
  :class:`~repro.trace.ProtocolTracer` is nothing but a pair of taps.

Transactions
------------

A *transaction* is one runtime-visible protocol operation: a mapping
fault or a release point.  :meth:`begin` assigns a monotonically
increasing id when the operation enters the protocol; every message sent
on the operation's behalf carries that id in its ``txn`` field (through
request/grant chains, invalidation rounds, and coalesced releases), and
:meth:`end` closes the transaction when the operation's completion
callback fires.  The closed latency samples feed the p50/p95/max
histograms exported by ``metrics``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.core.messages import MsgType, ProtocolMessage

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine import Machine
    from repro.params import MachineConfig

__all__ = ["MessageBus", "MessageFlow", "Transaction", "handles"]


def handles(*types: MsgType | str) -> Callable:
    """Mark an engine method as the handler for the given message types.

    Accepts :class:`MsgType` members for Table 2 messages and bare label
    strings for implementation-internal ones.  The mark is inert until
    the engine is passed to :meth:`MessageBus.register`.
    """
    keys = tuple(t.value if isinstance(t, MsgType) else t for t in types)

    def mark(fn: Callable) -> Callable:
        fn._bus_handles = keys
        return fn

    return mark


@dataclass
class MessageFlow:
    """Delivered-message statistics for one message type."""

    count: int = 0
    bytes: int = 0
    #: total send->delivery cycles (includes queueing, faults, recovery)
    latency_cycles: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "count": self.count,
            "bytes": self.bytes,
            "latency_cycles": self.latency_cycles,
        }


@dataclass
class Transaction:
    """One protocol operation, from runtime entry to completion."""

    txn: int
    kind: str  # "fault" or "release"
    pid: int
    vpn: int  # -1 for release operations (they span pages)
    start: int
    note: str = ""
    end: int | None = None
    #: messages delivered on this transaction's behalf
    messages: int = 0

    @property
    def latency(self) -> int:
        assert self.end is not None
        return self.end - self.start


class MessageBus:
    """Typed dispatch, observability, and transaction bookkeeping."""

    def __init__(self, machine: "Machine", config: "MachineConfig") -> None:
        self.machine = machine
        self.config = config
        self._handlers: dict[str, Callable[[Any], None]] = {}
        self._taps: list[Callable[[ProtocolMessage, int, int], None]] = []
        self._txn_taps: list[Callable[[str, Transaction], None]] = []
        self.flows: dict[str, MessageFlow] = {}
        self._next_txn = 0
        self.open_txns: dict[int, Transaction] = {}
        #: closed-transaction latency samples, per kind
        self.latencies: dict[str, list[int]] = {}

    # ------------------------------------------------------------------
    # handler registration
    # ------------------------------------------------------------------

    def register(self, engine: Any) -> None:
        """Bind every ``@handles``-marked method of ``engine``."""
        for cls in type(engine).__mro__:
            for name, fn in vars(cls).items():
                keys = getattr(fn, "_bus_handles", None)
                if keys is None:
                    continue
                bound = getattr(engine, name)
                for key in keys:
                    if key in self._handlers:
                        raise ValueError(
                            f"duplicate handler for {key}: "
                            f"{self._handlers[key]} and {bound}"
                        )
                    self._handlers[key] = bound

    def handled_labels(self) -> set[str]:
        """Labels with a registered handler (Table 2 plus internal)."""
        return set(self._handlers)

    def check_complete(self) -> None:
        """Raise if any Table 2 message type lacks a handler."""
        missing = [m.value for m in MsgType if m.value not in self._handlers]
        if missing:
            raise LookupError(f"no handler registered for {missing}")

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------

    def send(self, msg: ProtocolMessage, at: int | None = None) -> None:
        """Route a typed message to its destination's registered handler.

        One ``Machine.send`` — the message travels the interconnect
        (latency, contention, faults, reliable transport) exactly as the
        positional-callback sends it replaced did.
        """
        label = msg.label
        if label not in self._handlers:
            raise LookupError(f"no handler registered for {label}")
        sent_at = self.machine.sim.now if at is None else at
        size = msg.wire_bytes(self.config)
        self.machine.send(
            msg.src_pid,
            msg.dst_pid,
            self._deliver,
            msg,
            sent_at,
            size,
            at=at,
            label=label,
            size=size,
        )

    def _deliver(self, msg: ProtocolMessage, sent_at: int, size: int) -> None:
        now = self.machine.sim.now
        flow = self.flows.get(msg.label)
        if flow is None:
            flow = self.flows[msg.label] = MessageFlow()
        flow.count += 1
        flow.bytes += size
        flow.latency_cycles += now - sent_at
        txn = self.open_txns.get(msg.txn)
        if txn is not None:
            txn.messages += 1
        for tap in self._taps:
            tap(msg, sent_at, now)
        self._handlers[msg.label](msg)

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------

    def begin(self, kind: str, pid: int, vpn: int = -1, note: str = "") -> int:
        """Open a transaction; returns the id its messages must carry."""
        txn = self._next_txn
        self._next_txn += 1
        rec = Transaction(
            txn=txn, kind=kind, pid=pid, vpn=vpn,
            start=self.machine.sim.now, note=note,
        )
        self.open_txns[txn] = rec
        for tap in self._txn_taps:
            tap("begin", rec)
        return txn

    def end(self, txn: int) -> None:
        """Close a transaction and record its latency sample."""
        rec = self.open_txns.pop(txn, None)
        if rec is None:
            return
        rec.end = self.machine.sim.now
        self.latencies.setdefault(rec.kind, []).append(rec.latency)
        for tap in self._txn_taps:
            tap("end", rec)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def add_tap(self, tap: Callable[[ProtocolMessage, int, int], None]) -> None:
        """Observe every delivered message: ``tap(msg, sent_at, now)``."""
        self._taps.append(tap)

    def add_txn_tap(self, tap: Callable[[str, Transaction], None]) -> None:
        """Observe transaction lifecycle: ``tap("begin"|"end", record)``."""
        self._txn_taps.append(tap)

    def remove_tap(self, tap: Callable[[ProtocolMessage, int, int], None]) -> None:
        """Detach a message tap added with :meth:`add_tap`."""
        self._taps.remove(tap)

    def remove_txn_tap(self, tap: Callable[[str, Transaction], None]) -> None:
        """Detach a transaction tap added with :meth:`add_txn_tap`."""
        self._txn_taps.remove(tap)

    def flow_summary(self) -> dict[str, dict[str, int]]:
        """Per-message-type counts/bytes/latency, JSON-ready."""
        return {label: f.as_dict() for label, f in sorted(self.flows.items())}

    def transaction_summary(self) -> dict[str, dict[str, float]]:
        """Fault/release latency percentiles, JSON-ready."""
        from repro.metrics.transactions import latency_summary

        return {
            kind: latency_summary(samples)
            for kind, samples in sorted(self.latencies.items())
        }
