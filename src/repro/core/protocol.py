"""Protocol context and facade wiring the three MGS engines together.

:class:`MGSProtocol` is the entry point the runtime uses:

* :meth:`MGSProtocol.fault` — a processor suffered a mapping (TLB) fault;
  the Local Client services it and the callback fires at completion time.
* :meth:`MGSProtocol.release` — a processor reached a release point
  (unlock or barrier); the DUQ is drained, one ``REL`` at a time.
* :meth:`MGSProtocol.poke` / :meth:`MGSProtocol.peek` — zero-cost home
  copy initialization / inspection, used to load application data before
  timing starts and to validate results afterwards.

The protocol also exposes the shared state the engines operate on: TLBs,
DUQs, per-cluster page frames, and per-page home state.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable

import numpy as np

from repro.core.bus import MessageBus
from repro.core.duq import DUQ
from repro.core.page import FrameState, HomePage, PageFrame
from repro.hw import CacheSystem
from repro.machine import Machine
from repro.params import WORD_BYTES, CostModel, MachineConfig
from repro.sim import Simulator
from repro.svm import TLB, AddressSpace

__all__ = ["MGSProtocol", "ProtocolStats"]


class ProtocolStats:
    """Event counters for the software shared-memory protocol."""

    def __init__(self) -> None:
        self.counters: Counter = Counter()

    def record(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def __getitem__(self, name: str) -> int:
        return self.counters[name]

    def as_dict(self) -> dict[str, int]:
        return dict(self.counters)


class MGSProtocol:
    """The complete multigrain shared-memory system of the paper."""

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        aspace: AddressSpace,
        cache: CacheSystem,
        config: MachineConfig,
        costs: CostModel,
    ) -> None:
        self.sim = sim
        self.machine = machine
        self.aspace = aspace
        self.cache = cache
        self.config = config
        self.costs = costs
        self.options = config.options
        self.tlbs = [TLB(p) for p in range(config.total_processors)]
        self.duqs = [DUQ(p) for p in range(config.total_processors)]
        #: pages whose DUQ entry was stolen by an invalidation round
        #: (Table 1, arc 12) before this processor released them; the
        #: next release must join those rounds — see LocalClient.release
        self.stolen: list[set[int]] = [set() for _ in range(config.total_processors)]
        self.frames: list[dict[int, PageFrame]] = [
            {} for _ in range(config.num_clusters)
        ]
        self.homes: dict[int, HomePage] = {}
        self.stats = ProtocolStats()
        #: per-page event counts backing the multigrain-locality report
        #: (see repro.metrics.locality)
        self.page_stats: dict[int, dict[str, int]] = {}

        # The engines import this module; bind them lazily to avoid cycles.
        from repro.core.local_client import LocalClient
        from repro.core.remote_client import RemoteClient
        from repro.core.server import Server

        self.bus = MessageBus(machine, config)
        self.local = LocalClient(self)
        self.remote = RemoteClient(self)
        self.server = Server(self)
        self.bus.register(self.local)
        self.bus.register(self.remote)
        self.bus.register(self.server)
        self.bus.check_complete()

    # ------------------------------------------------------------------
    # state accessors
    # ------------------------------------------------------------------

    def home(self, vpn: int) -> HomePage:
        """Home state of a page, created on first use with zeroed data."""
        page = self.homes.get(vpn)
        if page is None:
            home_pid = self.aspace.home_proc(vpn)
            page = HomePage(
                vpn=vpn,
                home_pid=home_pid,
                data=np.zeros(self.config.words_per_page, dtype=np.float64),
            )
            self.homes[vpn] = page
        return page

    def frame(self, cluster: int, vpn: int) -> PageFrame | None:
        return self.frames[cluster].get(vpn)

    def home_cluster(self, vpn: int) -> int:
        return self.config.cluster_of(self.aspace.home_proc(vpn))

    def dispatch_cost(self, cluster: int, vpn: int) -> int:
        """Handler dispatch cost for a message between ``cluster`` and
        the page's home: cheaper when it never left the SSMP."""
        if cluster == self.home_cluster(vpn):
            return self.costs.msg_intra_ssmp
        return self.costs.msg_inter_ssmp

    # ------------------------------------------------------------------
    # runtime-facing operations
    # ------------------------------------------------------------------

    def fault(
        self, pid: int, vpn: int, want_write: bool, on_done: Callable[[], None]
    ) -> None:
        """Service a TLB fault for ``pid`` on page ``vpn``.

        Must be invoked at the faulting thread's current time (the runtime
        schedules it on the event queue).  ``on_done`` fires when the
        mapping is installed; the elapsed interval is the fault latency,
        tracked as one bus transaction.
        """
        txn = self.bus.begin(
            "fault", pid, vpn, note="write" if want_write else "read"
        )

        def done() -> None:
            self.bus.end(txn)
            on_done()

        self.local.fault(pid, vpn, want_write, done, txn)

    def release(self, pid: int, on_done: Callable[[], None]) -> None:
        """Drain the DUQ of ``pid`` (release point semantics)."""
        txn = self.bus.begin("release", pid)

        def done() -> None:
            self.bus.end(txn)
            on_done()

        self.local.release(pid, done, txn)

    def record_page(self, vpn: int, key: str, amount: int = 1) -> None:
        """Count a per-page protocol event for the locality report."""
        counts = self.page_stats.get(vpn)
        if counts is None:
            counts = {}
            self.page_stats[vpn] = counts
        counts[key] = counts.get(key, 0) + amount

    # ------------------------------------------------------------------
    # zero-cost data loading / inspection (outside timed execution)
    # ------------------------------------------------------------------

    def poke(self, addr: int, value: float) -> None:
        """Write the home copy directly, with no simulated cost.

        Used to load initial application data, the way the real system's
        loader populates memory before the timed region starts.
        """
        vpn = self.aspace.vpn_of(addr)
        word = self.aspace.word_of(addr)
        self.home(vpn).data[word] = value

    def peek(self, addr: int) -> float:
        """Read the current *home* value of ``addr`` with no cost.

        Only meaningful at points where the home is consistent (after the
        final barrier of a run).
        """
        vpn = self.aspace.vpn_of(addr)
        word = self.aspace.word_of(addr)
        home = self.home(vpn)
        # After a clean finish the home copy is authoritative, but a
        # retained single-writer copy may hold newer released data; the
        # protocol keeps the home consistent at releases, so home is safe.
        return float(home.data[word])

    # ------------------------------------------------------------------
    # invariants (used by tests)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert cross-engine invariants; raises AssertionError on bugs."""
        if self.config.hardware_only:
            # MGS is nulled at C == P: TLB entries act as a touched-set
            # for SVM fill costs and have no frames behind them.
            return
        for pid, tlb in enumerate(self.tlbs):
            cluster = self.config.cluster_of(pid)
            for vpn in tlb.mapped_vpns():
                frame = self.frame(cluster, vpn)
                assert frame is not None and frame.mapped, (
                    f"TLB of proc {pid} maps vpn {vpn} but frame is absent/unmapped"
                )
                assert pid in frame.tlb_dir, (
                    f"proc {pid} maps vpn {vpn} but is missing from tlb_dir"
                )
                if tlb.has_write(vpn):
                    assert frame.state is FrameState.WRITE
                    assert vpn in self.duqs[pid], (
                        f"write mapping of vpn {vpn} on proc {pid} not in DUQ"
                    )
        for vpn, home in self.homes.items():
            for cluster in sorted(home.write_dir):
                frame = self.frame(cluster, vpn)
                assert frame is not None, (
                    f"write_dir of vpn {vpn} lists cluster {cluster} with no frame"
                )

    @property
    def words_per_page(self) -> int:
        return self.config.words_per_page

    def page_first_line(self, vpn: int) -> int:
        return vpn * self.config.lines_per_page

    def addr_line(self, addr: int) -> int:
        return addr // self.config.line_size

    def word_index(self, addr: int) -> int:
        return (addr % self.config.page_size) // WORD_BYTES
