"""First-class protocol tracing.

Attach a :class:`ProtocolTracer` to a runtime before running and every
protocol-level event — faults, grants, release rounds, invalidations,
TLB shootdowns, diffs — is recorded with its simulated time and the
page's state snapshot.  The traces that debugged this reproduction's
protocol races (DESIGN.md notes 6-8) were exactly these.

Example::

    rt = Runtime(config)
    tracer = ProtocolTracer(rt, pages=[vpn])   # or pages=None for all
    ... build and run ...
    print(tracer.render())

Tracing wraps engine methods at attach time and is zero-cost when not
attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.core.page import FrameState

if TYPE_CHECKING:
    from repro.runtime import Runtime

__all__ = ["TraceEvent", "ProtocolTracer"]


@dataclass
class TraceEvent:
    """One protocol event."""

    time: int
    vpn: int
    kind: str
    detail: str
    snapshot: str

    def __str__(self) -> str:
        return f"[{self.time:>12,}] vpn={self.vpn:#x} {self.kind:<10} {self.detail}  |  {self.snapshot}"


class ProtocolTracer:
    """Records protocol events for selected pages of one runtime."""

    def __init__(self, rt: "Runtime", pages: Iterable[int] | None = None) -> None:
        self.rt = rt
        self.pages = set(pages) if pages is not None else None
        self.events: list[TraceEvent] = []
        self._attach()

    # ------------------------------------------------------------------

    def _want(self, vpn: int) -> bool:
        return self.pages is None or vpn in self.pages

    def _snapshot(self, vpn: int) -> str:
        ctx = self.rt.protocol
        home = ctx.homes.get(vpn)
        if home is None:
            return "home: untouched"
        parts = [
            f"server={home.state.value}"
            f" rd={sorted(home.read_dir)} wr={sorted(home.write_dir)}"
        ]
        if home.single_writer is not None:
            parts.append(f"1w={home.single_writer}")
        for cluster in range(self.rt.config.num_clusters):
            frame = ctx.frame(cluster, vpn)
            if frame is None or frame.state is FrameState.INVALID:
                continue
            flags = ""
            if frame.lock_held:
                flags += "L"
            if frame.aliases_home:
                flags += "A"
            parts.append(
                f"c{cluster}:{frame.state.value}{flags}"
                f"(tlb={sorted(frame.tlb_dir)})"
            )
        return " ".join(parts)

    def _record(self, vpn: int, kind: str, detail: str) -> None:
        if not self._want(vpn):
            return
        self.events.append(
            TraceEvent(
                time=self.rt.sim.now,
                vpn=vpn,
                kind=kind,
                detail=detail,
                snapshot=self._snapshot(vpn),
            )
        )

    def _attach(self) -> None:
        protocol = self.rt.protocol
        local, remote, server = protocol.local, protocol.remote, protocol.server
        tracer = self

        def wrap(obj, name, describe):
            original = getattr(obj, name)

            def wrapper(*args, **kwargs):
                info = describe(*args, **kwargs)
                if info is not None:
                    tracer._record(*info)
                return original(*args, **kwargs)

            setattr(obj, name, wrapper)

        wrap(local, "fault", lambda pid, vpn, w, cb: (
            vpn, "FAULT", f"proc {pid} {'write' if w else 'read'}"))
        wrap(local, "on_data", lambda vpn, cl, pid, payload, w: (
            vpn, "GRANT", f"{'WDAT' if w else 'RDAT'} -> cluster {cl}"))
        wrap(local, "on_rack", lambda pid, cb: None)
        wrap(remote, "on_upgrade", lambda vpn, cl, pid, cb: (
            vpn, "UPGRADE", f"cluster {cl} proc {pid}"))
        wrap(remote, "start_inval", lambda frame, kind: (
            frame.vpn, "INVAL", f"cluster {frame.cluster} kind={kind}"))
        wrap(remote, "on_pinv", lambda frame, pid: (
            frame.vpn, "PINV", f"proc {pid}"))
        wrap(server, "on_request", lambda vpn, cl, pid, w: (
            vpn, "REQ", f"{'WREQ' if w else 'RREQ'} cluster {cl}"))
        wrap(server, "on_rel", lambda vpn, cl, pid, cb: (
            vpn, "REL", f"cluster {cl} proc {pid}"))
        wrap(server, "on_inval_response", lambda vpn, cl, payload: (
            vpn, "RESP", f"{payload[0]} from cluster {cl}"))
        wrap(server, "on_wnotify", lambda vpn, cl: (
            vpn, "WNOTIFY", f"cluster {cl}"))

    # ------------------------------------------------------------------

    def filter(self, kind: str | None = None, vpn: int | None = None):
        """Events matching the given kind and/or page."""
        out = self.events
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        if vpn is not None:
            out = [e for e in out if e.vpn == vpn]
        return out

    def render(self, limit: int | None = None) -> str:
        events = self.events if limit is None else self.events[:limit]
        lines = [str(e) for e in events]
        if limit is not None and len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)
