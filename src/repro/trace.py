"""First-class protocol tracing, as a message-bus tap.

Attach a :class:`ProtocolTracer` to a runtime before running and every
protocol-level event — faults, grants, release rounds, invalidations,
TLB shootdowns, diffs — is recorded with its simulated time, its
transaction id, and the page's state snapshot.  The traces that debugged
this reproduction's protocol races (DESIGN.md notes 6-8) were exactly
these.

Example::

    rt = Runtime(config)
    tracer = ProtocolTracer(rt, pages=[vpn])   # or pages=None for all
    ... build and run ...
    print(tracer.render())
    print(tracer.render_transactions())        # grouped by fault/release

The tracer never wraps a method: it is nothing but a pair of
:class:`~repro.core.bus.MessageBus` taps (one for delivered messages, one
for transaction begin/end), so it observes exactly the typed messages the
engines exchange and is zero-cost when not attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.core.bus import Transaction
from repro.core.messages import Inv, MsgType, ProtocolMessage
from repro.core.page import FrameState

if TYPE_CHECKING:
    from repro.runtime import Runtime

__all__ = ["TraceEvent", "ProtocolTracer"]

#: trace-event kind for each wire label; labels not listed trace as
#: themselves (PINV_ACK, UPGRADE, UP_ACK, RACK, WNOTIFY, 1W_UNLOCK)
KIND_BY_LABEL = {
    MsgType.RREQ.value: "REQ",
    MsgType.WREQ.value: "REQ",
    MsgType.RDAT.value: "GRANT",
    MsgType.WDAT.value: "GRANT",
    MsgType.REL.value: "REL",
    MsgType.INV.value: "INVAL",
    MsgType.ONE_WINV.value: "INVAL",
    MsgType.ACK.value: "RESP",
    MsgType.DIFF.value: "RESP",
    MsgType.ONE_WDATA.value: "RESP",
    MsgType.PINV.value: "PINV",
}


@dataclass
class TraceEvent:
    """One protocol event."""

    time: int
    vpn: int
    kind: str
    detail: str
    snapshot: str
    txn: int = -1

    def __str__(self) -> str:
        return (
            f"[{self.time:>12,}] t{self.txn:<4} vpn={self.vpn:#x} "
            f"{self.kind:<10} {self.detail}  |  {self.snapshot}"
        )


def _detail(msg: ProtocolMessage, kind: str) -> str:
    if kind == "REQ":
        return f"{msg.label} cluster {msg.src_cluster}"
    if kind == "GRANT":
        return f"{msg.label} -> cluster {msg.dst_cluster}"
    if kind == "REL":
        return f"cluster {msg.src_cluster} proc {msg.src_pid}"
    if kind == "INVAL":
        detail = f"cluster {msg.dst_cluster} kind={msg.kind}"
        if isinstance(msg, Inv) and msg.recall:
            detail += " recall"
        return detail
    if kind == "RESP":
        return f"{msg.label} from cluster {msg.src_cluster}"
    if kind == "PINV":
        return f"proc {msg.dst_pid}"
    if kind == "UPGRADE":
        return f"cluster {msg.src_cluster} proc {msg.src_pid}"
    return msg.describe()


class ProtocolTracer:
    """Records protocol events for selected pages of one runtime."""

    def __init__(self, rt: "Runtime", pages: Iterable[int] | None = None) -> None:
        self.rt = rt
        self.pages = set(pages) if pages is not None else None
        self.events: list[TraceEvent] = []
        #: completed fault/release transactions, in completion order
        self.transactions: list[Transaction] = []
        bus = rt.protocol.bus
        bus.add_tap(self._on_message)
        bus.add_txn_tap(self._on_txn)

    # ------------------------------------------------------------------

    def _want(self, vpn: int) -> bool:
        return self.pages is None or vpn in self.pages

    def _snapshot(self, vpn: int) -> str:
        ctx = self.rt.protocol
        home = ctx.homes.get(vpn)
        if home is None:
            return "home: untouched"
        parts = [
            f"server={home.state.value}"
            f" rd={sorted(home.read_dir)} wr={sorted(home.write_dir)}"
        ]
        if home.single_writer is not None:
            parts.append(f"1w={home.single_writer}")
        for cluster in range(self.rt.config.num_clusters):
            frame = ctx.frame(cluster, vpn)
            if frame is None or frame.state is FrameState.INVALID:
                continue
            flags = ""
            if frame.lock_held:
                flags += "L"
            if frame.aliases_home:
                flags += "A"
            parts.append(
                f"c{cluster}:{frame.state.value}{flags}"
                f"(tlb={sorted(frame.tlb_dir)})"
            )
        return " ".join(parts)

    def _record(self, vpn: int, kind: str, detail: str, txn: int) -> None:
        if not self._want(vpn):
            return
        self.events.append(
            TraceEvent(
                time=self.rt.sim.now,
                vpn=vpn,
                kind=kind,
                detail=detail,
                snapshot=self._snapshot(vpn),
                txn=txn,
            )
        )

    # -- bus taps ------------------------------------------------------

    def _on_message(self, msg: ProtocolMessage, sent_at: int, now: int) -> None:
        kind = KIND_BY_LABEL.get(msg.label, msg.label)
        self._record(msg.vpn, kind, _detail(msg, kind), msg.txn)

    def _on_txn(self, phase: str, rec: Transaction) -> None:
        if phase == "begin" and rec.kind == "fault":
            self._record(rec.vpn, "FAULT", f"proc {rec.pid} {rec.note}", rec.txn)
        elif phase == "end":
            self.transactions.append(rec)

    # ------------------------------------------------------------------

    def filter(self, kind: str | None = None, vpn: int | None = None):
        """Events matching the given kind and/or page."""
        out = self.events
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        if vpn is not None:
            out = [e for e in out if e.vpn == vpn]
        return out

    def render(self, limit: int | None = None) -> str:
        events = self.events if limit is None else self.events[:limit]
        lines = [str(e) for e in events]
        if limit is not None and len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        return "\n".join(lines)

    def render_transactions(self, limit: int | None = None) -> str:
        """Events grouped under the fault/release transaction they serve.

        One header per completed transaction (kind, processor, latency,
        message count), followed by that transaction's traced events in
        time order.  Events carrying no transaction id (``txn == -1``)
        are grouped under an "untracked" trailer.
        """
        by_txn: dict[int, list[TraceEvent]] = {}
        for event in self.events:
            by_txn.setdefault(event.txn, []).append(event)
        lines: list[str] = []
        txns = self.transactions if limit is None else self.transactions[:limit]
        for rec in txns:
            vpn = f" vpn={rec.vpn:#x}" if rec.vpn >= 0 else ""
            note = f" ({rec.note})" if rec.note else ""
            lines.append(
                f"txn {rec.txn}: {rec.kind}{note} proc {rec.pid}{vpn} "
                f"start={rec.start:,} latency={rec.latency:,} "
                f"messages={rec.messages}"
            )
            for event in by_txn.pop(rec.txn, []):
                lines.append(f"  {event}")
        if limit is not None and len(self.transactions) > limit:
            lines.append(
                f"... {len(self.transactions) - limit} more transactions"
            )
        stray = by_txn.pop(-1, None)
        if stray and limit is None:
            lines.append(f"untracked ({len(stray)} events)")
            for event in stray:
                lines.append(f"  {event}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)
