"""Command-line interface: run any of the paper's experiments.

Usage::

    python -m repro.cli table3
    python -m repro.cli table4
    python -m repro.cli fig6 fig9            # any of fig6..fig12-opt
    python -m repro.cli fig11
    python -m repro.cli all                  # everything (slow)
    python -m repro.cli sweep water --processors 16
    python -m repro.cli sweep water --protocol swdsm
    python -m repro.cli compare --apps jacobi,water --protocols mgs,swdsm
    python -m repro.cli serve --port 8642    # the HTTP daemon (repro.serve)
    python -m repro.cli analyze explore --engine all   # bounded model checker

Reports print to stdout in the same format the benchmark suite saves
under ``results/``.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.apps import ALL_APPS
from repro.bench import (
    FIGURES,
    RunCache,
    figure_report,
    measure_micro_costs,
    render_lock_figure,
    render_table,
    render_table4,
    resolve_cache,
    resolve_jobs,
    run_figure,
    run_figures,
    run_sweep,
    run_table4,
)
from repro.bench.micro import PAPER_TABLE3
from repro.params import EXTERNAL_MODELS, NetworkConfig

__all__ = [
    "main",
    "network_from_args",
    "cache_from_args",
    "add_replay_args",
    "apply_replay_args",
    "print_replay_summary",
]


def add_network_args(parser: argparse.ArgumentParser) -> None:
    """The ``repro.net`` flag group shared with the examples."""
    group = parser.add_argument_group("network model (repro.net)")
    group.add_argument(
        "--network",
        choices=EXTERNAL_MODELS,
        default="fixed",
        help="external interconnect: fixed (paper model), bus, fabric",
    )
    group.add_argument(
        "--loss-rate",
        type=float,
        default=0.0,
        metavar="RATE",
        help="drop rate on external links; >0 enables the reliable transport",
    )
    group.add_argument(
        "--dup-rate", type=float, default=0.0, metavar="RATE",
        help="duplication rate on external links",
    )
    group.add_argument(
        "--net-seed", type=int, default=None, metavar="SEED",
        help="fault-injection PRNG seed",
    )


def add_cache_args(parser: argparse.ArgumentParser) -> None:
    """The run-cache flag group (see :mod:`repro.bench.cache`)."""
    group = parser.add_argument_group("run cache")
    group.add_argument(
        "--cache",
        action="store_true",
        help="serve repeated sweep points from the content-addressed run "
        "cache (also enabled by REPRO_CACHE=1 or REPRO_CACHE_DIR)",
    )
    group.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the run cache even if REPRO_CACHE/REPRO_CACHE_DIR is set",
    )
    group.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache directory (default: REPRO_CACHE_DIR or .repro_cache/); "
        "implies --cache",
    )
    group.add_argument(
        "--cache-verify",
        action="store_true",
        help="re-execute a sample of cache hits and fail loudly unless each "
        "reproduces the cached result bit-for-bit; implies --cache",
    )


def cache_from_args(args: argparse.Namespace) -> RunCache | None:
    """A RunCache from the flag group (None when caching is off)."""
    if args.no_cache:
        if args.cache or args.cache_dir or args.cache_verify:
            raise ValueError("--no-cache conflicts with the other cache flags")
        return None
    if args.cache or args.cache_dir or args.cache_verify:
        return RunCache(args.cache_dir)
    return resolve_cache(None)


def add_replay_args(parser: argparse.ArgumentParser) -> None:
    """The phase-replay flag group (see :mod:`repro.runtime.replay`).

    Mirrors ``REPRO_NO_REPLAY`` / ``REPRO_REPLAY_CACHE`` /
    ``REPRO_REPLAY_CACHE_DIR`` the way ``--cache`` mirrors
    ``REPRO_CACHE`` / ``REPRO_CACHE_DIR``.  Precedence: an explicit
    flag always beats the inherited environment (``--replay`` clears an
    inherited ``REPRO_NO_REPLAY``; ``--no-replay`` sets it); with no
    flag the environment stands.
    """
    group = parser.add_argument_group("phase replay")
    group.add_argument(
        "--replay",
        action="store_true",
        help="force phase replay on, overriding an inherited "
        "REPRO_NO_REPLAY (replay is on by default)",
    )
    group.add_argument(
        "--no-replay",
        action="store_true",
        help="execute every phase (sets REPRO_NO_REPLAY=1 for this "
        "invocation, including pool workers); bit-identical, just slower",
    )
    group.add_argument(
        "--replay-cache",
        action="store_true",
        help="persist recorded phase deltas in the cross-run replay cache "
        "(also enabled by REPRO_REPLAY_CACHE=1 or REPRO_REPLAY_CACHE_DIR)",
    )
    group.add_argument(
        "--replay-cache-dir",
        default=None,
        metavar="DIR",
        help="replay cache directory (default: REPRO_REPLAY_CACHE_DIR, "
        "else <run-cache dir>/replay); implies --replay-cache",
    )


def apply_replay_args(args: argparse.Namespace) -> None:
    """Apply the replay flag group by mutating ``os.environ``.

    Environment mutation (rather than threading a store object through
    every harness) is deliberate: in-process runtimes resolve the store
    from the environment, and ``bench.parallel`` pool workers receive
    the same state through the per-job ``REPRO_*`` snapshot — so one
    mechanism covers sweeps, figures, and the comparison harness at any
    job count.
    """
    if args.no_replay:
        if args.replay or args.replay_cache or args.replay_cache_dir:
            raise ValueError(
                "--no-replay conflicts with the other replay flags"
            )
        os.environ["REPRO_NO_REPLAY"] = "1"
        return
    if args.replay:
        os.environ.pop("REPRO_NO_REPLAY", None)
    if args.replay_cache_dir:
        os.environ["REPRO_REPLAY_CACHE_DIR"] = args.replay_cache_dir
    if args.replay_cache or args.replay_cache_dir:
        os.environ["REPRO_REPLAY_CACHE"] = "1"


def print_replay_summary() -> None:
    """One summary line of process-wide replay-cache traffic, to stderr.

    stderr so that two invocations sharing a warm replay cache keep
    *byte-identical stdout* (the CI cross-process check compares it);
    the counters necessarily differ between a priming run and a warm
    one.
    """
    from repro.bench.cache import PROCESS_REPLAY_STATS as s

    if not (s.loads or s.stores or s.hits or s.misses):
        return
    print(
        f"replay cache: {s.hits} hits, {s.loads} loads, {s.misses} misses, "
        f"{s.stores} stored, {s.bytes_read}B read / "
        f"{s.bytes_written}B written",
        file=sys.stderr,
    )


def parse_trace_pages(value: str) -> set[int] | None:
    """``--trace-pages`` argument: ``all`` or comma-separated vpns.

    Returns None for ``all`` (trace every page), else the vpn set.
    Accepts decimal or ``0x``-prefixed page numbers.
    """
    if value.strip().lower() == "all":
        return None
    try:
        pages = {int(part, 0) for part in value.split(",") if part.strip()}
    except ValueError as exc:
        raise ValueError(f"bad --trace-pages value {value!r}: {exc}") from None
    if not pages:
        raise ValueError("--trace-pages needs 'all' or at least one vpn")
    return pages


def network_from_args(args: argparse.Namespace) -> NetworkConfig | None:
    """A NetworkConfig from the flag group, or None for the default model."""
    if (
        args.network == "fixed"
        and args.loss_rate == 0.0
        and args.dup_rate == 0.0
        and args.net_seed is None
    ):
        return None
    kwargs = dict(
        external=args.network, drop_rate=args.loss_rate, dup_rate=args.dup_rate
    )
    if args.net_seed is not None:
        kwargs["fault_seed"] = args.net_seed
    return NetworkConfig(**kwargs)


def _table3() -> str:
    measured = measure_micro_costs()
    rows = [
        [name, str(value), str(PAPER_TABLE3[key])]
        for name, key, value in [
            ("TLB Fill", "tlb_fill", measured.tlb_fill),
            ("Inter-SSMP Read Miss", "read_miss", measured.read_miss),
            ("Inter-SSMP Write Miss", "write_miss", measured.write_miss),
            ("Release (1 writer)", "release_1writer", measured.release_1writer),
            ("Release (2 writers)", "release_2writers", measured.release_2writers),
        ]
    ]
    return "Table 3 (software shared memory group)\n\n" + render_table(
        ["operation", "measured", "paper"], rows
    )


def _print_network_stats(sweep) -> None:
    """One line per cluster size when the net layers have anything to say."""
    rows = [
        (p.cluster_size, p.network)
        for p in sweep.points
        if p.network.get("retransmits") or p.network.get("drops")
        or p.network.get("queue_cycles")
    ]
    if not rows:
        return
    print("\nnetwork (repro.net):")
    for c, net in rows:
        print(
            f"  C={c:<3d} drops={net['drops']:<6d} "
            f"retransmits={net['retransmits']:<6d} "
            f"dups_suppressed={net['dups_suppressed']:<6d} "
            f"queue_cycles={net['queue_cycles']}"
        )


def _print_transaction_stats(sweep) -> None:
    """Fault/release latency percentiles, one line per cluster size."""
    rows = [
        (p.cluster_size, p.transactions)
        for p in sweep.points
        if p.transactions
    ]
    if not rows:
        return
    print("\ntransaction latency (cycles):")
    for c, txns in rows:
        for kind in sorted(txns):
            s = txns[kind]
            if not s["count"]:
                continue
            print(
                f"  C={c:<3d} {kind:<8s} n={s['count']:<6d} "
                f"p50={s['p50']:<8d} p95={s['p95']:<8d} max={s['max']}"
            )


def _fig11(jobs: int = 1, protocol: str | None = None) -> str:
    sweeps = [
        sweep
        for _, sweep in run_figures(
            ["fig8", "fig9", "fig10"], jobs=jobs, protocol=protocol
        )
    ]
    return render_lock_figure(
        sweeps, "Figure 11: Hit rate for MGS lock vs cluster size"
    )


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        # The daemon has its own flag set; hand over before parsing.
        from repro.serve import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "compare":
        # So does the cross-engine comparison harness.
        from repro.bench.compare import main as compare_main

        return compare_main(argv[1:])
    if argv and argv[0] == "analyze":
        # And the state-space explorer / mutation benchmark.
        from repro.analysis.explore import main as analyze_main

        return analyze_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro", description="Reproduce MGS (ISCA 1996) experiments"
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help="table3, table4, fig11, any figure key "
        f"({', '.join(FIGURES)}), 'all', or 'sweep <app>'",
    )
    parser.add_argument(
        "--processors", type=int, default=32, help="total processors (default 32)"
    )
    from repro.core.engine import engine_names

    parser.add_argument(
        "--protocol",
        choices=engine_names(),
        default="mgs",
        help="coherence engine driving software shared memory "
        "(default: mgs; see repro.protocols)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for sweeps (default: REPRO_JOBS or 1; "
        "0 means all cores); results are identical at any job count",
    )
    parser.add_argument(
        "--trace-pages",
        metavar="PAGES",
        default=None,
        help="trace protocol traffic for these vpns ('all' or e.g. '256,257'); "
        "prints transaction-grouped traces after each run",
    )
    parser.add_argument(
        "--analyze",
        action="store_true",
        help="attach the protocol invariant sanitizer (repro.analysis) to "
        "every run; violations abort with the transaction trace",
    )
    add_network_args(parser)
    add_cache_args(parser)
    add_replay_args(parser)
    args = parser.parse_args(argv)
    try:
        network = network_from_args(args)
        cache = cache_from_args(args)
        apply_replay_args(args)
        trace_pages = (
            parse_trace_pages(args.trace_pages)
            if args.trace_pages is not None
            else False
        )
    except ValueError as exc:
        parser.error(str(exc))

    jobs = resolve_jobs(args.jobs)
    tracers: list = []
    hook = None
    if trace_pages is not False:
        if jobs > 1:
            print(
                "--trace-pages needs in-process runs; ignoring --jobs",
                file=sys.stderr,
            )
            jobs = 1
        from repro.runtime import Runtime
        from repro.trace import ProtocolTracer

        def hook(rt):
            tracers.append(ProtocolTracer(rt, pages=trace_pages))

        Runtime.construction_hooks.append(hook)

    sanitizers: list = []
    analyze_hook = None
    if args.analyze:
        if jobs > 1:
            print(
                "--analyze needs in-process runs; ignoring --jobs",
                file=sys.stderr,
            )
            jobs = 1
        from repro.analysis import InvariantSanitizer
        from repro.runtime import Runtime

        def analyze_hook(rt):
            sanitizers.append(InvariantSanitizer(rt))

        Runtime.construction_hooks.append(analyze_hook)

    try:
        return _dispatch(parser, args, network, jobs, cache)
    finally:
        print_replay_summary()
        if cache is not None:
            s = cache.stats
            print(
                f"\nrun cache [{cache.root}]: {s.hits} hits, {s.misses} misses, "
                f"{s.stores} stored, {s.verified} verified, "
                f"{s.bytes_read}B read / {s.bytes_written}B written"
            )
        if analyze_hook is not None:
            from repro.runtime import Runtime

            Runtime.construction_hooks.remove(analyze_hook)
            checked = sum(s.checked for s in sanitizers)
            print(
                f"\nanalysis: {len(sanitizers)} run(s) sanitized, "
                f"{checked} protocol messages checked, 0 violations"
            )
        if hook is not None:
            Runtime.construction_hooks.remove(hook)
            for tracer in tracers:
                if not len(tracer):
                    continue
                config = tracer.rt.config
                print(
                    f"\n--- trace: C={config.cluster_size} "
                    f"({len(tracer.transactions)} transactions, "
                    f"{len(tracer)} events) ---"
                )
                print(tracer.render_transactions(limit=50))


def _dispatch(parser, args, network, jobs: int = 1, cache=None) -> int:
    experiments = list(args.experiments)
    if experiments and experiments[0] == "sweep":
        if len(experiments) < 2 or experiments[1] not in ALL_APPS:
            parser.error(f"sweep needs an app name from {sorted(ALL_APPS)}")
        module = ALL_APPS[experiments[1]]
        sweep = run_sweep(
            module,
            total_processors=args.processors,
            network=network,
            jobs=jobs,
            cache=cache if cache is not None else False,
            cache_verify=args.cache_verify,
            protocol=args.protocol,
        )
        from repro.bench import render_breakdown_figure, render_metrics

        print(render_breakdown_figure(sweep, f"sweep: {experiments[1]}"))
        print()
        print(render_metrics(sweep))
        _print_network_stats(sweep)
        _print_transaction_stats(sweep)
        return 0

    if "all" in experiments:
        experiments = ["table3", "table4", *FIGURES, "fig11"]

    # With workers available, farm whole figures out up front; the
    # reports still print in the order the experiments were listed.
    # With the run cache on, figures run in-process instead: cache hits
    # skip forking entirely and the hit/miss counters stay accurate,
    # while each figure still farms its cache *misses* to the workers.
    figure_keys = [exp for exp in experiments if exp in FIGURES]
    sweeps: dict = {}
    if cache is None and jobs > 1 and len(figure_keys) > 1:
        sweeps = dict(
            run_figures(
                figure_keys,
                total_processors=args.processors,
                network=network,
                jobs=jobs,
                protocol=args.protocol,
            )
        )

    for exp in experiments:
        print(f"\n{'=' * 72}")
        if exp == "table3":
            print(_table3())
        elif exp == "table4":
            print("Table 4\n\n" + render_table4(run_table4()))
        elif exp == "fig11":
            print(_fig11(jobs, args.protocol))
        elif exp in FIGURES:
            sweep = sweeps.get(exp)
            if sweep is None:
                sweep = run_figure(
                    exp,
                    total_processors=args.processors,
                    network=network,
                    jobs=jobs,
                    cache=cache if cache is not None else False,
                    cache_verify=args.cache_verify,
                    protocol=args.protocol,
                )
            print(figure_report(exp, sweep))
            _print_network_stats(sweep)
            _print_transaction_stats(sweep)
        else:
            print(f"unknown experiment {exp!r}", file=sys.stderr)
            return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
