"""repro.analysis: protocol checkers for the MGS reproduction.

Cooperating, default-off tools (see docs/ANALYSIS.md):

* :class:`InvariantSanitizer` — validates every bus message and the
  protocol state it acts on against the legal arcs of docs/PROTOCOL.md;
  raises :class:`InvariantViolation` with the transaction trace.
* :class:`RaceDetector` — vector-clock happens-before race detection
  over the release-consistency synchronization (locks, barriers);
  :meth:`RaceDetector.certify` raises :class:`RaceError` on races.
* :mod:`repro.analysis.lint` — a static determinism pass, runnable as
  ``python -m repro.analysis.lint``.
* :mod:`repro.analysis.explore` — a bounded model checker enumerating
  *every* interleaving of a small threaded program over each engine,
  plus a hypothesis stateful walk; runnable as ``repro analyze``.
  (Imported lazily — it pulls in the tracer and hypothesis.)

Enable dynamically via ``Runtime(config, analysis=...)`` (accepts
``"invariants"``, ``"races"``, ``"all"``/``True``, or an
:class:`AnalysisConfig`), the ``--analyze`` CLI flag, or the
``protocol_sanitizer`` pytest fixture.  All checkers are pure observers:
they charge no simulated cycles, so even *enabled* runs are cycle-
identical, and disabled runs take exactly the pre-analysis code paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.invariants import InvariantSanitizer, InvariantViolation
from repro.analysis.mutations import MUTATIONS, MutationSpec, apply_mutation
from repro.analysis.races import Race, RaceDetector, RaceError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.runner import Runtime

__all__ = [
    "AnalysisConfig",
    "InvariantSanitizer",
    "InvariantViolation",
    "MUTATIONS",
    "MutationSpec",
    "Race",
    "RaceDetector",
    "RaceError",
    "apply_mutation",
    "setup_analysis",
]


@dataclass
class AnalysisConfig:
    """Which checkers ``Runtime(analysis=...)`` should attach."""

    invariants: bool = True
    races: bool = False
    race_granularity: str = "word"  # or "page"


def setup_analysis(rt: "Runtime", spec) -> AnalysisConfig:
    """Attach the checkers requested by ``spec`` to a runtime.

    ``spec`` may be ``True``/``"all"`` (sanitizer + race detector),
    ``"invariants"``, ``"races"``, or an :class:`AnalysisConfig`.
    """
    if isinstance(spec, AnalysisConfig):
        config = spec
    elif spec is True or spec == "all":
        config = AnalysisConfig(invariants=True, races=True)
    elif spec == "invariants":
        config = AnalysisConfig(invariants=True, races=False)
    elif spec == "races":
        config = AnalysisConfig(invariants=False, races=True)
    else:
        raise ValueError(
            f"analysis must be 'invariants', 'races', 'all', True, or an "
            f"AnalysisConfig: {spec!r}"
        )
    if config.invariants:
        InvariantSanitizer(rt)
    if config.races:
        RaceDetector(rt, granularity=config.race_granularity)
    return config
