"""Release-consistency read legality via vector clocks.

The explorer (:mod:`repro.analysis.explore`) drives protocol engines
with a tiny program vocabulary — reads, writes, a lock, a barrier — and
needs an engine-independent oracle for what each read is *allowed* to
return.  This module is that oracle: a happens-before tracker in the
style of the race detector, but judging **values** instead of flagging
races.

Model
-----
Every write deposits a globally unique value together with the writer's
vector clock at the moment of the write.  Synchronization transfers
clocks exactly the way release consistency defines it:

* ``release(thread, key)`` joins the thread's clock into the sync
  object's clock (a lock handoff or a barrier episode);
* ``acquire(thread, key)`` joins the sync object's clock back into the
  thread.

A read by thread ``t`` is legal iff it returns

* the value of a happens-before **maximal** write among those ordered
  before the read (there may be several maximal writes — concurrent
  writers — and any of them is acceptable), or
* the value of any write **concurrent** with the read (no engine is
  required to have propagated it yet, nor forbidden from having done
  so), or
* the initial value, but only when *no* write is ordered before the
  read.

This is deliberately the weakest sound contract: every engine in the
registry (eager MGS/SWDSM, sequentially-consistent pages, lazy GCS)
promises at least this much, so a violation is a real protocol bug on
any of them, never a false positive from modeling an engine stronger
than it is.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "INITIAL_VALUE",
    "WriteEvent",
    "MemoryModel",
    "vc_leq",
]

#: value every page word starts with (fresh arrays are zeroed)
INITIAL_VALUE = 0.0


def vc_leq(a: tuple[int, ...], b: tuple[int, ...]) -> bool:
    """Pointwise ``<=`` on vector clocks (``a`` happens-before-or-equals ``b``)."""
    return all(x <= y for x, y in zip(a, b))


@dataclass(frozen=True)
class WriteEvent:
    """One recorded write: who wrote what, under which clock."""

    thread: int
    value: float
    vc: tuple[int, ...]


class MemoryModel:
    """Happens-before bookkeeping for one explored execution.

    ``nthreads`` is the number of *logical* threads the explorer drives;
    clocks are dense tuples indexed by thread.  Sync objects (the lock,
    each barrier episode) are named by an arbitrary hashable ``key``.
    """

    def __init__(self, nthreads: int) -> None:
        self.nthreads = nthreads
        self._clocks: list[list[int]] = [
            [0] * nthreads for _ in range(nthreads)
        ]
        self._sync: dict[object, list[int]] = {}
        #: (vpn, word) -> ordered list of WriteEvents
        self._history: dict[tuple[int, int], list[WriteEvent]] = {}

    # -- clock plumbing -------------------------------------------------

    def clock(self, thread: int) -> tuple[int, ...]:
        return tuple(self._clocks[thread])

    def _tick(self, thread: int) -> None:
        self._clocks[thread][thread] += 1

    def acquire(self, thread: int, key: object) -> None:
        """Thread observed a release on ``key`` (lock grant, barrier exit)."""
        vc = self._sync.get(key)
        if vc is not None:
            own = self._clocks[thread]
            for i, v in enumerate(vc):
                if v > own[i]:
                    own[i] = v
        self._tick(thread)

    def release(self, thread: int, key: object) -> None:
        """Thread published its history on ``key`` (unlock, barrier entry)."""
        vc = self._sync.setdefault(key, [0] * self.nthreads)
        for i, v in enumerate(self._clocks[thread]):
            if v > vc[i]:
                vc[i] = v
        self._tick(thread)

    def barrier(self, threads: list[int], episode: int) -> None:
        """All-to-all join for one barrier episode."""
        key = ("barrier", episode)
        for t in threads:
            self.release(t, key)
        for t in threads:
            self.acquire(t, key)

    # -- reads and writes ----------------------------------------------

    def write(self, thread: int, vpn: int, word: int, value: float) -> None:
        self._tick(thread)
        self._history.setdefault((vpn, word), []).append(
            WriteEvent(thread, value, self.clock(thread))
        )

    def legal_values(self, thread: int, vpn: int, word: int) -> set[float]:
        """The set of values a read by ``thread`` may legally return."""
        reader = self.clock(thread)
        writes = self._history.get((vpn, word), ())
        before = [w for w in writes if vc_leq(w.vc, reader)]
        legal = {w.value for w in writes if not vc_leq(w.vc, reader)}
        for w in before:
            if not any(
                w2 is not w and vc_leq(w.vc, w2.vc) for w2 in before
            ):
                legal.add(w.value)
        if not before:
            legal.add(INITIAL_VALUE)
        return legal

    def read(self, thread: int, vpn: int, word: int) -> None:
        """Account a read as an event (no legality check here)."""
        self._tick(thread)

    # -- canonical digest ----------------------------------------------

    def state(self) -> tuple:
        """Hashable snapshot for the explorer's frontier dedup."""
        return (
            tuple(tuple(c) for c in self._clocks),
            tuple(
                sorted(
                    (repr(key), tuple(c))
                    for key, c in self._sync.items()
                    if any(c)
                )
            ),
            tuple(
                sorted(
                    (loc, tuple((w.thread, w.value, w.vc) for w in ws))
                    for loc, ws in self._history.items()
                )
            ),
        )
