"""Seeded protocol corruptions for validating the invariant sanitizer.

Each mutation deliberately breaks one protocol rule the way a real bug
would — a handler forgetting a bookkeeping step, a message dropped, an
acknowledgement duplicated — by wrapping the live bus handlers or engine
methods of a runtime.  ``tests/test_analysis_mutations.py`` asserts the
:class:`~repro.analysis.invariants.InvariantSanitizer` catches every one
(either mid-run, at message delivery, or in the quiescence sweep).

Usage::

    rt = Runtime(config, analysis="invariants")
    apply_mutation(rt, "skip_pinv_ack")
    ... drive the protocol ...
    rt.sanitizer.check_quiescent()   # raises InvariantViolation

The registry maps mutation name -> (description, applier).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.runner import Runtime

__all__ = ["MUTATIONS", "apply_mutation"]


def _wrap_handler(rt: "Runtime", label: str, wrapper: Callable) -> None:
    """Replace one bus handler with ``wrapper(original, msg)``."""
    handlers = rt.protocol.bus._handlers
    original = handlers[label]
    handlers[label] = lambda msg: wrapper(original, msg)


def _skip_pinv_ack(rt: "Runtime") -> None:
    """Swallow the first PINV_ACK: the shootdown never completes, the
    release round hangs, and its transaction stays open forever."""
    state = {"dropped": False}

    def wrapper(original, msg):
        if not state["dropped"]:
            state["dropped"] = True
            return
        original(msg)

    _wrap_handler(rt, "PINV_ACK", wrapper)


def _forget_directory_refill(rt: "Runtime") -> None:
    """Grant a write copy but forget to record it in ``write_dir``: the
    next release round would skip invalidating that cluster."""

    def wrapper(original, msg):
        original(msg)
        rt.protocol.home(msg.vpn).write_dir.discard(msg.dst_cluster)

    _wrap_handler(rt, "WDAT", wrapper)


def _drop_twin(rt: "Runtime") -> None:
    """Lose the twin of a freshly granted write copy: the eventual
    diff would be impossible (or would ship the whole page as changes)."""

    def wrapper(original, msg):
        original(msg)
        frame = rt.protocol.frames[msg.dst_cluster].get(msg.vpn)
        if frame is not None and not frame.aliases_home:
            frame.twin = None

    _wrap_handler(rt, "WDAT", wrapper)


def _leak_duq(rt: "Runtime") -> None:
    """Shoot down a TLB entry but leave its DUQ entry behind: the next
    release would push a page the processor no longer has mapped."""

    def wrapper(original, msg):
        original(msg)
        rt.protocol.duqs[msg.dst_pid].add(msg.vpn)
        rt.protocol.stolen[msg.dst_pid].discard(msg.vpn)

    _wrap_handler(rt, "PINV", wrapper)


def _double_rack(rt: "Runtime") -> None:
    """Acknowledge every release twice: the duplicate RACK matches no
    outstanding REL."""
    server = rt.protocol.server
    original = server._send_rack

    def wrapper(home, rel, at):
        original(home, rel, at)
        original(home, rel, at)

    server._send_rack = wrapper


def _dir_exclusion(rt: "Runtime") -> None:
    """Record a read grant in *both* directories: the exclusion between
    read_dir and write_dir is broken."""

    def wrapper(original, msg):
        original(msg)
        home = rt.protocol.home(msg.vpn)
        home.write_dir.add(msg.dst_cluster)

    _wrap_handler(rt, "RDAT", wrapper)


MUTATIONS: dict[str, tuple[str, Callable[["Runtime"], None]]] = {
    "skip_pinv_ack": (
        "swallow a PINV_ACK so a release round never completes",
        _skip_pinv_ack,
    ),
    "forget_directory_refill": (
        "grant a write copy without recording it in write_dir",
        _forget_directory_refill,
    ),
    "drop_twin": (
        "lose the twin of a write copy",
        _drop_twin,
    ),
    "leak_duq": (
        "leave a DUQ entry behind after its TLB shootdown",
        _leak_duq,
    ),
    "double_rack": (
        "acknowledge every REL twice",
        _double_rack,
    ),
    "dir_exclusion": (
        "record a read grant in both directories",
        _dir_exclusion,
    ),
}


def apply_mutation(rt: "Runtime", name: str) -> str:
    """Apply one named corruption to a live runtime; returns its
    description."""
    description, applier = MUTATIONS[name]
    applier(rt)
    return description
