"""Seeded protocol corruptions for validating the invariant sanitizer.

Each mutation deliberately breaks one protocol rule the way a real bug
would — a handler forgetting a bookkeeping step, a message dropped, an
acknowledgement duplicated, a diff silently emptied — by wrapping the
live bus handlers or engine methods of a runtime.
``tests/test_analysis_mutations.py`` asserts the
:class:`~repro.analysis.invariants.InvariantSanitizer` (or, for the
data-staleness corruptions only the explorer's release-consistency
oracle can see, :func:`repro.analysis.explore.explore`) catches every
one.

Usage::

    rt = Runtime(config, analysis="invariants")
    apply_mutation(rt, "skip_pinv_ack")
    ... drive the protocol ...
    rt.sanitizer.check_quiescent()   # raises InvariantViolation

The registry maps mutation name -> :class:`MutationSpec`; each spec is
tagged with the engine it corrupts, and :func:`apply_mutation` refuses
to apply a mutation to a runtime driving a different engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.runner import Runtime

__all__ = ["MutationSpec", "MUTATIONS", "apply_mutation"]


@dataclass(frozen=True)
class MutationSpec:
    """One seeded corruption: which engine it targets, what it breaks."""

    engine: str
    description: str
    applier: Callable[["Runtime"], None]


def _wrap_handler(rt: "Runtime", label: str, wrapper: Callable) -> None:
    """Replace one bus handler with ``wrapper(original, msg)``."""
    handlers = rt.protocol.bus._handlers
    original = handlers[label]
    handlers[label] = lambda msg: wrapper(original, msg)


# ---------------------------------------------------------------------------
# mgs
# ---------------------------------------------------------------------------


def _skip_pinv_ack(rt: "Runtime") -> None:
    """Swallow the first PINV_ACK: the shootdown never completes, the
    release round hangs, and its transaction stays open forever."""
    state = {"dropped": False}

    def wrapper(original, msg):
        if not state["dropped"]:
            state["dropped"] = True
            return
        original(msg)

    _wrap_handler(rt, "PINV_ACK", wrapper)


def _forget_directory_refill(rt: "Runtime") -> None:
    """Grant a write copy but forget to record it in ``write_dir``: the
    next release round would skip invalidating that cluster."""

    def wrapper(original, msg):
        original(msg)
        rt.protocol.home(msg.vpn).write_dir.discard(msg.dst_cluster)

    _wrap_handler(rt, "WDAT", wrapper)


def _drop_twin(rt: "Runtime") -> None:
    """Lose the twin of a freshly granted write copy: the eventual
    diff would be impossible (or would ship the whole page as changes)."""

    def wrapper(original, msg):
        original(msg)
        frame = rt.protocol.frames[msg.dst_cluster].get(msg.vpn)
        if frame is not None and not frame.aliases_home:
            frame.twin = None

    _wrap_handler(rt, "WDAT", wrapper)


def _leak_duq(rt: "Runtime") -> None:
    """Shoot down a TLB entry but leave its DUQ entry behind: the next
    release would push a page the processor no longer has mapped."""

    def wrapper(original, msg):
        original(msg)
        rt.protocol.duqs[msg.dst_pid].add(msg.vpn)
        rt.protocol.stolen[msg.dst_pid].discard(msg.vpn)

    _wrap_handler(rt, "PINV", wrapper)


def _double_rack(rt: "Runtime") -> None:
    """Acknowledge every release twice: the duplicate RACK matches no
    outstanding REL."""
    server = rt.protocol.server
    original = server._send_rack

    def wrapper(home, rel, at):
        original(home, rel, at)
        original(home, rel, at)

    server._send_rack = wrapper


def _dir_exclusion(rt: "Runtime") -> None:
    """Record a read grant in *both* directories: the exclusion between
    read_dir and write_dir is broken."""

    def wrapper(original, msg):
        original(msg)
        home = rt.protocol.home(msg.vpn)
        home.write_dir.add(msg.dst_cluster)

    _wrap_handler(rt, "RDAT", wrapper)


# ---------------------------------------------------------------------------
# swdsm
# ---------------------------------------------------------------------------


def _swdsm_stale_diff(rt: "Runtime") -> None:
    """Count an invalidation acknowledgement but drop the diff it
    carried: the stolen writes silently vanish from the home copy."""

    def wrapper(original, msg):
        if msg.indices is not None and len(msg.indices):
            import dataclasses

            msg = dataclasses.replace(
                msg, indices=msg.indices[:0], values=msg.values[:0]
            )
        original(msg)

    _wrap_handler(rt, "S_IACK", wrapper)


def _swdsm_lost_iack(rt: "Runtime") -> None:
    """Swallow the first S_IACK: the invalidation round never closes
    and the release behind it hangs forever."""
    state = {"dropped": False}

    def wrapper(original, msg):
        if not state["dropped"]:
            state["dropped"] = True
            return
        original(msg)

    _wrap_handler(rt, "S_IACK", wrapper)


# ---------------------------------------------------------------------------
# sc_pages
# ---------------------------------------------------------------------------


def _sc_shared_writer(rt: "Runtime") -> None:
    """Leave the exclusive-grant target registered as a *reader* too:
    the single-writer exclusion between the directories is broken."""

    def wrapper(original, msg):
        original(msg)
        home = rt.protocol.homes.get(msg.vpn)
        if home is not None:
            home.read_dir.add(msg.dst_cluster)

    _wrap_handler(rt, "SC_WGRANT", wrapper)


def _sc_lost_wb(rt: "Runtime") -> None:
    """Swallow the first SC_WB: the coherence round waiting on the
    downgraded writer's writeback never completes."""
    state = {"dropped": False}

    def wrapper(original, msg):
        if not state["dropped"]:
            state["dropped"] = True
            return
        original(msg)

    _wrap_handler(rt, "SC_WB", wrapper)


# ---------------------------------------------------------------------------
# gcs
# ---------------------------------------------------------------------------


def _gcs_dropped_write_notice(rt: "Runtime") -> None:
    """Skip the acquire-time staleness scan: write notices are lost, so
    stale replicas survive the acquire and reads see old data."""
    protocol = rt.protocol

    def acquire(pid, on_done):
        txn = protocol.bus.begin("acquire", pid)

        def finish():
            protocol.bus.end(txn)
            on_done()

        protocol.sim.schedule(1, finish)

    protocol.acquire = acquire


def _gcs_stale_version(rt: "Runtime") -> None:
    """Forget to persist the version bump a diff produced: the releaser
    ends up believing it is *ahead* of the home."""

    def wrapper(original, msg):
        original(msg)
        rt.protocol.versions[msg.vpn] -= 1

    _wrap_handler(rt, "G_DIFF", wrapper)


MUTATIONS: dict[str, MutationSpec] = {
    "skip_pinv_ack": MutationSpec(
        "mgs",
        "swallow a PINV_ACK so a release round never completes",
        _skip_pinv_ack,
    ),
    "forget_directory_refill": MutationSpec(
        "mgs",
        "grant a write copy without recording it in write_dir",
        _forget_directory_refill,
    ),
    "drop_twin": MutationSpec(
        "mgs",
        "lose the twin of a write copy",
        _drop_twin,
    ),
    "leak_duq": MutationSpec(
        "mgs",
        "leave a DUQ entry behind after its TLB shootdown",
        _leak_duq,
    ),
    "double_rack": MutationSpec(
        "mgs",
        "acknowledge every REL twice",
        _double_rack,
    ),
    "dir_exclusion": MutationSpec(
        "mgs",
        "record a read grant in both directories",
        _dir_exclusion,
    ),
    "swdsm_stale_diff": MutationSpec(
        "swdsm",
        "drop the diff an invalidation acknowledgement carried",
        _swdsm_stale_diff,
    ),
    "swdsm_lost_iack": MutationSpec(
        "swdsm",
        "swallow an S_IACK so the invalidation round never closes",
        _swdsm_lost_iack,
    ),
    "sc_shared_writer": MutationSpec(
        "sc_pages",
        "register the exclusive writer as a reader too",
        _sc_shared_writer,
    ),
    "sc_lost_wb": MutationSpec(
        "sc_pages",
        "swallow an SC_WB so the coherence round never completes",
        _sc_lost_wb,
    ),
    "gcs_dropped_write_notice": MutationSpec(
        "gcs",
        "skip the acquire staleness scan (write notices lost)",
        _gcs_dropped_write_notice,
    ),
    "gcs_stale_version": MutationSpec(
        "gcs",
        "forget the version bump a diff produced",
        _gcs_stale_version,
    ),
}


def apply_mutation(rt: "Runtime", name: str) -> str:
    """Apply one named corruption to a live runtime; returns its
    description.  Refuses engines the mutation does not target."""
    spec = MUTATIONS[name]
    engine = rt.config.protocol
    if engine != spec.engine:
        raise ValueError(
            f"mutation {name!r} targets engine {spec.engine!r}, "
            f"not {engine!r}"
        )
    spec.applier(rt)
    return spec.description
