"""The protocol invariant sanitizer.

An opt-in observer that validates every message the protocol bus
delivers — and the page-frame / home-page state it is about to act on —
against the active engine's legal arcs.  It is a pure bus tap: it
charges no cycles, schedules no events, and mutates no protocol state,
so enabling it leaves simulations bit-for-bit identical
(``tests/test_analysis_invariants.py`` pins this).

The sanitizer itself is engine-agnostic.  It owns the observation
plumbing — bus taps, per-transaction message traces, the global message
ring, violation raising — and delegates every semantic judgement to the
:class:`~repro.core.engine.ArcRules` object the engine's
``arc_rules()`` hook returns.  For MGS that is
:class:`repro.protocols.mgs.arcs.MGSArcRules`, the arc catalogue of
docs/PROTOCOL.md (see docs/ANALYSIS.md for the invariant list with
arc-by-arc cross-references); rival engines ship their own rules.

Attach one per runtime::

    rt = Runtime(config, analysis="invariants")
    # or explicitly:
    sanitizer = InvariantSanitizer(rt)

Violations raise :class:`InvariantViolation` carrying the rule name and
the transaction trace (the messages delivered on the offending
transaction's behalf, plus the tail of the global message log).  At the
end of a run, :meth:`InvariantSanitizer.check_quiescent` sweeps the full
protocol state for leaks: open transactions, unanswered ``REL``s, held
mapping locks, leaked twins, and orphaned DUQ entries.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.messages import ProtocolMessage
    from repro.runtime.runner import Runtime

__all__ = ["InvariantSanitizer", "InvariantViolation"]


class InvariantViolation(AssertionError):
    """A protocol invariant did not hold.

    Subclasses ``AssertionError`` so existing harnesses that treat
    protocol state corruption as assertion failures keep working.
    """

    def __init__(
        self,
        rule: str,
        detail: str,
        vpn: int = -1,
        txn: int = -1,
        trace: tuple[str, ...] = (),
    ) -> None:
        self.rule = rule
        self.detail = detail
        self.vpn = vpn
        self.txn = txn
        self.trace = trace
        lines = [f"[{rule}] {detail}"]
        if vpn >= 0:
            lines[0] += f" (vpn {vpn})"
        if trace:
            lines.append("transaction trace:")
            lines.extend(f"  {entry}" for entry in trace)
        super().__init__("\n".join(lines))


class InvariantSanitizer:
    """Validates protocol transitions as the bus delivers them.

    Construction attaches the sanitizer to ``rt.protocol.bus`` (as a
    message tap plus a transaction tap), asks the engine for its
    :class:`~repro.core.engine.ArcRules`, and publishes itself as
    ``rt.sanitizer``; :meth:`detach` removes both taps.
    """

    #: global message-log tail kept for violation reports
    RING = 32

    def __init__(self, rt: "Runtime") -> None:
        self.rt = rt
        self.protocol = rt.protocol
        self.bus = rt.protocol.bus
        self.config = rt.config
        #: messages validated so far
        self.checked = 0
        #: per-open-transaction message traces
        self._txn_traces: dict[int, list[str]] = {}
        self._ring: deque[str] = deque(maxlen=self.RING)
        #: engine-specific legal-arc catalogue
        self.rules = rt.protocol.arc_rules(self)
        self.bus.add_tap(self._on_message)
        self.bus.add_txn_tap(self._on_txn)
        rt.sanitizer = self

    def detach(self) -> None:
        """Remove the bus taps; the sanitizer stops observing."""
        self.bus.remove_tap(self._on_message)
        self.bus.remove_txn_tap(self._on_txn)
        if getattr(self.rt, "sanitizer", None) is self:
            self.rt.sanitizer = None

    # ------------------------------------------------------------------
    # taps
    # ------------------------------------------------------------------

    def _on_txn(self, event: str, rec) -> None:
        if event == "begin":
            self._txn_traces[rec.txn] = [
                f"@{rec.start} BEGIN {rec.kind} pid={rec.pid} vpn={rec.vpn} "
                f"txn={rec.txn} {rec.note}"
            ]
        else:
            self._txn_traces.pop(rec.txn, None)

    def _on_message(self, msg: "ProtocolMessage", sent_at: int, now: int) -> None:
        """Runs before the handler: validates the delivery pre-state."""
        self.checked += 1
        line = (
            f"@{now} {msg.label} vpn={msg.vpn} "
            f"p{msg.src_pid}/c{msg.src_cluster} -> "
            f"p{msg.dst_pid}/c{msg.dst_cluster} txn={msg.txn}"
        )
        self._ring.append(line)
        trace = self._txn_traces.get(msg.txn)
        if trace is not None:
            trace.append(line)
        self.rules.on_message(msg)
        self.rules.check_page(msg.vpn)

    # ------------------------------------------------------------------
    # violation plumbing (used by the engine's ArcRules)
    # ------------------------------------------------------------------

    def _trace_for(self, txn: int) -> tuple[str, ...]:
        trace = self._txn_traces.get(txn)
        if trace:
            return tuple(trace)
        return tuple(self._ring)

    def fail(self, rule: str, detail: str, vpn: int = -1, txn: int = -1):
        """Raise :class:`InvariantViolation` with the transaction trace."""
        raise InvariantViolation(
            rule, detail, vpn=vpn, txn=txn, trace=self._trace_for(txn)
        )

    # ------------------------------------------------------------------
    # quiescence sweep
    # ------------------------------------------------------------------

    def check_quiescent(self) -> None:
        """Full-state leak check once the simulation has drained.

        Valid at clean run completion (``Runtime.run`` calls it when a
        sanitizer is attached) or after a manually driven protocol storm
        has quiesced.
        """
        if self.protocol.hw_bypass:
            # Software coherence is nulled; there is no protocol state.
            return
        if self.bus.open_txns:
            stuck = sorted(self.bus.open_txns)
            self.fail(
                "quiesce-txns",
                f"transactions {stuck} never completed",
                txn=stuck[0],
            )
        self.rules.check_quiescent()

    # ------------------------------------------------------------------
    # whole-state sweep (explorer only)
    # ------------------------------------------------------------------

    def check_state(self, inflight) -> None:
        """Validate one snapshot of protocol state + in-flight messages.

        Called by the bounded model checker
        (:mod:`repro.analysis.explore`) after every simulator event, with
        the ordered tuple of undelivered protocol messages it extracted
        from the event queue.  Engines express queue-aware invariants in
        :meth:`~repro.core.engine.ArcRules.check_state` — relations the
        live sanitizer cannot observe because it never sees undelivered
        messages.
        """
        if self.protocol.hw_bypass:
            return
        self.rules.check_state(inflight)
