"""Determinism lint: a custom AST pass over ``src/repro``.

The run cache (PR 4) and the golden-equivalence suite both depend on
simulations being bit-for-bit deterministic.  This pass statically
enforces the source-level rules that determinism silently rests on:

* ``unseeded-random`` — the stdlib ``random`` module is banned
  everywhere (its global state is process-wide and unseeded by default);
  simulation code uses ``numpy.random.default_rng(seed)``.
* ``wall-clock`` — ``time.time()`` / ``perf_counter()`` / ``datetime.now()``
  and friends are banned outside ``bench/`` (whose job *is* wall-clock
  measurement): simulated time comes from the event queue only.
* ``id-order`` — ``id()`` is banned in protocol-order-sensitive modules:
  CPython object addresses vary run to run, so ``id()``-keyed maps or
  sort keys reorder protocol events nondeterministically.
* ``set-iteration`` — iterating a ``set`` (or passing one to ``iter`` /
  ``list`` / ``tuple`` / ``enumerate``) in protocol-order-sensitive
  modules is banned unless wrapped in ``sorted`` / ``min`` / ``max``:
  set iteration order depends on insertion history and hash seeding.
  Size/membership tests (``len``, ``in``, ``any`` over ``sorted``) are
  fine.
* ``handler-coverage`` — every :class:`MsgType` member must have exactly
  one ``@handles`` registration across the engines in ``core/`` and
  ``protocols/`` (the static mirror of ``MessageBus.check_complete``),
  and every engine package under ``protocols/`` must declare a literal
  ``REQUIRED_LABELS`` tuple whose labels exactly match the package's
  ``@handles`` registrations (the static mirror of
  ``Protocol.bus_handlers`` / ``Protocol.check_bus``).
* ``arc-coverage`` — every engine package that registers bus handlers
  must ship an :class:`ArcRules` subclass whose literal ``_CHECKS``
  table names each label the package's ``@handles`` decorators
  register: a message the sanitizer cannot validate is a message the
  explorer cannot police either.

Run it as::

    python -m repro.analysis.lint [paths...]   # default: src/repro

Findings print as ``path:line: rule: message``; the exit status is 0
when clean.  CI runs this in the ``analysis`` job.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

__all__ = ["Finding", "lint_paths", "lint_source", "check_handler_coverage",
           "check_engine_handlers", "check_arc_coverage", "main"]


@dataclass(frozen=True)
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


#: modules whose iteration order feeds the simulation event stream
ORDER_SENSITIVE_PARTS = ("core", "protocols", "runtime", "sync", "svm", "hw",
                         "net")
ORDER_SENSITIVE_FILES = ("machine.py", "sim.py", "trace.py")

#: modules allowed to read the wall clock: ``bench`` measures it, and
#: ``serve`` needs real time for rate limiting, ETAs, and job timestamps
#: (neither feeds the simulation event stream)
WALL_CLOCK_EXEMPT_PARTS = ("bench", "serve")

WALL_CLOCK_ATTRS = {
    "time": {"time", "time_ns", "perf_counter", "perf_counter_ns",
             "monotonic", "monotonic_ns", "process_time", "clock"},
    "datetime": {"now", "utcnow", "today"},
}

#: attributes statically known to hold sets (see core/page.py, svm)
SET_ATTRS = {"read_dir", "write_dir", "tlb_dir", "copies"}

#: iterating through these is order-insensitive or deterministic
ORDER_SAFE_WRAPPERS = {"sorted", "min", "max", "len", "sum", "any", "all",
                       "frozenset", "set"}


def _rel_parts(path: Path) -> tuple[str, ...]:
    """Path components below the ``repro`` package root (best effort)."""
    parts = path.parts
    for anchor in ("repro",):
        if anchor in parts:
            return parts[parts.index(anchor) + 1:]
    return parts[-2:]


def _is_order_sensitive(path: Path) -> bool:
    parts = _rel_parts(path)
    if not parts:
        return False
    return parts[0] in ORDER_SENSITIVE_PARTS or (
        len(parts) == 1 and parts[0] in ORDER_SENSITIVE_FILES
    )


def _is_wall_clock_exempt(path: Path) -> bool:
    parts = _rel_parts(path)
    return bool(parts) and parts[0] in WALL_CLOCK_EXEMPT_PARTS


class _SetTypes:
    """One-file inference of which local names are set-valued.

    Deliberately simple: a name assigned from a set display, a set
    comprehension, a ``set()``/``frozenset()`` call, a known set
    attribute, or a binary operation over a set-typed operand is marked.
    Iterated to a fixpoint so chains like ``others = sharers - {pid}``
    resolve.  Scope-insensitive, which is fine for a lint.
    """

    def __init__(self, tree: ast.AST) -> None:
        self.names: set[str] = set()
        assigns: list[tuple[str, ast.expr]] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        assigns.append((target.id, node.value))
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    assigns.append((node.target.id, node.value))
        changed = True
        while changed:
            changed = False
            for name, value in assigns:
                if name not in self.names and self.is_set(value):
                    self.names.add(name)
                    changed = True

    def is_set(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                return True
        if isinstance(node, ast.Attribute) and node.attr in SET_ATTRS:
            return True
        if isinstance(node, ast.Name) and node.id in self.names:
            return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self.is_set(node.left) or self.is_set(node.right)
        return False


class _FileLinter(ast.NodeVisitor):
    def __init__(self, path: Path, tree: ast.AST) -> None:
        self.path = path
        self.findings: list[Finding] = []
        self.order_sensitive = _is_order_sensitive(path)
        self.wall_clock_ok = _is_wall_clock_exempt(path)
        self.sets = _SetTypes(tree) if self.order_sensitive else None
        #: names imported from the ``time`` module
        self.time_names: set[str] = set()

    def report(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            Finding(str(self.path), getattr(node, "lineno", 0), rule, message)
        )

    # -- imports --------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name.split(".")[0] == "random":
                self.report(
                    node, "unseeded-random",
                    "stdlib random is banned (process-global, unseeded "
                    "state); use numpy.random.default_rng(seed)",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = (node.module or "").split(".")[0]
        if module == "random":
            self.report(
                node, "unseeded-random",
                "stdlib random is banned (process-global, unseeded "
                "state); use numpy.random.default_rng(seed)",
            )
        if module == "time" and not self.wall_clock_ok:
            for alias in node.names:
                if alias.name in WALL_CLOCK_ATTRS["time"]:
                    self.time_names.add(alias.asname or alias.name)
        self.generic_visit(node)

    # -- calls ----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if not self.wall_clock_ok:
            if isinstance(func, ast.Attribute) and isinstance(
                func.value, ast.Name
            ):
                banned = WALL_CLOCK_ATTRS.get(func.value.id)
                if banned and func.attr in banned:
                    self.report(
                        node, "wall-clock",
                        f"{func.value.id}.{func.attr}() reads the wall "
                        "clock; simulated time comes from the event queue",
                    )
            elif isinstance(func, ast.Name) and func.id in self.time_names:
                self.report(
                    node, "wall-clock",
                    f"{func.id}() reads the wall clock; simulated time "
                    "comes from the event queue",
                )
        if self.order_sensitive:
            if isinstance(func, ast.Name) and func.id == "id" and node.args:
                self.report(
                    node, "id-order",
                    "id() varies run to run; key on a stable identifier "
                    "(pid, vpn, lock_id) instead",
                )
            if (
                isinstance(func, ast.Name)
                and func.id in ("iter", "list", "tuple", "enumerate")
                and node.args
                and self.sets.is_set(node.args[0])
            ):
                self.report(
                    node, "set-iteration",
                    f"{func.id}() over a set depends on hash order; wrap "
                    "the set in sorted() (or use min()/max())",
                )
        self.generic_visit(node)

    # -- iteration ------------------------------------------------------

    def _check_iter(self, node: ast.AST, iterable: ast.expr) -> None:
        if self.sets is not None and self.sets.is_set(iterable):
            self.report(
                node, "set-iteration",
                "iterating a set depends on hash order; wrap it in "
                "sorted()",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node, node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        for gen in node.generators:
            self._check_iter(node, gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp


def lint_source(path: Path, source: str) -> list[Finding]:
    """Lint one file's source text."""
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Finding(str(path), exc.lineno or 0, "syntax", str(exc))]
    linter = _FileLinter(path, tree)
    linter.visit(tree)
    return linter.findings


# ----------------------------------------------------------------------
# handler exhaustiveness (cross-file)
# ----------------------------------------------------------------------

def _msgtype_members(messages_path: Path) -> dict[str, int]:
    """``MsgType`` member names -> line numbers, from the enum's AST."""
    tree = ast.parse(messages_path.read_text(), filename=str(messages_path))
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "MsgType":
            members = {}
            for stmt in node.body:
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            members[target.id] = stmt.lineno
            return members
    return {}


def _msgtype_values(messages_path: Path) -> dict[str, str]:
    """``MsgType`` member names -> label values (string enum constants)."""
    if not messages_path.is_file():
        return {}
    tree = ast.parse(messages_path.read_text(), filename=str(messages_path))
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "MsgType":
            values = {}
            for stmt in node.body:
                if (
                    isinstance(stmt, ast.Assign)
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str)
                ):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            values[target.id] = stmt.value.value
            return values
    return {}


def _handles_registrations(core_files: Iterable[Path]) -> dict[str, list[str]]:
    """``MsgType`` member name -> list of "file:line" registration sites."""
    sites: dict[str, list[str]] = {}
    for path in core_files:
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for deco in node.decorator_list:
                if not (
                    isinstance(deco, ast.Call)
                    and isinstance(deco.func, ast.Name)
                    and deco.func.id == "handles"
                ):
                    continue
                for arg in deco.args:
                    if (
                        isinstance(arg, ast.Attribute)
                        and isinstance(arg.value, ast.Name)
                        and arg.value.id == "MsgType"
                    ):
                        sites.setdefault(arg.attr, []).append(
                            f"{path}:{deco.lineno}"
                        )
    return sites


def check_handler_coverage(core_dir: Path) -> list[Finding]:
    """Statically verify every MsgType member has exactly one handler.

    Registrations are collected from ``core/`` itself plus — when the
    sibling ``protocols/`` tree exists — every engine package in it
    (the MGS handlers live in ``protocols/mgs/``).
    """
    messages_path = core_dir / "messages.py"
    if not messages_path.is_file():
        return []
    members = _msgtype_members(messages_path)
    files = sorted(core_dir.glob("*.py"))
    protocols_dir = core_dir.parent / "protocols"
    if protocols_dir.is_dir():
        files.extend(sorted(protocols_dir.rglob("*.py")))
    registrations = _handles_registrations(files)
    findings = []
    for name, line in members.items():
        sites = registrations.get(name, [])
        if not sites:
            findings.append(Finding(
                str(messages_path), line, "handler-coverage",
                f"MsgType.{name} has no @handles registration in core/ "
                "or protocols/",
            ))
        elif len(sites) > 1:
            findings.append(Finding(
                str(messages_path), line, "handler-coverage",
                f"MsgType.{name} has {len(sites)} @handles registrations: "
                + ", ".join(sites),
            ))
    return findings


def _required_labels(package_files: Iterable[Path]):
    """The engine package's literal ``REQUIRED_LABELS`` declaration.

    Returns ``(labels, path, line)`` or ``None`` when no module in the
    package declares one.
    """
    for path in package_files:
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in tree.body:
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "REQUIRED_LABELS"
                    and isinstance(node.value, (ast.Tuple, ast.List, ast.Set))
                ):
                    labels = [
                        elt.value
                        for elt in node.value.elts
                        if isinstance(elt, ast.Constant)
                        and isinstance(elt.value, str)
                    ]
                    return labels, path, node.lineno
    return None


def _class_label_table(files: Iterable[Path]) -> dict[str, str]:
    """Message class name -> ``label`` class attribute (string constant)."""
    table: dict[str, str] = {}
    for path in files:
        if not path.is_file():
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for stmt in node.body:
                value = None
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ) and stmt.target.id == "label":
                    value = stmt.value
                elif isinstance(stmt, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == "label"
                    for t in stmt.targets
                ):
                    value = stmt.value
                if isinstance(value, ast.Constant) and isinstance(
                    value.value, str
                ):
                    table[node.name] = value.value
    return table


def _handles_label_sites(
    files: Iterable[Path],
    name_to_value: dict[str, str],
    class_labels: dict[str, str],
) -> dict[str, list[str]]:
    """Bus label -> list of "file:line" ``@handles`` registration sites.

    All three registration spellings resolve to labels: ``MsgType.X``
    attributes via the enum's value table, ``SomeMessage.label``
    attributes via the class table, and bare string literals (the
    spelling rival engines use for their own message vocabulary).
    """
    sites: dict[str, list[str]] = {}
    for path in files:
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for deco in node.decorator_list:
                if not (
                    isinstance(deco, ast.Call)
                    and isinstance(deco.func, ast.Name)
                    and deco.func.id == "handles"
                ):
                    continue
                for arg in deco.args:
                    label = None
                    if (
                        isinstance(arg, ast.Attribute)
                        and isinstance(arg.value, ast.Name)
                        and arg.value.id == "MsgType"
                    ):
                        label = name_to_value.get(arg.attr, arg.attr)
                    elif (
                        isinstance(arg, ast.Attribute)
                        and arg.attr == "label"
                        and isinstance(arg.value, ast.Name)
                        and arg.value.id in class_labels
                    ):
                        label = class_labels[arg.value.id]
                    elif isinstance(arg, ast.Constant) and isinstance(
                        arg.value, str
                    ):
                        label = arg.value
                    if label is not None:
                        sites.setdefault(label, []).append(
                            f"{path}:{deco.lineno}"
                        )
    return sites


def check_engine_handlers(
    protocols_dir: Path, messages_path: Path
) -> list[Finding]:
    """Per-engine bus handler tables: declaration vs. registration.

    Every engine package under ``protocols/`` that registers bus
    handlers must declare a literal ``REQUIRED_LABELS`` tuple, and the
    package's ``@handles`` registrations must cover those labels exactly
    once each, with no undeclared extras — the static mirror of
    ``Protocol.bus_handlers()`` / ``Protocol.check_bus()``.
    """
    name_to_value = _msgtype_values(messages_path)
    findings = []
    for package in sorted(p for p in protocols_dir.iterdir() if p.is_dir()):
        files = sorted(package.rglob("*.py"))
        if not files:
            continue
        class_labels = _class_label_table([messages_path, *files])
        sites = _handles_label_sites(files, name_to_value, class_labels)
        declared = _required_labels(files)
        if declared is None:
            if sites:
                findings.append(Finding(
                    str(package / "__init__.py"), 1, "handler-coverage",
                    f"engine package {package.name!r} registers bus "
                    "handlers but declares no literal REQUIRED_LABELS",
                ))
            continue
        labels, decl_path, decl_line = declared
        for label in labels:
            n = len(sites.get(label, []))
            if n == 0:
                findings.append(Finding(
                    str(decl_path), decl_line, "handler-coverage",
                    f"engine {package.name!r} declares label {label!r} "
                    "with no @handles registration",
                ))
            elif n > 1:
                findings.append(Finding(
                    str(decl_path), decl_line, "handler-coverage",
                    f"engine {package.name!r} label {label!r} has {n} "
                    "@handles registrations: " + ", ".join(sites[label]),
                ))
        for label in sorted(set(sites) - set(labels)):
            findings.append(Finding(
                sites[label][0].rsplit(":", 1)[0],
                int(sites[label][0].rsplit(":", 1)[1]),
                "handler-coverage",
                f"engine {package.name!r} registers label {label!r} "
                "missing from its REQUIRED_LABELS declaration",
            ))
    return findings


def _arc_check_labels(package_files: Iterable[Path]):
    """The engine package's literal ``_CHECKS`` arc table.

    Scans class bodies for an assignment ``_CHECKS = {...}`` with string
    keys (the ``ArcRules`` dispatch table convention every engine's
    ``arcs.py`` follows).  Returns ``(labels, path, line)`` or ``None``
    when no module in the package declares one.
    """
    for path in package_files:
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for stmt in node.body:
                if not (
                    isinstance(stmt, ast.Assign)
                    and any(
                        isinstance(t, ast.Name) and t.id == "_CHECKS"
                        for t in stmt.targets
                    )
                    and isinstance(stmt.value, ast.Dict)
                ):
                    continue
                labels = [
                    key.value
                    for key in stmt.value.keys
                    if isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                ]
                return labels, path, stmt.lineno
    return None


def check_arc_coverage(
    protocols_dir: Path, messages_path: Path
) -> list[Finding]:
    """Per-engine arc rules: every registered label must have a check.

    A message type the sanitizer has no arc check for is a blind spot —
    the fuzz suite and the bounded model checker both dispatch through
    the same ``_CHECKS`` table, so an uncovered label ships protocol
    traffic no tool validates.  Engines fix findings by adding checks,
    never by exempting labels.
    """
    name_to_value = _msgtype_values(messages_path)
    findings = []
    for package in sorted(p for p in protocols_dir.iterdir() if p.is_dir()):
        files = sorted(package.rglob("*.py"))
        if not files:
            continue
        class_labels = _class_label_table([messages_path, *files])
        sites = _handles_label_sites(files, name_to_value, class_labels)
        if not sites:
            continue
        declared = _arc_check_labels(files)
        if declared is None:
            findings.append(Finding(
                str(package / "arcs.py"), 1, "arc-coverage",
                f"engine package {package.name!r} registers bus handlers "
                "but ships no ArcRules _CHECKS table",
            ))
            continue
        labels, decl_path, decl_line = declared
        for label in sorted(set(sites) - set(labels)):
            findings.append(Finding(
                str(decl_path), decl_line, "arc-coverage",
                f"engine {package.name!r} registers a handler for label "
                f"{label!r} with no arc check in its _CHECKS table",
            ))
    return findings


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------

def _python_files(paths: Iterable[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def lint_paths(paths: Iterable[Path]) -> list[Finding]:
    """Lint files/directories; adds handler coverage when core/ is in scope."""
    files = _python_files(paths)
    findings: list[Finding] = []
    core_dirs = set()
    for path in files:
        findings.extend(lint_source(path, path.read_text()))
        if path.name == "messages.py" and path.parent.name == "core":
            core_dirs.add(path.parent)
    for core_dir in sorted(core_dirs):
        findings.extend(check_handler_coverage(core_dir))
        protocols_dir = core_dir.parent / "protocols"
        if protocols_dir.is_dir():
            findings.extend(
                check_engine_handlers(protocols_dir, core_dir / "messages.py")
            )
            findings.extend(
                check_arc_coverage(protocols_dir, core_dir / "messages.py")
            )
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    roots = [Path(a) for a in args] or [Path("src/repro")]
    missing = [str(r) for r in roots if not r.exists()]
    if missing:
        print(f"lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    findings = lint_paths(roots)
    for finding in findings:
        print(finding.render())
    nfiles = len(_python_files(roots))
    if findings:
        print(f"lint: {len(findings)} finding(s) in {nfiles} file(s)")
        return 1
    print(f"lint: {nfiles} file(s) clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
