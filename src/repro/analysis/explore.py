"""Exhaustive protocol state-space exploration.

Two complementary drivers over the same harness, both engine-agnostic:

* :func:`explore` — a **bounded model checker**.  It enumerates *every*
  interleaving of a small per-thread program (reads, writes, a lock,
  a barrier) against one coherence engine, at simulator-event
  granularity: at each state the nondeterministic choices are "thread i
  issues its next operation now" and "deliver the next queued event".
  States are canonicalized (``Protocol.phase_state`` plus the pending
  event queue, TLBs, the hardware line directory, interconnect
  reservations, and the happens-before bookkeeping) and deduped, so the
  search walks the state *graph*, breadth-first — the first violation
  found is a minimum-length schedule.  Every reachable state is checked
  against the engine's :class:`~repro.core.engine.ArcRules` (including
  the queue-aware :meth:`~repro.core.engine.ArcRules.check_state` rules
  only the explorer can evaluate), the structural page checks, and
  release-consistency read legality (:mod:`repro.analysis.semantics`).

* :func:`walk_machine` — a **hypothesis stateful machine** driving much
  longer random walks (optionally through the lossy ``repro.net``
  fault-injection transport) beyond the exhaustive bound, with
  hypothesis shrinking any failure to a minimal rule sequence and the
  transaction-grouped tracer rendering the counterexample.

The seeded corruptions of :mod:`repro.analysis.mutations` are the
benchmark: :func:`mutation_benchmark` must catch every one, each in
strictly fewer simulator events than the random storm fuzzing of
``tests/test_protocol_fuzz.py`` needs for the same mutation
(:func:`fuzz_shortest_failure` reproduces that discipline exactly,
including hypothesis shrinking).

Determinism: everything here replays deterministic simulations from
explicit choice sequences — no wall clock, no unseeded randomness — so
the same (engine, program, mutation) triple always yields the same
counterexample.  ``tests/test_explore.py`` golden-pins two minimized
traces under ``results/``.
"""

from __future__ import annotations

import argparse
import dataclasses
import enum
import hashlib
import sys
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.invariants import InvariantViolation
from repro.analysis.mutations import MUTATIONS, apply_mutation
from repro.analysis.semantics import MemoryModel
from repro.core.bus import MessageBus
from repro.core.engine import engine_names
from repro.core.messages import ProtocolMessage
from repro.core.page import HomePage, PageFrame
from repro.params import WORD_BYTES, MachineConfig, NetworkConfig
from repro.runtime.replay import PhaseRecorder, array_digest
from repro.runtime.runner import Runtime
from repro.trace import ProtocolTracer

__all__ = [
    "Op",
    "ExploreConfig",
    "ExploreReport",
    "explore",
    "default_programs",
    "counterexample_trace",
    "inflight_messages",
    "fuzz_shortest_failure",
    "mutation_benchmark",
    "MUTATION_SETUPS",
    "walk_machine",
    "run_walk",
    "main",
]

#: one program step: ("read", page, word) / ("write", page, word) /
#: ("lock",) / ("unlock",) / ("barrier",)
Op = tuple


@dataclass(frozen=True)
class ExploreConfig:
    """Bounds and machine shape for one exhaustive run."""

    engine: str = "mgs"
    threads: int = 2
    pages: int = 1
    nclusters: int = 2
    cluster_size: int = 1
    delay: int = 700
    #: frontier budget; exceeding it marks the report truncated
    max_states: int = 250_000
    #: schedule-length budget (choices, not events)
    max_depth: int = 2_000
    #: consecutive re-faults of one access before declaring livelock
    max_refaults: int = 8

    @property
    def total_processors(self) -> int:
        return self.nclusters * self.cluster_size


def default_programs(cfg: ExploreConfig) -> tuple[tuple[Op, ...], ...]:
    """The canonical per-thread programs for an exhaustive run.

    Covers the whole vocabulary: unsynchronized reads/writes (races are
    *legal* under RC — the checker verifies the value read is one an RC
    execution may return), a lock-protected critical section whose
    release/acquire edges force visibility, a barrier, and a post-
    barrier access that must observe everything before it.  Thread 0
    writes, thread 1 reads the same words, extra threads alternate.
    """
    progs: list[tuple[Op, ...]] = []
    last = cfg.pages - 1
    for i in range(cfg.threads):
        if i % 2 == 0:
            progs.append(
                (
                    ("write", 0, 0),
                    ("lock",),
                    ("write", last, 1),
                    ("unlock",),
                    ("barrier",),
                    ("read", last, 1),
                )
            )
        else:
            progs.append(
                (
                    ("read", last, 1),
                    ("lock",),
                    ("read", 0, 0),
                    ("unlock",),
                    ("barrier",),
                    ("write", 0, 0),
                )
            )
    return tuple(progs)


# ---------------------------------------------------------------------------
# In-flight message extraction
# ---------------------------------------------------------------------------


def _find_messages(obj, out, depth=0) -> None:
    if isinstance(obj, ProtocolMessage):
        out.append(obj)
        return
    if depth >= 3:
        return
    if isinstance(obj, tuple):
        for x in obj:
            _find_messages(x, out, depth + 1)


def inflight_messages(rt: Runtime) -> tuple[ProtocolMessage, ...]:
    """Undelivered protocol messages, in delivery (time, seq) order.

    Scans the simulator's event queue for scheduled deliveries —
    including messages still inside the reliable transport's
    retransmission machinery, whose closures carry the payload as an
    argument.  Only valid between events (the explorer single-steps, so
    the queue is always intact when this runs).
    """
    out: list[ProtocolMessage] = []
    for entry in sorted(rt.sim._heap):
        _find_messages(entry[3], out)
    return tuple(out)


# ---------------------------------------------------------------------------
# State canonicalization
# ---------------------------------------------------------------------------


class _Canon:
    """Canonical, time-shifted, txn-renumbered encoding of live objects.

    Transaction ids are allocated by a global monotone counter, so two
    behaviorally identical states reached through different schedules
    carry different raw ids; renumbering by first appearance (walking
    open transactions, then queued events in delivery order) makes them
    collide.  Closures are encoded by qualname plus their captured cells
    (``co_freevars`` gives the names, so a cell literally named ``txn``
    is renumbered too).
    """

    def __init__(self, protocol) -> None:
        self.protocol = protocol
        self._txn_map: dict[int, int] = {}

    def txn(self, v):
        if not isinstance(v, int) or v < 0:
            return v
        m = self._txn_map
        if v not in m:
            m[v] = len(m)
        return ("txn", m[v])

    def obj(self, o, depth=0, seen=()):
        if o is None or isinstance(o, (bool, int, float, str, bytes)):
            return o
        if isinstance(o, enum.Enum):
            return ("enum", type(o).__name__, o.value)
        if isinstance(o, np.ndarray):
            return ("nd", array_digest(o))
        if depth > 8:
            return ("deep", type(o).__name__)
        if id(o) in seen:
            return ("cycle", type(o).__name__)
        seen = seen + (id(o),)
        if isinstance(o, ProtocolMessage):
            vals = tuple(
                (
                    f.name,
                    self.txn(getattr(o, f.name))
                    if f.name == "txn"
                    else self.obj(getattr(o, f.name), depth + 1, seen),
                )
                for f in dataclasses.fields(o)
            )
            return ("msg", o.label, vals)
        if isinstance(o, PageFrame):
            return ("frame", o.cluster, o.vpn)
        if isinstance(o, HomePage):
            for vpn, h in self.protocol.homes.items():
                if h is o:
                    return ("homepage", vpn)
            return ("homepage", -1)
        if isinstance(o, (list, tuple)):
            return (
                type(o).__name__,
                tuple(self.obj(x, depth + 1, seen) for x in o),
            )
        if isinstance(o, dict):
            return (
                "dict",
                tuple(
                    (self.obj(k, depth + 1, seen), self.obj(v, depth + 1, seen))
                    for k, v in o.items()
                ),
            )
        if isinstance(o, (set, frozenset)):
            return (
                "set",
                tuple(
                    sorted(
                        repr(self.obj(x, depth + 1, seen)) for x in o
                    )
                ),
            )
        if callable(o):
            return self.fn(o, depth, seen)
        if dataclasses.is_dataclass(o):
            vals = tuple(
                (
                    f.name,
                    self.txn(getattr(o, f.name))
                    if f.name == "txn"
                    else self.obj(getattr(o, f.name), depth + 1, seen),
                )
                for f in dataclasses.fields(o)
            )
            return ("dc", type(o).__name__, vals)
        return ("obj", type(o).__name__)

    def fn(self, f, depth=0, seen=()):
        func = getattr(f, "__func__", f)
        out = ["fn", getattr(func, "__qualname__", type(f).__name__)]
        bound = getattr(f, "__self__", None)
        if bound is not None:
            if isinstance(bound, (PageFrame, HomePage)):
                out.append(self.obj(bound, depth + 1, seen))
            else:
                out.append(type(bound).__name__)
        code = getattr(func, "__code__", None)
        closure = getattr(func, "__closure__", None)
        if code is not None and closure:
            for name, cell in zip(code.co_freevars, closure):
                try:
                    val = cell.cell_contents
                except ValueError:  # pragma: no cover - empty cell
                    val = "<empty>"
                out.append(
                    (
                        name,
                        self.txn(val)
                        if name == "txn"
                        else self.obj(val, depth + 1, seen),
                    )
                )
        return tuple(out)


# ---------------------------------------------------------------------------
# The harness: one explored execution
# ---------------------------------------------------------------------------

_IDLE = "idle"
_DONE_STATUSES = (_IDLE, "lockwait", "barrier-wait")


class _Thread:
    __slots__ = ("pid", "program", "pc", "status", "refaults")

    def __init__(self, pid: int, program: tuple[Op, ...]) -> None:
        self.pid = pid
        self.program = program
        self.pc = 0
        self.status = _IDLE
        self.refaults = 0


class _Harness:
    """One execution being explored: a Runtime plus logical threads.

    The harness plays the role of ``repro.runtime.env`` and the sync
    objects, but under *explicit* scheduling: operations are issued only
    when the search says so, and simulator events are delivered one at a
    time (``sim.step``), so every interleaving is reachable.  The access
    recipe mirrors the Env slow path exactly: TLB probe, fault until
    mapped, hardware line-directory access, then the word read/write.
    """

    def __init__(
        self,
        cfg: ExploreConfig,
        programs: tuple[tuple[Op, ...], ...],
        mutation: str | None = None,
        trace: bool = False,
    ) -> None:
        if len(programs) != cfg.threads:
            raise ValueError(f"{cfg.threads} threads, {len(programs)} programs")
        self.cfg = cfg
        self.config = MachineConfig(
            total_processors=cfg.total_processors,
            cluster_size=cfg.cluster_size,
            inter_ssmp_delay=cfg.delay,
            protocol=cfg.engine,
        )
        rt = Runtime(self.config, analysis="invariants")
        self.rt = rt
        arr = rt.array(
            "explore", cfg.pages * self.config.words_per_page, home=0
        )
        base_vpn = arr.base // self.config.page_size
        self.vpns = [base_vpn + i for i in range(cfg.pages)]
        self.tracer = ProtocolTracer(rt, pages=self.vpns) if trace else None
        if mutation is not None:
            apply_mutation(rt, mutation)
        self.mem = MemoryModel(cfg.threads)
        self.threads = [
            _Thread(pid=i, program=programs[i]) for i in range(cfg.threads)
        ]
        self.lock_holder: int | None = None
        self.lock_queue: list[int] = []
        self.barrier_arrived: list[int] = []
        self.barrier_episode = 0
        self.events = 0
        self.ops = 0
        self.log: list[str] = []

    # -- choices -------------------------------------------------------

    def choices(self) -> list[tuple]:
        out: list[tuple] = []
        for i, t in enumerate(self.threads):
            if t.status == _IDLE and t.pc < len(t.program):
                out.append(("op", i))
        if self.rt.sim.pending:
            out.append(("step",))
        return out

    def apply(self, choice: tuple, check: bool = True) -> None:
        if choice[0] == "op":
            self._issue(choice[1])
        else:
            self.rt.sim.step()
            self.events += 1
        if check:
            self.run_checks()

    def done(self) -> bool:
        return all(
            t.pc == len(t.program) and t.status == _IDLE for t in self.threads
        )

    # -- operation issue ----------------------------------------------

    def _issue(self, i: int) -> None:
        t = self.threads[i]
        op = t.program[t.pc]
        self.ops += 1
        self.log.append(f"t{i}(p{t.pid}): {self._op_str(op)}")
        kind = op[0]
        if kind in ("read", "write"):
            self._start_access(i, op)
        elif kind == "lock":
            self._start_lock(i)
        elif kind == "unlock":
            self._start_unlock(i)
        elif kind == "barrier":
            self._start_barrier(i)
        else:
            raise ValueError(f"unknown op {op!r}")

    def _op_str(self, op: Op) -> str:
        if op[0] in ("read", "write"):
            return f"{op[0]} page{op[1]}[{op[2]}]"
        return op[0]

    def _mapped(self, pid: int, vpn: int, write: bool) -> bool:
        tlb = self.rt.protocol.tlbs[pid]
        return tlb.has_write(vpn) if write else tlb.lookup(vpn) is not None

    def _start_access(self, i: int, op: Op) -> None:
        t = self.threads[i]
        vpn = self.vpns[op[1]]
        write = op[0] == "write"
        if self._mapped(t.pid, vpn, write):
            self._finish_access(i, op)
            return
        t.status = "fault"
        t.refaults = 0
        self.rt.protocol.fault(
            t.pid, vpn, write, lambda: self._fault_done(i, op)
        )

    def _fault_done(self, i: int, op: Op) -> None:
        t = self.threads[i]
        vpn = self.vpns[op[1]]
        write = op[0] == "write"
        if self._mapped(t.pid, vpn, write):
            t.status = _IDLE
            self._finish_access(i, op)
            return
        t.refaults += 1
        if t.refaults > self.cfg.max_refaults:
            self.rt.sanitizer.fail(
                "explore-livelock",
                f"thread {i} (pid {t.pid}) re-faulted page {op[1]} "
                f"{t.refaults} times without gaining a "
                f"{'write' if write else 'read'} mapping",
                vpn=vpn,
            )
        self.rt.protocol.fault(
            t.pid, vpn, write, lambda: self._fault_done(i, op)
        )

    def _finish_access(self, i: int, op: Op) -> None:
        t = self.threads[i]
        vpn = self.vpns[op[1]]
        word = op[2]
        write = op[0] == "write"
        frame = self.rt.protocol.frames_view(t.pid)[vpn]
        addr = vpn * self.config.page_size + word * WORD_BYTES
        self.rt.cache.access(
            self.config.cluster_of(t.pid),
            t.pid,
            addr // self.config.line_size,
            write,
            frame.owner_pid,
        )
        if write:
            # Deterministic per (thread, program index) so identical
            # logical states reached through different schedules carry
            # identical page bytes and merge in the frontier.
            value = float((i + 1) * 100 + t.pc)
            frame.data[word] = value
            self.mem.write(i, vpn, word, value)
        else:
            value = float(frame.data[word])
            legal = self.mem.legal_values(i, vpn, word)
            if value not in legal:
                self.rt.sanitizer.fail(
                    "rc-read",
                    f"thread {i} (pid {t.pid}) read {value} from "
                    f"page{op[1]}[{word}]; release consistency allows "
                    f"{sorted(legal)}",
                    vpn=vpn,
                )
            self.mem.read(i, vpn, word)
        t.pc += 1

    # -- lock ----------------------------------------------------------

    def _start_lock(self, i: int) -> None:
        if self.lock_holder is None:
            self.lock_holder = i
            self._grant_lock(i)
        else:
            self.threads[i].status = "lockwait"
            self.lock_queue.append(i)

    def _grant_lock(self, i: int) -> None:
        t = self.threads[i]
        if self.rt.protocol.needs_acquire:
            t.status = "acquiring"
            self.rt.protocol.acquire(t.pid, lambda: self._lock_granted(i))
        else:
            self._lock_granted(i)

    def _lock_granted(self, i: int) -> None:
        t = self.threads[i]
        self.mem.acquire(i, "lock")
        t.status = _IDLE
        t.pc += 1

    def _start_unlock(self, i: int) -> None:
        if self.lock_holder != i:
            raise ValueError(f"thread {i} unlocks a lock it does not hold")
        t = self.threads[i]
        t.status = "releasing"
        self.rt.protocol.release(t.pid, lambda: self._unlock_done(i))

    def _unlock_done(self, i: int) -> None:
        t = self.threads[i]
        self.mem.release(i, "lock")
        t.status = _IDLE
        t.pc += 1
        self.lock_holder = None
        if self.lock_queue:
            nxt = self.lock_queue.pop(0)
            self.lock_holder = nxt
            self._grant_lock(nxt)

    # -- barrier --------------------------------------------------------

    def _start_barrier(self, i: int) -> None:
        t = self.threads[i]
        t.status = "barrier-rel"
        self.barrier_arrived.append(i)
        self.rt.protocol.release(t.pid, lambda: self._barrier_released(i))

    def _barrier_released(self, i: int) -> None:
        self.threads[i].status = "barrier-wait"
        if len(self.barrier_arrived) == len(self.threads) and all(
            self.threads[j].status == "barrier-wait"
            for j in self.barrier_arrived
        ):
            arrived = self.barrier_arrived
            self.barrier_arrived = []
            self.mem.barrier(sorted(arrived), self.barrier_episode)
            self.barrier_episode += 1
            for j in sorted(arrived):
                self._barrier_depart(j)

    def _barrier_depart(self, j: int) -> None:
        t = self.threads[j]
        if self.rt.protocol.needs_acquire:
            t.status = "acquiring"
            self.rt.protocol.acquire(t.pid, lambda: self._barrier_out(j))
        else:
            self._barrier_out(j)

    def _barrier_out(self, j: int) -> None:
        t = self.threads[j]
        t.status = _IDLE
        t.pc += 1

    # -- checks ---------------------------------------------------------

    def run_checks(self) -> None:
        san = self.rt.sanitizer
        san.check_state(inflight_messages(self.rt))
        for vpn in self.vpns:
            san.rules.check_page(vpn)
        if self.rt.sim.pending:
            return
        # Drained: every protocol-level continuation has run.  A thread
        # still mid-operation will now wait forever — that is a hang.
        stuck = [
            i
            for i, t in enumerate(self.threads)
            if t.status not in _DONE_STATUSES
        ]
        if stuck:
            san.fail(
                "explore-hang",
                f"event queue empty but threads {stuck} are stuck "
                f"mid-operation "
                f"({[self.threads[i].status for i in stuck]})",
            )
        if not self.choices():
            waiting = [
                i
                for i, t in enumerate(self.threads)
                if t.pc < len(t.program) or t.status != _IDLE
            ]
            if waiting:
                san.fail(
                    "explore-deadlock",
                    f"no enabled choice but threads {waiting} have not "
                    f"finished their programs",
                )
        if self.done():
            san.check_quiescent()
            self.rt.protocol.check_invariants()

    # -- canonical state -------------------------------------------------

    def state_key(self) -> bytes:
        rt = self.rt
        now = rt.sim.now
        canon = _Canon(rt.protocol)
        bus = rt.protocol.bus
        txns = tuple(
            (canon.txn(txn), rec.kind, rec.pid, rec.vpn, rec.note)
            for txn, rec in bus.open_txns.items()
        )
        events = tuple(
            (entry[0] - now, canon.obj(entry[2]), canon.obj(entry[3]))
            for entry in sorted(rt.sim._heap)
        )
        cache_state = tuple(
            tuple(
                sorted(
                    (line, s[0], tuple(sorted(s[1])))
                    for line, s in directory.items()
                )
            )
            for directory in rt.cache._lines
        )
        state = (
            tuple((t.pc, t.status, t.refaults) for t in self.threads),
            self.lock_holder,
            tuple(self.lock_queue),
            tuple(self.barrier_arrived),
            self.barrier_episode,
            self.mem.state(),
            canon.obj(rt.protocol.phase_state()),
            tuple(
                tuple(sorted(tlb._entries.items()))
                for tlb in rt.protocol.tlbs
            ),
            cache_state,
            tuple(
                max(0, p.handler_free_at - now)
                for p in rt.machine.processors
            ),
            PhaseRecorder._net_state(rt.machine.external, now),
            PhaseRecorder._net_state(rt.machine.internal, now),
            txns,
            events,
        )
        return hashlib.blake2b(repr(state).encode(), digest_size=16).digest()


# ---------------------------------------------------------------------------
# The bounded model checker
# ---------------------------------------------------------------------------


@dataclass
class ExploreReport:
    """Outcome of one bounded exploration (picklable)."""

    engine: str
    mutation: str | None
    states: int
    edges: int
    #: rule name of the violation, or None when the space is clean
    rule: str | None = None
    detail: str | None = None
    #: minimal failing schedule (only set on violation)
    schedule: tuple = ()
    #: simulator events executed up to and including the violation
    events: int = 0
    #: program operations issued up to the violation
    ops: int = 0
    truncated: bool = False

    @property
    def caught(self) -> bool:
        return self.rule is not None

    def summary(self) -> str:
        name = f"{self.engine}" + (
            f"+{self.mutation}" if self.mutation else ""
        )
        if self.rule is None:
            extra = " (truncated)" if self.truncated else ""
            return (
                f"{name}: clean — {self.states} states, "
                f"{self.edges} transitions{extra}"
            )
        return (
            f"{name}: VIOLATION {self.rule} after {self.ops} ops / "
            f"{self.events} events (schedule length {len(self.schedule)}, "
            f"{self.states} states explored) — {self.detail}"
        )


def _replay(cfg, programs, mutation, schedule) -> _Harness:
    h = _Harness(cfg, programs, mutation)
    for c in schedule:
        h.apply(c, check=False)
    return h


def explore(
    cfg: ExploreConfig,
    programs: tuple[tuple[Op, ...], ...] | None = None,
    mutation: str | None = None,
) -> ExploreReport:
    """Breadth-first search of the reachable state graph.

    Closures throughout the engines make protocol state impossible to
    deep-copy, so the search is *stateless* (CHESS-style): a state is a
    choice schedule, replayed from scratch on a fresh ``Runtime`` when
    expanded — sound because the simulator is fully deterministic.  BFS
    order guarantees the first violation found has a minimum-length
    schedule.
    """
    if programs is None:
        programs = default_programs(cfg)
    root = _Harness(cfg, programs, mutation)
    try:
        root.run_checks()
    except AssertionError as e:
        return _violation_report(cfg, mutation, (), root, e, 1, 0)
    seen: set[bytes] = {root.state_key()}
    frontier: deque[tuple] = deque([()])
    edges = 0
    truncated = False
    while frontier:
        sched = frontier.popleft()
        base = _replay(cfg, programs, mutation, sched)
        for choice in base.choices():
            edges += 1
            h = _replay(cfg, programs, mutation, sched)
            try:
                h.apply(choice)
            except AssertionError as e:
                return _violation_report(
                    cfg, mutation, sched + (choice,), h, e, len(seen), edges
                )
            key = h.state_key()
            if key in seen:
                continue
            if len(seen) >= cfg.max_states:
                truncated = True
                continue
            seen.add(key)
            if len(sched) + 1 < cfg.max_depth:
                frontier.append(sched + (choice,))
            else:
                truncated = True
    return ExploreReport(
        engine=cfg.engine,
        mutation=mutation,
        states=len(seen),
        edges=edges,
        truncated=truncated,
    )


def _violation_report(
    cfg, mutation, schedule, h, exc, states, edges
) -> ExploreReport:
    rule = getattr(exc, "rule", "assert")
    detail = getattr(exc, "detail", str(exc))
    return ExploreReport(
        engine=cfg.engine,
        mutation=mutation,
        states=states,
        edges=edges,
        rule=rule,
        detail=detail,
        schedule=tuple(schedule),
        events=h.events,
        ops=h.ops,
    )


def counterexample_trace(
    cfg: ExploreConfig,
    report: ExploreReport,
    programs: tuple[tuple[Op, ...], ...] | None = None,
) -> str:
    """Re-run a failing schedule with the tracer and render it.

    The rendering is fully deterministic: the schedule listing (which
    thread issued which operation between which event deliveries), the
    violation, and the transaction-grouped protocol trace.
    """
    if not report.caught:
        raise ValueError("report carries no violation")
    if programs is None:
        programs = default_programs(cfg)
    h = _Harness(cfg, programs, report.mutation, trace=True)
    failure = None
    for choice in report.schedule:
        try:
            h.apply(choice)
        except AssertionError as e:
            failure = e
            break
    lines = [
        f"engine: {cfg.engine}",
        f"mutation: {report.mutation or '-'}",
        f"violation: {report.rule} — {report.detail}",
        f"cost: {h.ops} ops, {h.events} simulator events, "
        f"schedule length {len(report.schedule)}",
        "",
        "schedule (issued operations, in order):",
    ]
    lines += [f"  {entry}" for entry in h.log]
    lines.append("")
    lines.append(f"failure: {failure}")
    lines.append("")
    lines.append(h.tracer.render_transactions())
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# The fuzz baseline: what the storm suite needs to find the same bug
# ---------------------------------------------------------------------------


def _run_storm(engine: str, mutation: str | None, storm) -> int | None:
    """One storm under the fuzz-suite discipline; events-at-failure or None.

    Mirrors ``tests/test_protocol_fuzz.py`` exactly: schedule the ops
    with the one-outstanding-per-pid rule, drain completely, then check
    liveness and quiescence.  The cost of a detection is the number of
    simulator events processed when the failure raised — for mid-run
    sanitizer violations that is the failure point, for quiescence-only
    detections it is the whole drained storm.
    """
    total, cluster_size, delay, npages, ops = storm
    config = MachineConfig(
        total_processors=total,
        cluster_size=cluster_size,
        inter_ssmp_delay=delay,
        protocol=engine,
    )
    rt = Runtime(config, analysis="invariants")
    arr = rt.array("storm", npages * config.words_per_page, home=0)
    base_vpn = arr.base // config.page_size
    if mutation is not None:
        apply_mutation(rt, mutation)
    completed: list[int] = []
    expected = 0
    busy: set[int] = set()
    for pid, page, op, start in ops:
        if pid in busy:
            continue
        busy.add(pid)
        expected += 1
        if op == "release":
            rt.sim.schedule_at(
                start,
                rt.protocol.release,
                pid,
                lambda pid=pid: (completed.append(pid), busy.discard(pid)),
            )
        else:
            rt.sim.schedule_at(
                start,
                rt.protocol.fault,
                pid,
                base_vpn + page,
                op == "write",
                lambda pid=pid: (completed.append(pid), busy.discard(pid)),
            )
    try:
        rt.sim.run(max_events=1_000_000)
        assert len(completed) == expected, (
            f"{expected - len(completed)} operations never completed"
        )
        rt.protocol.check_invariants()
        rt.sanitizer.check_quiescent()
    except AssertionError:
        return rt.sim.events_processed
    return None


def fuzz_shortest_failure(
    engine: str,
    mutation: str,
    max_examples: int = 60,
) -> int | None:
    """Shortest failing storm the fuzz suite finds, in simulator events.

    Runs the storm strategy of ``tests/test_protocol_fuzz.py`` (minus
    the MGS-only single-writer toggle) under hypothesis with
    ``derandomize=True``, lets shrinking minimize the first failure, and
    returns the events-at-failure of the minimal example — or None when
    ``max_examples`` storms never trip over the mutation at all.
    """
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    @st.composite
    def storms(draw):
        nclusters = draw(st.sampled_from([2, 3, 4]))
        cluster_size = draw(st.sampled_from([1, 2]))
        total = nclusters * cluster_size
        delay = draw(st.sampled_from([0, 700, 2500]))
        npages = draw(st.integers(1, 3))
        ops = draw(
            st.lists(
                st.tuples(
                    st.integers(0, total - 1),
                    st.integers(0, npages - 1),
                    st.sampled_from(["read", "write", "release"]),
                    st.integers(0, 30_000),
                ),
                min_size=1,
                max_size=30,
            )
        )
        return total, cluster_size, delay, npages, ops

    best: dict[str, int] = {}

    class _Found(Exception):
        pass

    @settings(
        max_examples=max_examples,
        derandomize=True,
        database=None,
        deadline=None,
        suppress_health_check=list(HealthCheck),
    )
    @given(storm=storms())
    def case(storm):
        events = _run_storm(engine, mutation, storm)
        if events is not None:
            # Shrinking re-runs ever smaller failing storms; the last
            # failing execution hypothesis performs is the minimal one.
            best["events"] = events
            raise _Found()

    try:
        case()
    except _Found:
        return best["events"]
    return None


# ---------------------------------------------------------------------------
# The mutation-catch benchmark
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MutationSetup:
    """Exploration shape that reaches one seeded corruption."""

    cfg: ExploreConfig
    programs: tuple[tuple[Op, ...], ...]


def _setup(
    engine: str,
    threads: int,
    nclusters: int,
    cluster_size: int,
    programs,
    pages: int = 1,
) -> MutationSetup:
    return MutationSetup(
        cfg=ExploreConfig(
            engine=engine,
            threads=threads,
            pages=pages,
            nclusters=nclusters,
            cluster_size=cluster_size,
        ),
        programs=tuple(tuple(p) for p in programs),
    )


#: write then publish under the lock; the second thread reads under the
#: lock — the smallest program that exercises grant, invalidation-round,
#: and release arcs on one page
_WR_PAIR = (
    (("write", 0, 0), ("lock",), ("write", 0, 1), ("unlock",)),
    (("lock",), ("read", 0, 1), ("unlock",), ("read", 0, 0)),
)
#: the writer lives on the *non-home* cluster (thread 1 → pid 1 →
#: cluster 1), so the grant crosses the machine and twin/directory
#: bookkeeping on the requester side actually matters
_WR_REMOTE = (
    (("lock",), ("read", 0, 1), ("unlock",), ("read", 0, 0)),
    (("write", 0, 0), ("lock",), ("write", 0, 1), ("unlock",)),
)
#: same-cluster sharer plus a remote writer: forces TLB shootdowns
#: (PINV) inside the writer's cluster during the release round
_SHOOTDOWN = (
    (("write", 0, 0), ("lock",), ("unlock",)),
    (("read", 0, 0),),
    (("read", 0, 0),),
)
#: thread 1 dirties its replica, thread 0's release opens an
#: invalidation round that steals thread 1's writes, then thread 1
#: re-reads its own word — the diff-steal shape for eager DSM engines
_STEAL = (
    (("lock",), ("write", 0, 1), ("unlock",)),
    (("write", 0, 0), ("lock",), ("read", 0, 0), ("unlock",)),
)
#: a reader caches the page first, then the writer publishes under the
#: lock and the reader re-reads under the lock — the stale-copy shape
#: for lazy engines
_STALE_READ = (
    (("read", 0, 0), ("lock",), ("read", 0, 0), ("unlock",)),
    (("lock",), ("write", 0, 0), ("unlock",)),
)

MUTATION_SETUPS: dict[str, MutationSetup] = {
    # -- mgs ----------------------------------------------------------
    "skip_pinv_ack": _setup("mgs", 3, 2, 2, _SHOOTDOWN),
    "forget_directory_refill": _setup("mgs", 2, 2, 1, _WR_REMOTE),
    "drop_twin": _setup("mgs", 2, 2, 1, _WR_REMOTE),
    "leak_duq": _setup("mgs", 3, 2, 2, _SHOOTDOWN),
    "double_rack": _setup("mgs", 2, 2, 1, _WR_PAIR),
    "dir_exclusion": _setup("mgs", 2, 2, 1, _WR_PAIR),
    # -- swdsm --------------------------------------------------------
    "swdsm_stale_diff": _setup("swdsm", 2, 2, 1, _STEAL),
    "swdsm_lost_iack": _setup("swdsm", 2, 2, 1, _STEAL),
    # -- sc_pages -----------------------------------------------------
    "sc_shared_writer": _setup("sc_pages", 2, 2, 1, _WR_REMOTE),
    "sc_lost_wb": _setup("sc_pages", 2, 2, 1, _WR_REMOTE),
    # -- gcs ----------------------------------------------------------
    "gcs_dropped_write_notice": _setup("gcs", 2, 2, 1, _STALE_READ),
    "gcs_stale_version": _setup("gcs", 2, 2, 1, _WR_REMOTE),
}


def _benchmark_job(name: str, fuzz_examples: int) -> tuple:
    setup = MUTATION_SETUPS[name]
    report = explore(setup.cfg, setup.programs, mutation=name)
    fuzz_events = fuzz_shortest_failure(
        setup.cfg.engine, name, max_examples=fuzz_examples
    )
    return (
        name,
        setup.cfg.engine,
        report.caught,
        report.rule,
        report.events,
        report.ops,
        fuzz_events,
    )


@dataclass
class BenchRow:
    mutation: str
    engine: str
    caught: bool
    rule: str | None
    explore_events: int
    explore_ops: int
    fuzz_events: int | None

    @property
    def strictly_shorter(self) -> bool:
        return self.caught and (
            self.fuzz_events is None or self.explore_events < self.fuzz_events
        )

    def summary(self) -> str:
        fuzz = (
            "not found"
            if self.fuzz_events is None
            else f"{self.fuzz_events} events"
        )
        status = "OK " if self.strictly_shorter else "FAIL"
        return (
            f"{status} {self.engine:9s} {self.mutation:26s} "
            f"explorer: {self.rule or 'MISSED'} @ {self.explore_events} "
            f"events / {self.explore_ops} ops; fuzz: {fuzz}"
        )


def mutation_benchmark(
    names=None, fuzz_examples: int = 60, jobs: int | None = None
) -> list[BenchRow]:
    """Run the explorer and the fuzz baseline over seeded mutations.

    Every registered mutation must be caught, in strictly fewer
    simulator events than the fuzz suite's minimal failing storm (or
    with the fuzz suite failing to find it at all).  Farms mutations to
    the persistent worker pool of :mod:`repro.bench.parallel`.
    """
    from repro.bench.parallel import parallel_map

    if names is None:
        names = sorted(MUTATION_SETUPS)
    missing = [n for n in names if n not in MUTATION_SETUPS]
    if missing:
        raise ValueError(f"no exploration setup for mutations: {missing}")
    unset = sorted(set(MUTATIONS) - set(MUTATION_SETUPS))
    if unset:
        raise ValueError(f"mutations without exploration setups: {unset}")
    rows = parallel_map(
        _benchmark_job, [(n, fuzz_examples) for n in names], jobs=jobs
    )
    return [BenchRow(*row) for row in rows]


# ---------------------------------------------------------------------------
# Hypothesis stateful machine: long random walks beyond the bound
# ---------------------------------------------------------------------------

#: last rendered counterexample trace (module-level so the minimal
#: shrunk re-execution, which hypothesis runs last, leaves its trace
#: here for the caller)
_LAST_WALK_TRACE: dict[str, str] = {}


def walk_machine(
    engine: str = "mgs",
    mutation: str | None = None,
    faulty_net: bool = False,
    nclusters: int = 2,
    cluster_size: int = 2,
    npages: int = 2,
):
    """Build a hypothesis ``RuleBasedStateMachine`` class for one engine.

    Rules issue protocol operations (faults, releases, acquires for
    engines that need them) and pump bounded slices of the event queue,
    so operations overlap arbitrarily; an invariant sweeps the page and
    queue-aware checks after every rule.  With ``faulty_net`` the
    external interconnect drops, duplicates, and delays datagrams
    (seeded, via ``repro.net.faults``) underneath the reliable
    transport, so retransmission schedules are explored too.  Teardown
    drains and runs the full quiescence sweep.  On failure the
    transaction-grouped trace of the (shrunk) minimal walk is stashed
    for :func:`run_walk`.
    """
    from hypothesis import strategies as st
    from hypothesis.stateful import (
        RuleBasedStateMachine,
        invariant,
        rule,
    )

    total = nclusters * cluster_size
    network = (
        NetworkConfig(
            drop_rate=0.05, dup_rate=0.05, delay_rate=0.05, reliable=True
        )
        if faulty_net
        else NetworkConfig()
    )
    config = MachineConfig(
        total_processors=total,
        cluster_size=cluster_size,
        inter_ssmp_delay=700,
        network=network,
        protocol=engine,
    )

    class ProtocolWalk(RuleBasedStateMachine):
        def __init__(self):
            super().__init__()
            self.rt = Runtime(config, analysis="invariants")
            arr = self.rt.array(
                "walk", npages * config.words_per_page, home=0
            )
            self.base_vpn = arr.base // config.page_size
            self.vpns = [self.base_vpn + i for i in range(npages)]
            self.tracer = ProtocolTracer(self.rt, pages=self.vpns)
            if mutation is not None:
                apply_mutation(self.rt, mutation)
            self.busy: set[int] = set()
            self.completed = 0
            self.expected = 0

        def _op_done(self, pid: int) -> None:
            self.completed += 1
            self.busy.discard(pid)

        @rule(
            pid=st.integers(0, total - 1),
            page=st.integers(0, npages - 1),
            write=st.booleans(),
        )
        def fault(self, pid, page, write):
            if pid in self.busy:
                return
            self.busy.add(pid)
            self.expected += 1
            self.rt.protocol.fault(
                pid, self.base_vpn + page, write, lambda: self._op_done(pid)
            )

        @rule(pid=st.integers(0, total - 1))
        def release(self, pid):
            if pid in self.busy:
                return
            self.busy.add(pid)
            self.expected += 1
            self.rt.protocol.release(pid, lambda: self._op_done(pid))

        @rule(pid=st.integers(0, total - 1))
        def acquire(self, pid):
            # engines without acquire-side work skip this rule at runtime
            if not self.rt.protocol.needs_acquire or pid in self.busy:
                return
            self.busy.add(pid)
            self.expected += 1
            self.rt.protocol.acquire(pid, lambda: self._op_done(pid))

        @rule(n=st.integers(1, 300))
        def pump(self, n):
            sim = self.rt.sim
            for _ in range(n):
                if not sim.step():
                    break

        @invariant()
        def structurally_consistent(self):
            san = self.rt.sanitizer
            san.check_state(inflight_messages(self.rt))
            for vpn in self.vpns:
                san.rules.check_page(vpn)

        def teardown(self):
            try:
                self.rt.sim.run(max_events=2_000_000)
                assert self.completed == self.expected, (
                    f"{self.expected - self.completed} operations never "
                    f"completed"
                )
                self.rt.protocol.check_invariants()
                self.rt.sanitizer.check_quiescent()
            except AssertionError as e:
                _LAST_WALK_TRACE[engine] = (
                    f"engine: {engine}\nmutation: {mutation or '-'}\n"
                    f"failure: {e}\n\n"
                    + self.tracer.render_transactions()
                )
                raise

    ProtocolWalk.__name__ = f"ProtocolWalk_{engine}"
    return ProtocolWalk


def run_walk(
    engine: str,
    mutation: str | None = None,
    faulty_net: bool = False,
    max_examples: int = 120,
    stderr=None,
):
    """Run the stateful machine; returns (failed, minimal trace or None).

    Derandomized, so the same (engine, mutation) pair always shrinks to
    the same minimal counterexample.
    """
    from hypothesis import HealthCheck, settings
    from hypothesis.stateful import run_state_machine_as_test

    machine = walk_machine(engine, mutation, faulty_net)
    _LAST_WALK_TRACE.pop(engine, None)
    try:
        run_state_machine_as_test(
            machine,
            settings=settings(
                max_examples=max_examples,
                derandomize=True,
                database=None,
                deadline=None,
                stateful_step_count=30,
                report_multiple_bugs=False,
                suppress_health_check=list(HealthCheck),
            ),
        )
    except AssertionError as e:
        trace = _LAST_WALK_TRACE.get(engine)
        if trace is None:
            trace = f"engine: {engine}\nfailure: {e}"
        return True, trace
    return False, None


# ---------------------------------------------------------------------------
# CLI: ``repro analyze explore`` / ``repro analyze benchmark``
# ---------------------------------------------------------------------------


def _engine_job(engine: str, threads: int, pages: int, nclusters: int,
                cluster_size: int, max_states: int) -> ExploreReport:
    cfg = ExploreConfig(
        engine=engine,
        threads=threads,
        pages=pages,
        nclusters=nclusters,
        cluster_size=cluster_size,
        max_states=max_states,
    )
    return explore(cfg)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description="Protocol state-space exploration and benchmarks",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)
    px = sub.add_parser(
        "explore", help="bounded model check of unmutated engines"
    )
    px.add_argument(
        "--engine",
        default="all",
        help="engine name or 'all' (default)",
    )
    px.add_argument("--threads", type=int, default=2)
    px.add_argument("--pages", type=int, default=1)
    px.add_argument("--clusters", type=int, default=2)
    px.add_argument("--cluster-size", type=int, default=1)
    px.add_argument("--max-states", type=int, default=250_000)
    px.add_argument("--jobs", type=int, default=None)
    pb = sub.add_parser(
        "benchmark", help="mutation-catch benchmark vs the fuzz baseline"
    )
    pb.add_argument("--mutation", action="append", default=None)
    pb.add_argument("--fuzz-examples", type=int, default=60)
    pb.add_argument("--jobs", type=int, default=None)
    args = parser.parse_args(argv)

    if args.cmd == "explore":
        engines = (
            sorted(engine_names()) if args.engine == "all" else [args.engine]
        )
        from repro.bench.parallel import parallel_map

        reports = parallel_map(
            _engine_job,
            [
                (
                    e,
                    args.threads,
                    args.pages,
                    args.clusters,
                    args.cluster_size,
                    args.max_states,
                )
                for e in engines
            ],
            jobs=args.jobs,
        )
        bad = 0
        for report in reports:
            print(report.summary())
            bad += report.caught or report.truncated
        return 1 if bad else 0

    rows = mutation_benchmark(
        names=args.mutation,
        fuzz_examples=args.fuzz_examples,
        jobs=args.jobs,
    )
    bad = 0
    for row in rows:
        print(row.summary())
        bad += not row.strictly_shorter
    return 1 if bad else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
