"""Release-consistency race detection (vector clocks + access epochs).

MGS guarantees release consistency: a program free of data races —
conflicting accesses unordered by the happens-before relation induced by
its locks and barriers — observes sequentially consistent executions.
This module checks the *program* side of that contract, in the spirit of
Eraser/FastTrack (see PAPERS.md): every thread carries a vector clock
advanced at lock releases and barriers, every shared location carries
the epoch of its last writer plus the clocks of its current readers, and
a conflicting access not ordered by happens-before is recorded as a
:class:`Race`.

The detector is a pure observer.  It hooks the runtime's lock / unlock /
barrier handling (``runtime/runner.py``) and wraps the per-thread memory
operations bound by :class:`~repro.runtime.env.Env`; the wrappers
delegate to the original generators unchanged and charge no cycles, so
instrumented runs are cycle-identical to bare ones.

Granularity is per-word by default — the paper's applications *rely* on
page-level false sharing (TSP's path-element pool) being benign, so
per-page tracking (``granularity="page"``) is offered as a cheaper,
stricter mode.  Deliberate, algorithmically benign races (TSP's unlocked
read of the monotonically tightening incumbent bound) are declared with
:meth:`RaceDetector.exempt` / ``Runtime.annotate_benign_race`` and
documented in docs/ANALYSIS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.params import WORD_BYTES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.env import Env
    from repro.runtime.runner import Runtime

__all__ = ["Race", "RaceDetector", "RaceError"]


@dataclass(frozen=True)
class Race:
    """One pair of conflicting accesses unordered by happens-before."""

    addr: int  # byte address of the location (word- or page-aligned)
    vpn: int
    prev_pid: int
    prev_kind: str  # "read" or "write"
    pid: int
    kind: str

    def describe(self) -> str:
        return (
            f"addr 0x{self.addr:x} (vpn {self.vpn}): "
            f"{self.prev_kind} by proc {self.prev_pid} races "
            f"{self.kind} by proc {self.pid}"
        )


class RaceError(AssertionError):
    """Raised by :meth:`RaceDetector.certify` when races were recorded."""

    def __init__(self, races: Sequence[Race]) -> None:
        self.races = list(races)
        lines = [f"{len(races)} data race(s) detected:"]
        lines.extend(f"  {race.describe()}" for race in races)
        super().__init__("\n".join(lines))


class RaceDetector:
    """Happens-before race detection over one runtime's execution.

    Construction publishes the detector as ``rt.race_detector``; the
    runtime's lock/unlock/barrier handlers and every subsequently
    spawned :class:`Env` then feed it.  Attach *before* spawning
    threads (construction hooks and ``Runtime(analysis=...)`` both do).
    """

    def __init__(
        self,
        rt: "Runtime",
        granularity: str = "word",
        max_races: int = 32,
    ) -> None:
        if granularity not in ("word", "page"):
            raise ValueError(f"granularity must be word or page: {granularity}")
        self.rt = rt
        self.granularity = granularity
        self._page_size = rt.config.page_size
        self._unit = WORD_BYTES if granularity == "word" else rt.config.page_size
        n = rt.config.total_processors
        self._n = n
        #: per-thread vector clocks; C_u[u] starts at 1
        self._vc = [[1 if i == p else 0 for i in range(n)] for p in range(n)]
        #: per-lock clocks, keyed by lock_id
        self._locks: dict[int, list[int]] = {}
        #: last-writer epoch per location: loc -> (pid, clock)
        self._writes: dict[int, tuple[int, int]] = {}
        #: reader clocks per location: loc -> {pid: clock}
        self._reads: dict[int, dict[int, int]] = {}
        #: declared-benign byte ranges: (lo, hi, reason)
        self._exempt: list[tuple[int, int, str]] = []
        self.races: list[Race] = []
        self._max_races = max_races
        self._seen: set[tuple[int, int, int]] = set()
        # barrier episode state
        self._barrier_pending = [0] * n
        self._barrier_clock = [0] * n
        self._barrier_arrived = 0
        rt.race_detector = self

    # ------------------------------------------------------------------
    # benign-race annotations
    # ------------------------------------------------------------------

    def exempt(self, addr: int, words: int = 1, reason: str = "") -> None:
        """Declare ``words`` words at ``addr`` a documented benign race."""
        self._exempt.append((addr, addr + words * WORD_BYTES, reason))

    def _is_exempt(self, addr: int) -> bool:
        for lo, hi, _reason in self._exempt:
            if lo <= addr < hi:
                return True
        return False

    # ------------------------------------------------------------------
    # happens-before bookkeeping (runtime hooks)
    # ------------------------------------------------------------------

    def on_acquire(self, pid: int, lock_id: int) -> None:
        """Lock acquired: join the lock's clock into the thread's."""
        lock_clock = self._locks.get(lock_id)
        if lock_clock is not None:
            vc = self._vc[pid]
            for i, c in enumerate(lock_clock):
                if c > vc[i]:
                    vc[i] = c

    def on_release(self, pid: int, lock_id: int) -> None:
        """Release point: publish the thread's clock through the lock."""
        vc = self._vc[pid]
        self._locks[lock_id] = vc.copy()
        vc[pid] += 1

    def on_barrier_arrive(self, pid: int) -> None:
        """Barrier arrival: the release half of the barrier ordering."""
        vc = self._vc[pid]
        pending = self._barrier_pending
        for i, c in enumerate(vc):
            if c > pending[i]:
                pending[i] = c
        self._barrier_arrived += 1

    def on_barrier_depart(self, pid: int) -> None:
        """Barrier departure: the acquire half.

        Every participant arrives before any departs, so the first
        departure seals the episode's accumulated clock.
        """
        if self._barrier_arrived == self._n:
            self._barrier_clock = self._barrier_pending
            self._barrier_pending = [0] * self._n
            self._barrier_arrived = 0
        vc = self._vc[pid]
        for i, c in enumerate(self._barrier_clock):
            if c > vc[i]:
                vc[i] = c
        vc[pid] += 1

    # ------------------------------------------------------------------
    # access recording (Env hooks)
    # ------------------------------------------------------------------

    def _record(self, addr: int, vpn: int, prev_pid: int, prev_kind: str,
                pid: int, kind: str) -> None:
        key = (addr, prev_pid, pid)
        if key in self._seen or len(self.races) >= self._max_races:
            return
        self._seen.add(key)
        self.races.append(
            Race(addr=addr, vpn=vpn, prev_pid=prev_pid, prev_kind=prev_kind,
                 pid=pid, kind=kind)
        )

    def on_read(self, pid: int, addr: int) -> None:
        loc = addr // self._unit
        vc = self._vc[pid]
        write = self._writes.get(loc)
        if write is not None:
            writer, clock = write
            if writer != pid and clock > vc[writer]:
                if not self._is_exempt(addr):
                    self._record(loc * self._unit, addr // self._page_size,
                                 writer, "write", pid, "read")
        readers = self._reads.get(loc)
        if readers is None:
            readers = self._reads[loc] = {}
        readers[pid] = vc[pid]

    def on_write(self, pid: int, addr: int) -> None:
        loc = addr // self._unit
        vc = self._vc[pid]
        exempt = None  # resolved lazily; most accesses race nothing
        write = self._writes.get(loc)
        if write is not None:
            writer, clock = write
            if writer != pid and clock > vc[writer]:
                exempt = self._is_exempt(addr)
                if not exempt:
                    self._record(loc * self._unit, addr // self._page_size,
                                 writer, "write", pid, "write")
        readers = self._reads.get(loc)
        if readers:
            for reader, clock in sorted(readers.items()):
                if reader != pid and clock > vc[reader]:
                    if exempt is None:
                        exempt = self._is_exempt(addr)
                    if not exempt:
                        self._record(loc * self._unit,
                                     addr // self._page_size,
                                     reader, "read", pid, "write")
            readers.clear()
        self._writes[loc] = (pid, vc[pid])

    def _on_range(self, pid: int, addr: int, nwords: int, write: bool) -> None:
        record = self.on_write if write else self.on_read
        if self._unit == WORD_BYTES:
            for a in range(addr, addr + nwords * WORD_BYTES, WORD_BYTES):
                record(pid, a)
        else:
            # Page granularity: one record per page touched.
            lo = addr // self._unit
            hi = (addr + nwords * WORD_BYTES - 1) // self._unit
            for page in range(lo, hi + 1):
                record(pid, page * self._unit)

    # ------------------------------------------------------------------
    # Env instrumentation
    # ------------------------------------------------------------------

    def instrument(self, env: "Env") -> None:
        """Wrap the Env's bound memory operations with access recording.

        The wrappers delegate to the original (fast- or slow-path)
        generators via ``yield from`` and record after the access
        completes — by which point any mapping faults it triggered have
        resolved.  Nothing is charged and nothing is scheduled.
        """
        pid = env.pid
        inner_read = env.read
        inner_write = env.write
        inner_read_block = env.read_block
        inner_write_block = env.write_block
        inner_read_many = env.read_many
        inner_write_many = env.write_many

        def read(addr: int, ptr: bool = False):
            value = yield from inner_read(addr, ptr)
            self.on_read(pid, addr)
            return value

        def write(addr: int, value: float, ptr: bool = False):
            yield from inner_write(addr, value, ptr)
            self.on_write(pid, addr)

        def read_block(addr: int, nwords: int, ptr: bool = False):
            values = yield from inner_read_block(addr, nwords, ptr)
            self._on_range(pid, addr, nwords, write=False)
            return values

        def write_block(addr: int, values, ptr: bool = False):
            yield from inner_write_block(addr, values, ptr)
            self._on_range(pid, addr, len(values), write=True)

        def read_many(addrs: Iterable[int], ptr: bool = False):
            addrs = tuple(addrs)
            values = yield from inner_read_many(addrs, ptr)
            for a in addrs:
                self.on_read(pid, a)
            return values

        def write_many(addrs: Iterable[int], values, ptr: bool = False):
            addrs = tuple(addrs)
            yield from inner_write_many(addrs, values, ptr)
            for a in addrs:
                self.on_write(pid, a)

        env.read = read
        env.write = write
        env.read_block = read_block
        env.write_block = write_block
        env.read_many = read_many
        env.write_many = write_many

    # ------------------------------------------------------------------
    # verdict
    # ------------------------------------------------------------------

    def certify(self) -> None:
        """Raise :class:`RaceError` unless the execution was race-free
        (modulo declared-benign exemptions)."""
        if self.races:
            raise RaceError(self.races)
