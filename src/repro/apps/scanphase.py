"""ScanPhase: repeated read-only sweep phases (the replay showcase).

A synthetic workload with the structure the phase-replay engine
(:mod:`repro.runtime.replay`) is built for: every phase, each processor
scans its block of a shared array plus a window into its neighbour's
block (cross-cluster read sharing), charges per-word analysis compute,
and meets at the barrier.  After the first phase installs the mappings
and read-replicates the pages, the machine state is a fixed point: the
second phase executes once to prove itself state-idempotent and record
its effect, and every later phase is applied in closed form — the
``figure_replay`` perfsmoke workload measures exactly that collapse.

This is the Figure-6 shape reduced to its essence: the paper's sweeps
re-run dozens of near-identical barrier phases whose coherence work all
happens in the first round.

Validation: each worker captures its scan checksum during the first
phase (later phases may never execute under replay, by design) and the
run is checked against the numpy reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.common import AppRun, block_range, make_runtime
from repro.params import CostModel, MachineConfig
from repro.runtime import Runtime

__all__ = ["ScanPhaseParams", "golden", "build", "run"]


@dataclass(frozen=True)
class ScanPhaseParams:
    """Problem size: a small array scanned many times."""

    words: int = 2048
    phases: int = 32
    #: overlap into the neighbouring block, in words (read sharing)
    window: int = 64
    #: words per analysis chunk; each chunk is read then processed
    chunk: int = 8
    #: cycles of analysis work per chunk — near the quantum, so every
    #: chunk suspends the thread, as a real per-point kernel would
    compute_per_chunk: int = 1300

    def initial_data(self) -> np.ndarray:
        return np.arange(self.words, dtype=np.float64) * 0.5


def golden(params: ScanPhaseParams, nprocs: int) -> list[float]:
    """Per-processor scan checksums (identical every phase)."""
    data = params.initial_data()
    out = []
    for pid in range(nprocs):
        rows = block_range(params.words, nprocs, pid)
        lo, hi = rows.start, rows.stop
        win = data.take(
            range(hi, hi + min(params.window, params.words - (hi - lo))),
            mode="wrap",
        )
        out.append(float(data[lo:hi].sum() + win.sum()))
    return out


def build(rt: Runtime, params: ScanPhaseParams):
    """Allocate the array and spawn the phased scanners.

    Returns the list the workers append their first-phase checksums to
    (one per processor, in pid order once the run completes).
    """
    words = params.words
    nprocs = rt.config.total_processors

    def home(pg: int) -> int:
        first = pg * rt.config.words_per_page
        rows = block_range(words, nprocs, 0)
        per = max(1, rows.stop - rows.start)
        return min(nprocs - 1, first // per)

    arr = rt.array("scan", words, home=home)
    arr.init(params.initial_data())
    checksums: list[tuple[int, float]] = []

    def factory(env, phase):
        def gen():
            rows = block_range(words, nprocs, env.pid)
            lo, hi = rows.start, rows.stop
            # Chunked scan with near-quantum analysis work per chunk:
            # every chunk suspends the thread, so an executed phase is
            # hundreds of simulator events — the cost replay collapses.
            total = 0.0
            for off in range(lo, hi, params.chunk):
                nw = min(params.chunk, hi - off)
                vals = yield from env.read_block(arr.addr(off), nw)
                yield from env.compute(params.compute_per_chunk)
                total += float(np.sum(vals))
            # Window into the neighbour's block (wrapping): the fine
            # grain sharing that makes the first phase do real
            # coherence work.
            win = min(params.window, words - (hi - lo))
            if hi + win <= words:
                shared = yield from env.read_block(arr.addr(hi), win)
            else:
                shared = yield from env.read_many(
                    tuple(arr.addr((hi + k) % words) for k in range(win))
                )
            total += float(np.sum(shared))
            if phase == 0:
                checksums.append((env.pid, total))
            yield from env.barrier()

        return gen()

    # Every phase runs the same program over read-only data: key 0
    # throughout, so phases replay as soon as the state fixed point is
    # reached (after the mappings install in phase 0).
    rt.spawn_phases(factory, params.phases, keys=[0] * params.phases)
    return checksums


def run(
    config: MachineConfig,
    params: ScanPhaseParams | None = None,
    costs: CostModel | None = None,
    replay: bool | None = None,
) -> AppRun:
    params = params if params is not None else ScanPhaseParams()
    rt = make_runtime(config, costs, replay=replay)
    checksums = build(rt, params)
    result = rt.run()
    reference = golden(params, config.total_processors)
    measured = [v for _, v in sorted(checksums)]
    max_error = float(
        max(abs(m - r) for m, r in zip(measured, reference))
    ) if len(measured) == len(reference) else float("inf")
    # Replay counters live in result.replay_cache, NOT aux: aux is
    # serialized into run-cache entries, and a store-warm run replays
    # more phases than the run that recorded them — counters in aux
    # would break cold/warm byte-identity.
    return AppRun(
        name="scanphase",
        result=result,
        valid=max_error < 1e-9,
        max_error=max_error,
        aux={
            "words": params.words,
            "phases": params.phases,
        },
    )
