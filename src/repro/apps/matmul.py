"""Matrix Multiply: C = A x B (Figure 7 of the paper).

Row-blocked: worker p computes the rows of C it owns, reading its rows of
A and the whole of B.  B is read-shared and never written, so each SSMP
replicates it once and keeps it; C rows are written only by their owner.
This gives the paper's result: essentially zero breakup penalty and a
performance curve independent of cluster size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.common import AppRun, block_range, make_runtime
from repro.params import WORD_BYTES, CostModel, MachineConfig
from repro.runtime import Runtime

__all__ = ["MatmulParams", "golden", "build", "run"]

@dataclass(frozen=True)
class MatmulParams:
    """Problem size (paper: 256x256; scaled by default)."""

    n: int = 32
    seed: int = 42
    #: cycles per multiply-accumulate; calibrated so the scaled matrices
    #: keep the paper's compute-to-communication ratio
    compute_per_mac: int = 1000
    #: full C = A x B passes.  1 (the default) runs the classic
    #: one-shot kernel via spawn_all.  Larger values model an iterative
    #: solver re-applying the same operator and switch the app to
    #: epoch-granularity replay (Runtime.spawn_epochs): every pass
    #: beyond the second is state-idempotent — identical values
    #: rewritten into resident pages — so it collapses to a closed-form
    #: delta the way jacobi/scanphase phases do, with no barrier between
    #: passes (each epoch boundary is merely quiescent).
    iterations: int = 1

    def operands(self) -> tuple[np.ndarray, np.ndarray]:
        rng = np.random.default_rng(self.seed)
        a = rng.integers(-4, 5, size=(self.n, self.n)).astype(np.float64)
        b = rng.integers(-4, 5, size=(self.n, self.n)).astype(np.float64)
        return a, b


def golden(params: MatmulParams) -> np.ndarray:
    a, b = params.operands()
    return a @ b


def build(rt: Runtime, params: MatmulParams):
    n = params.n
    config = rt.config
    nprocs = config.total_processors
    wpp = config.words_per_page
    # Rows of A and C are padded to page boundaries, reproducing the
    # paper's geometry where a 256-word row spans whole pages and no two
    # workers ever write the same page.
    row_stride = ((n + wpp - 1) // wpp) * wpp

    def row_home(pg: int) -> int:
        row = min(n - 1, pg * wpp // row_stride)
        per = (n + nprocs - 1) // nprocs
        return min(nprocs - 1, row // per)

    a_mat, b_mat = params.operands()
    arr_a = rt.array("A", n * row_stride, home=row_home)
    arr_b = rt.array("B", n * n)  # interleaved: read by everyone
    arr_c = rt.array("C", n * row_stride, home=row_home)
    init_a = np.zeros(n * row_stride)
    init_c = np.zeros(n * row_stride)
    for i in range(n):
        init_a[i * row_stride : i * row_stride + n] = a_mat[i]
    arr_a.init(init_a)
    arr_b.init(b_mat.ravel())
    arr_c.init(init_c)

    def one_pass(env):
        rows = block_range(n, nprocs, env.pid)
        b_stride = n * WORD_BYTES
        for i in rows:
            a_base = arr_a.addr(i * row_stride)
            a_addrs = tuple(a_base + k * WORD_BYTES for k in range(n))
            for j in range(n):
                # One conflict-free access vector per dot product: row i
                # of A plus column j of B, charged as a single aggregate
                # by the vectorized read_many once both operands are
                # resident; the n multiply-accumulates are one aggregated
                # compute and one numpy dot.
                b_addr = arr_b.addr(j)
                vals = yield from env.read_many(
                    a_addrs + tuple(b_addr + k * b_stride for k in range(n))
                )
                yield from env.compute(n * params.compute_per_mac)
                acc = float(np.dot(vals[:n], vals[n:]))
                yield from env.write(arr_c.addr(i * row_stride + j), acc)

    if params.iterations == 1:
        # Classic one-shot kernel: unchanged spawn_all program (the
        # delegation through one_pass is invisible to the driver).
        def worker(env):
            yield from one_pass(env)
            yield from env.barrier()

        rt.spawn_all(worker)
        return arr_c

    # Iterative variant: each multiply pass is one epoch, with no
    # barrier between passes — workers write only their own C rows and
    # read only A/B, so quiescence at the epoch boundary is the only
    # ordering the program needs.  Pass 1 faults everything in, pass 2
    # proves the fixed point (identical values into resident pages,
    # identical per-thread durations when the rows divide evenly) and
    # records, every later pass replays.  The barrier-only epilogue gets
    # a distinct key: its generator differs, so its digest must never
    # collide with a pass record.
    def factory(env, epoch):
        if epoch < params.iterations:
            return one_pass(env)

        def fin(env):
            yield from env.barrier()

        return fin(env)

    rt.spawn_epochs(
        factory,
        params.iterations + 1,
        keys=["pass"] * params.iterations + ["fin"],
    )
    return arr_c


def run(
    config: MachineConfig,
    params: MatmulParams | None = None,
    costs: CostModel | None = None,
    replay: bool | None = None,
) -> AppRun:
    params = params if params is not None else MatmulParams()
    rt = make_runtime(config, costs, replay=replay)
    arr_c = build(rt, params)
    result = rt.run()
    n = params.n
    wpp = config.words_per_page
    row_stride = ((n + wpp - 1) // wpp) * wpp
    reference = golden(params)
    snap = arr_c.snapshot()
    measured = np.stack([snap[i * row_stride : i * row_stride + n] for i in range(n)])
    max_error = float(np.max(np.abs(measured - reference)))
    return AppRun(
        name="matmul",
        result=result,
        valid=max_error < 1e-9,
        max_error=max_error,
        aux={"n": params.n, "iterations": params.iterations},
    )
