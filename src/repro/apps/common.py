"""Shared infrastructure for the application suite."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.params import CostModel, MachineConfig
from repro.runtime import RunResult, Runtime

__all__ = [
    "AppRun",
    "block_range",
    "block_owner",
    "page_home_block",
    "make_runtime",
]


@dataclass
class AppRun:
    """Result of one simulated application execution."""

    name: str
    result: RunResult
    valid: bool
    max_error: float = 0.0
    aux: dict[str, Any] = field(default_factory=dict)

    @property
    def total_time(self) -> int:
        return self.result.total_time

    def require_valid(self) -> "AppRun":
        if not self.valid:
            raise AssertionError(
                f"{self.name}: output diverged from the sequential golden run "
                f"(max_error={self.max_error})"
            )
        return self


def block_range(n: int, nworkers: int, worker: int) -> range:
    """Contiguous block partition of ``n`` items.

    The paper's apps distribute their main arrays in contiguous blocks;
    when ``n`` is not divisible (Water's 343 molecules), the first ``n %
    nworkers`` workers get one extra item — the source of the load
    imbalance the paper discusses in section 5.2.1.
    """
    q, r = divmod(n, nworkers)
    lo = worker * q + min(worker, r)
    hi = lo + q + (1 if worker < r else 0)
    return range(lo, hi)


def block_owner(n: int, nworkers: int, item: int) -> int:
    """Inverse of :func:`block_range`: which worker owns ``item``."""
    q, r = divmod(n, nworkers)
    boundary = r * (q + 1)
    if item < boundary:
        return item // (q + 1)
    if q == 0:
        return nworkers - 1
    return r + (item - boundary) // q


def page_home_block(
    config: MachineConfig, n_items: int, words_per_item: int
):
    """Home map for an array distributed block-wise over processors.

    Page ``pg`` is homed at the processor owning the first item stored in
    that page, so each worker's partition lives in its own memory.
    """
    wpp = config.page_size // 8
    nprocs = config.total_processors

    def home(pg: int) -> int:
        first_word = pg * wpp
        item = min(n_items - 1, first_word // words_per_item)
        return block_owner(n_items, nprocs, item)

    return home


def make_runtime(
    config: MachineConfig,
    costs: CostModel | None = None,
    quantum: int = 1500,
    fastpath: bool | None = None,
    replay: bool | None = None,
    replay_store=None,
) -> Runtime:
    """``replay_store`` follows :func:`repro.bench.cache
    .resolve_replay_store` semantics: None consults the environment, an
    instance pins the persistent phase-replay store explicitly."""
    return Runtime(
        config,
        costs,
        quantum,
        fastpath=fastpath,
        replay=replay,
        replay_store=replay_store,
    )
