"""TSP: branch-and-bound with a centralized work queue (Figure 8).

The two performance pathologies the paper analyzes are preserved:

* a **centralized work queue** protected by one global MGS lock — every
  pop and every push needs mutually exclusive access, and under software
  page coherence the release at unlock dilates the critical section
  (*critical-section dilation*);
* **false sharing in the path-element pool** — path elements are 56 bytes
  (7 words, exactly the paper's size), contiguously allocated, and
  randomly assigned to processors through the queue, so unrelated
  elements share pages.

Workers pop a partial tour, expand it by every unvisited city whose
lower bound beats the incumbent best tour, push the children, and update
the best cost (its own lock) on complete tours.  Termination uses a
pending-work counter maintained under the queue lock.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.apps.common import AppRun, make_runtime
from repro.params import CostModel, MachineConfig
from repro.runtime import Runtime
from repro.svm import AccessKind

__all__ = ["TSPParams", "golden", "build", "run"]

#: words per path element: 56 bytes, as in the paper (section 5.2.1)
ELEM_WORDS = 7
#: cycles to evaluate one child's lower bound
COMPUTE_PER_CHILD = 40
#: cycles an idle worker waits before re-polling the queue
POLL_BACKOFF = 800


@dataclass(frozen=True)
class TSPParams:
    """Problem size (paper: 10-city tour; scaled to 9 by default)."""

    ncities: int = 9
    seed: int = 7
    pool_size: int = 20000
    #: cycles of tour processing per expanded node (copying the 56-byte
    #: path element, recomputing bounds); calibrated to the paper's
    #: compute-to-communication ratio
    expand_compute: int = 12000
    #: cycles of queue manipulation inside the critical section (the
    #: "very short" critical section of section 5.2.1)
    queue_cs_compute: int = 250

    def distances(self) -> np.ndarray:
        """Symmetric integer distance matrix from random city coordinates."""
        rng = np.random.default_rng(self.seed)
        coords = rng.uniform(0.0, 100.0, size=(self.ncities, 2))
        delta = coords[:, None, :] - coords[None, :, :]
        dist = np.sqrt((delta**2).sum(axis=2)).round()
        np.fill_diagonal(dist, 0.0)
        return dist


def golden(params: TSPParams) -> float:
    """Optimal tour cost by Held-Karp dynamic programming."""
    dist = params.distances()
    n = params.ncities

    @lru_cache(maxsize=None)
    def best(visited: int, last: int) -> float:
        if visited == (1 << n) - 1:
            return dist[last][0]
        result = float("inf")
        for city in range(n):
            if not visited & (1 << city):
                result = min(
                    result, dist[last][city] + best(visited | (1 << city), city)
                )
        return result

    return float(best(1, 0))


def build(rt: Runtime, params: TSPParams):
    """Allocate the queue, pools, and bound; spawn the workers."""
    n = params.ncities
    dist = params.distances()
    config = rt.config
    nprocs = config.total_processors

    dist_arr = rt.array("dist", n * n)
    dist_arr.init(dist.ravel())
    # Path-element pool: contiguous 56-byte records (false sharing).
    pool = rt.array("pool", params.pool_size * ELEM_WORDS, kind=AccessKind.POINTER)
    # Work queue: a stack of element indices plus its control words.
    stack = rt.array("stack", params.pool_size, kind=AccessKind.POINTER)
    # head, alloc, pending live together on the queue's page (home 0).
    qctl = rt.array("qctl", 3, home=0)
    best_arr = rt.array("best", 1, home=nprocs - 1)
    # Workers read the incumbent bound without the lock when pruning
    # (below); the bound only tightens, so a stale read merely expands a
    # few extra nodes.  Declare it so the race detector can certify the
    # rest of the execution (no-op when analysis is off).
    rt.annotate_benign_race(
        best_arr.addr(0), words=1, reason="monotonic incumbent bound"
    )

    # Cheap admissible bound: remaining hops x the cheapest edge.
    min_edge = float(np.min(dist + np.eye(n) * 1e9))

    queue_lock = rt.create_lock(home_cluster=0)
    best_lock = rt.create_lock(home_cluster=config.num_clusters - 1)

    HEAD, ALLOC, PENDING = qctl.addr(0), qctl.addr(1), qctl.addr(2)
    # Seed: root element = tour {0}, last city 0, cost 0.
    qctl.init([1.0, 1.0, 1.0])
    root = np.zeros(params.pool_size * ELEM_WORDS)
    root[0] = float(1 << 0)  # visited bitmask
    root[1] = 0.0  # last city
    root[2] = 1.0  # depth
    root[3] = 0.0  # partial cost
    pool.init(root)
    stack_init = np.zeros(params.pool_size)
    stack_init[0] = 0.0  # index of the root element
    stack.init(stack_init)
    best_arr.init([1e18])

    def elem_field(idx: int, field: int) -> int:
        return pool.addr(idx * ELEM_WORDS + field)

    def worker(env):
        while True:
            # ---- pop ---------------------------------------------------
            yield from env.lock(queue_lock)
            head = yield from env.read(HEAD, ptr=True)
            if head > 0:
                yield from env.compute(params.queue_cs_compute)
                yield from env.write(HEAD, head - 1, ptr=True)
                elem = int((yield from env.read(stack.addr(int(head) - 1), ptr=True)))
                yield from env.unlock(queue_lock)
            else:
                pending = yield from env.read(PENDING, ptr=True)
                yield from env.unlock(queue_lock)
                if pending <= 0:
                    break  # all work finished
                yield from env.compute(POLL_BACKOFF)
                continue

            # ---- expand ------------------------------------------------
            visited = int((yield from env.read(elem_field(elem, 0), ptr=True)))
            last = int((yield from env.read(elem_field(elem, 1), ptr=True)))
            depth = int((yield from env.read(elem_field(elem, 2), ptr=True)))
            cost = yield from env.read(elem_field(elem, 3), ptr=True)

            if depth == n:
                tour_cost = cost + dist[last][0]
                yield from env.lock(best_lock)
                incumbent = yield from env.read(best_arr.addr(0), ptr=True)
                if tour_cost < incumbent:
                    yield from env.write(best_arr.addr(0), tour_cost, ptr=True)
                yield from env.unlock(best_lock)
                # Retire this element.
                yield from env.lock(queue_lock)
                pending = yield from env.read(PENDING, ptr=True)
                yield from env.write(PENDING, pending - 1, ptr=True)
                yield from env.unlock(queue_lock)
                continue

            yield from env.compute(params.expand_compute)
            incumbent = yield from env.read(best_arr.addr(0), ptr=True)
            children = []
            for city in range(n):
                if visited & (1 << city):
                    continue
                child_cost = cost + dist[last][city]
                bound = child_cost + (n - depth) * min_edge
                yield from env.compute(COMPUTE_PER_CHILD)
                if bound < incumbent:
                    children.append((city, child_cost))

            # ---- reserve pool slots -------------------------------------
            nkids = len(children)
            base = 0
            if nkids:
                yield from env.lock(queue_lock)
                base = int((yield from env.read(ALLOC, ptr=True)))
                if base + nkids > params.pool_size:
                    raise RuntimeError("TSP pool exhausted; raise pool_size")
                yield from env.write(ALLOC, base + nkids, ptr=True)
                yield from env.unlock(queue_lock)
                # Fill the fresh elements (private until pushed).
                for k, (city, child_cost) in enumerate(children):
                    idx = base + k
                    yield from env.write(
                        elem_field(idx, 0), float(visited | (1 << city)), ptr=True
                    )
                    yield from env.write(elem_field(idx, 1), float(city), ptr=True)
                    yield from env.write(elem_field(idx, 2), float(depth + 1), ptr=True)
                    yield from env.write(elem_field(idx, 3), child_cost, ptr=True)

            # ---- push + retire ------------------------------------------
            yield from env.lock(queue_lock)
            yield from env.compute(params.queue_cs_compute)
            head = int((yield from env.read(HEAD, ptr=True)))
            for k in range(nkids):
                yield from env.write(stack.addr(head + k), float(base + k), ptr=True)
            yield from env.write(HEAD, head + nkids, ptr=True)
            pending = yield from env.read(PENDING, ptr=True)
            yield from env.write(PENDING, pending - 1 + nkids, ptr=True)
            yield from env.unlock(queue_lock)

        yield from env.barrier()

    rt.spawn_all(worker)
    return best_arr


def run(
    config: MachineConfig,
    params: TSPParams | None = None,
    costs: CostModel | None = None,
) -> AppRun:
    params = params if params is not None else TSPParams()
    rt = make_runtime(config, costs)
    best_arr = build(rt, params)
    result = rt.run()
    measured = float(best_arr.snapshot()[0])
    reference = golden(params)
    return AppRun(
        name="tsp",
        result=result,
        valid=measured == reference,
        max_error=abs(measured - reference),
        aux={
            "ncities": params.ncities,
            "optimal_cost": reference,
            "nodes_expanded": result.lock_stats.acquires,
        },
    )
